//! The search service end to end: one batched job spanning two networks,
//! a second job queued behind it, live progress polling, and cooperative
//! cancellation — the request → handle → progress lifecycle.
//!
//! Every network in a batch is bit-identical to a standalone submission
//! with the same seed, for any service thread budget; the example checks
//! that for one of the networks at the end.
//!
//! ```text
//! cargo run --release --example batched_service
//! ```

use dosa::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(4).build();
    println!(
        "service up with a {}-thread worker fleet",
        service.threads()
    );

    // A reduced budget so the example finishes in seconds.
    let cfg = GdConfig {
        start_points: 2,
        steps_per_start: 240,
        round_every: 80,
        ..GdConfig::default()
    };

    // Job 1: a batch of two named networks. All four start points (two
    // per network) fan into one worker fleet; results demultiplex per
    // network on merge.
    let resnet_subset: Vec<Layer> = unique_layers(Network::ResNet50)
        .into_iter()
        .take(4)
        .collect();
    let bert_subset: Vec<Layer> = unique_layers(Network::Bert).into_iter().take(4).collect();
    let batch_job = service.submit(
        SearchRequest::builder(hier.clone())
            .network_seeded("resnet50-subset", resnet_subset.clone(), 1)
            .network_seeded("bert-subset", bert_subset, 2)
            .config(cfg)
            .build(),
    )?;

    // Job 2: queued concurrently; it will run after job 1. We cancel it
    // mid-queue to show cooperative cancellation.
    let doomed = service.submit(
        SearchRequest::builder(hier.clone())
            .network("doomed", unique_layers(Network::UNet))
            .config(GdConfig {
                steps_per_start: 100_000, // would run for a long time
                ..cfg
            })
            .build(),
    )?;
    println!(
        "submitted jobs {} (batched) and {} (to be cancelled); job {} is {:?}",
        batch_job.id(),
        doomed.id(),
        doomed.id(),
        doomed.status()
    );

    // Poll job 1 live. Successive snapshots are monotone: samples only
    // grow, best-EDP only drops.
    while !batch_job.status().is_terminal() {
        let p = batch_job.progress();
        let line: Vec<String> = p
            .networks
            .iter()
            .map(|n| {
                if n.best_edp.is_finite() {
                    format!(
                        "{}: {} samples, best {:.3e}",
                        n.network, n.samples, n.best_edp
                    )
                } else {
                    format!("{}: {} samples", n.network, n.samples)
                }
            })
            .collect();
        println!("  [{:?}] {}", p.status, line.join(" | "));
        std::thread::sleep(Duration::from_millis(250));
    }

    for net in batch_job.wait().unwrap().networks {
        println!(
            "{:<16} best EDP {:.4e} on {} after {} samples",
            net.network, net.result.best_edp, net.result.best_hw, net.result.samples
        );
    }

    // Cancel job 2: a queued job retires immediately with empty results;
    // a running one stops at the next gradient-step boundary.
    doomed.cancel();
    let partial = doomed.wait().unwrap();
    println!(
        "job {} finished as {:?} with {} samples consumed",
        doomed.id(),
        doomed.status(),
        partial.networks[0].result.samples
    );

    // The batching guarantee, spot-checked: same network + seed standalone.
    let standalone = service
        .submit(
            SearchRequest::builder(hier)
                .network("resnet50-subset", resnet_subset)
                .config(GdConfig { seed: 1, ..cfg })
                .build(),
        )?
        .wait()
        .unwrap()
        .into_single();
    let batched = batch_job.wait().unwrap(); // terminal: returns instantly
    let batched_resnet = batched.get("resnet50-subset").expect("present");
    assert_eq!(
        batched_resnet.best_edp.to_bits(),
        standalone.best_edp.to_bits()
    );
    println!(
        "bit-parity check passed: batched == standalone ({:.4e})",
        standalone.best_edp
    );
    Ok(())
}
