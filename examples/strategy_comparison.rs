//! A miniature Figure 7 through one request API: the three search
//! strategies — DOSA's differentiable gradient descent, random search,
//! and Spotlight-style BB-BO — each submitted as one batched job over the
//! same two networks to a single `SearchService`, with live progress and
//! a final comparison table.
//!
//! Every (network, strategy) result is bit-identical to a standalone run
//! with the same seed, for any service thread budget; the example
//! spot-checks that for the random strategy at the end.
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use dosa::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(4).build();

    // Two small networks shared by all three strategy jobs.
    let resnet_subset: Vec<Layer> = unique_layers(Network::ResNet50)
        .into_iter()
        .take(3)
        .collect();
    let gemm = vec![Layer::once(Problem::matmul("gemm", 64, 256, 256)?)];
    let networks = [("resnet50-subset", &resnet_subset), ("gemm", &gemm)];

    // Reduced budgets so the example finishes in seconds. Roughly equal
    // sample counts per strategy keep the comparison fair-ish.
    let strategies = [
        (
            "gradient-descent",
            Strategy::GradientDescent(GdConfig {
                start_points: 2,
                steps_per_start: 150,
                round_every: 50,
                ..GdConfig::default()
            }),
        ),
        (
            "random",
            Strategy::Random(RandomSearchConfig {
                num_hw: 4,
                samples_per_hw: 80,
                seed: 0,
            }),
        ),
        (
            "bayes-opt",
            Strategy::BayesOpt(BbboConfig {
                num_hw: 8,
                init_random: 3,
                samples_per_hw: 40,
                candidates: 100,
                seed: 0,
            }),
        ),
    ];

    // Submit all three jobs up front; the service runs them concurrently,
    // each fanning its work items (starts / designs / inner samples) into
    // the same 4-slot worker budget — results don't depend on how the
    // jobs interleave.
    let jobs: Vec<(&str, JobHandle)> = strategies
        .iter()
        .map(|(label, strategy)| {
            let mut builder = SearchRequest::builder(hier.clone()).strategy(strategy.clone());
            for (i, (name, layers)) in networks.iter().enumerate() {
                builder = builder.network_seeded(*name, (*layers).clone(), 1 + i as u64);
            }
            let job = service.submit(builder.build()).expect("valid request");
            println!("submitted {label} as job {}", job.id());
            (*label, job)
        })
        .collect();

    // Watch each job drain, in submission order.
    for (label, job) in &jobs {
        while !job.status().is_terminal() {
            let p = job.progress();
            println!(
                "  [{label} {:?}] {} samples, best {}",
                p.status,
                p.total_samples(),
                if p.best_edp().is_finite() {
                    format!("{:.3e}", p.best_edp())
                } else {
                    "-".to_string()
                }
            );
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    // The mini Figure 7: final EDP per (network, strategy).
    println!("\nfinal best EDP (uJ*cycles):");
    let mut finals: Vec<(&str, Vec<f64>)> = Vec::new();
    for (label, job) in &jobs {
        let batch = job.wait().unwrap();
        let edps: Vec<f64> = networks
            .iter()
            .map(|(name, _)| batch.get(name).expect("network present").best_edp)
            .collect();
        finals.push((label, edps));
    }
    for (i, (name, _)) in networks.iter().enumerate() {
        let dosa = finals[0].1[i];
        let row: Vec<String> = finals
            .iter()
            .map(|(label, edps)| format!("{label} {:.3e} (x{:.2})", edps[i], edps[i] / dosa))
            .collect();
        println!("  {:<16} {}", name, row.join(" | "));
    }

    // The strategy guarantee, spot-checked: a batched random-search
    // network equals the standalone free function with the same seed.
    let (_, random_job) = &jobs[1];
    let standalone = random_search(
        &gemm,
        &hier,
        &RandomSearchConfig {
            num_hw: 4,
            samples_per_hw: 80,
            seed: 2, // the gemm entry's per-network seed
        },
    );
    let batched = random_job.wait().unwrap();
    let batched_gemm = batched.get("gemm").expect("present");
    assert_eq!(
        batched_gemm.best_edp.to_bits(),
        standalone.best_edp.to_bits()
    );
    assert_eq!(batched_gemm.history, standalone.history);
    println!(
        "\nbit-parity check passed: batched random == standalone ({:.4e})",
        standalone.best_edp
    );
    Ok(())
}
