//! Quickstart: co-search hardware and mappings for a small DNN through
//! the search service — build a request, submit it, wait for the result —
//! then inspect what the one-loop gradient descent found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dosa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-layer toy network: two convolutions and a matmul.
    let layers = vec![
        Layer::once(Problem::conv("conv3x3", 3, 3, 28, 28, 64, 64, 1)?),
        Layer::repeated(Problem::conv("conv1x1", 1, 1, 28, 28, 64, 256, 1)?, 2),
        Layer::once(Problem::matmul("fc", 1, 2048, 1000)?),
    ];
    let hier = Hierarchy::gemmini();

    // A reduced one-loop search: gradient descent over all layers' tiling
    // factors simultaneously, hardware inferred from the mappings. The
    // budget is validated at submit() — a typed ConfigError propagates
    // through `?` instead of panicking deep in the engine.
    let cfg = GdConfig {
        start_points: 2,
        steps_per_start: 300,
        round_every: 100,
        ..GdConfig::default()
    };
    let service = SearchService::builder().build();
    let job = service.submit(
        SearchRequest::builder(hier.clone())
            .network("toy", layers.clone())
            .config(cfg)
            .build(),
    )?;
    let result = job.wait().unwrap().into_single();

    println!("samples used:   {}", result.samples);
    println!("best EDP:       {:.4e} uJ x cycles", result.best_edp);
    println!("best hardware:  {}", result.best_hw);
    println!();

    // Per-layer view: reference-model evaluation of the chosen mappings.
    for (layer, mapping) in layers.iter().zip(&result.best_mappings) {
        let perf = evaluate_layer(&layer.problem, mapping, &result.best_hw, &hier);
        println!(
            "{:<10} latency {:>12.0} cycles  energy {:>10.3} uJ  (x{})",
            layer.problem.name(),
            perf.latency_cycles,
            perf.energy_uj,
            layer.count
        );
        println!("{mapping}");
    }

    // The minimal hardware really is minimal: shrinking any buffer breaks
    // at least one mapping.
    let pairs: Vec<_> = layers
        .iter()
        .zip(&result.best_mappings)
        .map(|(l, m)| (&l.problem, m))
        .collect();
    let minimal = min_hw_for_all(pairs, &hier);
    println!("minimal hardware for these mappings: {minimal}");
    Ok(())
}
