//! Validate the differentiable model against the reference (Timeloop-role)
//! model on random mappings, and inspect where the two diverge — a
//! miniature of the paper's Figure 4 study with a per-layer breakdown.
//! This is the model that `Surrogate::Edp` service jobs descend on (see
//! `examples/batched_service.rs` for the search side).
//!
//! ```text
//! cargo run --release --example model_correlation
//! ```

use dosa::autodiff::Tape;
use dosa::model::{layer_perf_vars, FactorVars, HwVars};
use dosa::prelude::*;
use dosa::timeloop::{fits, random_mapping};
use dosa::workload::correlation_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hier = Hierarchy::gemmini();
    let hw = HardwareConfig::gemmini_default();
    let corpus = correlation_corpus();
    let mut rng = StdRng::seed_from_u64(11);
    let tape = Tape::new();

    println!(
        "{} unique layers; sampling 5 random mappings per layer on {hw}\n",
        corpus.len()
    );
    let mut worst: Vec<(f64, String)> = Vec::new();
    let mut abs_errs = Vec::new();

    for layer in &corpus {
        let mut found = 0;
        let mut attempts = 0;
        while found < 5 && attempts < 200 {
            attempts += 1;
            let m = random_mapping(&mut rng, &layer.problem, &hier, hw.pe_side());
            if !fits(&layer.problem, &m, &hw, &hier) {
                continue;
            }
            found += 1;
            let reference = evaluate_layer(&layer.problem, &m, &hw, &hier);

            tape.clear();
            let fv = FactorVars::from_mapping(&tape, &m);
            let hwv = HwVars::fixed(&tape, &hw);
            let perf = layer_perf_vars(&tape, &layer.problem, &fv, &hwv, &hier);
            let edp = perf.latency.value() * perf.energy_uj.value();

            let err_pct = (edp - reference.edp()) / reference.edp() * 100.0;
            abs_errs.push(err_pct.abs());
            worst.push((err_pct.abs(), layer.problem.name().to_string()));
        }
    }

    worst.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    worst.dedup_by(|a, b| a.1 == b.1);
    let mae = abs_errs.iter().sum::<f64>() / abs_errs.len() as f64;
    let within = abs_errs.iter().filter(|e| **e <= 1.0).count() as f64 / abs_errs.len() as f64;

    println!("samples:      {}", abs_errs.len());
    println!("EDP MAE:      {mae:.4}% (paper: 0.18%)");
    println!("within 1%:    {:.1}% (paper: 98.3%)", within * 100.0);
    println!("\nlargest divergences (DRAM block-ceiling effect on small layers):");
    for (err, name) in worst.iter().take(5) {
        println!("  {name:<28} {err:.3}%");
    }
    Ok(())
}
