//! Full-model design-space exploration for ResNet-50: DOSA's one-loop
//! search against the random-search baseline, with the best design compared
//! to Gemmini's hand-tuned default (the Figure 7 / Figure 8 workflow on one
//! workload). The DOSA run goes through the search service so its best-EDP
//! trajectory can be watched live while the worker fleet descends.
//!
//! ```text
//! cargo run --release --example resnet50_dse [-- steps]
//! ```

use dosa::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let layers = unique_layers(Network::ResNet50);
    let hier = Hierarchy::gemmini();
    println!(
        "ResNet-50: {} unique layers, {:.2} GMACs",
        layers.len(),
        layers
            .iter()
            .map(|l| l.problem.macs() * l.count)
            .sum::<u64>() as f64
            / 1e9
    );

    // DOSA one-loop gradient descent, submitted as a service job and
    // observed while it runs (progress() is non-blocking and monotone).
    let cfg = GdConfig {
        start_points: 2,
        steps_per_start: steps,
        round_every: (steps / 3).max(1),
        ..GdConfig::default()
    };
    let service = SearchService::builder().build();
    let job = service.submit(
        SearchRequest::builder(hier.clone())
            .network("resnet50", layers.clone())
            .config(cfg)
            .build(),
    )?;
    while !job.status().is_terminal() {
        let p = job.progress();
        if p.total_samples() > 0 {
            let best = p.best_edp();
            if best.is_finite() {
                println!(
                    "  live: {:>6} samples, best EDP {best:.4e}",
                    p.total_samples()
                );
            } else {
                println!(
                    "  live: {:>6} samples, first rounding pending",
                    p.total_samples()
                );
            }
        }
        std::thread::sleep(Duration::from_millis(300));
    }
    let dosa = job.wait().unwrap().into_single();
    println!(
        "\nDOSA:   best EDP {:.4e} after {} samples on {}",
        dosa.best_edp, dosa.samples, dosa.best_hw
    );

    // Random search with a similar sample budget.
    let rs_cfg = RandomSearchConfig {
        num_hw: 4,
        samples_per_hw: dosa.samples / 4,
        seed: 7,
    };
    let random = random_search(&layers, &hier, &rs_cfg);
    println!(
        "Random: best EDP {:.4e} after {} samples on {}",
        random.best_edp, random.samples, random.best_hw
    );
    println!(
        "DOSA improvement over random search: {:.2}x",
        random.best_edp / dosa.best_edp
    );

    // Compare against the hand-tuned Gemmini default with its heuristic
    // mapper (CoSA substitute), like Figure 8's last two bars.
    let default_hw = HardwareConfig::gemmini_default();
    let paired: Vec<(Layer, Mapping)> = layers
        .iter()
        .map(|l| (l.clone(), cosa_mapping(&l.problem, &default_hw, &hier)))
        .collect();
    let default_perf = evaluate_model(&paired, &default_hw, &hier);
    println!(
        "\nGemmini default ({default_hw}): EDP {:.4e} => DOSA is {:.2}x better",
        default_perf.edp(),
        default_perf.edp() / dosa.best_edp
    );
    Ok(())
}
