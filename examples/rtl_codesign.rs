//! Real-hardware co-design (the §6.5 / Figure 12 flow): train a learned
//! latency-correction model from simulated Gemmini-RTL measurements, run
//! the fixed-PE one-loop search with the analytical and DNN-augmented
//! models, and measure both results on the RTL simulator.
//!
//! ```text
//! cargo run --release --example rtl_codesign
//! ```

use dosa::nn::TrainConfig;
use dosa::prelude::*;
use dosa::rtl::RtlConfig;
use dosa::search::{evaluate_rtl, generate_rtl_dataset};
use dosa::workload::dedup_layers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hier = Hierarchy::gemmini();
    let rtl_cfg = RtlConfig::default();

    // 1) "Measure" random mappings of the training workloads on the RTL
    //    simulator (the FireSim role) and train the residual model.
    let corpus = dedup_layers(Network::TRAINING.into_iter().flat_map(unique_layers));
    println!("generating RTL dataset ({} layers)...", corpus.len());
    let dataset = generate_rtl_dataset(&corpus, 500, &hier, &rtl_cfg, 1);
    let cfg = TrainConfig {
        epochs: 150,
        ..TrainConfig::default()
    };
    let combined = LatencyPredictor::fit(LatencyModelKind::Combined, &dataset, &cfg, 2);
    println!(
        "trained combined model on {} samples",
        dataset.samples.len()
    );

    // 2) Optimize BERT's buffer sizes and mappings for a fixed 16x16 array
    //    with both latency models: two jobs with different
    //    PredictedLatency surrogates, queued on one service and executed
    //    in submission order.
    let layers = unique_layers(Network::Bert);
    let gd = GdConfig {
        start_points: 2,
        steps_per_start: 300,
        round_every: 100,
        fixed_pe_side: Some(16),
        ..GdConfig::default()
    };
    let service = SearchService::builder().build();
    let submit = |predictor: LatencyPredictor| {
        service.submit(
            SearchRequest::builder(hier.clone())
                .network("bert", layers.clone())
                .surrogate(Surrogate::PredictedLatency(predictor))
                .config(gd)
                .build(),
        )
    };
    let analytical_job = submit(LatencyPredictor::analytical())?;
    let combined_job = submit(combined)?;
    let analytical_run = analytical_job.wait().unwrap().into_single();
    let combined_run = combined_job.wait().unwrap().into_single();

    // 3) Measure everything on the RTL simulator (energy stays analytical,
    //    like the paper's FireSim + Accelergy evaluation).
    let default_hw = HardwareConfig::gemmini_default();
    let default_maps: Vec<Mapping> = layers
        .iter()
        .map(|l| cosa_mapping(&l.problem, &default_hw, &hier))
        .collect();
    let default = evaluate_rtl(&layers, &default_maps, &default_hw, &hier, &rtl_cfg);
    let ana = evaluate_rtl(
        &layers,
        &analytical_run.best_mappings,
        &analytical_run.best_hw,
        &hier,
        &rtl_cfg,
    );
    let comb = evaluate_rtl(
        &layers,
        &combined_run.best_mappings,
        &combined_run.best_hw,
        &hier,
        &rtl_cfg,
    );

    println!("\nBERT on Gemmini-RTL (measured EDP, lower is better):");
    println!("  default  {:>12.4e}  ({default_hw})", default.edp());
    println!(
        "  analytical {:>10.4e}  ({}) => {:.2}x vs default",
        ana.edp(),
        analytical_run.best_hw,
        default.edp() / ana.edp()
    );
    println!(
        "  combined {:>12.4e}  ({}) => {:.2}x vs default",
        comb.edp(),
        combined_run.best_hw,
        default.edp() / comb.edp()
    );
    Ok(())
}
