//! # dosa
//!
//! A from-scratch Rust reproduction of *DOSA: Differentiable Model-Based
//! One-Loop Search for DNN Accelerators* (MICRO 2023), including every
//! substrate the paper depends on: a Timeloop-style reference analytical
//! model, an Accelergy-style energy model, a tape-based autodiff engine, a
//! Gemmini-RTL cycle-approximate simulator, a CoSA-substitute mapper, the
//! learned latency-correction MLP, and the random / Bayesian-optimization
//! baseline searchers.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`workload`] — layer shapes and the Table 6 networks,
//! * [`accel`] — hardware configurations, hierarchy and energy model,
//! * [`timeloop`] — the reference analytical model and mapspace,
//! * [`autodiff`] — reverse-mode automatic differentiation,
//! * [`model`] — the differentiable performance model,
//! * [`nn`] — the learned latency-correction MLP,
//! * [`rtl`] — the Gemmini-RTL simulator substitute,
//! * [`search`] — DOSA's one-loop GD search and the baselines,
//! * [`cache`] — the content-addressed fingerprint/store substrate behind
//!   the search service's result cache,
//! * [`bench`](mod@bench) — the experiment harness behind the `repro`
//!   binary.
//!
//! ## Quickstart
//!
//! ```
//! use dosa::prelude::*;
//!
//! // One ResNet-50 bottleneck layer.
//! let layers = vec![Layer::once(Problem::conv("l", 1, 1, 56, 56, 64, 64, 1)?)];
//! let hier = Hierarchy::gemmini();
//!
//! // A tiny one-loop search: hardware and mapping found together.
//! let cfg = GdConfig { start_points: 1, steps_per_start: 60, round_every: 30,
//!                      ..GdConfig::default() };
//! let result = dosa_search(&layers, &hier, &cfg);
//! assert!(result.best_edp.is_finite());
//! # Ok::<(), dosa::workload::ProblemError>(())
//! ```
//!
//! ## The search service
//!
//! Searches are jobs submitted to a [`search::SearchService`]. A job is
//! described by the [`search::SearchRequest`] builder — one network or a
//! batch of named networks plus a [`search::Strategy`] selecting the
//! algorithm and its budget — and observed through the returned
//! [`search::JobHandle`]. Jobs on one service run **concurrently**,
//! their work items sharing the service's capacity-bounded worker slots
//! under each request's [`search::SchedPolicy`] (see the repository's
//! top-level `ARCHITECTURE.md` for the crate map and the full request →
//! validate → schedule → fan-out → merge lifecycle). All of the paper's
//! searchers run through the same lifecycle:
//!
//! * [`search::Strategy::GradientDescent`] — DOSA's differentiable
//!   one-loop co-search (the default), descending a
//!   [`search::Surrogate`] (plain EDP, the §6.5 predictor-adjusted
//!   latency, or a custom [`search::CustomSurrogate`]); start points fan
//!   out across the worker fleet,
//! * [`search::Strategy::Random`] — the random-search baseline; hardware
//!   designs fan out, each with a private RNG stream,
//! * [`search::Strategy::BayesOpt`] — Spotlight-style BB-BO; the outer
//!   GP loop stays sequential while its inner sampling and EI scoring
//!   fan out.
//!
//! ```no_run
//! use dosa::prelude::*;
//!
//! let service = SearchService::builder().threads(4).build();
//! let request = SearchRequest::builder(Hierarchy::gemmini())
//!     .network("resnet50", unique_layers(Network::ResNet50))
//!     .network("bert", unique_layers(Network::Bert))
//!     .strategy(Strategy::GradientDescent(GdConfig::default()))
//!     .build();
//! let job = service.submit(request).expect("validated at the boundary");
//! while !job.status().is_terminal() {
//!     let p = job.progress(); // non-blocking, monotone
//!     println!("{} samples, best {:.3e}", p.total_samples(), p.best_edp());
//!     std::thread::sleep(std::time::Duration::from_millis(200));
//! }
//! for net in job.wait().expect("job failed").networks {
//!     println!("{}: {:.4e} on {}", net.network, net.result.best_edp, net.result.best_hw);
//! }
//! ```
//!
//! Swapping `Strategy::GradientDescent(..)` for `Strategy::Random(..)`
//! or `Strategy::BayesOpt(..)` reruns the same batch under a baseline
//! searcher — the paper's Figure 7 comparison is three concurrent
//! submissions to one service (see `examples/strategy_comparison.rs` and
//! `repro strategies`). A runnable miniature:
//!
//! ```
//! use dosa::prelude::*;
//!
//! let layers = vec![Layer::once(Problem::matmul("m", 8, 32, 32)?)];
//! let service = SearchService::builder().threads(2).build();
//! let job = service.submit(
//!     SearchRequest::builder(Hierarchy::gemmini())
//!         .network("gemm", layers)
//!         .strategy(Strategy::Random(RandomSearchConfig {
//!             num_hw: 2, samples_per_hw: 10, seed: 0,
//!         }))
//!         .build(),
//! ).expect("validated at the boundary");
//! assert_eq!(job.wait().expect("job failed").into_single().samples, 20);
//! # Ok::<(), dosa::workload::ProblemError>(())
//! ```
//!
//! The request → handle → progress lifecycle comes with contracts worth
//! relying on, for **every strategy**:
//!
//! * **Bit-identical determinism** — each network's result is identical
//!   for every service thread budget, batch composition, scheduling
//!   policy *and* concurrent-job interleaving: a batched network equals
//!   a standalone submission with the same seed, bit for bit.
//! * **Concurrent scheduling** — jobs share the worker slots instead of
//!   queueing one-at-a-time: [`search::SchedPolicy`] (`Fifo`,
//!   `ShortestFirst`, `Priority`) decides which queued work grabs freed
//!   slots, and
//!   [`search::SearchRequestBuilder::max_parallelism`] caps a long job
//!   so it provably leaves capacity for short ones (enforced in CI via
//!   `repro --smoke sched`).
//! * **Live observation** — [`search::JobHandle::progress`] reads
//!   lock-free per-network counters (samples, best-so-far EDP) without
//!   perturbing the workers; successive snapshots are monotone.
//! * **Cooperative cancellation** — [`search::JobHandle::cancel`] stops
//!   work at the next gradient-step or mapping-sample boundary and keeps
//!   the partial (still monotone) results.
//! * **Typed validation** — [`search::Strategy::validate`] rejects
//!   degenerate budgets (`round_every == 0`, zero steps, designs or
//!   samples, `init_random` outside `1..=num_hw`, non-finite learning
//!   rates) with a [`search::ConfigError`] at
//!   [`search::SearchService::submit`].
//! * **Per-service thread budget** — [`search::SearchServiceBuilder::threads`]
//!   scopes parallelism to the service instance; no global pool.
//! * **Result caching & resume** — a service built with
//!   [`search::SearchServiceBuilder::cache`] journals every completed
//!   work item into a content-addressed [`search::ResultCache`] and
//!   replays identical work instead of re-running it: a repeated
//!   identical request completes with 100% work-item hits, a cancelled
//!   job resubmitted identically re-runs only its remainder, and either
//!   way the [`search::BatchResult`] stays bit-identical to a cold run.
//!   Requests can additionally opt into
//!   [`search::WarmStart::NearestNeighbor`] to seed one extra descent
//!   from the best cached mapping of the same network shape
//!   ([`search::JobHandle::stats`] counts hits/misses/warm starts;
//!   enforced in CI via `repro --smoke cache`).
//!
//! ```
//! use dosa::prelude::*;
//! use std::sync::Arc;
//!
//! let layers = vec![Layer::once(Problem::matmul("m", 8, 32, 32)?)];
//! let cache = ResultCache::in_memory(1024);
//! let service = SearchService::builder().threads(2).cache(Arc::clone(&cache)).build();
//! let request = SearchRequest::builder(Hierarchy::gemmini())
//!     .network("gemm", layers)
//!     .config(GdConfig { start_points: 1, steps_per_start: 10, round_every: 5,
//!                        ..GdConfig::default() })
//!     .build();
//! let first = service.submit(request.clone()).expect("valid").wait().expect("job failed");
//! let rerun = service.submit(request).expect("valid");
//! let second = rerun.wait().expect("job failed");
//! assert_eq!(rerun.stats().cache_hits, rerun.stats().work_items); // full replay
//! assert_eq!(
//!     first.into_single().best_edp.to_bits(),
//!     second.into_single().best_edp.to_bits(),
//! );
//! # Ok::<(), dosa::workload::ProblemError>(())
//! ```
//!
//! The blocking searchers [`search::dosa_search`],
//! [`search::dosa_search_rtl`], [`search::random_search`] and
//! [`search::bayesian_search`] remain as thin shims that submit one job
//! and wait (thread budget from the calling thread's rayon
//! configuration, so `repro --threads N` still applies). In-process
//! custom surrogates can also drive the engine directly via
//! [`search::DiffLoss`] + [`search::run_gd_search`]; see
//! `examples/batched_service.rs` and `examples/strategy_comparison.rs`
//! for the service lifecycle end to end.

#![warn(missing_docs)]

pub use dosa_accel as accel;
pub use dosa_autodiff as autodiff;
pub use dosa_bench as bench;
pub use dosa_cache as cache;
pub use dosa_model as model;
pub use dosa_nn as nn;
pub use dosa_rtl as rtl;
pub use dosa_search as search;
pub use dosa_timeloop as timeloop;
pub use dosa_workload as workload;

/// Commonly used items for examples and downstream code.
pub mod prelude {
    pub use dosa_accel::{EnergyModel, HardwareConfig, Hierarchy};
    pub use dosa_cache::{CacheKey, CacheStore, Fingerprinter, ShardedLru};
    pub use dosa_model::{build_loss, LossOptions, RelaxedMapping};
    pub use dosa_search::{
        bayesian_search, cosa_mapping, dosa_search, dosa_search_rtl, random_search, run_gd_search,
        BatchResult, BbboConfig, ConfigError, CustomSurrogate, DiffLoss, EdpLoss, GdConfig,
        JobHandle, JobProgress, JobStats, JobStatus, LatencyModelKind, LatencyPredictor,
        LoopOrderStrategy, PredictedLatencyLoss, RandomSearchConfig, ResultCache, ResultCacheStats,
        SchedPolicy, SearchRequest, SearchService, Strategy, Surrogate, WarmStart,
    };
    pub use dosa_timeloop::{
        evaluate_layer, evaluate_model, min_hw, min_hw_for_all, Mapping, Stationarity,
    };
    pub use dosa_workload::{unique_layers, Layer, Network, Problem};
}
