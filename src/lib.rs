//! # dosa
//!
//! A from-scratch Rust reproduction of *DOSA: Differentiable Model-Based
//! One-Loop Search for DNN Accelerators* (MICRO 2023), including every
//! substrate the paper depends on: a Timeloop-style reference analytical
//! model, an Accelergy-style energy model, a tape-based autodiff engine, a
//! Gemmini-RTL cycle-approximate simulator, a CoSA-substitute mapper, the
//! learned latency-correction MLP, and the random / Bayesian-optimization
//! baseline searchers.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`workload`] — layer shapes and the Table 6 networks,
//! * [`accel`] — hardware configurations, hierarchy and energy model,
//! * [`timeloop`] — the reference analytical model and mapspace,
//! * [`autodiff`] — reverse-mode automatic differentiation,
//! * [`model`] — the differentiable performance model,
//! * [`nn`] — the learned latency-correction MLP,
//! * [`rtl`] — the Gemmini-RTL simulator substitute,
//! * [`search`] — DOSA's one-loop GD search and the baselines,
//! * [`bench`] — the experiment harness behind the `repro` binary.
//!
//! ## Quickstart
//!
//! ```
//! use dosa::prelude::*;
//!
//! // One ResNet-50 bottleneck layer.
//! let layers = vec![Layer::once(Problem::conv("l", 1, 1, 56, 56, 64, 64, 1)?)];
//! let hier = Hierarchy::gemmini();
//!
//! // A tiny one-loop search: hardware and mapping found together.
//! let cfg = GdConfig { start_points: 1, steps_per_start: 60, round_every: 30,
//!                      ..GdConfig::default() };
//! let result = dosa_search(&layers, &hier, &cfg);
//! assert!(result.best_edp.is_finite());
//! # Ok::<(), dosa::workload::ProblemError>(())
//! ```

#![warn(missing_docs)]

pub use dosa_accel as accel;
pub use dosa_autodiff as autodiff;
pub use dosa_bench as bench;
pub use dosa_model as model;
pub use dosa_nn as nn;
pub use dosa_rtl as rtl;
pub use dosa_search as search;
pub use dosa_timeloop as timeloop;
pub use dosa_workload as workload;

/// Commonly used items for examples and downstream code.
pub mod prelude {
    pub use dosa_accel::{EnergyModel, HardwareConfig, Hierarchy};
    pub use dosa_model::{build_loss, LossOptions, RelaxedMapping};
    pub use dosa_search::{
        bayesian_search, cosa_mapping, dosa_search, dosa_search_rtl, random_search,
        BbboConfig, GdConfig, LatencyModelKind, LatencyPredictor, LoopOrderStrategy,
        RandomSearchConfig,
    };
    pub use dosa_timeloop::{
        evaluate_layer, evaluate_model, min_hw, min_hw_for_all, Mapping, Stationarity,
    };
    pub use dosa_workload::{unique_layers, Layer, Network, Problem};
}
