//! # dosa
//!
//! A from-scratch Rust reproduction of *DOSA: Differentiable Model-Based
//! One-Loop Search for DNN Accelerators* (MICRO 2023), including every
//! substrate the paper depends on: a Timeloop-style reference analytical
//! model, an Accelergy-style energy model, a tape-based autodiff engine, a
//! Gemmini-RTL cycle-approximate simulator, a CoSA-substitute mapper, the
//! learned latency-correction MLP, and the random / Bayesian-optimization
//! baseline searchers.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`workload`] — layer shapes and the Table 6 networks,
//! * [`accel`] — hardware configurations, hierarchy and energy model,
//! * [`timeloop`] — the reference analytical model and mapspace,
//! * [`autodiff`] — reverse-mode automatic differentiation,
//! * [`model`] — the differentiable performance model,
//! * [`nn`] — the learned latency-correction MLP,
//! * [`rtl`] — the Gemmini-RTL simulator substitute,
//! * [`search`] — DOSA's one-loop GD search and the baselines,
//! * [`bench`] — the experiment harness behind the `repro` binary.
//!
//! ## Quickstart
//!
//! ```
//! use dosa::prelude::*;
//!
//! // One ResNet-50 bottleneck layer.
//! let layers = vec![Layer::once(Problem::conv("l", 1, 1, 56, 56, 64, 64, 1)?)];
//! let hier = Hierarchy::gemmini();
//!
//! // A tiny one-loop search: hardware and mapping found together.
//! let cfg = GdConfig { start_points: 1, steps_per_start: 60, round_every: 30,
//!                      ..GdConfig::default() };
//! let result = dosa_search(&layers, &hier, &cfg);
//! assert!(result.best_edp.is_finite());
//! # Ok::<(), dosa::workload::ProblemError>(())
//! ```
//!
//! ## Parallel search
//!
//! Both GD searchers ([`search::dosa_search`] and
//! [`search::dosa_search_rtl`]) are thin wrappers over one shared engine,
//! [`search::run_gd_search`], which fans start points out across worker
//! threads: each start point descends on its own autodiff tape with its
//! own Adam state, and the per-start results are merged by a
//! deterministic reduction. Consequences worth relying on:
//!
//! * **Bit-identical determinism** — for a fixed `GdConfig::seed`, the
//!   returned `best_edp`, hardware, mappings, history and sample counts
//!   are the same whether the search runs on 1 thread or 64.
//! * **Near-linear scaling in start points** — start points are
//!   embarrassingly parallel; wall-clock approaches
//!   `steps × slowest_start / workers`.
//! * **Configuration** — worker count follows the global rayon pool:
//!   `rayon::ThreadPoolBuilder::new().num_threads(n).build_global()`, or
//!   the `repro` binary's `--threads N` flag. By default all cores are
//!   used.
//!
//! Custom surrogates can plug into the same driver by implementing
//! [`search::DiffLoss`] (build a loss on a tape for the current relaxed
//! mappings, plus a rounding/evaluation hook) and calling
//! [`search::run_gd_search`] directly.

#![warn(missing_docs)]

pub use dosa_accel as accel;
pub use dosa_autodiff as autodiff;
pub use dosa_bench as bench;
pub use dosa_model as model;
pub use dosa_nn as nn;
pub use dosa_rtl as rtl;
pub use dosa_search as search;
pub use dosa_timeloop as timeloop;
pub use dosa_workload as workload;

/// Commonly used items for examples and downstream code.
pub mod prelude {
    pub use dosa_accel::{EnergyModel, HardwareConfig, Hierarchy};
    pub use dosa_model::{build_loss, LossOptions, RelaxedMapping};
    pub use dosa_search::{
        bayesian_search, cosa_mapping, dosa_search, dosa_search_rtl, random_search, run_gd_search,
        BbboConfig, DiffLoss, EdpLoss, GdConfig, LatencyModelKind, LatencyPredictor,
        LoopOrderStrategy, PredictedLatencyLoss, RandomSearchConfig,
    };
    pub use dosa_timeloop::{
        evaluate_layer, evaluate_model, min_hw, min_hw_for_all, Mapping, Stationarity,
    };
    pub use dosa_workload::{unique_layers, Layer, Network, Problem};
}
