//! Cycle-approximate simulation of the Gemmini weight-stationary systolic
//! array — the stand-in for FireSim-measured Gemmini-RTL latency (§4.7,
//! §6.5; DESIGN.md substitution 2).
//!
//! The analytical model (Eq. 12) is a pure roofline: the maximum of compute
//! and per-level memory latencies. Real RTL behaves differently in exactly
//! the ways §4.7 describes as "variations caused by specific implementation
//! details": per-instruction issue costs on the ROCC interface, systolic
//! fill/drain bubbles on every weight preload, DMA transaction setup
//! latency, and imperfect double-buffering overlap between compute and data
//! movement. This simulator models those mechanisms deterministically, so
//! it tracks the analytical model on large, well-tiled layers and diverges
//! on small or poorly-tiled ones — the structure the learned correction
//! model is supposed to capture.

use dosa_accel::{HardwareConfig, Hierarchy, ACC_WORD_BYTES, SPAD_WORD_BYTES};
use dosa_timeloop::{compute_traffic, Mapping};
use dosa_workload::{Problem, Tensor};

/// Microarchitectural constants of the simulated RTL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtlConfig {
    /// Cycles to issue one ROCC custom instruction (preload / compute).
    pub issue_cycles: f64,
    /// Cycles of DMA transaction setup per tile transfer.
    pub dma_setup_cycles: f64,
    /// System-bus width in bytes per cycle (TileLink beat). Must not
    /// exceed the analytical model's DRAM bandwidth (8 words/cycle with
    /// 1-byte scratchpad words = 8 bytes/cycle), or the simulated DMA
    /// could outrun the roofline on DRAM-bound mappings and violate the
    /// "RTL never beats the analytical latency" invariant.
    pub bus_bytes_per_cycle: f64,
    /// Fraction of the shorter of (compute, memory) hidden by double
    /// buffering. 1.0 would reproduce the analytical roofline.
    pub overlap: f64,
    /// Fixed kernel launch / configuration cost in cycles.
    pub startup_cycles: f64,
}

impl Default for RtlConfig {
    fn default() -> Self {
        RtlConfig {
            issue_cycles: 12.0,
            dma_setup_cycles: 36.0,
            bus_bytes_per_cycle: 8.0,
            overlap: 0.82,
            startup_cycles: 600.0,
        }
    }
}

/// Simulated Gemmini-RTL latency in cycles for `mapping` on `hw`.
///
/// Deterministic: the same inputs always produce the same latency (the role
/// of a cycle-exact FireSim run in the paper's flow).
pub fn simulate_latency(
    problem: &Problem,
    mapping: &Mapping,
    hw: &HardwareConfig,
    hier: &Hierarchy,
    cfg: &RtlConfig,
) -> f64 {
    let traffic = compute_traffic(problem, mapping, hier);
    let side = hw.pe_side() as f64;

    // --- Compute pipeline ------------------------------------------------
    // Each register-level tile is one preload + one compute instruction
    // pair: `t0` cycles of streaming plus fill/drain bubbles of one array
    // traversal each, plus issue overhead on the ROCC queue.
    let t0: u64 = mapping.temporal[0].iter().product();
    let n_reg_tiles: u64 = (1..dosa_accel::NUM_LEVELS)
        .map(|lvl| mapping.temporal[lvl].iter().product::<u64>())
        .product();
    let per_tile = t0 as f64 + 2.0 * side + 2.0 * cfg.issue_cycles;
    let compute = n_reg_tiles as f64 * per_tile;

    // --- On-chip SRAM movement -------------------------------------------
    // Scratchpad and accumulator ports are side-wide like the analytical
    // model, but banked: when the output tile's K extent is narrower than
    // the array, writeback serializes across banks.
    let acc_tile_k = mapping
        .spatial(dosa_accel::level::SCRATCHPAD, dosa_workload::Dim::K)
        .max(1) as f64;
    let bank_penalty = (side / acc_tile_k).clamp(1.0, 4.0);
    let spad_cycles = traffic.accesses(dosa_accel::level::SCRATCHPAD) as f64 / (2.0 * side);
    let acc_cycles =
        traffic.accesses(dosa_accel::level::ACCUMULATOR) as f64 * bank_penalty / (2.0 * side);
    let onchip = spad_cycles.max(acc_cycles);

    // --- DMA -------------------------------------------------------------
    // Each DRAM tile transfer pays a fixed setup cost plus the beat-level
    // occupancy of the bus.
    let mut dma = 0.0;
    for s in &traffic.dram_streams {
        let word_bytes = match s.tensor {
            Tensor::Outputs => ACC_WORD_BYTES,
            Tensor::Weights | Tensor::Inputs => SPAD_WORD_BYTES,
        } as f64;
        let bytes = s.tile_words as f64 * word_bytes;
        let per_transfer = cfg.dma_setup_cycles + (bytes / cfg.bus_bytes_per_cycle).ceil();
        dma += s.transfers as f64 * per_transfer;
    }

    // --- Composition -----------------------------------------------------
    // Double buffering hides `overlap` of the shorter side under the
    // longer; the remainder serializes. The roofline would be a pure max.
    let mem = onchip.max(dma);
    let long = compute.max(mem);
    let short = compute.min(mem);
    cfg.startup_cycles + long + (1.0 - cfg.overlap) * short
}

/// Convenience wrapper using the default [`RtlConfig`].
pub fn simulate_latency_default(
    problem: &Problem,
    mapping: &Mapping,
    hw: &HardwareConfig,
    hier: &Hierarchy,
) -> f64 {
    simulate_latency(problem, mapping, hw, hier, &RtlConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_timeloop::{evaluate_layer, random_mapping};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Hierarchy, HardwareConfig) {
        (Hierarchy::gemmini(), HardwareConfig::gemmini_default())
    }

    #[test]
    fn deterministic() {
        let (h, hw) = setup();
        let p = Problem::conv("d", 3, 3, 28, 28, 64, 64, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_mapping(&mut rng, &p, &h, 16);
        let a = simulate_latency_default(&p, &m, &hw, &h);
        let b = simulate_latency_default(&p, &m, &hw, &h);
        assert_eq!(a, b);
        assert!(a.is_finite() && a > 0.0);
    }

    #[test]
    fn default_bus_cannot_outrun_analytical_dram_bandwidth() {
        // The analytical model moves 8 words/cycle from DRAM; scratchpad
        // words are 1 byte, so any default bus rate above 8 bytes/cycle
        // would let the simulated DMA beat the roofline on DRAM-bound
        // mappings, breaking the invariant the next test samples.
        let analytical_dram_words_per_cycle = Hierarchy::gemmini()
            .bandwidth(dosa_accel::level::DRAM, &HardwareConfig::gemmini_default());
        let min_word_bytes = SPAD_WORD_BYTES as f64;
        assert!(
            RtlConfig::default().bus_bytes_per_cycle
                <= analytical_dram_words_per_cycle * min_word_bytes,
            "default bus rate outruns the analytical DRAM bandwidth"
        );
    }

    #[test]
    fn rtl_is_slower_than_the_analytical_roofline() {
        // The RTL pays overheads the roofline ignores, so it can never beat
        // the analytical latency for the same mapping.
        let (h, hw) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        for name in ["a", "b"] {
            let p = Problem::conv(name, 3, 3, 28, 28, 64, 64, 1).unwrap();
            for _ in 0..20 {
                let m = random_mapping(&mut rng, &p, &h, 16);
                let analytical = evaluate_layer(&p, &m, &hw, &h).latency_cycles;
                let rtl = simulate_latency_default(&p, &m, &hw, &h);
                assert!(
                    rtl > analytical * 0.99,
                    "rtl {rtl} < analytical {analytical}"
                );
            }
        }
    }

    #[test]
    fn overheads_dominate_tiny_layers() {
        // For a tiny layer the analytical model predicts almost nothing
        // while the RTL pays startup + issue costs: the ratio must be large.
        let (h, hw) = setup();
        let tiny = Problem::conv("tiny", 1, 1, 2, 2, 4, 4, 1).unwrap();
        let m = Mapping::all_at_dram(&tiny);
        let analytical = evaluate_layer(&tiny, &m, &hw, &h).latency_cycles;
        let rtl = simulate_latency_default(&tiny, &m, &hw, &h);
        assert!(rtl / analytical > 3.0, "ratio {}", rtl / analytical);

        // For a large well-tiled layer the two should be within ~2x.
        let big = Problem::conv("big", 3, 3, 56, 56, 64, 64, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut best_ratio = f64::INFINITY;
        for _ in 0..50 {
            let m = random_mapping(&mut rng, &big, &h, 16);
            let a = evaluate_layer(&big, &m, &hw, &h).latency_cycles;
            let r = simulate_latency_default(&big, &m, &hw, &h);
            best_ratio = best_ratio.min(r / a);
        }
        assert!(best_ratio < 2.0, "best ratio {best_ratio}");
    }

    #[test]
    fn correlates_with_analytical_across_mappings() {
        let (h, hw) = setup();
        let p = Problem::conv("c", 3, 3, 28, 28, 128, 128, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut analytical = Vec::new();
        let mut rtl = Vec::new();
        for _ in 0..150 {
            let m = random_mapping(&mut rng, &p, &h, 16);
            analytical.push(evaluate_layer(&p, &m, &hw, &h).latency_cycles.ln());
            rtl.push(simulate_latency_default(&p, &m, &hw, &h).ln());
        }
        let corr = dosa_nn_spearman(&analytical, &rtl);
        // The paper reports ~0.6 Spearman for the analytical model against
        // measured RTL latency (§6.5, Figure 10); the simulator should sit
        // in that regime — correlated, but imperfect enough to leave room
        // for the learned correction.
        assert!(corr > 0.55, "spearman {corr}");
        assert!(corr < 0.999, "suspiciously perfect correlation {corr}");
    }

    // Local copy to avoid a dev-dependency cycle.
    fn dosa_nn_spearman(a: &[f64], b: &[f64]) -> f64 {
        let rank = |x: &[f64]| {
            let mut idx: Vec<usize> = (0..x.len()).collect();
            idx.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).unwrap());
            let mut r = vec![0.0; x.len()];
            for (pos, &i) in idx.iter().enumerate() {
                r[i] = pos as f64;
            }
            r
        };
        let (ra, rb) = (rank(a), rank(b));
        let n = ra.len() as f64;
        let ma = ra.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (x, y) in ra.iter().zip(&rb) {
            cov += (x - ma) * (y - ma);
            va += (x - ma) * (x - ma);
            vb += (y - ma) * (y - ma);
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn larger_dma_setup_increases_latency() {
        let (h, hw) = setup();
        let p = Problem::conv("s", 3, 3, 14, 14, 64, 64, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let m = random_mapping(&mut rng, &p, &h, 16);
        let base = simulate_latency(&p, &m, &hw, &h, &RtlConfig::default());
        let slow = simulate_latency(
            &p,
            &m,
            &hw,
            &h,
            &RtlConfig {
                dma_setup_cycles: 400.0,
                ..RtlConfig::default()
            },
        );
        assert!(slow > base);
    }
}
