//! # dosa-rtl
//!
//! A deterministic, cycle-approximate simulator of the Gemmini
//! weight-stationary systolic array — the substitute for FireSim-based
//! cycle-exact RTL simulation in the paper's §6.5 experiments (see
//! DESIGN.md, substitution 2).
//!
//! The simulator models the implementation effects a roofline misses:
//! ROCC instruction issue, systolic fill/drain bubbles, DMA transaction
//! setup, banked accumulator writeback and imperfect double buffering. Its
//! output plays the role of "measured hardware latency" for training and
//! evaluating the learned correction model.
//!
//! ## Example
//!
//! ```
//! use dosa_rtl::simulate_latency_default;
//! use dosa_timeloop::Mapping;
//! use dosa_accel::{HardwareConfig, Hierarchy};
//! use dosa_workload::Problem;
//!
//! let p = Problem::conv("l", 3, 3, 28, 28, 64, 64, 1)?;
//! let m = Mapping::all_at_dram(&p);
//! let cycles = simulate_latency_default(
//!     &p, &m, &HardwareConfig::gemmini_default(), &Hierarchy::gemmini());
//! assert!(cycles > 0.0);
//! # Ok::<(), dosa_workload::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod sim;

pub use sim::{simulate_latency, simulate_latency_default, RtlConfig};
