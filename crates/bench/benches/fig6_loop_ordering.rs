//! Figure 6 harness bench: regenerates the loop-ordering comparison on a
//! reduced BERT run (printed once), then times one gradient step under the
//! softmax-ordering loss.

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_autodiff::Tape;
use dosa_model::{build_loss, LossOptions, RelaxedMapping};
use dosa_search::{cosa_mapping, dosa_search, GdConfig, LoopOrderStrategy};
use dosa_workload::{unique_layers, Network};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let layers: Vec<_> = unique_layers(Network::Bert).into_iter().take(3).collect();
    for strat in [
        LoopOrderStrategy::Baseline,
        LoopOrderStrategy::Iterate,
        LoopOrderStrategy::Softmax,
    ] {
        let cfg = GdConfig {
            start_points: 1,
            steps_per_start: 90,
            round_every: 45,
            strategy: strat,
            ..GdConfig::default()
        };
        let res = dosa_search(&layers, &hier, &cfg);
        println!("fig6 mini {strat:?}: best EDP {:.3e}", res.best_edp);
    }

    let hw = HardwareConfig::gemmini_default();
    let relaxed: Vec<RelaxedMapping> = layers
        .iter()
        .map(|l| RelaxedMapping::from_mapping(&cosa_mapping(&l.problem, &hw, &hier)))
        .collect();
    let tape = Tape::new();
    let opts = LossOptions {
        softmax_ordering: true,
        ..LossOptions::default()
    };
    c.bench_function("fig6_softmax_gd_step", |b| {
        b.iter(|| {
            tape.clear();
            let built = build_loss(&tape, &layers, &relaxed, &hier, &opts);
            black_box(tape.backward(built.loss))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
