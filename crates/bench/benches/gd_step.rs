//! End-to-end descent-step benchmark: set params, record the loss,
//! backward sweep, gather gradients, update — the exact per-step work of
//! `run_single_start` — on the current hot path and the pre-refactor
//! legacy tape, at several depths. After the Criterion display the run
//! regenerates `BENCH_6.json` at the repository root via
//! [`dosa_bench::perf`], so the checked-in perf trajectory always comes
//! from the same kernels the bench just showed.

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::Hierarchy;
use dosa_autodiff::{LegacyTape, LegacyVar, SegScratch, SegmentPlan, Tape, Var};
use dosa_bench::perf;
use dosa_bench::perf::{fixture_layers, fixture_starts, LAYER_COUNTS};
use dosa_model::{build_loss_in, LossOptions, PARAMS_PER_LAYER};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let opts = LossOptions::default();
    for n in LAYER_COUNTS {
        let layers = fixture_layers(n);

        let tape = Tape::new();
        let mut plan = SegmentPlan::new();
        let mut leaves: Vec<Var<'_>> = Vec::new();
        let mut scratch = SegScratch::new();
        let mut relaxed = fixture_starts(&layers);
        let mut params: Vec<f64> = Vec::new();
        for r in &relaxed {
            r.params_into(&mut params);
        }
        let mut flat: Vec<f64> = Vec::new();
        c.bench_function(&format!("gd_step_{n}layers"), |b| {
            b.iter(|| {
                for (r, chunk) in relaxed.iter_mut().zip(params.chunks(PARAMS_PER_LAYER)) {
                    r.set_params(chunk);
                }
                tape.clear();
                plan.clear();
                leaves.clear();
                let built = build_loss_in(
                    &tape,
                    &layers,
                    &relaxed,
                    &hier,
                    &opts,
                    &mut plan,
                    &mut leaves,
                );
                let view = tape.backward_segmented(built.loss, &plan, 1, &mut scratch);
                view.wrt_into(&leaves, &mut flat);
                for (p, g) in params.iter_mut().zip(&flat) {
                    if g.is_finite() {
                        *p -= 1e-4 * g;
                    }
                }
                black_box(params[0])
            })
        });

        let legacy = LegacyTape::new();
        let mut lrelaxed = fixture_starts(&layers);
        let mut lparams: Vec<f64> = lrelaxed.iter().flat_map(|r| r.params()).collect();
        c.bench_function(&format!("legacy_gd_step_{n}layers"), |b| {
            b.iter(|| {
                for (r, chunk) in lrelaxed.iter_mut().zip(lparams.chunks(PARAMS_PER_LAYER)) {
                    r.set_params(chunk);
                }
                legacy.clear();
                let mut step_leaves: Vec<LegacyVar<'_>> = Vec::new();
                let built = build_loss_in(
                    &legacy,
                    &layers,
                    &lrelaxed,
                    &hier,
                    &opts,
                    &mut SegmentPlan::disabled(),
                    &mut step_leaves,
                );
                let grads = legacy.backward(built.loss);
                let step_flat: Vec<f64> = step_leaves
                    .iter()
                    .map(|l| {
                        let g = grads.wrt(*l);
                        if g.is_finite() {
                            g
                        } else {
                            0.0
                        }
                    })
                    .collect();
                lparams = lparams
                    .iter()
                    .zip(&step_flat)
                    .map(|(p, g)| p - 1e-4 * g)
                    .collect();
                black_box(lparams[0])
            })
        });
    }
}

fn regenerate_bench_json(_c: &mut Criterion) {
    perf::run();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench, regenerate_bench_json
}
criterion_main!(benches);
