//! Figure 9 harness bench: regenerates the hardware/mapping attribution on
//! a reduced workload (printed once), then times the CoSA constant mapper.

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_search::{cosa_mapping, dosa_search, evaluate_with_cosa, GdConfig};
use dosa_workload::{unique_layers, Network};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let layers: Vec<_> = unique_layers(Network::Bert).into_iter().take(4).collect();

    let dosa = dosa_search(
        &layers,
        &hier,
        &GdConfig {
            start_points: 1,
            steps_per_start: 120,
            round_every: 60,
            ..GdConfig::default()
        },
    );
    let cosa_on_dosa_hw = evaluate_with_cosa(&layers, &dosa.best_hw, &hier);
    println!(
        "fig9 mini: DOSA full {:.3e} | DOSA HW + CoSA {:.3e} ({:.2}x gap from mapping search)",
        dosa.best_edp,
        cosa_on_dosa_hw.edp(),
        cosa_on_dosa_hw.edp() / dosa.best_edp
    );

    let hw = HardwareConfig::gemmini_default();
    c.bench_function("fig9_cosa_constant_mapper", |b| {
        b.iter(|| {
            for l in &layers {
                black_box(cosa_mapping(&l.problem, &hw, &hier));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
