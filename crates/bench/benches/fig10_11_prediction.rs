//! Figures 10/11 harness bench: trains the latency models on a reduced RTL
//! dataset and prints the Spearman correlations, then times RTL dataset
//! sample generation.

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::Hierarchy;
use dosa_nn::{spearman, TrainConfig};
use dosa_rtl::RtlConfig;
use dosa_search::{generate_rtl_dataset, LatencyModelKind, LatencyPredictor};
use dosa_workload::{dedup_layers, unique_layers, Network};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let corpus = dedup_layers(Network::TRAINING.into_iter().flat_map(unique_layers));
    let train_ds = generate_rtl_dataset(&corpus, 240, &hier, &RtlConfig::default(), 1);
    let test_ds = generate_rtl_dataset(&corpus, 60, &hier, &RtlConfig::default(), 2);
    let cfg = TrainConfig {
        epochs: 120,
        ..TrainConfig::default()
    };
    let truth: Vec<f64> = test_ds.samples.iter().map(|s| s.rtl_cycles.ln()).collect();
    for kind in [
        LatencyModelKind::Analytical,
        LatencyModelKind::DnnOnly,
        LatencyModelKind::Combined,
    ] {
        let p = LatencyPredictor::fit(kind, &train_ds, &cfg, 7);
        let pred: Vec<f64> = test_ds
            .samples
            .iter()
            .map(|s| {
                p.predict(&s.problem, &s.mapping, &s.hw, &hier)
                    .max(1.0)
                    .ln()
            })
            .collect();
        println!(
            "fig10 mini {}: spearman {:.3}",
            kind.name(),
            spearman(&pred, &truth)
        );
    }

    c.bench_function("fig10_generate_rtl_samples_10", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            black_box(generate_rtl_dataset(
                &corpus,
                10,
                &hier,
                &RtlConfig::default(),
                seed,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
