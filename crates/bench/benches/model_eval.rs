//! Microbenchmarks of the core model kernels: reference evaluation,
//! differentiable forward+backward, rounding, RTL simulation and the
//! correction-MLP forward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_autodiff::Tape;
use dosa_model::{build_loss, predict, LossOptions, RelaxedMapping};
use dosa_nn::Mlp;
use dosa_rtl::simulate_latency_default;
use dosa_search::{cosa_mapping, NUM_FEATURES};
use dosa_timeloop::{evaluate_layer, Stationarity};
use dosa_workload::{Layer, Problem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let hw = HardwareConfig::gemmini_default();
    let problem = Problem::conv("l", 3, 3, 28, 28, 128, 128, 1).unwrap();
    let mapping = cosa_mapping(&problem, &hw, &hier);

    c.bench_function("reference_evaluate_layer", |b| {
        b.iter(|| black_box(evaluate_layer(&problem, &mapping, &hw, &hier)))
    });

    let layers: Vec<Layer> = vec![
        Layer::once(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap()),
        Layer::once(Problem::matmul("b", 128, 256, 512).unwrap()),
        Layer::once(Problem::conv("c", 1, 1, 14, 14, 256, 1024, 1).unwrap()),
    ];
    let relaxed: Vec<RelaxedMapping> = layers
        .iter()
        .map(|l| RelaxedMapping::from_mapping(&cosa_mapping(&l.problem, &hw, &hier)))
        .collect();
    let tape = Tape::new();
    c.bench_function("diff_model_forward_backward_3layers", |b| {
        b.iter(|| {
            tape.clear();
            let built = build_loss(&tape, &layers, &relaxed, &hier, &LossOptions::default());
            black_box(tape.backward(built.loss))
        })
    });

    // Tape-free forward pass: the same loss evaluated on plain f64s via
    // the `Values` context, for rounding-time reference checks.
    c.bench_function("diff_model_eval_only_3layers", |b| {
        b.iter(|| black_box(predict(&layers, &relaxed, &hier, &LossOptions::default())))
    });

    c.bench_function("round_relaxed_mapping", |b| {
        let r = RelaxedMapping::identity(Stationarity::WeightStationary);
        b.iter(|| black_box(r.round(&problem)))
    });

    c.bench_function("rtl_simulate_layer", |b| {
        b.iter(|| black_box(simulate_latency_default(&problem, &mapping, &hw, &hier)))
    });

    let mut rng = StdRng::seed_from_u64(0);
    let mlp = Mlp::paper_architecture(NUM_FEATURES, &mut rng);
    let feats = vec![0.5; NUM_FEATURES];
    c.bench_function("mlp_forward", |b| b.iter(|| black_box(mlp.forward(&feats))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
