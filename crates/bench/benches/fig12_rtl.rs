//! Figure 12 harness bench: a reduced fixed-PE RTL optimization on BERT
//! (printed once, including the Table 7-style buffer choice), then times
//! one RTL-model gradient step.

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_rtl::RtlConfig;
use dosa_search::{cosa_mapping, dosa_search_rtl, evaluate_rtl, GdConfig, LatencyPredictor};
use dosa_timeloop::Mapping;
use dosa_workload::{unique_layers, Network};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let rtl_cfg = RtlConfig::default();
    let layers = unique_layers(Network::Bert);

    let default_hw = HardwareConfig::gemmini_default();
    let default_maps: Vec<Mapping> = layers
        .iter()
        .map(|l| cosa_mapping(&l.problem, &default_hw, &hier))
        .collect();
    let default = evaluate_rtl(&layers, &default_maps, &default_hw, &hier, &rtl_cfg);

    let cfg = GdConfig {
        start_points: 1,
        steps_per_start: 120,
        round_every: 60,
        fixed_pe_side: Some(16),
        ..GdConfig::default()
    };
    let res = dosa_search_rtl(&layers, &hier, &cfg, &LatencyPredictor::analytical());
    let measured = evaluate_rtl(&layers, &res.best_mappings, &res.best_hw, &hier, &rtl_cfg);
    println!(
        "fig12 mini (BERT): default {:.3e} | DOSA analytical {:.3e} ({:.2}x) | buffers {}",
        default.edp(),
        measured.edp(),
        default.edp() / measured.edp(),
        res.best_hw
    );

    c.bench_function("fig12_rtl_gd_steps_10", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = GdConfig {
                start_points: 1,
                steps_per_start: 10,
                round_every: 10,
                fixed_pe_side: Some(16),
                seed,
                ..GdConfig::default()
            };
            black_box(dosa_search_rtl(
                &layers[..2],
                &hier,
                &cfg,
                &LatencyPredictor::analytical(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
