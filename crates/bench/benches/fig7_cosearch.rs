//! Figure 7 harness bench: regenerates the three-searcher comparison on a
//! reduced BERT workload (printed once), then times one joint random-search
//! sample (the baselines' unit of work).

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::Hierarchy;
use dosa_search::{
    bayesian_search, dosa_search, random_hw, random_search, BbboConfig, GdConfig,
    RandomSearchConfig,
};
use dosa_timeloop::{evaluate_layer, fits, random_mapping};
use dosa_workload::{unique_layers, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let layers = unique_layers(Network::Bert);

    let dosa = dosa_search(
        &layers,
        &hier,
        &GdConfig {
            start_points: 1,
            steps_per_start: 120,
            round_every: 60,
            ..GdConfig::default()
        },
    );
    let random = random_search(
        &layers,
        &hier,
        &RandomSearchConfig {
            num_hw: 2,
            samples_per_hw: 60,
            seed: 0,
        },
    );
    let bo = bayesian_search(
        &layers,
        &hier,
        &BbboConfig {
            num_hw: 4,
            init_random: 2,
            samples_per_hw: 30,
            candidates: 50,
            seed: 0,
        },
    );
    println!(
        "fig7 mini (BERT): DOSA {:.3e} | Random {:.3e} | BB-BO {:.3e}",
        dosa.best_edp, random.best_edp, bo.best_edp
    );

    let mut rng = StdRng::seed_from_u64(1);
    let hw = random_hw(&mut rng);
    c.bench_function("fig7_joint_random_sample", |b| {
        b.iter(|| {
            for layer in &layers {
                let m = random_mapping(&mut rng, &layer.problem, &hier, hw.pe_side());
                if fits(&layer.problem, &m, &hw, &hier) {
                    black_box(evaluate_layer(&layer.problem, &m, &hw, &hier));
                }
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
