//! Figure 8 harness bench: regenerates the expert-baseline comparison on a
//! reduced BERT workload (printed once), then times a random-pruned mapper
//! search on one baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::{all_baselines, Hierarchy};
use dosa_search::{dosa_search, evaluate_with_random_mapper, GdConfig};
use dosa_timeloop::random_pruned_search;
use dosa_workload::{unique_layers, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let hier = Hierarchy::gemmini();
    let layers = unique_layers(Network::Bert);

    for baseline in all_baselines() {
        let perf = evaluate_with_random_mapper(&layers, &baseline.config, &hier, 100, 3);
        println!("fig8 mini {}: EDP {:.3e}", baseline.name, perf.edp());
    }
    let dosa = dosa_search(
        &layers,
        &hier,
        &GdConfig {
            start_points: 1,
            steps_per_start: 120,
            round_every: 60,
            ..GdConfig::default()
        },
    );
    println!("fig8 mini Gemmini DOSA: EDP {:.3e}", dosa.best_edp);

    let eyeriss = all_baselines()[0];
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("fig8_random_pruned_mapper_50", |b| {
        b.iter(|| {
            black_box(random_pruned_search(
                &mut rng,
                &layers[0].problem,
                &eyeriss.config,
                &hier,
                50,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
