//! Figure 4 harness bench: regenerates the correlation statistics at quick
//! scale (printed once), then times one correlation sample (reference +
//! differentiable evaluation of a random mapping).

use criterion::{criterion_group, criterion_main, Criterion};
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_autodiff::Tape;
use dosa_bench::{fig4, Scale};
use dosa_search::cosa_mapping;
use dosa_timeloop::evaluate_layer;
use dosa_workload::Problem;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let out = std::env::temp_dir().join("dosa_bench_out");
    let res = fig4::run(Scale::Quick, 0, &out);
    assert!(res.latency.mae_pct < 0.01);

    let hier = Hierarchy::gemmini();
    let hw = HardwareConfig::gemmini_default();
    let problem = Problem::conv("l", 3, 3, 28, 28, 128, 128, 1).unwrap();
    let mapping = cosa_mapping(&problem, &hw, &hier);
    let tape = Tape::new();
    c.bench_function("fig4_one_correlation_sample", |b| {
        b.iter(|| {
            let r = evaluate_layer(&problem, &mapping, &hw, &hier);
            let d = fig4::diff_model_eval(&tape, &problem, &mapping, &hw, &hier);
            black_box((r, d))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
