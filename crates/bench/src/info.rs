//! Informational tables of the paper (Tables 1–6) printed from the live
//! configuration so they stay in sync with the code.

use crate::plot::table;
use dosa_accel::{EnergyModel, HardwareConfig, Hierarchy};
use dosa_workload::{unique_layers, Network, Tensor};

/// Print Table 1 (the DSE-method taxonomy; informational).
pub fn table1() {
    println!("Table 1 — state-of-the-art accelerator DSE methods");
    let rows = vec![
        vec![
            "Spotlight".into(),
            "BB-BO".into(),
            "BB-BO".into(),
            "two-loop".into(),
        ],
        vec![
            "VAESA".into(),
            "ILP (CoSA)".into(),
            "VAE+BB-BO/GD".into(),
            "two-loop".into(),
        ],
        vec![
            "FAST".into(),
            "BB-LCS+ILP".into(),
            "BB-LCS".into(),
            "two-loop".into(),
        ],
        vec![
            "HASCO".into(),
            "RL".into(),
            "BB-BO".into(),
            "two-loop".into(),
        ],
        vec![
            "NAAS".into(),
            "BB-ES".into(),
            "BB-ES".into(),
            "two-loop".into(),
        ],
        vec![
            "MAGNet".into(),
            "Heuristics".into(),
            "BB-BO".into(),
            "two-loop".into(),
        ],
        vec![
            "DiGamma".into(),
            "BB-GA".into(),
            "(inferred)".into(),
            "one-loop".into(),
        ],
        vec![
            "Interstellar".into(),
            "Heuristics".into(),
            "(inferred)".into(),
            "one-loop".into(),
        ],
        vec![
            "DOSA (this repo)".into(),
            "GD".into(),
            "(inferred)".into(),
            "one-loop".into(),
        ],
    ];
    println!(
        "{}",
        table(
            &["method", "mapspace search", "hardware search", "loops"],
            &rows
        )
    );
}

/// Print Table 2 (accelerator under study) and Table 4 (the B matrix),
/// evaluated for a configuration.
pub fn table2(hw: &HardwareConfig) {
    let hier = Hierarchy::gemmini();
    let energy = EnergyModel::for_config(hw);
    println!("Table 2 — accelerator under study ({hw})");
    let mut rows = vec![vec![
        "PE (MAC)".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.3}", energy.epa_mac()),
    ]];
    for i in 0..dosa_accel::NUM_LEVELS {
        rows.push(vec![
            hier.level(i).name.to_string(),
            i.to_string(),
            format!("{:.0}", hier.bandwidth(i, hw)),
            format!("{:.3}", energy.epa(i)),
        ]);
    }
    println!(
        "{}",
        table(
            &["component", "level", "bandwidth (words/cyc)", "EPA (pJ)"],
            &rows
        )
    );

    println!("Table 4 — tensors stored per memory level (B matrix)");
    let rows: Vec<Vec<String>> = (0..dosa_accel::NUM_LEVELS)
        .map(|i| {
            let l = hier.level(i);
            let mut row = vec![format!("{} {}", l.name, i)];
            for t in Tensor::ALL {
                row.push(if l.stores(t) {
                    "yes".into()
                } else {
                    "-".into()
                });
            }
            row
        })
        .collect();
    println!("{}", table(&["level", "W", "I", "O"], &rows));
}

/// Print Table 3 (notation) and Table 5 (search algorithms per decision).
pub fn table3_and_5() {
    println!("Table 3 — notation");
    let rows = vec![
        vec!["i".into(), "memory level index (0..=3)".into()],
        vec!["d".into(), "problem dimension index (R,S,P,Q,C,K,N)".into()],
        vec!["k".into(), "spatial / temporal index".into()],
        vec!["t".into(), "data tensor index (W, I, O)".into()],
    ];
    println!("{}", table(&["symbol", "meaning"], &rows));

    println!("Table 5 — search algorithm per design decision");
    let rows = vec![
        vec!["Temporal tiling factors".into(), "gradient descent".into()],
        vec!["Spatial tiling factors".into(), "gradient descent".into()],
        vec![
            "Spatial tiling dimensions".into(),
            "constant (WS C-K)".into(),
        ],
        vec!["Tensor bypass".into(), "constant (Table 4)".into()],
        vec![
            "Loop ordering".into(),
            "exhaustive (WS/IS/OS per rounding)".into(),
        ],
    ];
    println!("{}", table(&["decision", "algorithm"], &rows));
}

/// Print Table 6 (workloads) from the live layer tables.
pub fn table6() {
    println!("Table 6 — workloads (unique layers after dedup; total GMACs)");
    let mut rows = Vec::new();
    for (role, nets) in [
        ("training", Network::TRAINING.as_slice()),
        ("target", Network::TARGETS.as_slice()),
    ] {
        for &n in nets {
            let layers = unique_layers(n);
            let macs: u64 = layers.iter().map(|l| l.problem.macs() * l.count).sum();
            rows.push(vec![
                n.name().to_string(),
                role.to_string(),
                layers.len().to_string(),
                format!("{:.2}", macs as f64 / 1e9),
            ]);
        }
    }
    println!(
        "{}",
        table(&["network", "role", "unique layers", "GMACs"], &rows)
    );
}

/// Print every informational table.
pub fn all() {
    table1();
    table2(&HardwareConfig::gemmini_default());
    table3_and_5();
    table6();
}
