//! Figure 12 + Table 7: optimizing Gemmini-RTL with the three latency
//! models, against the hand-tuned default configuration and mapper.
//!
//! PE dimensions are fixed at 16×16; buffer sizes and mappings are
//! searched; latency is measured on the RTL simulator and energy with the
//! reference model. Paper: analytical-only 1.48×, DNN-only 1.66×, combined
//! 1.82× EDP improvement over the default; Table 7 shows the combined
//! model upsizing both buffers (acc 64–196 KB, spad 251–322 KB vs the
//! default 32/128).

use crate::fig10_11::train_predictors;
use crate::plot::{geomean, table, write_csv};
use crate::scale::Scale;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_rtl::RtlConfig;
use dosa_search::{cosa_mapping, dosa_search_rtl, evaluate_rtl, GdConfig};
use dosa_timeloop::Mapping;
use dosa_workload::{unique_layers, Network};
use std::path::Path;

/// One workload's Figure 12 outcome.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Workload evaluated.
    pub network: Network,
    /// Measured EDP of the default configuration + default mapper.
    pub default_edp: f64,
    /// Measured EDP per model: analytical, DNN-only, combined.
    pub model_edps: [f64; 3],
    /// The hardware selected by the combined model (Table 7).
    pub combined_hw: HardwareConfig,
}

/// Full Figure 12 result.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Per-workload rows.
    pub rows: Vec<Fig12Row>,
}

/// Run Figure 12 (and print Table 7).
pub fn run(scale: Scale, seed: u64, out_dir: &Path) -> Fig12Result {
    let hier = Hierarchy::gemmini();
    let rtl_cfg = RtlConfig::default();
    let (predictors, _) = train_predictors(scale, seed, &hier);

    let mut rows = Vec::new();
    for (wi, network) in Network::TARGETS.into_iter().enumerate() {
        let layers = unique_layers(network);

        // Default: hand-tuned 16x16 / 32 KB / 128 KB with the heuristic
        // mapper (our CoSA substitute plays Gemmini's default mapper role).
        let default_hw = HardwareConfig::gemmini_default();
        let default_mappings: Vec<Mapping> = layers
            .iter()
            .map(|l| cosa_mapping(&l.problem, &default_hw, &hier))
            .collect();
        let default_perf = evaluate_rtl(&layers, &default_mappings, &default_hw, &hier, &rtl_cfg);

        let mut model_edps = [0.0f64; 3];
        let mut combined_hw = default_hw;
        for (pi, predictor) in predictors.iter().enumerate() {
            let cfg = GdConfig {
                fixed_pe_side: Some(16),
                seed: seed + (wi * 3 + pi) as u64,
                ..scale.gd_main(seed + (wi * 3 + pi) as u64)
            };
            let res = dosa_search_rtl(&layers, &hier, &cfg, predictor);
            let measured = evaluate_rtl(&layers, &res.best_mappings, &res.best_hw, &hier, &rtl_cfg);
            model_edps[pi] = measured.edp();
            if pi == 2 {
                combined_hw = res.best_hw;
            }
        }

        rows.push(Fig12Row {
            network,
            default_edp: default_perf.edp(),
            model_edps,
            combined_hw,
        });
    }

    // --- Figure 12 table ---------------------------------------------------
    let mut fig_rows = Vec::new();
    let mut csv = Vec::new();
    for r in &rows {
        fig_rows.push(vec![
            r.network.name().to_string(),
            "1.000".to_string(),
            format!("{:.3}", r.model_edps[0] / r.default_edp),
            format!("{:.3}", r.model_edps[1] / r.default_edp),
            format!("{:.3}", r.model_edps[2] / r.default_edp),
        ]);
        csv.push(vec![
            r.network.name().to_string(),
            format!("{:.6e}", r.default_edp),
            format!("{:.6e}", r.model_edps[0]),
            format!("{:.6e}", r.model_edps[1]),
            format!("{:.6e}", r.model_edps[2]),
        ]);
    }
    let improvements = |idx: usize| -> f64 {
        geomean(
            &rows
                .iter()
                .map(|r| r.default_edp / r.model_edps[idx])
                .collect::<Vec<_>>(),
        )
    };
    fig_rows.push(vec![
        "GEOMEAN improvement".to_string(),
        "1.00x".to_string(),
        format!("{:.2}x", improvements(0)),
        format!("{:.2}x", improvements(1)),
        format!("{:.2}x", improvements(2)),
    ]);
    write_csv(
        out_dir,
        "fig12_rtl.csv",
        &[
            "network",
            "default_edp",
            "analytical_edp",
            "dnn_only_edp",
            "combined_edp",
        ],
        &csv,
    );
    println!("Figure 12 — Gemmini-RTL optimization (EDP normalized to the default config)");
    println!(
        "{}",
        table(
            &[
                "workload",
                "Default",
                "Analytical",
                "DNN-Only",
                "Analytical+DNN"
            ],
            &fig_rows
        )
    );
    println!("  paper: analytical 1.48x, DNN-only 1.66x, combined 1.82x improvement\n");

    // --- Table 7 -------------------------------------------------------------
    let mut t7 = vec![vec![
        "Gemmini Default".to_string(),
        "32".to_string(),
        "128".to_string(),
    ]];
    let mut t7_csv = Vec::new();
    for r in &rows {
        t7.push(vec![
            r.network.name().to_string(),
            format!("{:.0}", r.combined_hw.acc_kb()),
            format!("{:.0}", r.combined_hw.spad_kb()),
        ]);
        t7_csv.push(vec![
            r.network.name().to_string(),
            format!("{:.0}", r.combined_hw.acc_kb()),
            format!("{:.0}", r.combined_hw.spad_kb()),
        ]);
    }
    write_csv(
        out_dir,
        "table7_buffers.csv",
        &["network", "accumulator_kb", "scratchpad_kb"],
        &t7_csv,
    );
    println!("Table 7 — buffer sizes selected by DOSA Analytical+DNN");
    println!(
        "{}",
        table(
            &["configuration", "Accumulator (KB)", "Scratchpad (KB)"],
            &t7
        )
    );
    println!("  paper: acc 64-196 KB, spad 251-322 KB (both well above the default)\n");

    Fig12Result { rows }
}
