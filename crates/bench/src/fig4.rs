//! Figure 4: error of the DOSA differentiable model against the reference
//! (Timeloop-role) model over random Gemmini configurations and mappings.
//!
//! The paper reports MAE 0.01% (latency), 0.18% (energy), 0.18% (EDP),
//! 98.3% of points within 1%, and up to ~12% error on very small layers
//! caused by Timeloop's per-block DRAM energy ceiling.

use crate::plot::{table, write_csv};
use crate::scale::Scale;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_autodiff::Tape;
use dosa_model::{layer_perf_vars, FactorVars, HwVars};
use dosa_search::random_hw;
use dosa_timeloop::{evaluate_layer, fits, random_mapping};
use dosa_workload::{correlation_corpus, Problem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Per-metric correlation statistics.
#[derive(Debug, Clone, Copy)]
pub struct MetricStats {
    /// Mean absolute error in percent.
    pub mae_pct: f64,
    /// Fraction of samples within 1% of the reference.
    pub within_1pct: f64,
    /// Largest absolute error in percent.
    pub max_abs_pct: f64,
}

fn stats(errors_pct: &[f64]) -> MetricStats {
    let n = errors_pct.len().max(1) as f64;
    MetricStats {
        mae_pct: errors_pct.iter().map(|e| e.abs()).sum::<f64>() / n,
        within_1pct: errors_pct.iter().filter(|e| e.abs() <= 1.0).count() as f64 / n,
        max_abs_pct: errors_pct.iter().fold(0.0f64, |a, e| a.max(e.abs())),
    }
}

/// Result of the correlation study.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Latency error statistics.
    pub latency: MetricStats,
    /// Energy error statistics.
    pub energy: MetricStats,
    /// EDP error statistics.
    pub edp: MetricStats,
    /// Number of (config, layer, mapping) samples evaluated.
    pub samples: usize,
}

/// Evaluate one integer mapping with the differentiable model on fixed
/// hardware, returning `(latency, energy, edp)`.
pub fn diff_model_eval(
    tape: &Tape,
    problem: &Problem,
    mapping: &dosa_timeloop::Mapping,
    hw: &HardwareConfig,
    hier: &Hierarchy,
) -> (f64, f64, f64) {
    tape.clear();
    let fv = FactorVars::from_mapping(tape, mapping);
    let hwv = HwVars::fixed(tape, hw);
    let perf = layer_perf_vars(tape, problem, &fv, &hwv, hier);
    let (l, e) = (perf.latency.value(), perf.energy_uj.value());
    (l, e, l * e)
}

/// Run the Figure 4 correlation study.
pub fn run(scale: Scale, seed: u64, out_dir: &Path) -> Fig4Result {
    let (n_configs, mappings_per_config) = scale.fig4();
    let corpus = correlation_corpus();
    let hier = Hierarchy::gemmini();
    let mut rng = StdRng::seed_from_u64(seed);
    let tape = Tape::new();

    let mut err_latency = Vec::new();
    let mut err_energy = Vec::new();
    let mut err_edp = Vec::new();
    let mut rows = Vec::new();

    for _ in 0..n_configs {
        let hw = random_hw(&mut rng);
        let mut produced = 0usize;
        let mut attempts = 0usize;
        let mut layer_idx = 0usize;
        // Sample layers approximately evenly, skipping (layer, mapping)
        // pairs that do not fit this configuration.
        while produced < mappings_per_config && attempts < 30 * mappings_per_config {
            attempts += 1;
            let layer = &corpus[layer_idx % corpus.len()];
            layer_idx += 1;
            let m = random_mapping(&mut rng, &layer.problem, &hier, hw.pe_side());
            if !fits(&layer.problem, &m, &hw, &hier) {
                continue;
            }
            produced += 1;
            let reference = evaluate_layer(&layer.problem, &m, &hw, &hier);
            let (dl, de, dedp) = diff_model_eval(&tape, &layer.problem, &m, &hw, &hier);
            let el = (dl - reference.latency_cycles) / reference.latency_cycles * 100.0;
            let ee = (de - reference.energy_uj) / reference.energy_uj * 100.0;
            let eedp = (dedp - reference.edp()) / reference.edp() * 100.0;
            err_latency.push(el);
            err_energy.push(ee);
            err_edp.push(eedp);
            rows.push(vec![
                layer.problem.name().to_string(),
                format!("{:.6e}", reference.latency_cycles),
                format!("{:.6e}", reference.energy_uj),
                format!("{el:.4}"),
                format!("{ee:.4}"),
                format!("{eedp:.4}"),
            ]);
        }
    }

    write_csv(
        out_dir,
        "fig4_correlation.csv",
        &[
            "layer",
            "ref_latency_cycles",
            "ref_energy_uj",
            "latency_err_pct",
            "energy_err_pct",
            "edp_err_pct",
        ],
        &rows,
    );

    let result = Fig4Result {
        latency: stats(&err_latency),
        energy: stats(&err_energy),
        edp: stats(&err_edp),
        samples: err_edp.len(),
    };

    println!("Figure 4 — differentiable model vs reference model");
    println!(
        "  {} samples across {} random configs, {} unique layers",
        result.samples,
        n_configs,
        corpus.len()
    );
    let fmt = |s: &MetricStats| {
        vec![
            format!("{:.4}%", s.mae_pct),
            format!("{:.1}%", s.within_1pct * 100.0),
            format!("{:.2}%", s.max_abs_pct),
        ]
    };
    let body = vec![
        std::iter::once("Latency".to_string())
            .chain(fmt(&result.latency))
            .collect(),
        std::iter::once("Energy".to_string())
            .chain(fmt(&result.energy))
            .collect(),
        std::iter::once("EDP".to_string())
            .chain(fmt(&result.edp))
            .collect(),
    ];
    println!(
        "{}",
        table(&["metric", "MAE", "within 1%", "max |err|"], &body)
    );
    println!("  paper: MAE latency 0.01%, energy 0.18%, EDP 0.18%; 98.3% within 1%; up to 12% on small layers\n");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_is_tight() {
        let dir = std::env::temp_dir().join("dosa_fig4_test");
        let res = run(Scale::Quick, 42, &dir);
        assert!(res.samples > 100);
        // Latency must be essentially exact; energy within a few percent on
        // average (DRAM block ceiling only).
        assert!(
            res.latency.mae_pct < 0.01,
            "latency MAE {}",
            res.latency.mae_pct
        );
        assert!(
            res.energy.mae_pct < 5.0,
            "energy MAE {}",
            res.energy.mae_pct
        );
        assert!(
            res.edp.within_1pct > 0.5,
            "within1% {}",
            res.edp.within_1pct
        );
        // The diff model never over-counts DRAM energy: errors are <= 0.
        assert!(res.energy.max_abs_pct < 100.0);
    }
}
