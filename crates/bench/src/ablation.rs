//! Ablations of DOSA's design choices beyond the paper's figures:
//!
//! * **rounding frequency** (§5.3.2: round every N steps — too often wastes
//!   descent, too rarely drifts from the valid mapspace),
//! * **invalid-mapping penalty** (Eq. 18 on/off),
//! * **learning rate** of the Adam descent,
//! * **start-point budget split** (many short descents vs. few long ones
//!   at a fixed total sample budget),
//! * **exhaustive-optimum gap**: how close the GD + rounding pipeline gets
//!   to the brute-force best mapping on an enumerable layer.
//!
//! Run with `repro ablation`.

use crate::plot::{table, write_csv};
use crate::scale::Scale;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_search::{dosa_search, GdConfig};
use dosa_timeloop::exhaustive_best;
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::path::Path;

fn bert_subset() -> Vec<Layer> {
    unique_layers(Network::Bert)
}

fn base_cfg(scale: Scale, seed: u64) -> GdConfig {
    match scale {
        Scale::Quick => GdConfig {
            start_points: 2,
            steps_per_start: 240,
            round_every: 80,
            seed,
            ..GdConfig::default()
        },
        Scale::Paper => GdConfig {
            start_points: 4,
            steps_per_start: 900,
            round_every: 300,
            seed,
            ..GdConfig::default()
        },
    }
}

/// Ablation: rounding frequency sweep at a fixed step budget.
pub fn rounding_frequency(scale: Scale, seed: u64) -> Vec<(usize, f64)> {
    let layers = bert_subset();
    let hier = Hierarchy::gemmini();
    let base = base_cfg(scale, seed);
    let mut rows = Vec::new();
    for divisor in [1usize, 3, 6, 12] {
        let cfg = GdConfig {
            round_every: (base.steps_per_start / divisor).max(1),
            ..base
        };
        let res = dosa_search(&layers, &hier, &cfg);
        rows.push((cfg.round_every, res.best_edp));
    }
    rows
}

/// Ablation: learning-rate sweep.
pub fn learning_rate(scale: Scale, seed: u64) -> Vec<(f64, f64)> {
    let layers = bert_subset();
    let hier = Hierarchy::gemmini();
    let base = base_cfg(scale, seed);
    [0.005, 0.02, 0.04, 0.1, 0.3]
        .into_iter()
        .map(|lr| {
            let cfg = GdConfig {
                learning_rate: lr,
                ..base
            };
            (lr, dosa_search(&layers, &hier, &cfg).best_edp)
        })
        .collect()
}

/// Ablation: budget split between start points and steps per start, at a
/// constant total number of gradient steps.
pub fn startpoint_split(scale: Scale, seed: u64) -> Vec<(usize, usize, f64)> {
    let layers = bert_subset();
    let hier = Hierarchy::gemmini();
    let base = base_cfg(scale, seed);
    let total = base.start_points * base.steps_per_start;
    let mut rows = Vec::new();
    for starts in [1usize, 2, 4, 8] {
        let steps = (total / starts).max(1);
        let cfg = GdConfig {
            start_points: starts,
            steps_per_start: steps,
            round_every: (steps / 3).max(1),
            ..base
        };
        let res = dosa_search(&layers, &hier, &cfg);
        rows.push((starts, steps, res.best_edp));
    }
    rows
}

/// Ablation: gap between the GD pipeline and the exhaustive optimum on an
/// enumerable layer with fixed hardware. Returns `(gd_edp, optimal_edp)`.
pub fn optimality_gap(scale: Scale, seed: u64) -> (f64, f64) {
    let problem = Problem::conv("enum", 1, 1, 4, 4, 16, 16, 1).expect("valid");
    let hier = Hierarchy::gemmini();
    let hw = HardwareConfig::new(8, 4.0, 8.0).expect("valid");
    let (_, best) = exhaustive_best(&problem, &hw, &hier).expect("enumerable");

    // One-loop GD constrained to this hardware scale via the PE pin; the
    // mapping it finds is then re-evaluated on the fixed hw.
    let layers = vec![Layer::once(problem.clone())];
    let cfg = GdConfig {
        fixed_pe_side: Some(8),
        ..base_cfg(scale, seed)
    };
    let res = dosa_search(&layers, &hier, &cfg);
    let perf = dosa_timeloop::evaluate_layer(&problem, &res.best_mappings[0], &hw, &hier);
    (perf.edp(), best.edp())
}

/// Run and print every ablation.
pub fn run(scale: Scale, seed: u64, out_dir: &Path) {
    println!("Ablation — rounding frequency (BERT, fixed step budget)");
    let rf = rounding_frequency(scale, seed);
    let rows: Vec<Vec<String>> = rf
        .iter()
        .map(|(n, e)| vec![format!("every {n} steps"), format!("{e:.3e}")])
        .collect();
    println!("{}", table(&["rounding", "best EDP"], &rows));
    write_csv(
        out_dir,
        "ablation_rounding.csv",
        &["round_every", "best_edp"],
        &rf.iter()
            .map(|(n, e)| vec![n.to_string(), format!("{e:.6e}")])
            .collect::<Vec<_>>(),
    );

    println!("Ablation — Adam learning rate");
    let lr = learning_rate(scale, seed);
    let rows: Vec<Vec<String>> = lr
        .iter()
        .map(|(l, e)| vec![format!("{l}"), format!("{e:.3e}")])
        .collect();
    println!("{}", table(&["learning rate", "best EDP"], &rows));
    write_csv(
        out_dir,
        "ablation_lr.csv",
        &["learning_rate", "best_edp"],
        &lr.iter()
            .map(|(l, e)| vec![l.to_string(), format!("{e:.6e}")])
            .collect::<Vec<_>>(),
    );

    println!("Ablation — start points vs steps (constant budget)");
    let sp = startpoint_split(scale, seed);
    let rows: Vec<Vec<String>> = sp
        .iter()
        .map(|(s, st, e)| vec![format!("{s} x {st}"), format!("{e:.3e}")])
        .collect();
    println!("{}", table(&["starts x steps", "best EDP"], &rows));
    write_csv(
        out_dir,
        "ablation_starts.csv",
        &["start_points", "steps", "best_edp"],
        &sp.iter()
            .map(|(s, st, e)| vec![s.to_string(), st.to_string(), format!("{e:.6e}")])
            .collect::<Vec<_>>(),
    );

    println!("Ablation — GD vs exhaustive optimum (enumerable layer, fixed HW)");
    let (gd, opt) = optimality_gap(scale, seed);
    println!(
        "  GD pipeline: {gd:.4e}  exhaustive optimum: {opt:.4e}  gap: {:.2}x\n",
        gd / opt
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gd_lands_near_the_exhaustive_optimum() {
        let (gd, opt) = optimality_gap(Scale::Quick, 3);
        assert!(gd >= opt * (1.0 - 1e-12), "gd beat the oracle?");
        assert!(
            gd <= opt * 5.0,
            "gd {gd} is {:.1}x off optimum {opt}",
            gd / opt
        );
    }

    #[test]
    fn rounding_sweep_returns_all_points() {
        // Smoke-level: a smaller custom sweep so the test stays fast.
        let layers = vec![Layer::once(
            Problem::conv("s", 1, 1, 8, 8, 16, 16, 1).unwrap(),
        )];
        let hier = Hierarchy::gemmini();
        for divisor in [1usize, 2] {
            let cfg = GdConfig {
                start_points: 1,
                steps_per_start: 40,
                round_every: (40 / divisor).max(1),
                ..GdConfig::default()
            };
            let res = dosa_search(&layers, &hier, &cfg);
            assert!(res.best_edp.is_finite());
        }
    }
}
