//! Hot-path performance trajectory: measured medians for tape recording,
//! the backward sweep, and a full gradient-descent step at several network
//! depths, on both the current SoA tape and the pre-refactor
//! [`LegacyTape`] — written to `BENCH_6.json` at the repository root.
//!
//! The legacy path runs the *same* generic loss builder
//! ([`build_loss_in`]) on the `RefCell`-based AoS tape with the
//! allocation pattern of the pre-PR descent loop (fresh leaf/gradient
//! vectors every step), so `gd_step_speedup` isolates exactly what this
//! refactor changed: single-borrow SoA recording, one-node fused
//! scalar ops, the segmented sweep on reused scratch, and
//! allocation-free parameter updates.
//!
//! `repro bench` regenerates the file; `repro --smoke bench` re-runs a
//! seconds-scale measurement to prove the kernels still execute, then
//! validates the checked-in file's schema without overwriting it.

use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_autodiff::{LegacyTape, LegacyVar, SegScratch, SegmentPlan, Tape, Var};
use dosa_model::{build_loss_in, LossOptions, RelaxedMapping};
use dosa_search::cosa_mapping;
use dosa_workload::{Layer, Problem};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The network depths each kernel is measured at.
pub const LAYER_COUNTS: [usize; 3] = [1, 4, 16];

/// Identifies the JSON layout; bumped on any incompatible change.
pub const SCHEMA: &str = "dosa-hotpath-bench-v1";

/// Measured medians (nanoseconds per operation) at one network depth.
#[derive(Debug, Clone, Copy)]
pub struct PerfRow {
    /// Number of layers in the measured loss.
    pub layers: usize,
    /// Forward recording of the whole loss on the SoA tape.
    pub record_ns: f64,
    /// Serial backward sweep on reused scratch (SoA tape).
    pub sweep_ns: f64,
    /// Full descent step: set params, record, sweep, gather, update.
    pub gd_step_ns: f64,
    /// Forward recording on the pre-refactor AoS tape.
    pub legacy_record_ns: f64,
    /// Allocating backward sweep on the pre-refactor tape.
    pub legacy_sweep_ns: f64,
    /// Full descent step with pre-refactor tape and allocations.
    pub legacy_gd_step_ns: f64,
}

impl PerfRow {
    /// Legacy-over-new ratio for the full descent step.
    pub fn gd_step_speedup(&self) -> f64 {
        self.legacy_gd_step_ns / self.gd_step_ns
    }
}

/// One full measurement run across all [`LAYER_COUNTS`].
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// One row per measured network depth.
    pub rows: Vec<PerfRow>,
}

/// A cyclic mix of convolution and matmul layers, `n` deep — the fixture
/// shared by this module and the Criterion benches.
pub fn fixture_layers(n: usize) -> Vec<Layer> {
    let base = [
        Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(),
        Problem::matmul("b", 128, 256, 512).unwrap(),
        Problem::conv("c", 1, 1, 14, 14, 256, 128, 1).unwrap(),
        Problem::conv("d", 3, 3, 14, 14, 128, 256, 2).unwrap(),
    ];
    (0..n)
        .map(|i| Layer::once(base[i % base.len()].clone()))
        .collect()
}

/// Deterministic CoSA start points for [`fixture_layers`] on the default
/// Gemmini configuration.
pub fn fixture_starts(layers: &[Layer]) -> Vec<RelaxedMapping> {
    let hw = HardwareConfig::gemmini_default();
    let hier = Hierarchy::gemmini();
    layers
        .iter()
        .map(|l| RelaxedMapping::from_mapping(&cosa_mapping(&l.problem, &hw, &hier)))
        .collect()
}

/// Median nanoseconds per call of `f`, over `samples` timed batches of
/// `batch` calls each.
fn median_ns<F: FnMut()>(samples: usize, batch: usize, mut f: F) -> f64 {
    // One untimed warm-up batch populates caches and scratch buffers.
    for _ in 0..batch {
        f();
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.total_cmp(b));
    per_call[per_call.len() / 2]
}

/// Measure every kernel at one depth. `samples`/`batch` control how long
/// the run takes; the smoke mode passes small values.
fn measure_depth(n: usize, samples: usize, batch: usize) -> PerfRow {
    let layers = fixture_layers(n);
    let relaxed = fixture_starts(&layers);
    let hier = Hierarchy::gemmini();
    let opts = LossOptions::default();

    // --- SoA tape: record / sweep / full step, all on reused buffers. ---
    let tape = Tape::new();
    let mut plan = SegmentPlan::new();
    let mut leaves: Vec<Var<'_>> = Vec::new();
    let mut scratch = SegScratch::new();

    let record_ns = median_ns(samples, batch, || {
        tape.clear();
        plan.clear();
        leaves.clear();
        let built = build_loss_in(
            &tape,
            &layers,
            &relaxed,
            &hier,
            &opts,
            &mut plan,
            &mut leaves,
        );
        std::hint::black_box(built.loss.value());
    });

    tape.clear();
    plan.clear();
    leaves.clear();
    let built = build_loss_in(
        &tape,
        &layers,
        &relaxed,
        &hier,
        &opts,
        &mut plan,
        &mut leaves,
    );
    let loss = built.loss;
    let sweep_ns = median_ns(samples, batch, || {
        let view = tape.backward_segmented(loss, &plan, 1, &mut scratch);
        std::hint::black_box(view.wrt(leaves[0]));
    });

    let mut params: Vec<f64> = Vec::new();
    let mut relaxed_step = relaxed.clone();
    for r in &relaxed_step {
        r.params_into(&mut params);
    }
    let mut flat: Vec<f64> = Vec::new();
    let gd_step_ns = median_ns(samples, batch, || {
        use dosa_model::PARAMS_PER_LAYER;
        for (r, chunk) in relaxed_step.iter_mut().zip(params.chunks(PARAMS_PER_LAYER)) {
            r.set_params(chunk);
        }
        tape.clear();
        plan.clear();
        leaves.clear();
        let built = build_loss_in(
            &tape,
            &layers,
            &relaxed_step,
            &hier,
            &opts,
            &mut plan,
            &mut leaves,
        );
        let view = tape.backward_segmented(built.loss, &plan, 1, &mut scratch);
        view.wrt_into(&leaves, &mut flat);
        for (p, g) in params.iter_mut().zip(&flat) {
            if g.is_finite() {
                *p -= 1e-4 * g;
            }
        }
        std::hint::black_box(params[0]);
    });

    // --- Legacy AoS tape: same loss, pre-PR allocation pattern. ---
    let legacy = LegacyTape::new();
    let mut lleaves: Vec<LegacyVar<'_>> = Vec::new();

    let legacy_record_ns = median_ns(samples, batch, || {
        legacy.clear();
        lleaves.clear();
        let built = build_loss_in(
            &legacy,
            &layers,
            &relaxed,
            &hier,
            &opts,
            &mut SegmentPlan::disabled(),
            &mut lleaves,
        );
        std::hint::black_box(built.loss.value());
    });

    legacy.clear();
    lleaves.clear();
    let lbuilt = build_loss_in(
        &legacy,
        &layers,
        &relaxed,
        &hier,
        &opts,
        &mut SegmentPlan::disabled(),
        &mut lleaves,
    );
    let lloss = lbuilt.loss;
    let legacy_sweep_ns = median_ns(samples, batch, || {
        let grads = legacy.backward(lloss);
        std::hint::black_box(grads.wrt(lleaves[0]));
    });

    let mut lrelaxed_step = relaxed.clone();
    let mut lparams: Vec<f64> = lrelaxed_step.iter().flat_map(|r| r.params()).collect();
    let legacy_gd_step_ns = median_ns(samples, batch, || {
        use dosa_model::PARAMS_PER_LAYER;
        for (r, chunk) in lrelaxed_step
            .iter_mut()
            .zip(lparams.chunks(PARAMS_PER_LAYER))
        {
            r.set_params(chunk);
        }
        legacy.clear();
        let mut step_leaves: Vec<LegacyVar<'_>> = Vec::new();
        let built = build_loss_in(
            &legacy,
            &layers,
            &lrelaxed_step,
            &hier,
            &opts,
            &mut SegmentPlan::disabled(),
            &mut step_leaves,
        );
        let grads = legacy.backward(built.loss);
        let step_flat: Vec<f64> = step_leaves
            .iter()
            .map(|l| {
                let g = grads.wrt(*l);
                if g.is_finite() {
                    g
                } else {
                    0.0
                }
            })
            .collect();
        lparams = lparams
            .iter()
            .zip(&step_flat)
            .map(|(p, g)| p - 1e-4 * g)
            .collect();
        std::hint::black_box(lparams[0]);
    });

    PerfRow {
        layers: n,
        record_ns,
        sweep_ns,
        gd_step_ns,
        legacy_record_ns,
        legacy_sweep_ns,
        legacy_gd_step_ns,
    }
}

/// Measure all depths. `quick` trades precision for seconds-scale runtime
/// (used by the CI smoke); the full mode is what `BENCH_6.json` records.
pub fn measure(quick: bool) -> PerfReport {
    let (samples, batch) = if quick { (5, 4) } else { (21, 16) };
    PerfReport {
        rows: LAYER_COUNTS
            .iter()
            .map(|&n| measure_depth(n, samples, batch))
            .collect(),
    }
}

impl PerfReport {
    /// Hand-rolled JSON encoding (the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str("  \"unit\": \"ns_per_op_median\",\n");
        s.push_str("  \"results\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"layers\": {}, \"record_ns\": {:.1}, \"sweep_ns\": {:.1}, \
                 \"gd_step_ns\": {:.1}, \"legacy_record_ns\": {:.1}, \
                 \"legacy_sweep_ns\": {:.1}, \"legacy_gd_step_ns\": {:.1}, \
                 \"gd_step_speedup\": {:.3}}}{}\n",
                r.layers,
                r.record_ns,
                r.sweep_ns,
                r.gd_step_ns,
                r.legacy_record_ns,
                r.legacy_sweep_ns,
                r.legacy_gd_step_ns,
                r.gd_step_speedup(),
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Print the report as an aligned terminal table.
    pub fn print(&self) {
        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>14} {:>14} {:>16} {:>9}",
            "layers",
            "record_ns",
            "sweep_ns",
            "gd_step_ns",
            "legacy_rec_ns",
            "legacy_swp_ns",
            "legacy_step_ns",
            "speedup"
        );
        for r in &self.rows {
            println!(
                "{:>7} {:>12.1} {:>12.1} {:>12.1} {:>14.1} {:>14.1} {:>16.1} {:>8.2}x",
                r.layers,
                r.record_ns,
                r.sweep_ns,
                r.gd_step_ns,
                r.legacy_record_ns,
                r.legacy_sweep_ns,
                r.legacy_gd_step_ns,
                r.gd_step_speedup()
            );
        }
    }
}

/// Where the perf trajectory lives: `BENCH_6.json` at the repository root.
pub fn bench_json_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json")
}

/// Pull the number following `"key":` out of a JSON object line.
fn scan_number(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validate a `BENCH_6.json` body: schema tag, one result row per entry
/// of [`LAYER_COUNTS`], and finite positive medians throughout. The
/// scanning parser mirrors [`PerfReport::to_json`]'s line-oriented layout.
pub fn validate_json(text: &str) -> Result<(), String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing or stale schema tag (want {SCHEMA})"));
    }
    let keys = [
        "record_ns",
        "sweep_ns",
        "gd_step_ns",
        "legacy_record_ns",
        "legacy_sweep_ns",
        "legacy_gd_step_ns",
        "gd_step_speedup",
    ];
    let mut seen = Vec::new();
    for line in text.lines() {
        let Some(layers) = scan_number(line, "layers") else {
            continue;
        };
        seen.push(layers as usize);
        for key in keys {
            let v = scan_number(line, key)
                .ok_or_else(|| format!("row layers={layers}: missing key {key}"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "row layers={layers}: {key}={v} not finite-positive"
                ));
            }
        }
    }
    if seen != LAYER_COUNTS {
        return Err(format!(
            "layer counts {seen:?} do not match the measured set {:?}",
            LAYER_COUNTS
        ));
    }
    Ok(())
}

/// `repro bench`: full measurement, table to stdout, regenerate
/// `BENCH_6.json`.
pub fn run() {
    let report = measure(false);
    report.print();
    let json = report.to_json();
    validate_json(&json).expect("generated report must validate");
    let path = bench_json_path();
    std::fs::write(&path, json).expect("write BENCH_6.json");
    println!("\nwrote {}", path.display());
}

/// `repro --smoke bench`: seconds-scale re-measurement proving the
/// kernels run, then schema validation of the checked-in file (which is
/// *not* overwritten). Panics on a missing or stale file — the CI gate.
pub fn run_smoke() {
    let report = measure(true);
    report.print();
    for r in &report.rows {
        assert!(
            r.record_ns.is_finite() && r.record_ns > 0.0,
            "smoke measurement produced a non-positive record median"
        );
    }
    let path = bench_json_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
    if let Err(e) = validate_json(&text) {
        panic!("stale {}: {e}", path.display());
    }
    println!("\nsmoke bench OK: {} validates", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_json_roundtrips_through_validator() {
        let report = PerfReport {
            rows: LAYER_COUNTS
                .iter()
                .map(|&n| PerfRow {
                    layers: n,
                    record_ns: 100.0,
                    sweep_ns: 50.0,
                    gd_step_ns: 200.0,
                    legacy_record_ns: 250.0,
                    legacy_sweep_ns: 120.0,
                    legacy_gd_step_ns: 400.0,
                })
                .collect(),
        };
        validate_json(&report.to_json()).unwrap();
    }

    #[test]
    fn validator_rejects_bad_inputs() {
        assert!(validate_json("{}").is_err());
        let mut report = PerfReport {
            rows: LAYER_COUNTS
                .iter()
                .map(|&n| PerfRow {
                    layers: n,
                    record_ns: 100.0,
                    sweep_ns: 50.0,
                    gd_step_ns: 200.0,
                    legacy_record_ns: 250.0,
                    legacy_sweep_ns: 120.0,
                    legacy_gd_step_ns: 400.0,
                })
                .collect(),
        };
        report.rows[1].sweep_ns = f64::NAN;
        assert!(validate_json(&report.to_json()).is_err());
        report.rows[1].sweep_ns = 50.0;
        report.rows.pop();
        assert!(validate_json(&report.to_json()).is_err());
    }

    #[test]
    fn quick_measurement_is_finite_and_positive() {
        let row = measure_depth(1, 3, 2);
        for v in [
            row.record_ns,
            row.sweep_ns,
            row.gd_step_ns,
            row.legacy_record_ns,
            row.legacy_sweep_ns,
            row.legacy_gd_step_ns,
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
    }
}
