//! Result-cache and checkpoint/resume demonstration through the job
//! service: the same batched search run cold and then replayed from the
//! content-addressed cache, a warm-started follow-up, and — in the
//! `--smoke` variant — CI-enforced gates on the cache's invariants.
//!
//! The smoke asserts three things on every push:
//!
//! 1. **Cold-vs-cached bit parity** — attaching a cache never changes a
//!    result bit, and a repeated identical batch replays with 100%
//!    work-item hits;
//! 2. **Resume after cancel** — a job cancelled mid-run and resubmitted
//!    identically replays its completed items, re-runs fewer items than
//!    it planned, and still matches the uninterrupted run bit for bit;
//! 3. **Warm starts stay opt-in** — the default `WarmStart::Off` plans
//!    exactly the cold run's work items.

use crate::batch::poll_until_done;
use crate::batch::BatchOutcome;
use crate::plot::write_csv;
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{
    dosa_search, GdConfig, JobHandle, RandomSearchConfig, ResultCache, SearchRequest,
    SearchService, Strategy, WarmStart,
};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One phase's cache accounting for the report.
struct PhaseRow {
    phase: &'static str,
    wall: Duration,
    job: JobHandle,
}

fn report(rows: &[PhaseRow], out_dir: &Path) {
    println!("\ncache phases:");
    for row in rows {
        let s = row.job.stats();
        println!(
            "  {:<12} {:>6.2}s  {:>3} items: {:>3} hits, {:>3} misses, {} warm",
            row.phase,
            row.wall.as_secs_f64(),
            s.work_items,
            s.cache_hits,
            s.cache_misses,
            s.warm_starts,
        );
    }
    write_csv(
        out_dir,
        "cache.csv",
        &[
            "phase",
            "wall_s",
            "work_items",
            "cache_hits",
            "cache_misses",
            "warm_starts",
        ],
        &rows
            .iter()
            .map(|row| {
                let s = row.job.stats();
                vec![
                    row.phase.to_string(),
                    format!("{:.3}", row.wall.as_secs_f64()),
                    s.work_items.to_string(),
                    s.cache_hits.to_string(),
                    s.cache_misses.to_string(),
                    s.warm_starts.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Run the target networks as one batched job three times against a
/// shared [`ResultCache`]: cold (all misses, journaled as items
/// complete), replayed (identical request, 100% hits, no fleet time),
/// and warm-started (a different seed descending once more from the best
/// cached mapping per network shape).
pub fn run(scale: Scale, networks: &[Network], seed: u64, out_dir: &Path) -> Vec<BatchOutcome> {
    let hier = Hierarchy::gemmini();
    let threads = rayon::current_num_threads();
    let cache = ResultCache::in_memory(4096);
    let service = SearchService::builder()
        .threads(threads)
        .cache(Arc::clone(&cache))
        .build();

    // Per-network seeds override the config seed, so the warm-start
    // phase shifts them — otherwise its regular items would be identical
    // to the cold run's and replay instead of descending anew.
    let request = |cfg: GdConfig, warm: WarmStart, seed_offset: u64| {
        let mut builder = SearchRequest::builder(hier.clone())
            .config(cfg)
            .warm_start(warm);
        for (i, net) in networks.iter().enumerate() {
            builder = builder.network_seeded(
                net.name().to_string(),
                unique_layers(*net),
                seed + seed_offset + i as u64,
            );
        }
        builder.build()
    };
    println!(
        "cache: {} networks, {} worker threads, caching at {} granularity",
        networks.len(),
        threads,
        Strategy::GradientDescent(scale.gd_main(seed)).cache_granularity(),
    );
    let mut rows = Vec::new();
    for (phase, warm, seed_offset) in [
        ("cold", WarmStart::Off, 0),
        ("replay", WarmStart::Off, 0),
        ("warm-start", WarmStart::NearestNeighbor, 100),
    ] {
        let begin = Instant::now();
        let job = service
            .submit(request(scale.gd_main(seed), warm, seed_offset))
            .expect("scale presets always validate");
        poll_until_done(phase, &job, Duration::from_millis(500));
        let outcomes = job.wait().expect("cached job failed");
        rows.push(PhaseRow {
            phase,
            wall: begin.elapsed(),
            job,
        });
        if phase == "warm-start" {
            report(&rows, out_dir);
            let stats = cache.stats();
            println!(
                "cache totals: {} hits / {} misses, {} journaled, {} entries",
                stats.hits,
                stats.misses,
                stats.journaled,
                cache.len()
            );
            return outcomes
                .networks
                .into_iter()
                .map(|n| BatchOutcome {
                    network: n.network,
                    result: n.result,
                })
                .collect();
        }
    }
    unreachable!("the warm-start phase returns")
}

/// Seconds-scale CI smoke of the cache path; see the module docs for the
/// three gates.
///
/// # Panics
///
/// Panics if any gate fails — a replayed or resumed result diverging
/// from its cold run by one bit, a repeat without 100% hits, or a resume
/// that re-ran everything.
pub fn run_smoke(seed: u64, out_dir: &Path) -> Vec<BatchOutcome> {
    let hier = Hierarchy::gemmini();
    let resnet_subset: Vec<Layer> = unique_layers(Network::ResNet50)
        .into_iter()
        .take(2)
        .collect();
    let gemm = vec![Layer::once(
        Problem::matmul("gemm", 64, 256, 256).expect("valid matmul"),
    )];
    let cfg = GdConfig {
        start_points: 2,
        steps_per_start: 40,
        round_every: 20,
        seed,
        ..GdConfig::default()
    };
    let cache = ResultCache::in_memory(1024);
    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .cache(Arc::clone(&cache))
        .build();
    let request = SearchRequest::builder(hier.clone())
        .network_seeded("resnet50-subset", resnet_subset.clone(), seed)
        .network_seeded("gemm", gemm.clone(), seed + 1)
        .config(cfg)
        .build();

    // Gate 1: cold run journals, identical repeat replays 100% from the
    // cache, and both match the cache-less standalone runs bit for bit.
    println!("smoke: cold batched job against an empty cache");
    let cold = service
        .submit(request.clone())
        .expect("smoke config validates");
    poll_until_done("cold", &cold, Duration::from_millis(50));
    let cold_results = cold.wait().expect("cold job failed");
    let cold_stats = cold.stats();
    assert_eq!(
        cold_stats.cache_misses, cold_stats.work_items,
        "an empty cache must miss every work item"
    );
    println!("smoke: identical resubmission");
    let replay = service.submit(request.clone()).expect("same request");
    let replay_results = replay.wait().expect("replay job failed");
    let replay_stats = replay.stats();
    assert!(
        replay_stats.cache_hits > 0,
        "repeated batch must hit the cache"
    );
    assert_eq!(
        replay_stats.cache_hits, replay_stats.work_items,
        "a repeated identical batch must replay every work item \
         (hit {} of {})",
        replay_stats.cache_hits, replay_stats.work_items,
    );
    for (name, layers, net_seed) in [
        ("resnet50-subset", &resnet_subset, seed),
        ("gemm", &gemm, seed + 1),
    ] {
        let standalone = dosa_search(
            layers,
            &hier,
            &GdConfig {
                seed: net_seed,
                ..cfg
            },
        );
        crate::batch::assert_parity(
            cold_results.get(name).expect("network present"),
            &standalone,
            &format!("{name} (cache on, cold)"),
        );
        crate::batch::assert_parity(
            replay_results.get(name).expect("network present"),
            &standalone,
            &format!("{name} (100% replayed)"),
        );
    }

    // Gate 2: cancel mid-run, resubmit identically, re-run only the
    // remainder, match the uninterrupted result bit for bit.
    println!("smoke: resume after cancel");
    let resume_request = SearchRequest::builder(hier.clone())
        .network("gemm-resume", gemm.clone())
        .strategy(Strategy::Random(RandomSearchConfig {
            num_hw: 6,
            samples_per_hw: 2500,
            seed,
        }))
        .build();
    let plain = SearchService::builder().threads(1).build();
    let reference = plain
        .submit(resume_request.clone())
        .expect("valid")
        .wait()
        .expect("warm job failed")
        .into_single();
    let resume_cache = ResultCache::in_memory(64);
    let resume_service = SearchService::builder()
        .threads(1)
        .cache(Arc::clone(&resume_cache))
        .build();
    let interrupted = resume_service
        .submit(resume_request.clone())
        .expect("valid");
    let deadline = Instant::now() + Duration::from_secs(60);
    while resume_cache.stats().journaled == 0 {
        assert!(
            Instant::now() < deadline,
            "no work item completed within 60s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    interrupted.cancel();
    interrupted.wait().expect("interrupted job failed");
    let resumed = resume_service.submit(resume_request).expect("valid");
    let resumed_result = resumed.wait().expect("resumed job failed").into_single();
    let stats = resumed.stats();
    assert!(stats.cache_hits >= 1, "resume must replay completed items");
    assert!(
        stats.cache_misses < stats.work_items,
        "resume must re-run fewer items than it planned \
         ({} misses of {})",
        stats.cache_misses,
        stats.work_items,
    );
    crate::batch::assert_parity(&resumed_result, &reference, "resumed-after-cancel");
    println!(
        "smoke: resume replayed {} of {} items",
        stats.cache_hits, stats.work_items
    );

    // Gate 3: warm starts are opt-in — the default plans no extras.
    assert_eq!(cold_stats.warm_starts, 0);
    assert_eq!(replay_stats.warm_starts, 0);

    let rows = [
        PhaseRow {
            phase: "cold",
            wall: Duration::ZERO,
            job: cold,
        },
        PhaseRow {
            phase: "replay",
            wall: Duration::ZERO,
            job: replay,
        },
        PhaseRow {
            phase: "resume",
            wall: Duration::ZERO,
            job: resumed,
        },
    ];
    report(&rows, out_dir);
    println!("smoke: OK");
    replay_results
        .networks
        .into_iter()
        .map(|n| BatchOutcome {
            network: n.network,
            result: n.result,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_checks_its_own_cache_gates() {
        let dir = std::env::temp_dir().join("dosa_cache_smoke_test");
        let outcomes = run_smoke(13, &dir);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.result.best_edp.is_finite());
        }
    }
}
