//! Experiment scaling: `paper` uses the sample counts from §6; `quick`
//! shrinks them so the whole suite finishes in minutes on a laptop.

use dosa_search::{BbboConfig, GdConfig, LoopOrderStrategy, RandomSearchConfig};

/// Scaling preset for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Minutes-scale reduced runs (default).
    #[default]
    Quick,
    /// The paper's sample counts (§6.1).
    Paper,
}

impl Scale {
    /// Parse `quick` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Number of repeated runs for confidence intervals (Fig. 6: 3,
    /// Fig. 7: 5).
    pub fn runs(&self, paper_runs: usize) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Paper => paper_runs,
        }
    }

    /// Fig. 4 correlation study: (hardware configs, mappings per config).
    pub fn fig4(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (10, 60),
            Scale::Paper => (100, 100), // 100 configs x ~100 mappings = 10,000
        }
    }

    /// DOSA GD configuration for §6.2 (Figure 6).
    pub fn gd_fig6(&self, strategy: LoopOrderStrategy, seed: u64) -> GdConfig {
        match self {
            Scale::Quick => GdConfig {
                start_points: 2,
                steps_per_start: 240,
                round_every: 80,
                strategy,
                seed,
                ..GdConfig::default()
            },
            Scale::Paper => GdConfig {
                start_points: 7,
                steps_per_start: 890,
                round_every: 300,
                strategy,
                seed,
                ..GdConfig::default()
            },
        }
    }

    /// DOSA GD configuration for §6.3–6.5 (Figures 7–12).
    pub fn gd_main(&self, seed: u64) -> GdConfig {
        match self {
            Scale::Quick => GdConfig {
                start_points: 2,
                steps_per_start: 300,
                round_every: 100,
                seed,
                ..GdConfig::default()
            },
            Scale::Paper => GdConfig {
                start_points: 7,
                steps_per_start: 1490,
                round_every: 500,
                seed,
                ..GdConfig::default()
            },
        }
    }

    /// Random-search baseline configuration (§6.1).
    pub fn random_search(&self, seed: u64) -> RandomSearchConfig {
        match self {
            Scale::Quick => RandomSearchConfig {
                num_hw: 4,
                samples_per_hw: 150,
                seed,
            },
            Scale::Paper => RandomSearchConfig {
                num_hw: 10,
                samples_per_hw: 1000,
                seed,
            },
        }
    }

    /// BB-BO baseline configuration (§6.1, Spotlight-style).
    pub fn bbbo(&self, seed: u64) -> BbboConfig {
        match self {
            Scale::Quick => BbboConfig {
                num_hw: 12,
                init_random: 4,
                samples_per_hw: 50,
                candidates: 200,
                seed,
            },
            Scale::Paper => BbboConfig {
                num_hw: 100,
                init_random: 20,
                samples_per_hw: 100,
                candidates: 1000,
                seed,
            },
        }
    }

    /// Mappings per layer for the random-pruned mapper evaluating the
    /// baseline accelerators (Fig. 8: 10,000).
    pub fn fig8_mappings_per_layer(&self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Paper => 10_000,
        }
    }

    /// GD restarts for the attribution study (Fig. 9: 10).
    pub fn fig9_restarts(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Paper => 10,
        }
    }

    /// Random-mapper samples per layer for Fig. 9's "DOSA HW, random
    /// mappings" bar (paper: 1000).
    pub fn fig9_random_mapper_samples(&self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Paper => 1000,
        }
    }

    /// RTL dataset size (§6.5.1: 1567 random mappings).
    pub fn rtl_dataset(&self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Paper => 1567,
        }
    }

    /// Training epochs for the learned latency models (§6.5.1 trains for
    /// 50k epochs on 1567 samples; our Adam + minibatch setup converges in
    /// far fewer passes).
    pub fn rtl_epochs(&self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Paper => 1200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_section_6_1() {
        let g6 = Scale::Paper.gd_fig6(LoopOrderStrategy::Iterate, 0);
        assert_eq!(
            (g6.start_points, g6.steps_per_start, g6.round_every),
            (7, 890, 300)
        );
        let g7 = Scale::Paper.gd_main(0);
        assert_eq!(
            (g7.start_points, g7.steps_per_start, g7.round_every),
            (7, 1490, 500)
        );
        let rs = Scale::Paper.random_search(0);
        assert_eq!((rs.num_hw, rs.samples_per_hw), (10, 1000));
        let bo = Scale::Paper.bbbo(0);
        assert_eq!(
            (bo.num_hw, bo.samples_per_hw, bo.candidates),
            (100, 100, 1000)
        );
        assert_eq!(Scale::Paper.fig4(), (100, 100));
        assert_eq!(Scale::Paper.rtl_dataset(), 1567);
        assert_eq!(Scale::Paper.fig8_mappings_per_layer(), 10_000);
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        assert!(Scale::Quick.gd_main(0).steps_per_start < Scale::Paper.gd_main(0).steps_per_start);
        assert!(Scale::Quick.rtl_dataset() < Scale::Paper.rtl_dataset());
    }
}
