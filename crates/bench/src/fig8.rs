//! Figure 8: EDP of expert-designed baseline accelerators (Eyeriss,
//! NVDLA-small, NVDLA-large, Gemmini default) versus DOSA-optimized
//! Gemmini-TL, each baseline searched with the random-pruned mapper.
//!
//! Paper shape: DOSA wins on every workload by >2×, with NVDLA-small the
//! weakest baseline (up to ~40×) and Gemmini-default / NVDLA-large within
//! 2–5×.

use crate::plot::{ascii_bars, write_csv};
use crate::scale::Scale;
use dosa_accel::{all_baselines, Hierarchy};
use dosa_search::{dosa_search, evaluate_with_random_mapper};
use dosa_workload::{unique_layers, Network};
use std::path::Path;

/// Per-workload Figure 8 rows: `(name, edp)` with DOSA last.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Workload evaluated.
    pub network: Network,
    /// `(accelerator name, whole-model EDP)`; the final row is DOSA.
    pub rows: Vec<(String, f64)>,
}

impl Fig8Result {
    /// Ratio of each baseline's EDP to DOSA's.
    pub fn normalized(&self) -> Vec<(String, f64)> {
        let dosa = self.rows.last().map(|r| r.1).unwrap_or(f64::NAN);
        self.rows
            .iter()
            .map(|(n, e)| (n.clone(), e / dosa))
            .collect()
    }
}

/// Run Figure 8 for one workload.
pub fn run_network(scale: Scale, network: Network, seed: u64, out_dir: &Path) -> Fig8Result {
    let layers = unique_layers(network);
    let hier = Hierarchy::gemmini();
    let per_layer = scale.fig8_mappings_per_layer();

    let mut rows = Vec::new();
    for baseline in all_baselines() {
        let perf =
            evaluate_with_random_mapper(&layers, &baseline.config, &hier, per_layer, seed + 7);
        rows.push((baseline.name.to_string(), perf.edp()));
    }

    // DOSA-optimized Gemmini-TL (one full search run).
    let dosa = dosa_search(&layers, &hier, &scale.gd_main(seed));
    rows.push(("Gemmini DOSA".to_string(), dosa.best_edp));

    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, e)| vec![network.name().to_string(), n.clone(), format!("{e:.6e}")])
        .collect();
    write_csv(
        out_dir,
        &format!(
            "fig8_{}.csv",
            network.name().to_ascii_lowercase().replace('-', "")
        ),
        &["network", "accelerator", "edp"],
        &csv,
    );

    println!(
        "{}",
        ascii_bars(
            &format!("Figure 8 ({}) — EDP vs expert baselines", network.name()),
            &rows,
            36
        )
    );
    println!(
        "  DOSA config: {} | paper shape: all baselines >2x DOSA\n",
        dosa.best_hw
    );
    Fig8Result { network, rows }
}

/// Run Figure 8 across the four target workloads.
pub fn run(scale: Scale, seed: u64, out_dir: &Path) -> Vec<Fig8Result> {
    Network::TARGETS
        .into_iter()
        .map(|n| run_network(scale, n, seed, out_dir))
        .collect()
}
