//! Figure 7: DOSA vs random search vs Bayesian optimization on the four
//! target workloads (best EDP versus number of model evaluations, mean of
//! 5 runs with 95% CI).
//!
//! Paper headline: at ~10k samples DOSA is 2.80× better than random search
//! and 12.59× better than BB-BO (geometric mean over workloads).

use crate::fig6::mean_curve;
use crate::plot::{ascii_log_chart, geomean, write_csv, Series};
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{JobHandle, SearchRequest, SearchResult, SearchService, Strategy};
use dosa_workload::{unique_layers, Layer, Network};
use std::path::Path;

/// Aggregated outcome of one searcher on one workload.
#[derive(Debug, Clone)]
pub struct SearcherOutcome {
    /// Searcher label ("DOSA" / "Random" / "BB-BO").
    pub label: &'static str,
    /// Geometric-mean final best EDP across runs.
    pub final_edp: f64,
    /// Mean best-so-far curve.
    pub curve: Vec<(f64, f64)>,
    /// The per-run results (for downstream reuse, e.g. Figure 8).
    pub runs: Vec<SearchResult>,
}

/// Per-workload Figure 7 result.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Workload evaluated.
    pub network: Network,
    /// DOSA, Random, BB-BO outcomes in that order.
    pub outcomes: Vec<SearcherOutcome>,
}

impl Fig7Result {
    /// Final-EDP ratio of `label` over DOSA.
    pub fn ratio_vs_dosa(&self, label: &str) -> f64 {
        let dosa = self.outcomes[0].final_edp;
        let other = self
            .outcomes
            .iter()
            .find(|o| o.label == label)
            .map(|o| o.final_edp)
            .unwrap_or(f64::NAN);
        other / dosa
    }
}

/// Submit one searcher's repeated runs as a single batched service job
/// (entries `run0..runN`, seeded `base_seed + r` — the same per-run seeds
/// the standalone drivers used).
fn submit_runs(
    service: &SearchService,
    layers: &[Layer],
    strategy: Strategy,
    runs: usize,
    base_seed: u64,
) -> JobHandle {
    let mut builder = SearchRequest::builder(Hierarchy::gemmini()).strategy(strategy);
    for r in 0..runs {
        builder = builder.network_seeded(format!("run{r}"), layers.to_vec(), base_seed + r as u64);
    }
    service
        .submit(builder.build())
        .expect("scale presets always validate")
}

fn collect_runs(job: JobHandle) -> Vec<SearchResult> {
    job.wait()
        .expect("strategy job failed")
        .networks
        .into_iter()
        .map(|n| n.result)
        .collect()
}

/// Run Figure 7 for one workload: the three searchers are three batched
/// [`Strategy`] jobs queued on one service (each run a batch entry), not
/// three hand-rolled loops. Every run is bit-identical to a standalone
/// submission with the same seed.
pub fn run_network(scale: Scale, network: Network, seed: u64, out_dir: &Path) -> Fig7Result {
    let layers = unique_layers(network);
    let runs = scale.runs(5);
    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .build();

    // All three jobs are submitted up front and run concurrently, their
    // work items sharing the service's worker slots; results are
    // interleaving-invariant, so this only shortens wall-clock time.
    let dosa_job = submit_runs(
        &service,
        &layers,
        Strategy::GradientDescent(scale.gd_main(seed)),
        runs,
        seed,
    );
    let random_job = submit_runs(
        &service,
        &layers,
        Strategy::Random(scale.random_search(seed)),
        runs,
        seed + 100,
    );
    let bbbo_job = submit_runs(
        &service,
        &layers,
        Strategy::BayesOpt(scale.bbbo(seed)),
        runs,
        seed + 200,
    );
    let dosa_runs = collect_runs(dosa_job);
    let random_runs = collect_runs(random_job);
    let bbbo_runs = collect_runs(bbbo_job);

    let mut outcomes = Vec::new();
    let mut csv_rows = Vec::new();
    for (label, rs) in [
        ("DOSA", dosa_runs),
        ("Random", random_runs),
        ("BB-BO", bbbo_runs),
    ] {
        let finals: Vec<f64> = rs.iter().map(|r| r.best_edp).collect();
        let curve = mean_curve(&rs, 40);
        for (x, y) in &curve {
            csv_rows.push(vec![
                network.name().to_string(),
                label.to_string(),
                format!("{x:.0}"),
                format!("{y:.6e}"),
            ]);
        }
        outcomes.push(SearcherOutcome {
            label,
            final_edp: geomean(&finals),
            curve,
            runs: rs,
        });
    }
    write_csv(
        out_dir,
        &format!(
            "fig7_{}.csv",
            network.name().to_ascii_lowercase().replace('-', "")
        ),
        &["network", "searcher", "samples", "best_edp"],
        &csv_rows,
    );

    let series: Vec<Series> = outcomes
        .iter()
        .map(|o| Series {
            label: o.label.to_string(),
            points: o.curve.clone(),
        })
        .collect();
    println!(
        "{}",
        ascii_log_chart(
            &format!("Figure 7 ({}) — EDP vs samples", network.name()),
            &series,
            64,
            14
        )
    );
    let result = Fig7Result { network, outcomes };
    println!(
        "  final EDP: DOSA {:.3e} | Random {:.3e} (x{:.2}) | BB-BO {:.3e} (x{:.2})\n",
        result.outcomes[0].final_edp,
        result.outcomes[1].final_edp,
        result.ratio_vs_dosa("Random"),
        result.outcomes[2].final_edp,
        result.ratio_vs_dosa("BB-BO"),
    );
    result
}

/// Run Figure 7 across all four target workloads and report the geometric
/// mean improvements.
pub fn run(scale: Scale, seed: u64, out_dir: &Path) -> Vec<Fig7Result> {
    let results: Vec<Fig7Result> = Network::TARGETS
        .into_iter()
        .map(|n| run_network(scale, n, seed, out_dir))
        .collect();
    let vs_random: Vec<f64> = results.iter().map(|r| r.ratio_vs_dosa("Random")).collect();
    let vs_bbbo: Vec<f64> = results.iter().map(|r| r.ratio_vs_dosa("BB-BO")).collect();
    println!(
        "Figure 7 summary — geomean EDP improvement of DOSA: {:.2}x vs random, {:.2}x vs BB-BO",
        geomean(&vs_random),
        geomean(&vs_bbbo)
    );
    println!("  paper: 2.80x vs random, 12.59x vs BB-BO\n");
    results
}
