//! Terminal plotting and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, x ascending.
    pub points: Vec<(f64, f64)>,
}

/// Render an ASCII line chart with a log-scale y axis (the paper's
/// EDP-versus-samples plots are log-scale).
pub fn ascii_log_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(_, y)| y.is_finite() && *y > 0.0)
        .collect();
    if pts.is_empty() {
        let _ = writeln!(out, "  (no finite points)");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y.ln());
        y_max = y_max.max(y.ln());
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    let marks = [b'*', b'o', b'x', b'+', b'#', b'@'];
    for (si, s) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        // Interpolate along x so lines look continuous.
        #[allow(clippy::needless_range_loop)] // col maps to both an x value and a grid column
        for col in 0..width {
            let x = x_min + (x_max - x_min) * col as f64 / (width - 1) as f64;
            if let Some(y) = interpolate(&s.points, x) {
                if y <= 0.0 || !y.is_finite() {
                    continue;
                }
                let frac = (y.ln() - y_min) / (y_max - y_min);
                let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][col] = mark;
            }
        }
    }
    let _ = writeln!(
        out,
        "  y: EDP (log), {:.2e} .. {:.2e}",
        y_min.exp(),
        y_max.exp()
    );
    for row in grid {
        let _ = writeln!(out, "  |{}", String::from_utf8_lossy(&row));
    }
    let _ = writeln!(out, "  +{}", "-".repeat(width));
    let _ = writeln!(out, "   x: {x_min:.0} .. {x_max:.0} samples");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "   {} = {}", marks[si % marks.len()] as char, s.label);
    }
    out
}

fn interpolate(points: &[(f64, f64)], x: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    if x <= points[0].0 {
        return None; // before the first observation
    }
    let last = points[points.len() - 1];
    if x >= last.0 {
        return Some(last.1);
    }
    // Step interpolation (best-so-far curves are right-continuous steps).
    let idx = points.partition_point(|p| p.0 <= x);
    Some(points[idx - 1].1)
}

/// Render a labeled horizontal bar chart normalized to the smallest value,
/// like Figure 8's "EDP normalized to DOSA" annotations.
pub fn ascii_bars(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let finite: Vec<f64> = rows.iter().map(|r| r.1).filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = finite.iter().cloned().fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    for (label, v) in rows {
        let norm = v / min;
        let bar_len = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "  {label:<label_w$} |{} {v:.3e} ({norm:.2}x)",
            "#".repeat(bar_len.max(1))
        );
    }
    out
}

/// Format a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("  ");
        for (c, w) in cells.iter().zip(widths) {
            let _ = write!(line, "{c:<w$}  ");
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
    let _ = writeln!(out, "  {}", "-".repeat(total.saturating_sub(2)));
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

/// Write rows as CSV under `dir/name`, creating the directory if needed.
/// Errors are reported to stderr but not fatal (the harness still prints).
pub fn write_csv(dir: &Path, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut content = String::new();
    let _ = writeln!(content, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(content, "{}", row.join(","));
    }
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// Geometric mean of positive values; NaN-free inputs expected.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Mean and 95% confidence half-width across runs (normal approximation,
/// matching the shaded regions of Figures 6 and 7).
pub fn mean_ci(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_series() {
        let s = vec![Series {
            label: "DOSA".into(),
            points: vec![(0.0, 1e12), (100.0, 1e11), (200.0, 5e10)],
        }];
        let out = ascii_log_chart("test", &s, 40, 10);
        assert!(out.contains("DOSA"));
        assert!(out.contains('*'));
    }

    #[test]
    fn bars_normalize_to_min() {
        let rows = vec![("A".to_string(), 2.0), ("B".to_string(), 1.0)];
        let out = ascii_bars("t", &rows, 20);
        assert!(out.contains("(2.00x)"));
        assert!(out.contains("(1.00x)"));
    }

    #[test]
    fn geomean_and_ci() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        let (m, ci) = mean_ci(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!(ci > 0.0);
        assert_eq!(mean_ci(&[5.0]).1, 0.0);
    }

    #[test]
    fn interpolate_steps() {
        let pts = vec![(0.0, 10.0), (10.0, 5.0)];
        assert_eq!(interpolate(&pts, 5.0), Some(10.0));
        assert_eq!(interpolate(&pts, 15.0), Some(5.0));
        assert_eq!(interpolate(&pts, -1.0), None);
    }

    #[test]
    fn table_aligns() {
        let out = table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(out.contains("a"));
        assert!(out.contains("bb"));
    }
}
