//! Fault-isolation demonstration and CI gate: `repro faults` injects
//! deterministic faults ([`FaultPlan`]) into jobs sharing one
//! [`SearchService`] and reports how the failure domains held. The
//! `--smoke` variant **asserts** the robustness contracts end to end:
//! a panicking work item fails only its own job while a concurrent
//! sibling stays bit-identical to its solo run; a non-finite descent
//! fails with the typed [`JobError::NonFiniteLoss`]; a
//! [`DeadlinePolicy::Degrade`] job expiring mid-run returns a bitwise
//! **prefix** of the uninterrupted run; a [`DeadlinePolicy::Kill`] job
//! fails with [`JobError::DeadlineExceeded`] without touching its
//! siblings; and installing an empty (zero-fault) plan changes no result
//! bit.

use crate::batch::assert_parity;
use crate::plot::write_csv;
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{
    dosa_search, DeadlinePolicy, FaultKind, FaultPlan, GdConfig, JobError, JobStatus,
    SearchRequest, SearchService,
};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::path::Path;
use std::time::{Duration, Instant};

/// One job's outcome in the fault-injection run.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// Job label (workload + what was injected).
    pub label: String,
    /// Terminal status the job reached.
    pub status: JobStatus,
    /// The typed error, for jobs that ended [`JobStatus::Failed`].
    pub error: Option<JobError>,
    /// Best EDP across the job's networks (`INFINITY` for failed jobs).
    pub best_edp: f64,
    /// Wall-clock time from submission to terminal.
    pub elapsed: Duration,
}

fn write_outcomes(out_dir: &Path, name: &str, outcomes: &[FaultOutcome]) {
    write_csv(
        out_dir,
        name,
        &["label", "status", "error", "best_edp", "elapsed_ms"],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    format!("{:?}", o.status),
                    o.error
                        .as_ref()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "-".into()),
                    format!("{:.6e}", o.best_edp),
                    o.elapsed.as_millis().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Run the fault-isolation demonstration: one healthy GD job per
/// workload plus one "chaos" job per workload carrying a seeded
/// [`FaultPlan`], all on one service — then report which jobs failed
/// (with their typed errors) and that every healthy job still matches
/// its standalone run bit for bit.
pub fn run(scale: Scale, networks: &[Network], seed: u64, out_dir: &Path) -> Vec<FaultOutcome> {
    let hier = Hierarchy::gemmini();
    let threads = rayon::current_num_threads().max(2);
    let service = SearchService::builder().threads(threads).build();
    let cfg = scale.gd_main(seed);
    println!(
        "fault isolation: {} healthy + {} seeded-chaos GD jobs on {} worker slots",
        networks.len(),
        networks.len(),
        threads
    );

    let t0 = Instant::now();
    let mut jobs = Vec::new();
    for (i, net) in networks.iter().enumerate() {
        let healthy = service
            .submit(
                SearchRequest::builder(hier.clone())
                    .network(net.name().to_string(), unique_layers(*net))
                    .config(GdConfig {
                        seed: seed + i as u64,
                        ..cfg
                    })
                    .build(),
            )
            .expect("scale presets always validate");
        jobs.push((format!("{}/healthy", net.name()), healthy));
        let plan = FaultPlan::seeded(seed + i as u64, cfg.start_points, 0.5);
        let injected = plan.len();
        let chaos = service
            .submit(
                SearchRequest::builder(hier.clone())
                    .network(net.name().to_string(), unique_layers(*net))
                    .config(GdConfig {
                        seed: seed + i as u64,
                        ..cfg
                    })
                    .fault_plan(plan)
                    .build(),
            )
            .expect("scale presets always validate");
        jobs.push((format!("{}/chaos({} faults)", net.name(), injected), chaos));
    }

    let mut outcomes = Vec::new();
    for (i, (label, job)) in jobs.iter().enumerate() {
        let result = job.wait();
        let best_edp = result
            .as_ref()
            .map(|b| {
                b.networks
                    .iter()
                    .map(|n| n.result.best_edp)
                    .fold(f64::INFINITY, f64::min)
            })
            .unwrap_or(f64::INFINITY);
        let outcome = FaultOutcome {
            label: label.clone(),
            status: job.status(),
            error: job.error(),
            best_edp,
            elapsed: t0.elapsed(),
        };
        println!(
            "  {:<28} {:?}{}",
            outcome.label,
            outcome.status,
            outcome
                .error
                .as_ref()
                .map(|e| format!(" — {e}"))
                .unwrap_or_default()
        );
        // Every healthy job must have survived its chaotic sibling with
        // its full, finite result.
        if i % 2 == 0 {
            assert_eq!(
                outcome.status,
                JobStatus::Completed,
                "healthy job {label} was disturbed by a sibling's faults"
            );
            assert!(outcome.best_edp.is_finite());
        }
        outcomes.push(outcome);
    }
    write_outcomes(out_dir, "faults.csv", &outcomes);
    outcomes
}

/// A small two-start GD config whose items each take tens of
/// milliseconds — enough work that concurrency and deadlines are real,
/// small enough for a seconds-scale smoke.
fn smoke_cfg(seed: u64) -> GdConfig {
    GdConfig {
        start_points: 2,
        steps_per_start: 40,
        round_every: 20,
        seed,
        ..GdConfig::default()
    }
}

fn gemm_layers() -> Vec<Layer> {
    vec![Layer::once(
        Problem::matmul("gemm", 64, 256, 256).expect("valid matmul"),
    )]
}

/// Seconds-scale CI smoke of the fault-isolation, deadline, and
/// degradation contracts. Asserts, in order:
///
/// 1. **Panic isolation** — a [`FaultKind::Panic`] injected into one of
///    job A's work items ends A `Failed(WorkerPanic { item: 1 })` while
///    concurrent job B on the same two-slot service stays bit-identical
///    to its solo run.
/// 2. **Typed non-finite failure** — [`FaultKind::NonFiniteLoss`] ends
///    the job `Failed(NonFiniteLoss { item: 0, step: 1 })`.
/// 3. **Degrade prefix parity** — a `Degrade` job whose deadline expires
///    mid-run (one item held by an injected [`FaultKind::Delay`])
///    completes with `degraded: true` and a history that is a bitwise
///    **prefix** of the uninterrupted run's, with strictly fewer samples.
/// 4. **Deadline kill under load** — a `Kill` job with a short deadline
///    fails with [`JobError::DeadlineExceeded`] while a concurrent
///    sibling stays bit-identical to its solo run.
/// 5. **Zero-fault no-op** — installing an empty [`FaultPlan`] changes
///    no result bit versus no plan at all.
///
/// # Panics
///
/// Panics if any contract is violated — that is the point: CI fails if
/// fault containment, deadline handling, or degrade determinism
/// regresses.
pub fn run_smoke(seed: u64, out_dir: &Path) -> Vec<FaultOutcome> {
    let hier = Hierarchy::gemmini();
    let gemm = gemm_layers();
    let mut outcomes = Vec::new();

    // 1. Panic isolation: A's item 1 panics; B must not notice.
    let service = SearchService::builder().threads(2).build();
    let t0 = Instant::now();
    let cfg_a = smoke_cfg(seed);
    let a = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(cfg_a)
                .fault_plan(FaultPlan::new().inject(1, FaultKind::Panic))
                .build(),
        )
        .expect("smoke config validates");
    let cfg_b = smoke_cfg(seed + 1);
    let b = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(cfg_b)
                .build(),
        )
        .expect("smoke config validates");
    let a_err = a.wait().expect_err("the injected panic must fail job A");
    assert_eq!(a.status(), JobStatus::Failed);
    assert_eq!(a.error(), Some(a_err.clone()));
    match &a_err {
        JobError::WorkerPanic { item: 1, payload } => {
            assert!(
                payload.contains("injected fault"),
                "panic payload lost: {payload}"
            );
        }
        other => panic!("expected WorkerPanic at item 1, got {other}"),
    }
    let b_result = b
        .wait()
        .expect("job B must survive its sibling's panic")
        .into_single();
    assert_parity(
        &b_result,
        &dosa_search(&gemm, &hier, &cfg_b),
        "faults smoke: sibling of a panicking job",
    );
    println!("smoke: injected panic contained to job A ({a_err}); job B bit-identical to solo");
    outcomes.push(FaultOutcome {
        label: "panic@1".into(),
        status: JobStatus::Failed,
        error: Some(a_err),
        best_edp: f64::INFINITY,
        elapsed: t0.elapsed(),
    });

    // 2. Typed non-finite failure: the injected NaN is adjudicated by
    //    the first rounding checkpoint and attributed to step 1.
    let nf = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(smoke_cfg(seed + 2))
                .fault_plan(FaultPlan::new().inject(0, FaultKind::NonFiniteLoss))
                .build(),
        )
        .expect("smoke config validates");
    let nf_err = nf
        .wait()
        .expect_err("the injected non-finite loss must fail the job");
    assert_eq!(
        nf_err,
        JobError::NonFiniteLoss { item: 0, step: 1 },
        "non-finite guard misattributed the failure"
    );
    println!("smoke: injected NaN loss failed typed ({nf_err})");
    outcomes.push(FaultOutcome {
        label: "non-finite@0".into(),
        status: JobStatus::Failed,
        error: Some(nf_err),
        best_edp: f64::INFINITY,
        elapsed: t0.elapsed(),
    });

    // 3. Degrade prefix parity. Single worker slot, four planned items:
    //    item 1 is delayed past the deadline, so items 2 and 3 never
    //    start and the job completes degraded on items {0, 1}. The
    //    uninterrupted run of the identical request is the reference.
    let full_cfg = GdConfig {
        start_points: 4,
        ..smoke_cfg(seed + 3)
    };
    let single = SearchService::builder().threads(1).build();
    let full = single
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(full_cfg)
                .build(),
        )
        .expect("smoke config validates")
        .wait()
        .expect("uninterrupted reference job failed")
        .into_single();
    let degraded_job = single
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(full_cfg)
                .fault_plan(FaultPlan::new().inject(1, FaultKind::Delay(2_500)))
                .deadline(Duration::from_millis(700))
                .deadline_policy(DeadlinePolicy::Degrade)
                .build(),
        )
        .expect("smoke config validates");
    let degraded_batch = degraded_job
        .wait()
        .expect("a Degrade deadline completes, never fails");
    assert!(
        degraded_batch.degraded,
        "the deadline provably expired mid-run, so the batch must be flagged degraded"
    );
    assert_eq!(degraded_job.status(), JobStatus::Completed);
    let degraded = degraded_batch.into_single();
    assert!(
        degraded.samples < full.samples,
        "degraded run must have done strictly less work ({} vs {})",
        degraded.samples,
        full.samples
    );
    assert!(
        !degraded.history.is_empty(),
        "items completed before the deadline must be merged"
    );
    assert_eq!(
        degraded.history,
        full.history[..degraded.history.len()],
        "degraded history must be a bitwise prefix of the uninterrupted run"
    );
    println!(
        "smoke: Degrade returned a bitwise prefix ({} of {} history points, {} of {} samples)",
        degraded.history.len(),
        full.history.len(),
        degraded.samples,
        full.samples
    );
    outcomes.push(FaultOutcome {
        label: "degrade@700ms".into(),
        status: JobStatus::Completed,
        error: None,
        best_edp: degraded.best_edp,
        elapsed: t0.elapsed(),
    });

    // 4. Deadline kill under load: the delayed job dies with the typed
    //    deadline error; its concurrent sibling is bit-identical to solo.
    let pair = SearchService::builder().threads(2).build();
    let killed = pair
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(smoke_cfg(seed + 4))
                .fault_plan(FaultPlan::new().inject(0, FaultKind::Delay(2_500)))
                .deadline(Duration::from_millis(300))
                .build(), // DeadlinePolicy::Kill is the default
        )
        .expect("smoke config validates");
    let cfg_side = smoke_cfg(seed + 5);
    let side = pair
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(cfg_side)
                .build(),
        )
        .expect("smoke config validates");
    let kill_err = killed
        .wait()
        .expect_err("the Kill deadline must fail the job");
    assert_eq!(kill_err, JobError::DeadlineExceeded);
    assert_eq!(killed.status(), JobStatus::Failed);
    assert_parity(
        &side.wait().expect("sibling job failed").into_single(),
        &dosa_search(&gemm, &hier, &cfg_side),
        "faults smoke: sibling of a deadline-killed job",
    );
    println!("smoke: Kill deadline failed typed ({kill_err}); sibling bit-identical to solo");
    outcomes.push(FaultOutcome {
        label: "kill@300ms".into(),
        status: JobStatus::Failed,
        error: Some(kill_err),
        best_edp: f64::INFINITY,
        elapsed: t0.elapsed(),
    });

    // 5. Zero-fault no-op: an empty plan must not perturb a single bit.
    let cfg_z = smoke_cfg(seed + 6);
    let with_empty_plan = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .config(cfg_z)
                .fault_plan(FaultPlan::new())
                .build(),
        )
        .expect("smoke config validates")
        .wait()
        .expect("zero-fault job failed")
        .into_single();
    assert_parity(
        &with_empty_plan,
        &dosa_search(&gemm, &hier, &cfg_z),
        "faults smoke: zero-fault plan vs no plan",
    );
    outcomes.push(FaultOutcome {
        label: "zero-fault".into(),
        status: JobStatus::Completed,
        error: None,
        best_edp: with_empty_plan.best_edp,
        elapsed: t0.elapsed(),
    });

    write_outcomes(out_dir, "faults_smoke.csv", &outcomes);
    println!(
        "smoke: OK (panic contained, non-finite typed, degrade prefix-exact, \
         kill typed, zero-fault bit-exact)"
    );
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_checks_its_own_fault_assertions() {
        let dir = std::env::temp_dir().join("dosa_faults_smoke_test");
        let outcomes = run_smoke(11, &dir);
        assert_eq!(outcomes.len(), 5);
        assert!(matches!(
            outcomes[0].error,
            Some(JobError::WorkerPanic { item: 1, .. })
        ));
        assert_eq!(outcomes[3].error, Some(JobError::DeadlineExceeded));
    }
}
