//! Strategy comparison through one service: `repro strategies` submits
//! all three [`Strategy`] variants — gradient descent, random search,
//! BB-BO — as three batched jobs over the target workloads (the
//! serving-oriented counterpart of Figure 7, with every network of every
//! searcher flowing through the same request → handle → progress
//! lifecycle). `repro --smoke strategies` runs a seconds-scale version
//! that **asserts** service == free-function bit-parity for the
//! black-box strategies, so CI exercises the strategy dispatch on every
//! push.

use crate::batch::{assert_parity, poll_until_done};
use crate::plot::write_csv;
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{
    bayesian_search, random_search, BbboConfig, JobHandle, RandomSearchConfig, SearchRequest,
    SearchResult, SearchService, Strategy,
};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::path::Path;
use std::time::Duration;

/// One (network, strategy) outcome of the comparison.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Network name as submitted.
    pub network: String,
    /// Strategy name ("gradient-descent" / "random" / "bayes-opt").
    pub strategy: &'static str,
    /// The (bit-identical-to-standalone) search result.
    pub result: SearchResult,
}

/// Submit one strategy's batched job over `networks` (entries seeded
/// `seed + i`, matching Figure 7's standalone runs).
fn submit(
    service: &SearchService,
    networks: &[Network],
    strategy: Strategy,
    seed: u64,
) -> JobHandle {
    let mut builder = SearchRequest::builder(Hierarchy::gemmini()).strategy(strategy);
    for (i, net) in networks.iter().enumerate() {
        builder =
            builder.network_seeded(net.name().to_string(), unique_layers(*net), seed + i as u64);
    }
    service
        .submit(builder.build())
        .expect("scale presets always validate")
}

fn drain(job: JobHandle, strategy: &'static str, poll: Duration) -> Vec<StrategyOutcome> {
    poll_until_done(strategy, &job, poll);
    job.wait()
        .expect("strategy job failed")
        .networks
        .into_iter()
        .map(|n| StrategyOutcome {
            network: n.network,
            strategy,
            result: n.result,
        })
        .collect()
}

/// Run all three strategies over `networks` as three batched jobs queued
/// on one service, with live progress, and report final EDPs plus the
/// baseline-over-DOSA ratios (a service-run Figure 7).
pub fn run(scale: Scale, networks: &[Network], seed: u64, out_dir: &Path) -> Vec<StrategyOutcome> {
    let threads = rayon::current_num_threads();
    let service = SearchService::builder().threads(threads).build();
    println!(
        "strategy comparison: {} networks x 3 strategies, {} worker threads",
        networks.len(),
        threads
    );

    // All three jobs run concurrently on the shared worker slots (the
    // results are interleaving-invariant; only wall-clock time changes).
    let gd = submit(
        &service,
        networks,
        Strategy::GradientDescent(scale.gd_main(seed)),
        seed,
    );
    let random = submit(
        &service,
        networks,
        Strategy::Random(scale.random_search(seed)),
        seed + 100,
    );
    let bayes = submit(
        &service,
        networks,
        Strategy::BayesOpt(scale.bbbo(seed)),
        seed + 200,
    );

    let poll = Duration::from_millis(500);
    let mut outcomes = drain(gd, "gradient-descent", poll);
    outcomes.extend(drain(random, "random", poll));
    outcomes.extend(drain(bayes, "bayes-opt", poll));

    println!("\nfinal EDP per (network, strategy):");
    for net in networks {
        let get = |strategy: &str| {
            outcomes
                .iter()
                .find(|o| o.network == net.name() && o.strategy == strategy)
                .map(|o| o.result.best_edp)
                .unwrap_or(f64::NAN)
        };
        let dosa = get("gradient-descent");
        let rand = get("random");
        let bo = get("bayes-opt");
        println!(
            "  {:<12} DOSA {:.3e} | Random {:.3e} (x{:.2}) | BB-BO {:.3e} (x{:.2})",
            net.name(),
            dosa,
            rand,
            rand / dosa,
            bo,
            bo / dosa
        );
    }
    write_csv(
        out_dir,
        "strategies.csv",
        &["network", "strategy", "best_edp", "samples"],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.network.clone(),
                    o.strategy.to_string(),
                    format!("{:.6e}", o.result.best_edp),
                    o.result.samples.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    outcomes
}

/// Seconds-scale CI smoke of the strategy dispatch: batched
/// [`Strategy::Random`] and [`Strategy::BayesOpt`] jobs over a
/// {ResNet-50 subset, one matmul} pair, polled live, then checked
/// bit-for-bit against the `random_search` / `bayesian_search` free
/// functions with the same seeds — on two differently-sized services, so
/// thread-budget invariance is covered too.
///
/// # Panics
///
/// Panics if any per-network result diverges from its standalone run —
/// that is the point: CI fails if a strategy's service path regresses.
pub fn run_smoke(seed: u64, out_dir: &Path) -> Vec<StrategyOutcome> {
    let hier = Hierarchy::gemmini();
    let resnet_subset: Vec<Layer> = unique_layers(Network::ResNet50)
        .into_iter()
        .take(2)
        .collect();
    let gemm = vec![Layer::once(
        Problem::matmul("gemm", 64, 256, 256).expect("valid matmul"),
    )];
    let random_cfg = RandomSearchConfig {
        num_hw: 3,
        samples_per_hw: 40,
        seed,
    };
    let bbbo_cfg = BbboConfig {
        num_hw: 5,
        init_random: 2,
        samples_per_hw: 12,
        candidates: 25,
        seed,
    };

    // Degenerate configurations must be rejected at the boundary.
    let reject = SearchRequest::builder(hier.clone())
        .network("gemm", gemm.clone())
        .strategy(Strategy::Random(RandomSearchConfig {
            num_hw: 0,
            ..random_cfg
        }))
        .build();
    let small = SearchService::builder().threads(1).build();
    assert!(
        small.submit(reject).is_err(),
        "smoke: num_hw == 0 must be rejected at submit()"
    );

    let mut outcomes = Vec::new();
    for (label, strategy) in [
        ("random", Strategy::Random(random_cfg)),
        ("bayes-opt", Strategy::BayesOpt(bbbo_cfg)),
    ] {
        // Standalone free functions, re-seeded like the batch entries.
        let (solo_resnet, solo_gemm) = match &strategy {
            Strategy::Random(cfg) => (
                random_search(&resnet_subset, &hier, &RandomSearchConfig { seed, ..*cfg }),
                random_search(
                    &gemm,
                    &hier,
                    &RandomSearchConfig {
                        seed: seed + 1,
                        ..*cfg
                    },
                ),
            ),
            Strategy::BayesOpt(cfg) => (
                bayesian_search(&resnet_subset, &hier, &BbboConfig { seed, ..*cfg }),
                bayesian_search(
                    &gemm,
                    &hier,
                    &BbboConfig {
                        seed: seed + 1,
                        ..*cfg
                    },
                ),
            ),
            _ => unreachable!("smoke covers the black-box strategies"),
        };
        for threads in [1, rayon::current_num_threads().max(2)] {
            let service = SearchService::builder().threads(threads).build();
            let request = SearchRequest::builder(hier.clone())
                .network_seeded("resnet50-subset", resnet_subset.clone(), seed)
                .network_seeded("gemm", gemm.clone(), seed + 1)
                .strategy(strategy.clone())
                .build();
            println!("smoke: batched {label} job on {threads} worker thread(s)");
            let job = service.submit(request).expect("smoke config validates");
            poll_until_done(label, &job, Duration::from_millis(50));
            let batch = job.wait().expect("strategy job failed");
            assert_parity(
                batch.get("resnet50-subset").expect("network present"),
                &solo_resnet,
                &format!("{label}/resnet50-subset @ {threads} threads"),
            );
            assert_parity(
                batch.get("gemm").expect("network present"),
                &solo_gemm,
                &format!("{label}/gemm @ {threads} threads"),
            );
            if threads == 1 {
                outcomes.extend(batch.networks.into_iter().map(|n| StrategyOutcome {
                    network: n.network,
                    strategy: match strategy {
                        Strategy::Random(_) => "random",
                        _ => "bayes-opt",
                    },
                    result: n.result,
                }));
            }
        }
    }
    write_csv(
        out_dir,
        "strategies_smoke.csv",
        &["network", "strategy", "best_edp", "samples"],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.network.clone(),
                    o.strategy.to_string(),
                    format!("{:.6e}", o.result.best_edp),
                    o.result.samples.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("smoke: OK");
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_checks_its_own_parity_assertions() {
        let dir = std::env::temp_dir().join("dosa_strategies_smoke_test");
        let outcomes = run_smoke(3, &dir);
        assert_eq!(outcomes.len(), 4, "2 networks x 2 black-box strategies");
        for o in &outcomes {
            assert!(o.result.best_edp.is_finite());
        }
    }
}
