//! Figure 6: comparing loop-ordering optimization strategies — no search
//! ("Baseline"), iterating at every rounding ("Iterate"), and the
//! gradient-based softmax weighting ("Softmax") — on ResNet-50 and BERT.
//!
//! The paper finds Iterate ≈1.70× and Softmax ≈1.58× better than Baseline
//! after 7000 samples, with Iterate the cheaper of the two.

use crate::plot::{ascii_log_chart, mean_ci, write_csv, Series};
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{dosa_search, LoopOrderStrategy, SearchResult};
use dosa_workload::{unique_layers, Network};
use std::path::Path;

/// One strategy's aggregated outcome on one workload.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Strategy label.
    pub label: &'static str,
    /// Mean final best EDP across runs.
    pub final_edp: f64,
    /// 95% CI half-width of the final EDP.
    pub final_ci: f64,
    /// Mean best-so-far curve: (samples, edp).
    pub curve: Vec<(f64, f64)>,
}

/// Results per workload.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Workload evaluated.
    pub network: Network,
    /// Outcomes for Baseline / Iterate / Softmax (in that order).
    pub outcomes: Vec<StrategyOutcome>,
}

/// Average best-so-far histories across runs onto a common sample grid.
pub fn mean_curve(results: &[SearchResult], grid_points: usize) -> Vec<(f64, f64)> {
    let max_samples = results.iter().map(|r| r.samples).max().unwrap_or(0).max(1);
    let mut curve = Vec::with_capacity(grid_points);
    for gi in 1..=grid_points {
        let x = (max_samples * gi) as f64 / grid_points as f64;
        let mut ys = Vec::new();
        for r in results {
            let mut best = f64::INFINITY;
            for p in &r.history {
                if (p.samples as f64) <= x && p.best_edp < best {
                    best = p.best_edp;
                }
            }
            if best.is_finite() {
                ys.push(best.ln());
            }
        }
        if !ys.is_empty() {
            let mean = ys.iter().sum::<f64>() / ys.len() as f64;
            curve.push((x, mean.exp()));
        }
    }
    curve
}

/// Run Figure 6 for one workload.
pub fn run_network(scale: Scale, network: Network, seed: u64, out_dir: &Path) -> Fig6Result {
    let layers = unique_layers(network);
    let hier = Hierarchy::gemmini();
    let strategies = [
        ("Baseline", LoopOrderStrategy::Baseline),
        ("Iterate", LoopOrderStrategy::Iterate),
        ("Softmax", LoopOrderStrategy::Softmax),
    ];
    let runs = scale.runs(3);

    let mut outcomes = Vec::new();
    let mut csv_rows = Vec::new();
    for (label, strat) in strategies {
        let results: Vec<_> = (0..runs)
            .map(|r| {
                // Same start points across methods (§6.2): seed depends on
                // the run index only.
                let cfg = scale.gd_fig6(strat, seed + r as u64);
                dosa_search(&layers, &hier, &cfg)
            })
            .collect();
        let finals: Vec<f64> = results.iter().map(|r| r.best_edp).collect();
        let logs: Vec<f64> = finals.iter().map(|e| e.ln()).collect();
        let (log_mean, log_ci) = mean_ci(&logs);
        let curve = mean_curve(&results, 40);
        for (x, y) in &curve {
            csv_rows.push(vec![
                network.name().to_string(),
                label.to_string(),
                format!("{x:.0}"),
                format!("{y:.6e}"),
            ]);
        }
        outcomes.push(StrategyOutcome {
            label,
            final_edp: log_mean.exp(),
            final_ci: log_ci,
            curve,
        });
    }
    write_csv(
        out_dir,
        &format!(
            "fig6_{}.csv",
            network.name().to_ascii_lowercase().replace('-', "")
        ),
        &["network", "strategy", "samples", "best_edp"],
        &csv_rows,
    );

    let series: Vec<Series> = outcomes
        .iter()
        .map(|o| Series {
            label: o.label.to_string(),
            points: o.curve.clone(),
        })
        .collect();
    println!(
        "{}",
        ascii_log_chart(
            &format!("Figure 6 ({}) — loop ordering strategies", network.name()),
            &series,
            64,
            14
        )
    );
    let base = outcomes[0].final_edp;
    for o in &outcomes {
        println!(
            "  {:<8} final EDP {:.3e} (x{:.2} vs Baseline, ±{:.2} log-CI)",
            o.label,
            o.final_edp,
            base / o.final_edp,
            o.final_ci
        );
    }
    println!("  paper: Iterate 1.70x, Softmax 1.58x over Baseline @7000 samples\n");
    Fig6Result { network, outcomes }
}

/// Run Figure 6 on the paper's two workloads (ResNet-50 and BERT).
pub fn run(scale: Scale, seed: u64, out_dir: &Path) -> Vec<Fig6Result> {
    [Network::ResNet50, Network::Bert]
        .into_iter()
        .map(|n| run_network(scale, n, seed, out_dir))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_search::SearchPoint;

    #[test]
    fn mean_curve_is_monotone() {
        let r1 = SearchResult {
            best_edp: 1.0,
            best_hw: dosa_accel::HardwareConfig::gemmini_default(),
            best_mappings: vec![],
            history: vec![
                SearchPoint {
                    samples: 10,
                    best_edp: 100.0,
                },
                SearchPoint {
                    samples: 20,
                    best_edp: 10.0,
                },
            ],
            samples: 20,
        };
        let curve = mean_curve(&[r1], 10);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }
}
