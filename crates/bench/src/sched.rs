//! Concurrent-scheduling demonstration and CI gate: `repro sched` runs
//! the ROADMAP's mixed-workload scenario — short gradient-descent jobs
//! interleaved with a long BB-BO job on **one** service — and reports
//! which jobs overlapped and finished out of submission order. The
//! `--smoke` variant runs a seconds-scale version that **asserts** the
//! scheduler's two contracts: a short job provably completes while the
//! long job is still `Running`, and every network's result stays
//! bit-identical to its standalone run under the concurrent
//! interleaving.

use crate::batch::assert_parity;
use crate::plot::write_csv;
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{
    dosa_search, random_search, BbboConfig, GdConfig, JobHandle, JobStatus, RandomSearchConfig,
    SchedPolicy, SearchRequest, SearchService, Strategy,
};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::path::Path;
use std::time::{Duration, Instant};

/// One job's outcome in the scheduling demonstration.
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    /// Job label (strategy + policy).
    pub label: String,
    /// Submission order on the service.
    pub submitted: u64,
    /// Completion order observed (0 = finished first).
    pub finished: usize,
    /// Wall-clock time from submission batch to this job's completion.
    pub elapsed: Duration,
    /// Best EDP across the job's networks.
    pub best_edp: f64,
    /// Descent segments dispatched for the job (0 for non-GD jobs).
    pub segments_run: usize,
    /// Longest wait of any of the job's queue entries, in dispatches —
    /// the logical clock the aging rank rule runs on.
    pub max_queue_wait: u64,
}

/// Poll a set of jobs until all are terminal, recording completion order
/// and printing one combined status line per poll.
fn drain_concurrently(jobs: &[(String, JobHandle)], poll: Duration) -> Vec<(usize, Duration)> {
    let t0 = Instant::now();
    let mut finish: Vec<Option<(usize, Duration)>> = vec![None; jobs.len()];
    let mut next_rank = 0;
    while finish.iter().any(|f| f.is_none()) {
        for (i, (_, job)) in jobs.iter().enumerate() {
            if finish[i].is_none() && job.status().is_terminal() {
                finish[i] = Some((next_rank, t0.elapsed()));
                next_rank += 1;
            }
        }
        let line: Vec<String> = jobs
            .iter()
            .map(|(label, job)| {
                let p = job.progress();
                format!("{label} {:?} {} samples", p.status, p.total_samples())
            })
            .collect();
        println!("  [{:>6.2?}] {}", t0.elapsed(), line.join(" | "));
        std::thread::sleep(poll);
    }
    finish
        .into_iter()
        .map(|f| f.expect("all terminal"))
        .collect()
}

/// Run the mixed-workload scheduling demonstration: one long BB-BO job
/// (FIFO, capped to half the budget) plus one short GD job per network
/// (`ShortestFirst`) and one `Priority(1)` random-search job, all on one
/// service — then report completion order versus submission order.
pub fn run(scale: Scale, networks: &[Network], seed: u64, out_dir: &Path) -> Vec<SchedOutcome> {
    let hier = Hierarchy::gemmini();
    let threads = rayon::current_num_threads().max(2);
    let service = SearchService::builder().threads(threads).build();
    println!(
        "concurrent scheduling: {} short GD jobs + 1 BB-BO + 1 random on {} worker slots",
        networks.len(),
        threads
    );

    let mut jobs: Vec<(String, JobHandle)> = Vec::new();
    // The long job first, so FIFO alone would starve everything behind it.
    let long = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network(networks[0].name().to_string(), unique_layers(networks[0]))
                .strategy(Strategy::BayesOpt(scale.bbbo(seed)))
                .max_parallelism((threads / 2).max(1))
                .build(),
        )
        .expect("scale presets always validate");
    jobs.push(("bb-bo/fifo".to_string(), long));
    for (i, net) in networks.iter().enumerate() {
        let job = service
            .submit(
                SearchRequest::builder(hier.clone())
                    .network(net.name().to_string(), unique_layers(*net))
                    .config(scale.gd_main(seed + 1 + i as u64))
                    .policy(SchedPolicy::ShortestFirst)
                    .build(),
            )
            .expect("scale presets always validate");
        jobs.push((format!("gd:{}/shortest", net.name()), job));
    }
    let random = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network(networks[0].name().to_string(), unique_layers(networks[0]))
                .strategy(Strategy::Random(scale.random_search(seed + 50)))
                .policy(SchedPolicy::Priority(1))
                .build(),
        )
        .expect("scale presets always validate");
    jobs.push(("random/priority-1".to_string(), random));

    let finish = drain_concurrently(&jobs, Duration::from_millis(100));
    let outcomes: Vec<SchedOutcome> = jobs
        .iter()
        .zip(&finish)
        .map(|((label, job), (rank, elapsed))| {
            let stats = job.stats();
            SchedOutcome {
                label: label.clone(),
                submitted: job.id(),
                finished: *rank,
                elapsed: *elapsed,
                best_edp: job.progress().best_edp(),
                segments_run: stats.segments_run,
                max_queue_wait: stats.max_queue_wait,
            }
        })
        .collect();

    println!("\ncompletion order (vs submission order):");
    let mut by_finish = outcomes.clone();
    by_finish.sort_by_key(|o| o.finished);
    for o in &by_finish {
        println!(
            "  #{} {:<24} submitted #{} finished after {:>8.2?} best EDP {:.3e} \
             segments {:>4} max wait {:>4} dispatches",
            o.finished,
            o.label,
            o.submitted,
            o.elapsed,
            o.best_edp,
            o.segments_run,
            o.max_queue_wait
        );
    }
    write_outcomes(out_dir, "sched.csv", &outcomes);
    outcomes
}

/// Serialize scheduling outcomes to a CSV (shared by [`run`] and
/// [`run_smoke`] so the two files cannot drift apart).
fn write_outcomes(out_dir: &Path, name: &str, outcomes: &[SchedOutcome]) {
    write_csv(
        out_dir,
        name,
        &[
            "label",
            "submitted",
            "finished",
            "elapsed_ms",
            "best_edp",
            "segments_run",
            "max_queue_wait",
        ],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    o.submitted.to_string(),
                    o.finished.to_string(),
                    o.elapsed.as_millis().to_string(),
                    format!("{:.6e}", o.best_edp),
                    o.segments_run.to_string(),
                    o.max_queue_wait.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Seconds-scale CI smoke of the concurrent scheduler. Asserts, in order:
///
/// 1. **Overlap** — a short `ShortestFirst` GD job submitted *after* a
///    long BB-BO job completes while the long job is still `Running`
///    (the long job caps itself to one of two slots, so a slot is
///    provably free).
/// 2. **Parity under interleaving** — the short job's result, and a
///    mixed concurrent load of GD + random jobs on a wider service, are
///    bit-identical to their standalone runs.
///
/// # Panics
///
/// Panics if the jobs fail to overlap or any result diverges from its
/// standalone run — that is the point: CI fails if the scheduler
/// regresses to one-job-at-a-time or breaks determinism.
pub fn run_smoke(seed: u64, out_dir: &Path) -> Vec<SchedOutcome> {
    let hier = Hierarchy::gemmini();
    let resnet_subset: Vec<Layer> = unique_layers(Network::ResNet50)
        .into_iter()
        .take(2)
        .collect();
    let gemm = vec![Layer::once(
        Problem::matmul("gemm", 64, 256, 256).expect("valid matmul"),
    )];

    // 1. Overlap: a long BB-BO job capped to 1 of 2 slots, then a short
    //    GD job that must complete on the free slot while BB-BO runs.
    let service = SearchService::builder().threads(2).build();
    let long_cfg = BbboConfig {
        num_hw: 10_000, // would take minutes uncancelled
        init_random: 10,
        samples_per_hw: 50,
        candidates: 100,
        seed,
    };
    let long = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("long", gemm.clone())
                .strategy(Strategy::BayesOpt(long_cfg))
                .max_parallelism(1)
                .build(),
        )
        .expect("smoke config validates");
    let short_cfg = GdConfig {
        start_points: 2,
        steps_per_start: 40,
        round_every: 20,
        seed: seed + 1,
        ..GdConfig::default()
    };
    let short = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network("short", gemm.clone())
                .config(short_cfg)
                .policy(SchedPolicy::ShortestFirst)
                .build(),
        )
        .expect("smoke config validates");
    let t0 = Instant::now();
    let short_result = short.wait().expect("short job failed").into_single();
    let short_elapsed = t0.elapsed();
    assert_eq!(
        long.status(),
        JobStatus::Running,
        "smoke: the long BB-BO job must still be Running when the short GD \
         job finishes — the scheduler failed to overlap jobs"
    );
    println!(
        "smoke: short GD job finished in {short_elapsed:?} while the long \
         BB-BO job was still running ({} samples in)",
        long.progress().total_samples()
    );
    long.cancel();
    let long_partial = long.wait().expect("cancelled job failed").into_single();
    assert_parity(
        &short_result,
        &dosa_search(&gemm, &hier, &short_cfg),
        "sched smoke: short GD job under concurrent load",
    );

    // 2. Parity under a wider mixed interleaving: a batched GD job and a
    //    random-search job running concurrently (plus policies exercised
    //    above) must match their standalone runs bit for bit.
    let wide = SearchService::builder()
        .threads(rayon::current_num_threads().max(2))
        .build();
    let gd_cfg = GdConfig {
        start_points: 2,
        steps_per_start: 40,
        round_every: 20,
        seed,
        ..GdConfig::default()
    };
    let random_cfg = RandomSearchConfig {
        num_hw: 3,
        samples_per_hw: 40,
        seed: seed + 2,
    };
    let gd_job = wide
        .submit(
            SearchRequest::builder(hier.clone())
                .network_seeded("resnet50-subset", resnet_subset.clone(), seed)
                .network_seeded("gemm", gemm.clone(), seed + 1)
                .config(gd_cfg)
                .policy(SchedPolicy::ShortestFirst)
                .build(),
        )
        .expect("smoke config validates");
    let random_job = wide
        .submit(
            SearchRequest::builder(hier.clone())
                .network("gemm", gemm.clone())
                .strategy(Strategy::Random(random_cfg))
                .policy(SchedPolicy::Priority(1))
                .build(),
        )
        .expect("smoke config validates");
    let gd_batch = gd_job.wait().expect("gd job failed");
    let random_result = random_job.wait().expect("random job failed").into_single();
    for (name, layers, net_seed) in [
        ("resnet50-subset", &resnet_subset, seed),
        ("gemm", &gemm, seed + 1),
    ] {
        let standalone = dosa_search(
            layers,
            &hier,
            &GdConfig {
                seed: net_seed,
                ..gd_cfg
            },
        );
        assert_parity(
            gd_batch.get(name).expect("network present"),
            &standalone,
            &format!("sched smoke: concurrent GD/{name}"),
        );
    }
    assert_parity(
        &random_result,
        &random_search(&gemm, &hier, &random_cfg),
        "sched smoke: concurrent random search",
    );

    let (long_stats, short_stats) = (long.stats(), short.stats());
    let outcomes = vec![
        SchedOutcome {
            label: "bb-bo/fifo (cancelled)".to_string(),
            submitted: 0,
            finished: 1,
            elapsed: t0.elapsed(),
            best_edp: long_partial.best_edp,
            segments_run: long_stats.segments_run,
            max_queue_wait: long_stats.max_queue_wait,
        },
        SchedOutcome {
            label: "gd/shortest".to_string(),
            submitted: 1,
            finished: 0,
            elapsed: short_elapsed,
            best_edp: short_result.best_edp,
            segments_run: short_stats.segments_run,
            max_queue_wait: short_stats.max_queue_wait,
        },
    ];
    write_outcomes(out_dir, "sched_smoke.csv", &outcomes);
    println!("smoke: OK (jobs overlapped; all results bit-identical to standalone)");
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_checks_its_own_overlap_and_parity_assertions() {
        let dir = std::env::temp_dir().join("dosa_sched_smoke_test");
        let outcomes = run_smoke(5, &dir);
        assert_eq!(outcomes.len(), 2);
        // The short job must have finished first despite later submission.
        assert_eq!(outcomes[1].finished, 0);
        assert!(outcomes[1].best_edp.is_finite());
        // The surfaced scheduler counters: an unsegmented 2-start GD job
        // dispatches exactly one segment per descent, and a one-network
        // BB-BO job is exactly one executable dispatch.
        assert_eq!(outcomes[1].segments_run, 2);
        assert_eq!(
            outcomes[0].segments_run, 1,
            "one dispatch per BB-BO network"
        );
    }
}
