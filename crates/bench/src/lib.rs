//! # dosa-bench
//!
//! The experiment harness of the DOSA reproduction: one module per table /
//! figure of the paper's evaluation (§6), a batched multi-network service
//! mode ([`batch`]), a three-[`Strategy`](dosa_search::Strategy) service
//! comparison ([`strategies`]), a concurrent-scheduling demonstration
//! ([`sched`]), a persistent worker-pool demonstration ([`pool`]), a
//! result-cache / checkpoint-resume demonstration
//! ([`cache`]), shared terminal plotting and CSV output, and quick/paper
//! scaling presets. The `repro` binary exposes each
//! experiment as a subcommand; the Criterion benches under `benches/` run
//! reduced versions of the same code paths.

#![warn(missing_docs)]

pub mod ablation;
pub mod batch;
pub mod cache;
pub mod faults;
pub mod fig10_11;
pub mod fig12;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod info;
pub mod lint;
pub mod perf;
pub mod plot;
pub mod pool;
pub mod scale;
pub mod sched;
pub mod strategies;

pub use scale::Scale;
