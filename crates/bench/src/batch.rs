//! Batched multi-network co-search through the job service: one
//! [`SearchService`] job spanning several networks' start points, with
//! live per-network progress printed while the fleet runs.
//!
//! This is the serving-oriented counterpart of Figure 7's per-network
//! sweeps — the same searches, submitted as one batch. The `--smoke`
//! variant runs a seconds-scale batch and **asserts** the service's core
//! guarantee (each batched network's result is bit-identical to a
//! standalone submission with the same seed), so CI exercises the whole
//! request → handle → progress path on every push.

use crate::plot::write_csv;
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{dosa_search, GdConfig, JobHandle, SearchRequest, SearchResult, SearchService};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::path::Path;
use std::time::Duration;

/// One network's outcome from a batched job.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Network name as submitted.
    pub network: String,
    /// The (bit-identical-to-standalone) search result.
    pub result: SearchResult,
}

/// Poll `job` until it completes, printing one `label`ed progress line
/// per poll. Shared with the [`strategies`](crate::strategies) mode.
pub(crate) fn poll_until_done(label: &str, job: &JobHandle, poll: Duration) {
    while !job.status().is_terminal() {
        let progress = job.progress();
        let per_net: Vec<String> = progress
            .networks
            .iter()
            .map(|n| {
                if n.best_edp.is_finite() {
                    format!(
                        "{} {:>7} samples, best {:.3e}",
                        n.network, n.samples, n.best_edp
                    )
                } else {
                    format!("{} {:>7} samples, best -", n.network, n.samples)
                }
            })
            .collect();
        println!("  [{label} {:?}] {}", progress.status, per_net.join(" | "));
        std::thread::sleep(poll);
    }
}

/// Assert the service guarantee a smoke run enforces: a batched network's
/// result is bit-identical to its standalone run. Shared with the
/// [`strategies`](crate::strategies) smoke.
pub(crate) fn assert_parity(batched: &SearchResult, standalone: &SearchResult, what: &str) {
    assert_eq!(
        batched.best_edp.to_bits(),
        standalone.best_edp.to_bits(),
        "{what}: batched best_edp diverged from standalone"
    );
    assert_eq!(
        batched.best_hw, standalone.best_hw,
        "{what}: best_hw diverged"
    );
    assert_eq!(
        batched.samples, standalone.samples,
        "{what}: sample accounting diverged"
    );
    assert_eq!(
        batched.history, standalone.history,
        "{what}: history diverged"
    );
    println!(
        "smoke: {what} matches standalone ({:.4e})",
        standalone.best_edp
    );
}

fn report(outcomes: &[BatchOutcome], out_dir: &Path) {
    println!("\nper-network results (bit-identical to standalone runs):");
    for o in outcomes {
        println!(
            "  {:<12} best EDP {:.4e} uJ*cycles on {} after {} samples",
            o.network, o.result.best_edp, o.result.best_hw, o.result.samples
        );
    }
    write_csv(
        out_dir,
        "batch.csv",
        &[
            "network", "best_edp", "samples", "pe_side", "acc_kb", "spad_kb",
        ],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.network.clone(),
                    format!("{:.6e}", o.result.best_edp),
                    o.result.samples.to_string(),
                    o.result.best_hw.pe_side().to_string(),
                    format!("{}", o.result.best_hw.acc_kb()),
                    format!("{}", o.result.best_hw.spad_kb()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Run the target networks as one batched service job (seeds `seed`,
/// `seed+1`, ... per network, matching Figure 7's standalone runs).
pub fn run(scale: Scale, networks: &[Network], seed: u64, out_dir: &Path) -> Vec<BatchOutcome> {
    let hier = Hierarchy::gemmini();
    let threads = rayon::current_num_threads();
    let service = SearchService::builder().threads(threads).build();

    let mut builder = SearchRequest::builder(hier).config(scale.gd_main(seed));
    for (i, net) in networks.iter().enumerate() {
        builder =
            builder.network_seeded(net.name().to_string(), unique_layers(*net), seed + i as u64);
    }
    println!(
        "batched job: {} networks, {} worker threads",
        networks.len(),
        threads
    );
    let job = service
        .submit(builder.build())
        .expect("scale presets always validate");
    poll_until_done("batch", &job, Duration::from_millis(500));

    let outcomes: Vec<BatchOutcome> = job
        .wait()
        .expect("batched job failed")
        .networks
        .into_iter()
        .map(|n| BatchOutcome {
            network: n.network,
            result: n.result,
        })
        .collect();
    report(&outcomes, out_dir);
    outcomes
}

/// Seconds-scale CI smoke of the batched path: a {ResNet-50 subset, one
/// matmul} batch, polled live, then checked bit-for-bit against two
/// standalone submissions with the same seeds.
///
/// # Panics
///
/// Panics if any per-network result diverges from its standalone run —
/// that is the point: CI fails if the batching guarantee regresses.
pub fn run_smoke(seed: u64, out_dir: &Path) -> Vec<BatchOutcome> {
    let hier = Hierarchy::gemmini();
    let resnet_subset: Vec<Layer> = unique_layers(Network::ResNet50)
        .into_iter()
        .take(2)
        .collect();
    let gemm = vec![Layer::once(
        Problem::matmul("gemm", 64, 256, 256).expect("valid matmul"),
    )];
    let cfg = GdConfig {
        start_points: 2,
        steps_per_start: 40,
        round_every: 20,
        seed,
        ..GdConfig::default()
    };

    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .build();
    let request = SearchRequest::builder(hier.clone())
        .network_seeded("resnet50-subset", resnet_subset.clone(), seed)
        .network_seeded("gemm", gemm.clone(), seed + 1)
        .config(cfg)
        .build();
    println!("smoke: batched {{ResNet-50 subset, gemm}} job");
    let job = service.submit(request).expect("smoke config validates");
    poll_until_done("batch", &job, Duration::from_millis(50));
    let batch = job.wait().expect("batched job failed");

    // The service guarantee, enforced: batched == standalone, bit for bit.
    for (name, layers, net_seed) in [
        ("resnet50-subset", &resnet_subset, seed),
        ("gemm", &gemm, seed + 1),
    ] {
        let standalone = dosa_search(
            layers,
            &hier,
            &GdConfig {
                seed: net_seed,
                ..cfg
            },
        );
        let batched = batch.get(name).expect("network present in batch");
        assert_parity(batched, &standalone, name);
    }

    let outcomes: Vec<BatchOutcome> = batch
        .networks
        .into_iter()
        .map(|n| BatchOutcome {
            network: n.network,
            result: n.result,
        })
        .collect();
    report(&outcomes, out_dir);
    println!("smoke: OK");
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_checks_its_own_parity_assertions() {
        let dir = std::env::temp_dir().join("dosa_batch_smoke_test");
        let outcomes = run_smoke(7, &dir);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.result.best_edp.is_finite());
        }
    }
}
