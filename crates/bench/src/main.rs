//! `repro` — regenerate the tables and figures of the DOSA paper.
//!
//! ```text
//! repro [--scale quick|paper] [--seed N] [--out DIR] [--threads N] [--smoke] <command> [workload..]
//! commands: info | table2 | fig4 | fig6 | fig7 | fig8 | fig9 | fig10 | fig12 | batch | strategies | sched | pool | cache | faults | bench | all
//! workloads: unet | resnet50 | bert | retinanet
//! ```
//!
//! `--threads N` caps the worker threads the search service fans work
//! items out over (default: all cores). Results are bit-identical for
//! every choice; only wall-clock time changes. `batch` submits all named
//! workloads (default: the four targets) as **one** batched
//! `SearchService` job with live progress polling; `strategies` runs all
//! three search strategies (GD, random, BB-BO) as three concurrent
//! batched jobs on one service; `sched` demonstrates the concurrent
//! scheduler (a long BB-BO job sharing worker slots with short
//! `ShortestFirst` GD jobs and a `Priority` random job, finishing out of
//! submission order); `pool` demonstrates the persistent worker pool (a
//! fixed thread footprint probed via `/proc/self/status` while a mixed
//! workload of segmented GD, random, and watchdog-armed jobs drains);
//! `cache` runs the same batch cold, replayed from
//! the content-addressed result cache, and warm-started; `faults`
//! injects deterministic faults into jobs sharing one service and shows
//! the failure domains holding. `--smoke batch` / `--smoke strategies`
//! / `--smoke sched` / `--smoke pool` / `--smoke cache` /
//! `--smoke faults` run
//! seconds-scale versions that assert batched == standalone bit-parity
//! (and, for `sched`, that jobs provably overlap; for `pool`, the
//! thread-count ceiling over 50 jobs, 1-slot FIFO degeneration, and
//! starvation freedom under a priority stream; for `cache`, 100%
//! replay hits and resume-after-cancel parity; for `faults`, panic
//! containment, typed deadline kills, degrade prefix-parity, and
//! zero-fault bit-exactness), for CI.

use dosa_accel::HardwareConfig;
use dosa_bench::{
    ablation, batch, cache, faults, fig10_11, fig12, fig4, fig6, fig7, fig8, fig9, info, lint,
    perf, pool, sched, strategies, Scale,
};
use dosa_workload::Network;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    threads: Option<usize>,
    smoke: bool,
    command: String,
    networks: Vec<Network>,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = Scale::Quick;
    let mut seed = 0u64;
    let mut out = PathBuf::from("output_dir");
    let mut threads = None;
    let mut smoke = false;
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => return Err(String::new()),
            other => positional.push(other.to_string()),
        }
    }
    let command = positional.first().cloned().unwrap_or_else(|| "help".into());
    let mut networks = Vec::new();
    for name in &positional[1.min(positional.len())..] {
        networks.push(Network::parse(name).ok_or_else(|| format!("unknown workload {name}"))?);
    }
    Ok(Args {
        scale,
        seed,
        out,
        threads,
        smoke,
        command,
        networks,
    })
}

fn usage() {
    eprintln!(
        "usage: repro [--scale quick|paper] [--seed N] [--out DIR] [--threads N] <command> [workload]\n\
         commands:\n\
           info    print Tables 1-6\n\
           table2  print Tables 2 and 4 for the default config\n\
           fig4    differentiable-model correlation study\n\
           fig6    loop-ordering strategies (ResNet-50, BERT)\n\
           fig7    DOSA vs random vs BB-BO [workload]\n\
           fig8    comparison to expert baselines [workload]\n\
           fig9    hardware/mapping attribution\n\
           fig10   latency-model accuracy (Figures 10 & 11)\n\
           fig12   Gemmini-RTL optimization + Table 7\n\
           ablation  design-choice ablations (rounding, lr, start points)\n\
           batch   one batched SearchService job over [workload..]\n\
                   (default: all four targets) with live progress\n\
           strategies  all three search strategies (GD, random, BB-BO)\n\
                   as three concurrent batched service jobs over [workload..]\n\
           sched   concurrent-scheduling demo: a long BB-BO job plus\n\
                   short GD/random jobs sharing one service's worker\n\
                   slots, finishing out of submission order\n\
           pool    persistent worker-pool demo: a mixed workload on a\n\
                   fixed worker set, probing the process thread count\n\
                   and reporting per-job segment / queue-wait counters\n\
           cache   result-cache demo over [workload..]: the same batch\n\
                   cold, replayed 100% from the content-addressed\n\
                   cache, then warm-started from cached neighbors\n\
           faults  fault-injection demo over [workload..]: healthy\n\
                   jobs sharing a service with seeded-chaos jobs,\n\
                   showing per-job failure domains holding\n\
           bench   measure the autodiff hot path (record / sweep /\n\
                   full GD step vs the legacy tape) and regenerate\n\
                   BENCH_6.json at the repository root\n\
           lint    run the workspace invariant checker (dosa-lint):\n\
                   determinism, panic-perimeter, and unsafe-audit\n\
                   rules over every workspace .rs file; exits nonzero\n\
                   on any unsuppressed violation\n\
           all     everything above\n\
         workloads: unet | resnet50 | bert | retinanet\n\
         --threads N caps the service's worker threads (results are\n\
         identical for every N; only wall-clock time changes)\n\
         --smoke batch / --smoke strategies / --smoke sched / --smoke\n\
         pool / --smoke cache / --smoke faults run seconds-scale jobs\n\
         asserting batched == standalone bit-parity (and, for sched,\n\
         that concurrent jobs provably overlap; for pool, the thread\n\
         ceiling, 1-slot FIFO degeneration, and starvation freedom;\n\
         for cache, 100% replay hits\n\
         and resume-after-cancel parity; for faults, panic containment,\n\
         typed deadline kills, degrade prefix-parity, and zero-fault\n\
         bit-exactness); --smoke bench re-measures quickly and\n\
         validates the checked-in BENCH_6.json — the CI smokes"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = args.threads {
        if rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .is_err()
        {
            eprintln!("warning: thread pool already configured; --threads ignored");
        }
    }
    let (scale, seed, out) = (args.scale, args.seed, args.out.as_path());
    println!(
        "repro: scale={:?} seed={} out={} threads={}\n",
        scale,
        seed,
        out.display(),
        args.threads
            .map(|n| n.to_string())
            .unwrap_or_else(|| "auto".into())
    );
    match args.command.as_str() {
        "info" => info::all(),
        "table2" => info::table2(&HardwareConfig::gemmini_default()),
        "fig4" => {
            fig4::run(scale, seed, out);
        }
        "fig6" => {
            fig6::run(scale, seed, out);
        }
        "fig7" => match args.networks.first() {
            Some(n) => {
                fig7::run_network(scale, *n, seed, out);
            }
            None => {
                fig7::run(scale, seed, out);
            }
        },
        "fig8" => match args.networks.first() {
            Some(n) => {
                fig8::run_network(scale, *n, seed, out);
            }
            None => {
                fig8::run(scale, seed, out);
            }
        },
        "fig9" => {
            fig9::run(scale, seed, out);
        }
        "fig10" | "fig11" => {
            fig10_11::run(scale, seed, out);
        }
        "fig12" | "table7" => {
            fig12::run(scale, seed, out);
        }
        "ablation" => {
            ablation::run(scale, seed, out);
        }
        "batch" => {
            if args.smoke {
                batch::run_smoke(seed, out);
            } else {
                let networks = if args.networks.is_empty() {
                    Network::TARGETS.to_vec()
                } else {
                    args.networks.clone()
                };
                batch::run(scale, &networks, seed, out);
            }
        }
        "strategies" => {
            if args.smoke {
                strategies::run_smoke(seed, out);
            } else {
                let networks = if args.networks.is_empty() {
                    Network::TARGETS.to_vec()
                } else {
                    args.networks.clone()
                };
                strategies::run(scale, &networks, seed, out);
            }
        }
        "bench" => {
            if args.smoke {
                perf::run_smoke();
            } else {
                perf::run();
            }
        }
        "lint" => {
            let clean = if args.smoke {
                lint::run_smoke()
            } else {
                lint::run()
            };
            if !clean {
                return ExitCode::FAILURE;
            }
        }
        "cache" => {
            if args.smoke {
                cache::run_smoke(seed, out);
            } else {
                let networks = if args.networks.is_empty() {
                    Network::TARGETS.to_vec()
                } else {
                    args.networks.clone()
                };
                cache::run(scale, &networks, seed, out);
            }
        }
        "faults" => {
            if args.smoke {
                faults::run_smoke(seed, out);
            } else {
                let networks = if args.networks.is_empty() {
                    Network::TARGETS.to_vec()
                } else {
                    args.networks.clone()
                };
                faults::run(scale, &networks, seed, out);
            }
        }
        "pool" => {
            if args.smoke {
                pool::run_smoke(seed, out);
            } else {
                let networks = if args.networks.is_empty() {
                    Network::TARGETS.to_vec()
                } else {
                    args.networks.clone()
                };
                pool::run(scale, &networks, seed, out);
            }
        }
        "sched" => {
            if args.smoke {
                sched::run_smoke(seed, out);
            } else {
                let networks = if args.networks.is_empty() {
                    Network::TARGETS.to_vec()
                } else {
                    args.networks.clone()
                };
                sched::run(scale, &networks, seed, out);
            }
        }
        "all" => {
            info::all();
            fig4::run(scale, seed, out);
            fig6::run(scale, seed, out);
            fig7::run(scale, seed, out);
            fig8::run(scale, seed, out);
            fig9::run(scale, seed, out);
            fig10_11::run(scale, seed, out);
            fig12::run(scale, seed, out);
        }
        _ => {
            usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
