//! Figures 10 and 11: accuracy of the three Gemmini-RTL latency models.
//!
//! Figure 10 evaluates on a held-out split of random mappings of the
//! *training* workloads (paper Spearman ρ: analytical 0.87, DNN-only 0.84,
//! combined 0.92). Figure 11 evaluates on DOSA-generated mappings of the
//! *target* workloads, where the DNN-only model degrades off-distribution
//! (ρ: 0.97 / 0.79 / 0.97).

use crate::plot::{table, write_csv};
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_nn::{spearman, TrainConfig};
use dosa_rtl::simulate_latency;
use dosa_rtl::RtlConfig;
use dosa_search::{
    dosa_search_rtl, generate_rtl_dataset, GdConfig, LatencyModelKind, LatencyPredictor,
    RtlDataset, RtlSample,
};
use dosa_timeloop::min_hw_for_all;
use dosa_workload::{dedup_layers, unique_layers, Network};
use std::path::Path;

/// Spearman correlations of the three models on one dataset.
#[derive(Debug, Clone, Copy)]
pub struct ModelAccuracy {
    /// Analytical-only correlation.
    pub analytical: f64,
    /// DNN-only correlation.
    pub dnn_only: f64,
    /// Analytical + DNN correlation.
    pub combined: f64,
}

/// Results of the prediction-accuracy study.
#[derive(Debug, Clone)]
pub struct Fig1011Result {
    /// Figure 10: random-mapping test split of training workloads.
    pub fig10: ModelAccuracy,
    /// Figure 11: DOSA-generated mappings of target workloads.
    pub fig11: ModelAccuracy,
    /// The trained predictors (reused by Figure 12).
    pub predictors: Vec<LatencyPredictor>,
}

fn accuracy(
    predictors: &[LatencyPredictor],
    data: &[RtlSample],
    hier: &Hierarchy,
) -> ModelAccuracy {
    let truth: Vec<f64> = data.iter().map(|s| s.rtl_cycles.ln()).collect();
    let corr = |p: &LatencyPredictor| {
        let pred: Vec<f64> = data
            .iter()
            .map(|s| p.predict(&s.problem, &s.mapping, &s.hw, hier).max(1.0).ln())
            .collect();
        spearman(&pred, &truth)
    };
    ModelAccuracy {
        analytical: corr(&predictors[0]),
        dnn_only: corr(&predictors[1]),
        combined: corr(&predictors[2]),
    }
}

/// Train the three predictors on the §6.5.1 dataset and return them with
/// the held-out test split.
pub fn train_predictors(
    scale: Scale,
    seed: u64,
    hier: &Hierarchy,
) -> (Vec<LatencyPredictor>, Vec<RtlSample>) {
    // Training corpus: the unique layers of the four training workloads.
    let corpus = dedup_layers(Network::TRAINING.into_iter().flat_map(unique_layers));
    let n = scale.rtl_dataset();
    let dataset = generate_rtl_dataset(&corpus, n, hier, &RtlConfig::default(), seed);
    // 80/20 split by index parity-of-five (deterministic).
    let mut train = RtlDataset::default();
    let mut test = Vec::new();
    for (i, s) in dataset.samples.into_iter().enumerate() {
        if i % 5 == 0 {
            test.push(s);
        } else {
            train.samples.push(s);
        }
    }
    let cfg = TrainConfig {
        epochs: scale.rtl_epochs(),
        batch_size: 64,
        learning_rate: 3e-3,
    };
    let predictors = vec![
        LatencyPredictor::analytical(),
        LatencyPredictor::fit(LatencyModelKind::DnnOnly, &train, &cfg, seed + 1),
        LatencyPredictor::fit(LatencyModelKind::Combined, &train, &cfg, seed + 2),
    ];
    (predictors, test)
}

/// Collect DOSA-generated mappings of the target workloads by running the
/// fixed-PE RTL search with the analytical model, then measuring each
/// chosen mapping on the RTL simulator (the Figure 11 dataset).
pub fn dosa_generated_samples(scale: Scale, seed: u64, hier: &Hierarchy) -> Vec<RtlSample> {
    let mut samples = Vec::new();
    let rtl_cfg = RtlConfig::default();
    for (i, network) in Network::TARGETS.into_iter().enumerate() {
        let layers = unique_layers(network);
        let cfg = GdConfig {
            fixed_pe_side: Some(16),
            ..match scale {
                Scale::Quick => GdConfig {
                    start_points: 1,
                    steps_per_start: 120,
                    round_every: 60,
                    seed: seed + i as u64,
                    ..GdConfig::default()
                },
                Scale::Paper => GdConfig {
                    start_points: 2,
                    steps_per_start: 500,
                    round_every: 250,
                    seed: seed + i as u64,
                    ..GdConfig::default()
                },
            }
        };
        let res = dosa_search_rtl(&layers, hier, &cfg, &LatencyPredictor::analytical());
        let pairs: Vec<_> = layers
            .iter()
            .zip(&res.best_mappings)
            .map(|(l, m)| (&l.problem, m))
            .collect();
        let min = min_hw_for_all(pairs, hier);
        let hw = dosa_accel::HardwareConfig::new(16, min.acc_kb(), min.spad_kb()).expect("valid");
        for (layer, m) in layers.iter().zip(&res.best_mappings) {
            let analytical =
                dosa_timeloop::evaluate_layer(&layer.problem, m, &hw, hier).latency_cycles;
            let rtl = simulate_latency(&layer.problem, m, &hw, hier, &rtl_cfg);
            samples.push(RtlSample {
                problem: layer.problem.clone(),
                mapping: m.clone(),
                hw,
                rtl_cycles: rtl,
                analytical_cycles: analytical,
            });
        }
    }
    samples
}

/// Run the Figure 10 + 11 studies.
pub fn run(scale: Scale, seed: u64, out_dir: &Path) -> Fig1011Result {
    let hier = Hierarchy::gemmini();
    let (predictors, test) = train_predictors(scale, seed, &hier);
    let fig10 = accuracy(&predictors, &test, &hier);
    let dosa_samples = dosa_generated_samples(scale, seed + 1000, &hier);
    let fig11 = accuracy(&predictors, &dosa_samples, &hier);

    let rows = vec![
        vec![
            "Fig 10 (random test split)".to_string(),
            format!("{:.3}", fig10.analytical),
            format!("{:.3}", fig10.dnn_only),
            format!("{:.3}", fig10.combined),
        ],
        vec![
            "Fig 11 (DOSA-generated)".to_string(),
            format!("{:.3}", fig11.analytical),
            format!("{:.3}", fig11.dnn_only),
            format!("{:.3}", fig11.combined),
        ],
    ];
    write_csv(
        out_dir,
        "fig10_11_accuracy.csv",
        &["dataset", "analytical", "dnn_only", "combined"],
        &rows,
    );
    println!("Figures 10 & 11 — Gemmini-RTL latency model accuracy (Spearman rank correlation)");
    println!(
        "{}",
        table(
            &["dataset", "Analytical", "DNN-only", "Analytical+DNN"],
            &rows
        )
    );
    println!("  paper: Fig 10 = 0.87 / 0.84 / 0.92; Fig 11 = 0.97 / 0.79 / 0.97\n");
    Fig1011Result {
        fig10,
        fig11,
        predictors,
    }
}
