//! Figure 9: separating the effects of hardware search and mapping search.
//!
//! For several GD restarts per workload, compare:
//! 1. start-point hardware + CoSA mappings (the GD starting condition),
//! 2. DOSA hardware + CoSA mappings (constant-mapper attribution),
//! 3. DOSA hardware + random-mapper mappings,
//! 4. DOSA hardware + DOSA mappings (the GD end point).
//!
//! Paper: DOSA end points improve 5.75× over start points; DOSA hardware
//! under CoSA improves 3.21×; DOSA mappings beat CoSA by 1.79× and a
//! 1000-sample random mapper by 2.78× on the same hardware.

use crate::plot::{geomean, table, write_csv};
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_model::{round_all, LossOptions};
use dosa_search::{
    evaluate_with_cosa, evaluate_with_random_mapper, generate_start_point, GdConfig, SearchRequest,
    SearchResult, SearchService, Strategy,
};
use dosa_timeloop::evaluate_model;
use dosa_workload::{unique_layers, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// The four evaluation conditions of Figure 9 (geomean EDP across
/// restarts), in plot order.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Start-point hardware, CoSA mappings.
    pub start_cosa: f64,
    /// DOSA hardware, CoSA mappings.
    pub dosa_hw_cosa: f64,
    /// DOSA hardware, random-mapper mappings.
    pub dosa_hw_random: f64,
    /// DOSA hardware, DOSA mappings.
    pub dosa_full: f64,
}

impl Fig9Row {
    /// Normalize each condition to the start point (start = 1.0).
    pub fn normalized(&self) -> [f64; 4] {
        [
            1.0,
            self.dosa_hw_cosa / self.start_cosa,
            self.dosa_hw_random / self.start_cosa,
            self.dosa_full / self.start_cosa,
        ]
    }
}

/// Per-workload result.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Workload evaluated.
    pub network: Network,
    /// Geomean EDPs of the four conditions.
    pub row: Fig9Row,
}

/// Run Figure 9 for one workload.
pub fn run_network(scale: Scale, network: Network, seed: u64) -> Fig9Result {
    let layers = unique_layers(network);
    let hier = Hierarchy::gemmini();
    let restarts = scale.fig9_restarts();
    let problems: Vec<_> = layers.iter().map(|l| l.problem.clone()).collect();

    let mut start_edps = Vec::new();
    let mut hw_cosa_edps = Vec::new();
    let mut hw_random_edps = Vec::new();
    let mut full_edps = Vec::new();

    // All GD restarts run as one batched service job (entries
    // `restart0..restartN`, each seeded like the old standalone runs and
    // bit-identical to them), fanning into one worker fleet.
    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .build();
    let mut builder =
        SearchRequest::builder(hier.clone()).strategy(Strategy::GradientDescent(GdConfig {
            start_points: 1,
            ..scale.gd_main(seed)
        }));
    for r in 0..restarts {
        builder =
            builder.network_seeded(format!("restart{r}"), layers.clone(), seed + 31 * r as u64);
    }
    let dosa_runs: Vec<SearchResult> = service
        .submit(builder.build())
        .expect("scale presets always validate")
        .wait()
        .expect("ablation job failed")
        .networks
        .into_iter()
        .map(|n| n.result)
        .collect();

    for (r, dosa) in dosa_runs.iter().enumerate() {
        let run_seed = seed + 31 * r as u64;
        // Start point: random hardware + CoSA mappings (evaluated with the
        // reference model, like every bar here).
        let mut rng = StdRng::seed_from_u64(run_seed);
        let start = generate_start_point(&mut rng, &layers, &hier, &LossOptions::default());
        let start_mappings = round_all(&start.relaxed, &problems, &hier);
        let paired: Vec<_> = layers.iter().cloned().zip(start_mappings).collect();
        let start_perf = evaluate_model(&paired, &start.seed_hw, &hier);
        start_edps.push(start_perf.edp());
        full_edps.push(dosa.best_edp);

        // DOSA hardware under constant mappers.
        hw_cosa_edps.push(evaluate_with_cosa(&layers, &dosa.best_hw, &hier).edp());
        hw_random_edps.push(
            evaluate_with_random_mapper(
                &layers,
                &dosa.best_hw,
                &hier,
                scale.fig9_random_mapper_samples(),
                run_seed + 1,
            )
            .edp(),
        );
    }

    Fig9Result {
        network,
        row: Fig9Row {
            start_cosa: geomean(&start_edps),
            dosa_hw_cosa: geomean(&hw_cosa_edps),
            dosa_hw_random: geomean(&hw_random_edps),
            dosa_full: geomean(&full_edps),
        },
    }
}

/// Run Figure 9 across the four target workloads and print the attribution
/// table.
pub fn run(scale: Scale, seed: u64, out_dir: &Path) -> Vec<Fig9Result> {
    let results: Vec<Fig9Result> = Network::TARGETS
        .into_iter()
        .map(|n| run_network(scale, n, seed))
        .collect();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for r in &results {
        let n = r.row.normalized();
        rows.push(vec![
            r.network.name().to_string(),
            format!("{:.3}", n[0]),
            format!("{:.3}", n[1]),
            format!("{:.3}", n[2]),
            format!("{:.3}", n[3]),
        ]);
        csv.push(vec![
            r.network.name().to_string(),
            format!("{:.6e}", r.row.start_cosa),
            format!("{:.6e}", r.row.dosa_hw_cosa),
            format!("{:.6e}", r.row.dosa_hw_random),
            format!("{:.6e}", r.row.dosa_full),
        ]);
    }
    // Geomean row.
    let gm =
        |f: fn(&Fig9Row) -> f64| geomean(&results.iter().map(|r| f(&r.row)).collect::<Vec<_>>());
    let start = gm(|r| r.start_cosa);
    let hw_cosa = gm(|r| r.dosa_hw_cosa);
    let hw_rand = gm(|r| r.dosa_hw_random);
    let full = gm(|r| r.dosa_full);
    rows.push(vec![
        "GEOMEAN".to_string(),
        "1.000".to_string(),
        format!("{:.3}", hw_cosa / start),
        format!("{:.3}", hw_rand / start),
        format!("{:.3}", full / start),
    ]);
    write_csv(
        out_dir,
        "fig9_attribution.csv",
        &[
            "network",
            "start_cosa",
            "dosa_hw_cosa",
            "dosa_hw_random",
            "dosa_full",
        ],
        &csv,
    );

    println!("Figure 9 — hardware vs mapping attribution (EDP normalized to start point)");
    println!(
        "{}",
        table(
            &[
                "workload",
                "start+CoSA",
                "DOSA HW+CoSA",
                "DOSA HW+random",
                "DOSA full"
            ],
            &rows
        )
    );
    println!(
        "  improvements: DOSA full {:.2}x over start | DOSA HW under CoSA {:.2}x | DOSA mapping vs CoSA {:.2}x | vs random {:.2}x",
        start / full,
        start / hw_cosa,
        hw_cosa / full,
        hw_rand / full
    );
    println!("  paper: 5.75x over start, 3.21x constant-mapper, 1.79x vs CoSA, 2.78x vs random\n");
    results
}
