//! Persistent worker-pool demonstration and CI gate: `repro pool` runs a
//! mixed workload on one service while probing the process's live
//! OS-thread count (the `Threads:` row of `/proc/self/status`) and
//! reports the pool's fixed footprint plus the per-job scheduler
//! counters (`segments_run`, `max_queue_wait`). The `--smoke` variant
//! **asserts** the three pool contracts for CI:
//!
//! 1. **Thread ceiling** — over a 50-job mixed workload the process
//!    never grows past `slots + jobs-with-watchdogs + const` threads:
//!    workers are spawned once at service construction, never per job,
//!    per fan-out, or per resumed segment.
//! 2. **1-slot degeneration** — a single-slot pool runs jobs strictly
//!    FIFO, one at a time, completing in submission order.
//! 3. **Starvation freedom** — a `Fifo` job survives a continuous
//!    `Priority(0)` stream, finishing within the aging budget instead of
//!    waiting forever (the pre-aging rank rule starves it).

use crate::plot::write_csv;
use crate::scale::Scale;
use dosa_accel::Hierarchy;
use dosa_search::{
    DeadlinePolicy, FaultKind, FaultPlan, GdConfig, JobHandle, JobStatus, SchedPolicy,
    SearchRequest, SearchService, Strategy, AGE_DISPATCH_PERIOD,
};
use dosa_workload::{unique_layers, Layer, Network, Problem};
use std::path::Path;
use std::time::{Duration, Instant};

/// One job's pool-level outcome: the scheduler counters that make the
/// aging and segmentation behavior observable.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Job label (strategy + policy).
    pub label: String,
    /// Descent segments dispatched for the job (0 for non-GD jobs and
    /// full cache replays).
    pub segments_run: usize,
    /// Longest dispatch-count wait of any of the job's queue entries.
    pub max_queue_wait: u64,
    /// Best EDP across the job's networks.
    pub best_edp: f64,
}

/// The live OS-thread count of this process, from the `Threads:` row of
/// `/proc/self/status`.
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status is readable on linux")
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("status has a Threads: row")
        .trim()
        .parse()
        .expect("Threads: row is a count")
}

fn gemm() -> Vec<Layer> {
    vec![Layer::once(
        Problem::matmul("gemm", 64, 256, 256).expect("valid matmul"),
    )]
}

/// Run the pool demonstration: a mixed workload (segmented GD per
/// network, a random job, a watchdog-armed BB-BO job) on one service,
/// sampling the live thread count throughout, then report the pool
/// footprint and per-job scheduler counters.
pub fn run(scale: Scale, networks: &[Network], seed: u64, out_dir: &Path) -> Vec<PoolOutcome> {
    let hier = Hierarchy::gemmini();
    let slots = rayon::current_num_threads().max(2);
    let baseline = live_threads();
    let service = SearchService::builder().threads(slots).build();
    println!(
        "persistent pool: {slots} workers spawned once at construction \
         (process threads {baseline} -> {})",
        live_threads()
    );

    let mut jobs: Vec<(String, JobHandle)> = Vec::new();
    for (i, net) in networks.iter().enumerate() {
        let job = service
            .submit(
                SearchRequest::builder(hier.clone())
                    .network(net.name().to_string(), unique_layers(*net))
                    .config(GdConfig {
                        // Bounded segments: long descents yield the
                        // worker every 64 steps instead of holding it.
                        segment_steps: Some(64),
                        ..scale.gd_main(seed + 1 + i as u64)
                    })
                    .policy(SchedPolicy::ShortestFirst)
                    .build(),
            )
            .expect("scale presets always validate");
        jobs.push((format!("gd:{}/seg64", net.name()), job));
    }
    let random = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network(networks[0].name().to_string(), unique_layers(networks[0]))
                .strategy(Strategy::Random(scale.random_search(seed + 50)))
                .policy(SchedPolicy::Priority(1))
                .build(),
        )
        .expect("scale presets always validate");
    jobs.push(("random/priority-1".to_string(), random));
    let watched = service
        .submit(
            SearchRequest::builder(hier.clone())
                .network(networks[0].name().to_string(), unique_layers(networks[0]))
                .strategy(Strategy::BayesOpt(scale.bbbo(seed)))
                .deadline(Duration::from_secs(3600))
                .deadline_policy(DeadlinePolicy::Degrade)
                .build(),
        )
        .expect("scale presets always validate");
    jobs.push(("bb-bo/fifo+watchdog".to_string(), watched));

    let mut peak = live_threads();
    let t0 = Instant::now();
    while !jobs.iter().all(|(_, job)| job.status().is_terminal()) {
        peak = peak.max(live_threads());
        let line: Vec<String> = jobs
            .iter()
            .map(|(label, job)| {
                let p = job.progress();
                format!("{label} {:?} {} samples", p.status, p.total_samples())
            })
            .collect();
        println!(
            "  [{:>6.2?}] threads {} | {}",
            t0.elapsed(),
            live_threads(),
            line.join(" | ")
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // One watchdog job; the rest of the growth is the pool itself.
    println!(
        "\npeak process threads {peak} (baseline {baseline} + {slots} workers \
         + 1 watchdog; never O(jobs x starts))"
    );

    let outcomes: Vec<PoolOutcome> = jobs
        .iter()
        .map(|(label, job)| {
            let stats = job.stats();
            PoolOutcome {
                label: label.clone(),
                segments_run: stats.segments_run,
                max_queue_wait: stats.max_queue_wait,
                best_edp: job.progress().best_edp(),
            }
        })
        .collect();
    println!("per-job scheduler counters:");
    for o in &outcomes {
        println!(
            "  {:<28} segments_run {:>5} max_queue_wait {:>5} best EDP {:.3e}",
            o.label, o.segments_run, o.max_queue_wait, o.best_edp
        );
    }
    write_outcomes(out_dir, "pool.csv", &outcomes);
    outcomes
}

/// Serialize pool outcomes to a CSV (shared by [`run`] and
/// [`run_smoke`] so the two files cannot drift apart).
fn write_outcomes(out_dir: &Path, name: &str, outcomes: &[PoolOutcome]) {
    write_csv(
        out_dir,
        name,
        &["label", "segments_run", "max_queue_wait", "best_edp"],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    o.segments_run.to_string(),
                    o.max_queue_wait.to_string(),
                    format!("{:.6e}", o.best_edp),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Thread-ceiling gate: a 50-job mixed workload (segmented GD and random
/// search, every tenth job watchdog-armed) on a 4-slot pool must never
/// grow the process past `slots + watchdogs + slack` threads over the
/// pre-service baseline.
///
/// # Panics
///
/// Panics if any sample exceeds the ceiling — the signature of a
/// regression back to spawn-per-fan-out (O(jobs × starts) threads).
fn ceiling_smoke(seed: u64, slack: usize) -> (usize, usize) {
    const SLOTS: usize = 4;
    const JOBS: usize = 50;
    let hier = Hierarchy::gemmini();
    let baseline = live_threads();
    let service = SearchService::builder().threads(SLOTS).build();
    let mut watchdogs = 0usize;
    let handles: Vec<JobHandle> = (0..JOBS)
        .map(|i| {
            let mut builder = SearchRequest::builder(hier.clone());
            builder = if i % 3 == 1 {
                builder.network("gemm", gemm()).strategy(Strategy::Random(
                    dosa_search::RandomSearchConfig {
                        num_hw: 2,
                        samples_per_hw: 30,
                        seed: seed + i as u64,
                    },
                ))
            } else {
                builder.network("gemm", gemm()).config(GdConfig {
                    start_points: 2,
                    steps_per_start: 40,
                    round_every: 20,
                    seed: seed + i as u64,
                    segment_steps: Some(7),
                    ..GdConfig::default()
                })
            };
            if i % 10 == 0 {
                watchdogs += 1;
                builder = builder
                    .deadline(Duration::from_secs(3600))
                    .deadline_policy(DeadlinePolicy::Degrade);
            }
            service
                .submit(builder.build())
                .expect("smoke job validates")
        })
        .collect();

    let ceiling = baseline + SLOTS + watchdogs + slack;
    let mut peak = live_threads();
    let deadline = Instant::now() + Duration::from_secs(300);
    while !handles.iter().all(|h| h.status().is_terminal()) {
        let now = live_threads();
        peak = peak.max(now);
        assert!(
            now <= ceiling,
            "pool smoke: {now} live threads > ceiling {ceiling} over a \
             {JOBS}-job workload (baseline {baseline}, {SLOTS} slots, \
             {watchdogs} watchdogs) — workers are no longer pooled"
        );
        assert!(
            Instant::now() < deadline,
            "pool smoke: 50-job workload did not drain within 300s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    for h in &handles {
        h.wait().expect("smoke job cannot fail");
        assert_eq!(h.status(), JobStatus::Completed);
    }
    println!(
        "smoke: thread ceiling held over {JOBS} jobs — peak {peak} <= \
         {ceiling} (baseline {baseline} + {SLOTS} slots + {watchdogs} \
         watchdogs + {slack} slack)"
    );
    (peak, ceiling)
}

/// 1-slot degeneration gate: three jobs on a single-worker pool run
/// strictly FIFO — no later job leaves `Queued` before its predecessor
/// is terminal, and completion order equals submission order.
///
/// # Panics
///
/// Panics if jobs overlap or complete out of order on the single slot.
fn fifo_smoke(seed: u64) {
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();
    let handles: Vec<JobHandle> = (0..3)
        .map(|i| {
            service
                .submit(
                    SearchRequest::builder(hier.clone())
                        .network("gemm", gemm())
                        .config(GdConfig {
                            start_points: 2,
                            steps_per_start: 60,
                            round_every: 30,
                            seed: seed + i,
                            ..GdConfig::default()
                        })
                        .build(),
                )
                .expect("smoke job validates")
        })
        .collect();
    while !handles.iter().all(|h| h.status().is_terminal()) {
        // Read the later job's status FIRST: terminal is absorbing, so
        // if the later job has left Queued its predecessor must already
        // be terminal — on one slot, strictly FIFO.
        for i in (1..handles.len()).rev() {
            let later = handles[i].status();
            if later != JobStatus::Queued {
                assert!(
                    handles[i - 1].status().is_terminal(),
                    "pool smoke: job {i} was {later:?} while job {} had \
                     not finished — 1 slot must degenerate to FIFO",
                    i - 1
                );
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for h in &handles {
        assert_eq!(h.status(), JobStatus::Completed);
    }
    println!("smoke: single-slot pool degenerated to strict FIFO over 3 jobs");
}

/// Starvation-freedom gate: one queued `Fifo` job under a continuous
/// `Priority(0)` stream (each stream job carries a benign 2ms delay so
/// the generator provably outpaces the single worker, even on one CPU)
/// must finish within the aging budget — a few hundred dispatches — not
/// wait forever.
///
/// # Panics
///
/// Panics if the `Fifo` job is still queued after `CAP` priority
/// submissions (the pre-aging rank rule) or its wait exceeds the aging
/// bound.
fn starvation_smoke(seed: u64) -> u64 {
    const CAP: u64 = 600;
    let hier = Hierarchy::gemmini();
    let service = SearchService::builder().threads(1).build();
    let tiny = |stream_seed: u64| {
        SearchRequest::builder(Hierarchy::gemmini())
            .network("p", gemm())
            .config(GdConfig {
                start_points: 1,
                steps_per_start: 5,
                round_every: 5,
                seed: stream_seed,
                ..GdConfig::default()
            })
            .fault_plan(FaultPlan::new().inject(0, FaultKind::Delay(2)))
            .policy(SchedPolicy::Priority(0))
            .build()
    };
    let mut stream: Vec<JobHandle> = (0..8)
        .map(|i| service.submit(tiny(seed + i)).expect("smoke job validates"))
        .collect();
    let fifo = service
        .submit(
            SearchRequest::builder(hier)
                .network("fifo", gemm())
                .config(GdConfig {
                    start_points: 2,
                    steps_per_start: 40,
                    round_every: 20,
                    seed: seed + 99,
                    ..GdConfig::default()
                })
                .build(),
        )
        .expect("smoke job validates");
    let mut submitted = 8u64;
    while !fifo.status().is_terminal() {
        assert!(
            submitted < CAP,
            "pool smoke: Fifo job still queued after {submitted} \
             Priority(0) submissions — the rank rule starves Fifo traffic"
        );
        stream.retain(|h| !h.status().is_terminal());
        while stream.len() < 8 && submitted < CAP {
            stream.push(service.submit(tiny(seed + submitted)).expect("validates"));
            submitted += 1;
        }
        std::thread::yield_now();
    }
    fifo.wait().expect("fifo job cannot fail");
    let wait = fifo.stats().max_queue_wait;
    assert!(
        wait > 0 && wait <= 4 * AGE_DISPATCH_PERIOD,
        "pool smoke: Fifo waited {wait} dispatches — outside the aging \
         window (0, {}]",
        4 * AGE_DISPATCH_PERIOD
    );
    println!(
        "smoke: Fifo job finished under a {submitted}-submission \
         Priority(0) stream, max wait {wait} dispatches \
         (aging period {AGE_DISPATCH_PERIOD})"
    );
    wait
}

/// Seconds-scale CI smoke of the persistent pool: the thread ceiling
/// over 50 jobs, 1-slot FIFO degeneration, and starvation freedom under
/// a priority stream. See the module docs for the three contracts.
///
/// # Panics
///
/// Panics if any pool contract is violated — that is the point: CI
/// fails if workers stop being pooled, the single-slot order breaks, or
/// aging regresses.
pub fn run_smoke(seed: u64, out_dir: &Path) -> Vec<PoolOutcome> {
    let (peak, ceiling) = ceiling_smoke(seed, 4);
    fifo_smoke(seed);
    let starvation_wait = starvation_smoke(seed);
    let outcomes = vec![
        PoolOutcome {
            label: format!("ceiling: peak {peak} <= {ceiling}"),
            segments_run: 0,
            max_queue_wait: 0,
            best_edp: f64::NAN,
        },
        PoolOutcome {
            label: "starvation-free fifo".to_string(),
            segments_run: 0,
            max_queue_wait: starvation_wait,
            best_edp: f64::NAN,
        },
    ];
    write_outcomes(out_dir, "pool_smoke.csv", &outcomes);
    println!("smoke: OK (thread ceiling, 1-slot FIFO, starvation freedom)");
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ceiling probe reads the process-wide thread count, which
    // sibling unit tests (running concurrently in this binary) would
    // perturb — it is exercised by the `repro --smoke pool` CI gate in
    // its own process instead.
    #[test]
    fn single_slot_and_starvation_gates_hold() {
        fifo_smoke(41);
        let wait = starvation_smoke(42);
        assert!(wait <= 4 * AGE_DISPATCH_PERIOD);
    }
}
