//! `repro lint` / `repro --smoke lint` — the workspace invariant checker.
//!
//! Drives [`dosa_lint`] over every workspace `.rs` file and enforces the
//! project's determinism, panic-perimeter, and unsafe-audit rules (see
//! `ARCHITECTURE.md`, "Static analysis & invariant enforcement"). The
//! full mode prints every diagnostic plus the per-rule summary; the smoke
//! mode is the CI gate — same rules, same files, pass/fail only.

use std::path::PathBuf;

/// Locate the workspace root the way the standalone binary does: ascend
/// from the current directory to the nearest `[workspace]` manifest.
fn workspace_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    dosa_lint::find_workspace_root(&cwd)
}

/// Full report. Returns `true` when the tree is clean.
pub fn run() -> bool {
    lint(false)
}

/// CI gate: identical rule set, terse output. Returns `true` on pass.
pub fn run_smoke() -> bool {
    lint(true)
}

fn lint(smoke: bool) -> bool {
    let Some(root) = workspace_root() else {
        eprintln!("lint: no enclosing Cargo workspace found");
        return false;
    };
    match dosa_lint::lint_workspace(&root) {
        Ok(report) => {
            if smoke {
                for d in &report.violations {
                    println!("{d}");
                }
                println!(
                    "smoke lint: {} files, {} violation(s), {} suppressed — {}",
                    report.files,
                    report.violations.len(),
                    report.suppressed,
                    if report.clean() { "PASS" } else { "FAIL" }
                );
            } else {
                print!("{}", report.render());
            }
            report.clean()
        }
        Err(e) => {
            eprintln!("lint: {e}");
            false
        }
    }
}
