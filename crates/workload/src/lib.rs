//! # dosa-workload
//!
//! DNN workload descriptions for the DOSA reproduction: the seven problem
//! dimensions of §3.1.1 (`R,S,P,Q,C,K,N`), layer ("problem") shapes with
//! stride handling, and the eight networks of Table 6 with repeat counts.
//!
//! ## Example
//!
//! ```
//! use dosa_workload::{Network, unique_layers, Dim};
//!
//! let layers = unique_layers(Network::ResNet50);
//! assert!(layers.len() > 10);
//! let total_macs: u64 = layers.iter().map(|l| l.problem.macs() * l.count).sum();
//! assert!(total_macs > 1_000_000_000); // ResNet-50 is ~4 GMACs
//! assert_eq!(layers[0].problem.size(Dim::N), 1);
//! ```

#![warn(missing_docs)]

mod dims;
mod models;
mod problem;
mod suite;

pub use dims::{Dim, DimSet, Tensor, NUM_DIMS};
pub use models::{alexnet, bert, deepbench, resnet50, resnext50_32x4d, retinanet, unet, vgg16};
pub use problem::{Layer, LayerKind, Problem, ProblemError};
pub use suite::{correlation_corpus, dedup_layers, unique_layers, Network};
