//! Layer ("problem") descriptions: a seven-dimensional iteration space plus
//! convolution strides.

use crate::dims::{Dim, DimSet, Tensor, NUM_DIMS};

use std::fmt;

/// Whether a layer is a convolution or a (possibly batched) matrix multiply.
///
/// Matrix multiplies are expressed in the same seven-dimensional space with
/// `R = S = Q = 1`: `P` is the output-row dimension (M), `C` the reduction
/// dimension, and `K` the output-column dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A 2-D convolution.
    Conv,
    /// A matrix multiplication (fully-connected layer, attention matmul, ...).
    Matmul,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv => f.write_str("conv"),
            LayerKind::Matmul => f.write_str("matmul"),
        }
    }
}

/// Error returned when constructing an invalid [`Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// A dimension bound was zero.
    ZeroDim(Dim),
    /// A stride was zero.
    ZeroStride,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::ZeroDim(d) => write!(f, "dimension {d} must be at least 1"),
            ProblemError::ZeroStride => write!(f, "strides must be at least 1"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A single DNN layer expressed as a seven-dimensional iteration space
/// (§3.1.1 of the paper).
///
/// # Examples
///
/// ```
/// use dosa_workload::{Dim, Problem};
/// let conv = Problem::conv("conv1", 3, 3, 56, 56, 64, 64, 1).unwrap();
/// assert_eq!(conv.size(Dim::C), 64);
/// assert_eq!(conv.macs(), 3 * 3 * 56 * 56 * 64 * 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Problem {
    name: String,
    kind: LayerKind,
    sizes: [u64; NUM_DIMS],
    stride_p: u64,
    stride_q: u64,
}

impl Problem {
    /// Create a problem from explicit bounds `[R,S,P,Q,C,K,N]` and strides.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] if any bound or stride is zero.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        sizes: [u64; NUM_DIMS],
        stride_p: u64,
        stride_q: u64,
    ) -> Result<Problem, ProblemError> {
        for (i, &s) in sizes.iter().enumerate() {
            if s == 0 {
                return Err(ProblemError::ZeroDim(
                    Dim::from_index(i).expect("index < 7"),
                ));
            }
        }
        if stride_p == 0 || stride_q == 0 {
            return Err(ProblemError::ZeroStride);
        }
        Ok(Problem {
            name: name.into(),
            kind,
            sizes,
            stride_p,
            stride_q,
        })
    }

    /// Convenience constructor for a convolution with a square stride.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] if any bound or the stride is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        r: u64,
        s: u64,
        p: u64,
        q: u64,
        c: u64,
        k: u64,
        stride: u64,
    ) -> Result<Problem, ProblemError> {
        Problem::new(name, LayerKind::Conv, [r, s, p, q, c, k, 1], stride, stride)
    }

    /// Convenience constructor for a matrix multiply `M×K_red×N_out`
    /// (maps to `P = m`, `C = k_red`, `K = n_out`).
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] if any of the three sizes is zero.
    pub fn matmul(
        name: impl Into<String>,
        m: u64,
        k_red: u64,
        n_out: u64,
    ) -> Result<Problem, ProblemError> {
        Problem::new(name, LayerKind::Matmul, [1, 1, m, 1, k_red, n_out, 1], 1, 1)
    }

    /// The layer's name (unique within a network description).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a convolution or a matmul.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Bound of dimension `d`.
    #[inline]
    pub fn size(&self, d: Dim) -> u64 {
        self.sizes[d.index()]
    }

    /// All seven bounds in canonical order `[R,S,P,Q,C,K,N]`.
    #[inline]
    pub fn sizes(&self) -> [u64; NUM_DIMS] {
        self.sizes
    }

    /// Convolution stride along the `P` (height) axis.
    #[inline]
    pub fn stride_p(&self) -> u64 {
        self.stride_p
    }

    /// Convolution stride along the `Q` (width) axis.
    #[inline]
    pub fn stride_q(&self) -> u64 {
        self.stride_q
    }

    /// Total number of multiply-accumulate operations: the product of all
    /// seven bounds (Eq. 7 evaluated on the full problem).
    pub fn macs(&self) -> u64 {
        self.sizes.iter().product()
    }

    /// Number of words in tensor `t` for the full problem.
    ///
    /// Inputs account for the stride-dependent halo:
    /// `H = stride_p·(P−1) + R`, `W = stride_q·(Q−1) + S` (cf. Eq. 3).
    pub fn tensor_size(&self, t: Tensor) -> u64 {
        match t {
            Tensor::Weights => {
                self.size(Dim::R) * self.size(Dim::S) * self.size(Dim::C) * self.size(Dim::K)
            }
            Tensor::Inputs => {
                let h = self.stride_p * (self.size(Dim::P) - 1) + self.size(Dim::R);
                let w = self.stride_q * (self.size(Dim::Q) - 1) + self.size(Dim::S);
                self.size(Dim::C) * self.size(Dim::N) * h * w
            }
            Tensor::Outputs => {
                self.size(Dim::P) * self.size(Dim::Q) * self.size(Dim::K) * self.size(Dim::N)
            }
        }
    }

    /// Dimensions whose bound exceeds 1 (the ones worth tiling).
    pub fn nontrivial_dims(&self) -> DimSet {
        Dim::ALL.into_iter().filter(|&d| self.size(d) > 1).collect()
    }

    /// A stable identity key ignoring the name: two layers with equal shapes
    /// and strides are the same problem for deduplication purposes.
    pub fn shape_key(&self) -> ([u64; NUM_DIMS], u64, u64) {
        (self.sizes, self.stride_p, self.stride_q)
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] R={} S={} P={} Q={} C={} K={} N={} stride={}x{}",
            self.name,
            self.kind,
            self.sizes[0],
            self.sizes[1],
            self.sizes[2],
            self.sizes[3],
            self.sizes[4],
            self.sizes[5],
            self.sizes[6],
            self.stride_p,
            self.stride_q
        )
    }
}

/// A layer together with the number of times it appears in the network
/// (§4.5: repeated layers share one mapping, weighted by their count).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    /// The layer shape.
    pub problem: Problem,
    /// How many times this exact shape appears in the network.
    pub count: u64,
}

impl Layer {
    /// A layer appearing exactly once.
    pub fn once(problem: Problem) -> Layer {
        Layer { problem, count: 1 }
    }

    /// A layer appearing `count` times.
    pub fn repeated(problem: Problem, count: u64) -> Layer {
        Layer { problem, count }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x{}", self.problem, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_tensor_sizes() {
        // The layer from Figure 3 of the paper:
        // N=1, R=1, S=1, P=56, Q=56, C=64, K=64.
        let p = Problem::conv("fig3", 1, 1, 56, 56, 64, 64, 1).unwrap();
        assert_eq!(p.tensor_size(Tensor::Weights), 4096);
        assert_eq!(p.tensor_size(Tensor::Inputs), 200_704);
        assert_eq!(p.tensor_size(Tensor::Outputs), 200_704);
        assert_eq!(p.macs(), 56 * 56 * 64 * 64);
    }

    #[test]
    fn strided_conv_input_halo() {
        let p = Problem::conv("s2", 3, 3, 8, 8, 4, 4, 2).unwrap();
        // H = 2*(8-1)+3 = 17
        assert_eq!(p.tensor_size(Tensor::Inputs), 4 * 17 * 17);
    }

    #[test]
    fn matmul_mapping() {
        let m = Problem::matmul("fc", 512, 768, 3072).unwrap();
        assert_eq!(m.size(Dim::P), 512);
        assert_eq!(m.size(Dim::C), 768);
        assert_eq!(m.size(Dim::K), 3072);
        assert_eq!(m.size(Dim::R), 1);
        assert_eq!(m.macs(), 512 * 768 * 3072);
        assert_eq!(m.tensor_size(Tensor::Weights), 768 * 3072);
        assert_eq!(m.tensor_size(Tensor::Inputs), 512 * 768);
        assert_eq!(m.tensor_size(Tensor::Outputs), 512 * 3072);
    }

    #[test]
    fn rejects_zero_dims_and_strides() {
        assert!(matches!(
            Problem::conv("bad", 0, 3, 8, 8, 4, 4, 1),
            Err(ProblemError::ZeroDim(Dim::R))
        ));
        assert!(matches!(
            Problem::new("bad", LayerKind::Conv, [1; 7], 0, 1),
            Err(ProblemError::ZeroStride)
        ));
    }

    #[test]
    fn nontrivial_dims_filter() {
        let m = Problem::matmul("fc", 128, 256, 512).unwrap();
        assert_eq!(
            m.nontrivial_dims(),
            DimSet::from_dims(&[Dim::P, Dim::C, Dim::K])
        );
    }

    #[test]
    fn shape_key_ignores_name() {
        let a = Problem::conv("a", 3, 3, 8, 8, 4, 4, 1).unwrap();
        let b = Problem::conv("b", 3, 3, 8, 8, 4, 4, 1).unwrap();
        assert_eq!(a.shape_key(), b.shape_key());
        assert_ne!(a, b);
    }

    #[test]
    fn display_contains_fields() {
        let p = Problem::conv("x", 3, 3, 8, 8, 4, 4, 2).unwrap();
        let s = p.to_string();
        assert!(s.contains("x") && s.contains("stride=2x2"));
    }
}
