//! Workload suites (Table 6) and unique-layer deduplication.

use crate::models;
use crate::problem::Layer;

use std::collections::HashMap;
use std::fmt;

/// One of the eight networks of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Network {
    /// AlexNet (training workload).
    AlexNet,
    /// VGG-16 (training workload).
    Vgg16,
    /// ResNeXt-50-32x4d (training workload).
    ResNext50,
    /// DeepBench OCR + face recognition kernels (training workload).
    DeepBench,
    /// BERT-base (target workload).
    Bert,
    /// ResNet-50 (target workload).
    ResNet50,
    /// RetinaNet non-backbone layers (target workload).
    RetinaNet,
    /// U-Net (target workload).
    UNet,
}

impl Network {
    /// The four training workloads (left column of Table 6).
    pub const TRAINING: [Network; 4] = [
        Network::AlexNet,
        Network::ResNext50,
        Network::Vgg16,
        Network::DeepBench,
    ];

    /// The four target workloads (right column of Table 6).
    pub const TARGETS: [Network; 4] = [
        Network::UNet,
        Network::ResNet50,
        Network::Bert,
        Network::RetinaNet,
    ];

    /// All eight networks.
    pub const ALL: [Network; 8] = [
        Network::AlexNet,
        Network::Vgg16,
        Network::ResNext50,
        Network::DeepBench,
        Network::Bert,
        Network::ResNet50,
        Network::RetinaNet,
        Network::UNet,
    ];

    /// Layer table for this network (with repeat counts).
    pub fn layers(self) -> Vec<Layer> {
        match self {
            Network::AlexNet => models::alexnet(),
            Network::Vgg16 => models::vgg16(),
            Network::ResNext50 => models::resnext50_32x4d(),
            Network::DeepBench => models::deepbench(),
            Network::Bert => models::bert(),
            Network::ResNet50 => models::resnet50(),
            Network::RetinaNet => models::retinanet(),
            Network::UNet => models::unet(),
        }
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Network::AlexNet => "AlexNet",
            Network::Vgg16 => "VGG-16",
            Network::ResNext50 => "ResNeXt-50-32x4d",
            Network::DeepBench => "DeepBench",
            Network::Bert => "BERT",
            Network::ResNet50 => "ResNet-50",
            Network::RetinaNet => "RetinaNet",
            Network::UNet => "U-Net",
        }
    }

    /// Parse a CLI-style name (`unet | resnet50 | bert | retinanet | ...`).
    pub fn parse(s: &str) -> Option<Network> {
        match s.to_ascii_lowercase().as_str() {
            "alexnet" => Some(Network::AlexNet),
            "vgg16" | "vgg-16" => Some(Network::Vgg16),
            "resnext50" | "resnext" => Some(Network::ResNext50),
            "deepbench" => Some(Network::DeepBench),
            "bert" => Some(Network::Bert),
            "resnet50" | "resnet-50" => Some(Network::ResNet50),
            "retinanet" => Some(Network::RetinaNet),
            "unet" | "u-net" => Some(Network::UNet),
            _ => None,
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Deduplicate layers by shape: layers with identical bounds and strides are
/// merged, summing their counts (§4.5: one mapping per unique layer).
pub fn dedup_layers(layers: impl IntoIterator<Item = Layer>) -> Vec<Layer> {
    let mut order = Vec::new();
    let mut index: HashMap<_, usize> = HashMap::new();
    for layer in layers {
        let key = layer.problem.shape_key();
        match index.get(&key) {
            Some(&i) => {
                let merged: &mut Layer = &mut order[i];
                merged.count += layer.count;
            }
            None => {
                index.insert(key, order.len());
                order.push(layer);
            }
        }
    }
    order
}

/// The unique layers of a network, merged by shape.
pub fn unique_layers(net: Network) -> Vec<Layer> {
    dedup_layers(net.layers())
}

/// The correlation corpus for Figure 4: the unique layer shapes across every
/// network in Table 6 (the paper evaluates 73 unique matmul/conv layers).
pub fn correlation_corpus() -> Vec<Layer> {
    dedup_layers(Network::ALL.into_iter().flat_map(Network::layers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_merges_counts() {
        let layers = models::resnet50();
        let unique = dedup_layers(layers.clone());
        let total_before: u64 = layers.iter().map(|l| l.count).sum();
        let total_after: u64 = unique.iter().map(|l| l.count).sum();
        assert_eq!(total_before, total_after);
        assert!(unique.len() <= layers.len());
        // All shapes unique after dedup.
        let mut keys: Vec<_> = unique.iter().map(|l| l.problem.shape_key()).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn corpus_has_dozens_of_unique_layers() {
        let corpus = correlation_corpus();
        // The paper evaluates 73 unique layers; our tables should land in the
        // same regime.
        assert!(
            (60..=130).contains(&corpus.len()),
            "corpus has {} unique layers",
            corpus.len()
        );
    }

    #[test]
    fn parse_round_trips_cli_names() {
        for net in Network::ALL {
            let lowered = match net {
                Network::ResNext50 => "resnext50".to_string(),
                Network::Vgg16 => "vgg16".to_string(),
                other => other.name().to_ascii_lowercase().replace('-', ""),
            };
            let parsed = Network::parse(&lowered).or_else(|| Network::parse(net.name()));
            assert_eq!(parsed, Some(net), "failed to parse {lowered}");
        }
        assert_eq!(Network::parse("nonsense"), None);
    }

    #[test]
    fn training_and_targets_partition_all() {
        let mut all: Vec<_> = Network::TRAINING
            .into_iter()
            .chain(Network::TARGETS)
            .collect();
        all.sort_by_key(|n| n.name());
        let mut expected: Vec<_> = Network::ALL.into_iter().collect();
        expected.sort_by_key(|n| n.name());
        assert_eq!(all, expected);
    }

    #[test]
    fn every_network_nonempty() {
        for net in Network::ALL {
            assert!(!net.layers().is_empty(), "{net} has no layers");
        }
    }
}
