//! Layer tables for the eight networks of Table 6.
//!
//! Training workloads (used to fit the learned latency model, §4.7/§6.5):
//! AlexNet, ResNeXt-50-32x4d, VGG-16, DeepBench (OCR + face recognition).
//!
//! Target workloads (optimized by DOSA, §6): BERT, ResNet-50, RetinaNet
//! (non-backbone layers), U-Net.
//!
//! Shapes follow the standard torchvision / original-paper definitions with
//! batch size 1. Grouped convolutions (ResNeXt) are modeled as `groups`
//! repetitions of a conv with `C/groups` input and `K/groups` output channels,
//! the usual reduction used by Timeloop-style models.

use crate::problem::{Layer, Problem};

#[allow(clippy::too_many_arguments)] // mirrors Problem::conv's dimension list
fn conv(name: &str, r: u64, s: u64, p: u64, q: u64, c: u64, k: u64, stride: u64) -> Problem {
    Problem::conv(name, r, s, p, q, c, k, stride).expect("static layer tables are valid")
}

fn mm(name: &str, m: u64, k_red: u64, n_out: u64) -> Problem {
    Problem::matmul(name, m, k_red, n_out).expect("static layer tables are valid")
}

/// AlexNet (Krizhevsky et al., torchvision variant), 5 convs + 3 FC layers.
pub fn alexnet() -> Vec<Layer> {
    vec![
        Layer::once(conv("alexnet_conv1", 11, 11, 55, 55, 3, 64, 4)),
        Layer::once(conv("alexnet_conv2", 5, 5, 27, 27, 64, 192, 1)),
        Layer::once(conv("alexnet_conv3", 3, 3, 13, 13, 192, 384, 1)),
        Layer::once(conv("alexnet_conv4", 3, 3, 13, 13, 384, 256, 1)),
        Layer::once(conv("alexnet_conv5", 3, 3, 13, 13, 256, 256, 1)),
        Layer::once(mm("alexnet_fc6", 1, 9216, 4096)),
        Layer::once(mm("alexnet_fc7", 1, 4096, 4096)),
        Layer::once(mm("alexnet_fc8", 1, 4096, 1000)),
    ]
}

/// VGG-16 (configuration D): 13 convs + 3 FC layers.
pub fn vgg16() -> Vec<Layer> {
    vec![
        Layer::once(conv("vgg16_conv1_1", 3, 3, 224, 224, 3, 64, 1)),
        Layer::once(conv("vgg16_conv1_2", 3, 3, 224, 224, 64, 64, 1)),
        Layer::once(conv("vgg16_conv2_1", 3, 3, 112, 112, 64, 128, 1)),
        Layer::once(conv("vgg16_conv2_2", 3, 3, 112, 112, 128, 128, 1)),
        Layer::once(conv("vgg16_conv3_1", 3, 3, 56, 56, 128, 256, 1)),
        Layer::repeated(conv("vgg16_conv3_2", 3, 3, 56, 56, 256, 256, 1), 2),
        Layer::once(conv("vgg16_conv4_1", 3, 3, 28, 28, 256, 512, 1)),
        Layer::repeated(conv("vgg16_conv4_2", 3, 3, 28, 28, 512, 512, 1), 2),
        Layer::once(conv("vgg16_conv5_1", 3, 3, 14, 14, 512, 512, 1)),
        Layer::repeated(conv("vgg16_conv5_2", 3, 3, 14, 14, 512, 512, 1), 2),
        Layer::once(mm("vgg16_fc6", 1, 25088, 4096)),
        Layer::once(mm("vgg16_fc7", 1, 4096, 4096)),
        Layer::once(mm("vgg16_fc8", 1, 4096, 1000)),
    ]
}

/// ResNet-50 (He et al.), bottleneck v1 with stride on the 3x3 convs.
pub fn resnet50() -> Vec<Layer> {
    let mut layers = vec![Layer::once(conv(
        "resnet50_conv1",
        7,
        7,
        112,
        112,
        3,
        64,
        2,
    ))];
    // Stage 2 (56x56, widths 64 -> 256), 3 blocks.
    layers.extend([
        Layer::once(conv("resnet50_s2_b1_1x1a", 1, 1, 56, 56, 64, 64, 1)),
        Layer::repeated(conv("resnet50_s2_3x3", 3, 3, 56, 56, 64, 64, 1), 3),
        Layer::repeated(conv("resnet50_s2_1x1b", 1, 1, 56, 56, 64, 256, 1), 3),
        Layer::once(conv("resnet50_s2_ds", 1, 1, 56, 56, 64, 256, 1)),
        Layer::repeated(conv("resnet50_s2_1x1a", 1, 1, 56, 56, 256, 64, 1), 2),
    ]);
    // Stage 3 (28x28, widths 128 -> 512), 4 blocks.
    layers.extend([
        Layer::once(conv("resnet50_s3_1x1a_in", 1, 1, 28, 28, 256, 128, 2)),
        Layer::repeated(conv("resnet50_s3_3x3", 3, 3, 28, 28, 128, 128, 1), 4),
        Layer::repeated(conv("resnet50_s3_1x1b", 1, 1, 28, 28, 128, 512, 1), 4),
        Layer::once(conv("resnet50_s3_ds", 1, 1, 28, 28, 256, 512, 2)),
        Layer::repeated(conv("resnet50_s3_1x1a", 1, 1, 28, 28, 512, 128, 1), 3),
    ]);
    // Stage 4 (14x14, widths 256 -> 1024), 6 blocks.
    layers.extend([
        Layer::once(conv("resnet50_s4_1x1a_in", 1, 1, 14, 14, 512, 256, 2)),
        Layer::repeated(conv("resnet50_s4_3x3", 3, 3, 14, 14, 256, 256, 1), 6),
        Layer::repeated(conv("resnet50_s4_1x1b", 1, 1, 14, 14, 256, 1024, 1), 6),
        Layer::once(conv("resnet50_s4_ds", 1, 1, 14, 14, 512, 1024, 2)),
        Layer::repeated(conv("resnet50_s4_1x1a", 1, 1, 14, 14, 1024, 256, 1), 5),
    ]);
    // Stage 5 (7x7, widths 512 -> 2048), 3 blocks.
    layers.extend([
        Layer::once(conv("resnet50_s5_1x1a_in", 1, 1, 7, 7, 1024, 512, 2)),
        Layer::repeated(conv("resnet50_s5_3x3", 3, 3, 7, 7, 512, 512, 1), 3),
        Layer::repeated(conv("resnet50_s5_1x1b", 1, 1, 7, 7, 512, 2048, 1), 3),
        Layer::once(conv("resnet50_s5_ds", 1, 1, 7, 7, 1024, 2048, 2)),
        Layer::repeated(conv("resnet50_s5_1x1a", 1, 1, 7, 7, 2048, 512, 1), 2),
    ]);
    layers.push(Layer::once(mm("resnet50_fc", 1, 2048, 1000)));
    layers
}

/// ResNeXt-50-32x4d (Xie et al.). Grouped 3x3 convolutions with 32 groups are
/// modeled as 32 repetitions of a `C/32 -> K/32` convolution.
pub fn resnext50_32x4d() -> Vec<Layer> {
    vec![
        Layer::once(conv("resnext50_conv1", 7, 7, 112, 112, 3, 64, 2)),
        // Stage 2 (56x56, width 128, grouped 3x3 with 4 channels/group).
        Layer::once(conv("resnext50_s2_1x1a_in", 1, 1, 56, 56, 64, 128, 1)),
        Layer::repeated(conv("resnext50_s2_g3x3", 3, 3, 56, 56, 4, 4, 1), 3 * 32),
        Layer::repeated(conv("resnext50_s2_1x1b", 1, 1, 56, 56, 128, 256, 1), 3),
        Layer::once(conv("resnext50_s2_ds", 1, 1, 56, 56, 64, 256, 1)),
        Layer::repeated(conv("resnext50_s2_1x1a", 1, 1, 56, 56, 256, 128, 1), 2),
        // Stage 3 (28x28, width 256, 8 channels/group).
        Layer::once(conv("resnext50_s3_1x1a_in", 1, 1, 28, 28, 256, 256, 2)),
        Layer::repeated(conv("resnext50_s3_g3x3", 3, 3, 28, 28, 8, 8, 1), 4 * 32),
        Layer::repeated(conv("resnext50_s3_1x1b", 1, 1, 28, 28, 256, 512, 1), 4),
        Layer::once(conv("resnext50_s3_ds", 1, 1, 28, 28, 256, 512, 2)),
        Layer::repeated(conv("resnext50_s3_1x1a", 1, 1, 28, 28, 512, 256, 1), 3),
        // Stage 4 (14x14, width 512, 16 channels/group).
        Layer::once(conv("resnext50_s4_1x1a_in", 1, 1, 14, 14, 512, 512, 2)),
        Layer::repeated(conv("resnext50_s4_g3x3", 3, 3, 14, 14, 16, 16, 1), 6 * 32),
        Layer::repeated(conv("resnext50_s4_1x1b", 1, 1, 14, 14, 512, 1024, 1), 6),
        Layer::once(conv("resnext50_s4_ds", 1, 1, 14, 14, 512, 1024, 2)),
        Layer::repeated(conv("resnext50_s4_1x1a", 1, 1, 14, 14, 1024, 512, 1), 5),
        // Stage 5 (7x7, width 1024, 32 channels/group).
        Layer::once(conv("resnext50_s5_1x1a_in", 1, 1, 7, 7, 1024, 1024, 2)),
        Layer::repeated(conv("resnext50_s5_g3x3", 3, 3, 7, 7, 32, 32, 1), 3 * 32),
        Layer::repeated(conv("resnext50_s5_1x1b", 1, 1, 7, 7, 1024, 2048, 1), 3),
        Layer::once(conv("resnext50_s5_ds", 1, 1, 7, 7, 1024, 2048, 2)),
        Layer::repeated(conv("resnext50_s5_1x1a", 1, 1, 7, 7, 2048, 1024, 1), 2),
        Layer::once(mm("resnext50_fc", 1, 2048, 1000)),
    ]
}

/// DeepBench inference GEMM/conv kernels from the OCR and face-recognition
/// suites (Baidu DeepBench).
pub fn deepbench() -> Vec<Layer> {
    vec![
        // OCR GEMMs (M, K, N).
        Layer::once(mm("deepbench_ocr_gemm1", 5124, 2048, 700)),
        Layer::once(mm("deepbench_ocr_gemm2", 35, 2048, 700)),
        Layer::once(mm("deepbench_ocr_gemm3", 5124, 2560, 700)),
        Layer::once(mm("deepbench_ocr_gemm4", 35, 2560, 700)),
        Layer::once(mm("deepbench_ocr_gemm5", 3072, 1024, 1500)),
        Layer::once(mm("deepbench_ocr_gemm6", 512, 2816, 6000)),
        Layer::once(mm("deepbench_ocr_gemm7", 1024, 3584, 6000)),
        // Face-recognition (DeepSpeech-style) convolutions.
        Layer::once(conv("deepbench_face_conv1", 3, 3, 108, 108, 3, 64, 2)),
        Layer::once(conv("deepbench_face_conv2", 3, 3, 54, 54, 64, 64, 1)),
        Layer::once(conv("deepbench_face_conv3", 3, 3, 27, 27, 128, 128, 1)),
        Layer::once(conv("deepbench_face_conv4", 3, 3, 14, 14, 128, 256, 1)),
        Layer::once(conv("deepbench_face_conv5", 3, 3, 7, 7, 256, 512, 1)),
    ]
}

/// BERT-base encoder (Devlin et al.), sequence length 512, 12 layers.
///
/// Per encoder layer: QKV projections, attention score and context matmuls
/// (12 heads folded into the batch-of-matmuls count), output projection, and
/// the two feed-forward matmuls.
pub fn bert() -> Vec<Layer> {
    vec![
        Layer::repeated(mm("bert_qkv_proj", 512, 768, 768), 12 * 3),
        Layer::repeated(mm("bert_attn_scores", 512, 64, 512), 12 * 12),
        Layer::repeated(mm("bert_attn_context", 512, 512, 64), 12 * 12),
        Layer::repeated(mm("bert_out_proj", 512, 768, 768), 12),
        Layer::repeated(mm("bert_ffn1", 512, 768, 3072), 12),
        Layer::repeated(mm("bert_ffn2", 512, 3072, 768), 12),
    ]
}

/// RetinaNet (Lin et al.) layers that are *not* part of the ResNet backbone:
/// FPN lateral/output convs plus the classification and box subnets, over a
/// 640x640 input (pyramid levels P3..P7).
pub fn retinanet() -> Vec<Layer> {
    let mut layers = vec![
        // FPN laterals from C3/C4/C5 feature maps.
        Layer::once(conv("retinanet_fpn_lat_c3", 1, 1, 80, 80, 512, 256, 1)),
        Layer::once(conv("retinanet_fpn_lat_c4", 1, 1, 40, 40, 1024, 256, 1)),
        Layer::once(conv("retinanet_fpn_lat_c5", 1, 1, 20, 20, 2048, 256, 1)),
        // FPN output convs at P3..P5.
        Layer::once(conv("retinanet_fpn_out_p3", 3, 3, 80, 80, 256, 256, 1)),
        Layer::once(conv("retinanet_fpn_out_p4", 3, 3, 40, 40, 256, 256, 1)),
        Layer::once(conv("retinanet_fpn_out_p5", 3, 3, 20, 20, 256, 256, 1)),
        // P6/P7 extra levels.
        Layer::once(conv("retinanet_fpn_p6", 3, 3, 10, 10, 2048, 256, 2)),
        Layer::once(conv("retinanet_fpn_p7", 3, 3, 5, 5, 256, 256, 2)),
    ];
    // Class and box subnets: 4 intermediate 3x3/256 convs + 1 head conv,
    // shared across levels (so each runs once per level).
    for (lvl, hw) in [(3u32, 80u64), (4, 40), (5, 20), (6, 10), (7, 5)] {
        layers.push(Layer::repeated(
            conv(
                &format!("retinanet_subnet_p{lvl}"),
                3,
                3,
                hw,
                hw,
                256,
                256,
                1,
            ),
            // 4 tower convs in the class subnet + 4 in the box subnet.
            8,
        ));
        layers.push(Layer::once(conv(
            &format!("retinanet_cls_head_p{lvl}"),
            3,
            3,
            hw,
            hw,
            256,
            720,
            1,
        )));
        layers.push(Layer::once(conv(
            &format!("retinanet_box_head_p{lvl}"),
            3,
            3,
            hw,
            hw,
            256,
            36,
            1,
        )));
    }
    layers
}

/// U-Net (Ronneberger et al.) on a 256x256 input with the standard
/// 64-128-256-512-1024 channel progression.
pub fn unet() -> Vec<Layer> {
    vec![
        // Encoder.
        Layer::once(conv("unet_enc1_1", 3, 3, 256, 256, 3, 64, 1)),
        Layer::once(conv("unet_enc1_2", 3, 3, 256, 256, 64, 64, 1)),
        Layer::once(conv("unet_enc2_1", 3, 3, 128, 128, 64, 128, 1)),
        Layer::once(conv("unet_enc2_2", 3, 3, 128, 128, 128, 128, 1)),
        Layer::once(conv("unet_enc3_1", 3, 3, 64, 64, 128, 256, 1)),
        Layer::once(conv("unet_enc3_2", 3, 3, 64, 64, 256, 256, 1)),
        Layer::once(conv("unet_enc4_1", 3, 3, 32, 32, 256, 512, 1)),
        Layer::once(conv("unet_enc4_2", 3, 3, 32, 32, 512, 512, 1)),
        // Bottleneck.
        Layer::once(conv("unet_bott_1", 3, 3, 16, 16, 512, 1024, 1)),
        Layer::once(conv("unet_bott_2", 3, 3, 16, 16, 1024, 1024, 1)),
        // Decoder (2x2 up-convolutions + double convs on concatenated maps).
        Layer::once(conv("unet_up4", 2, 2, 32, 32, 1024, 512, 1)),
        Layer::once(conv("unet_dec4_1", 3, 3, 32, 32, 1024, 512, 1)),
        Layer::once(conv("unet_dec4_2", 3, 3, 32, 32, 512, 512, 1)),
        Layer::once(conv("unet_up3", 2, 2, 64, 64, 512, 256, 1)),
        Layer::once(conv("unet_dec3_1", 3, 3, 64, 64, 512, 256, 1)),
        Layer::once(conv("unet_dec3_2", 3, 3, 64, 64, 256, 256, 1)),
        Layer::once(conv("unet_up2", 2, 2, 128, 128, 256, 128, 1)),
        Layer::once(conv("unet_dec2_1", 3, 3, 128, 128, 256, 128, 1)),
        Layer::once(conv("unet_dec2_2", 3, 3, 128, 128, 128, 128, 1)),
        Layer::once(conv("unet_up1", 2, 2, 256, 256, 128, 64, 1)),
        Layer::once(conv("unet_dec1_1", 3, 3, 256, 256, 128, 64, 1)),
        Layer::once(conv("unet_dec1_2", 3, 3, 256, 256, 64, 64, 1)),
        Layer::once(conv("unet_head", 1, 1, 256, 256, 64, 2, 1)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Tensor;

    #[test]
    fn resnet50_macs_in_expected_range() {
        // ResNet-50 is ~4.1 GMACs at 224x224.
        let total: u64 = resnet50().iter().map(|l| l.problem.macs() * l.count).sum();
        assert!(
            (3_500_000_000..4_500_000_000).contains(&total),
            "got {total}"
        );
    }

    #[test]
    fn vgg16_macs_in_expected_range() {
        // VGG-16 is ~15.5 GMACs.
        let total: u64 = vgg16().iter().map(|l| l.problem.macs() * l.count).sum();
        assert!(
            (14_000_000_000..16_500_000_000).contains(&total),
            "got {total}"
        );
    }

    #[test]
    fn bert_macs_in_expected_range() {
        // BERT-base at seq 512 is ~49 GMACs for the matmuls (incl. attention).
        let total: u64 = bert().iter().map(|l| l.problem.macs() * l.count).sum();
        assert!(
            (40_000_000_000..60_000_000_000).contains(&total),
            "got {total}"
        );
    }

    #[test]
    fn all_layer_names_unique_within_network() {
        for layers in [
            alexnet(),
            vgg16(),
            resnet50(),
            resnext50_32x4d(),
            deepbench(),
            bert(),
            retinanet(),
            unet(),
        ] {
            let mut names: Vec<&str> = layers.iter().map(|l| l.problem.name()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate layer name");
        }
    }

    #[test]
    fn all_layers_have_positive_tensors() {
        for layers in [
            alexnet(),
            vgg16(),
            resnet50(),
            resnext50_32x4d(),
            deepbench(),
            bert(),
            retinanet(),
            unet(),
        ] {
            for l in layers {
                for t in Tensor::ALL {
                    assert!(l.problem.tensor_size(t) > 0, "{}", l.problem);
                }
                assert!(l.count >= 1);
            }
        }
    }

    #[test]
    fn resnext_grouped_convs_expand_counts() {
        let grouped: u64 = resnext50_32x4d()
            .iter()
            .filter(|l| l.problem.name().contains("g3x3"))
            .map(|l| l.count)
            .sum();
        // (3 + 4 + 6 + 3) blocks x 32 groups.
        assert_eq!(grouped, 16 * 32);
    }
}
