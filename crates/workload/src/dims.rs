//! The seven problem dimensions used by DOSA and Timeloop-style models.
//!
//! Following §3.1.1 of the paper, every convolution or matrix-multiplication
//! layer is described by seven iteration-space bounds:
//! `R` (weight height), `S` (weight width), `P` (output height),
//! `Q` (output width), `C` (input channels), `K` (output channels) and
//! `N` (batch size).

use std::fmt;

/// Number of problem dimensions.
pub const NUM_DIMS: usize = 7;

/// A problem dimension (§3.1.1).
///
/// # Examples
///
/// ```
/// use dosa_workload::Dim;
/// assert_eq!(Dim::ALL.len(), 7);
/// assert_eq!(Dim::C.index(), 4);
/// assert_eq!(Dim::from_index(4), Some(Dim::C));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// Weight (filter) height.
    R = 0,
    /// Weight (filter) width.
    S = 1,
    /// Output activation height.
    P = 2,
    /// Output activation width.
    Q = 3,
    /// Input channels.
    C = 4,
    /// Output channels.
    K = 5,
    /// Batch size.
    N = 6,
}

impl Dim {
    /// All seven dimensions in canonical order `[R, S, P, Q, C, K, N]`.
    pub const ALL: [Dim; NUM_DIMS] = [Dim::R, Dim::S, Dim::P, Dim::Q, Dim::C, Dim::K, Dim::N];

    /// Canonical index of this dimension (0..7).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Dim::index`]. Returns `None` for out-of-range indices.
    #[inline]
    pub const fn from_index(i: usize) -> Option<Dim> {
        match i {
            0 => Some(Dim::R),
            1 => Some(Dim::S),
            2 => Some(Dim::P),
            3 => Some(Dim::Q),
            4 => Some(Dim::C),
            5 => Some(Dim::K),
            6 => Some(Dim::N),
            _ => None,
        }
    }

    /// Short name of the dimension, e.g. `"C"`.
    pub const fn name(self) -> &'static str {
        match self {
            Dim::R => "R",
            Dim::S => "S",
            Dim::P => "P",
            Dim::Q => "Q",
            Dim::C => "C",
            Dim::K => "K",
            Dim::N => "N",
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One of the three data tensors of a layer (§4.1.1, index `t` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tensor {
    /// Weights `W[K, C, R, S]`.
    Weights = 0,
    /// Input activations `I[N, C, H, W]`.
    Inputs = 1,
    /// Output activations `O[N, K, P, Q]`.
    Outputs = 2,
}

impl Tensor {
    /// All three tensors in canonical order.
    pub const ALL: [Tensor; 3] = [Tensor::Weights, Tensor::Inputs, Tensor::Outputs];

    /// Canonical index (0..3).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short name: `"W"`, `"I"` or `"O"`.
    pub const fn name(self) -> &'static str {
        match self {
            Tensor::Weights => "W",
            Tensor::Inputs => "I",
            Tensor::Outputs => "O",
        }
    }

    /// The set of problem dimensions that index this tensor (the paper's
    /// `D_W`, `D_I`, `D_O`).
    ///
    /// ```
    /// use dosa_workload::{Dim, Tensor};
    /// assert!(Tensor::Weights.dims().contains(Dim::C));
    /// assert!(!Tensor::Weights.dims().contains(Dim::P));
    /// ```
    pub const fn dims(self) -> DimSet {
        match self {
            Tensor::Weights => DimSet::WEIGHTS,
            Tensor::Inputs => DimSet::INPUTS,
            Tensor::Outputs => DimSet::OUTPUTS,
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of problem dimensions, stored as a bitmask.
///
/// Used to express tensor relevance (`D_W = {R,S,C,K}` etc., §4.1.1).
///
/// # Examples
///
/// ```
/// use dosa_workload::{Dim, DimSet};
/// let s = DimSet::from_dims(&[Dim::C, Dim::K]);
/// assert!(s.contains(Dim::C));
/// assert_eq!(s.complement().len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DimSet(u8);

impl DimSet {
    /// The empty set.
    pub const EMPTY: DimSet = DimSet(0);
    /// All seven dimensions.
    pub const FULL: DimSet = DimSet(0x7f);
    /// `D_W = {R, S, C, K}` — dimensions indexing the weight tensor.
    pub const WEIGHTS: DimSet = DimSet(
        (1 << Dim::R as u8) | (1 << Dim::S as u8) | (1 << Dim::C as u8) | (1 << Dim::K as u8),
    );
    /// `D_I = {R, S, P, Q, C, N}` — dimensions indexing the input tensor.
    pub const INPUTS: DimSet = DimSet(
        (1 << Dim::R as u8)
            | (1 << Dim::S as u8)
            | (1 << Dim::P as u8)
            | (1 << Dim::Q as u8)
            | (1 << Dim::C as u8)
            | (1 << Dim::N as u8),
    );
    /// `D_O = {P, Q, K, N}` — dimensions indexing the output tensor.
    pub const OUTPUTS: DimSet = DimSet(
        (1 << Dim::P as u8) | (1 << Dim::Q as u8) | (1 << Dim::K as u8) | (1 << Dim::N as u8),
    );

    /// Build a set from a slice of dimensions.
    pub fn from_dims(dims: &[Dim]) -> DimSet {
        let mut mask = 0u8;
        for &d in dims {
            mask |= 1 << d as u8;
        }
        DimSet(mask)
    }

    /// Whether `d` is a member.
    #[inline]
    pub const fn contains(self, d: Dim) -> bool {
        self.0 & (1 << d as u8) != 0
    }

    /// Set with `d` added.
    #[inline]
    #[must_use]
    pub const fn with(self, d: Dim) -> DimSet {
        DimSet(self.0 | (1 << d as u8))
    }

    /// Set with `d` removed.
    #[inline]
    #[must_use]
    pub const fn without(self, d: Dim) -> DimSet {
        DimSet(self.0 & !(1 << d as u8))
    }

    /// Set complement with respect to all seven dimensions
    /// (the paper's `D − D_t`).
    #[inline]
    #[must_use]
    pub const fn complement(self) -> DimSet {
        DimSet(!self.0 & 0x7f)
    }

    /// Intersection of two sets.
    #[inline]
    #[must_use]
    pub const fn intersect(self, other: DimSet) -> DimSet {
        DimSet(self.0 & other.0)
    }

    /// Union of two sets.
    #[inline]
    #[must_use]
    pub const fn union(self, other: DimSet) -> DimSet {
        DimSet(self.0 | other.0)
    }

    /// Number of members.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate members in canonical dimension order.
    pub fn iter(self) -> impl Iterator<Item = Dim> {
        Dim::ALL.into_iter().filter(move |&d| self.contains(d))
    }
}

impl fmt::Display for DimSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for d in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Dim> for DimSet {
    fn from_iter<I: IntoIterator<Item = Dim>>(iter: I) -> Self {
        let mut s = DimSet::EMPTY;
        for d in iter {
            s = s.with(d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_roundtrip() {
        for (i, d) in Dim::ALL.into_iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), Some(d));
        }
        assert_eq!(Dim::from_index(7), None);
    }

    #[test]
    fn tensor_dim_sets_match_paper() {
        assert_eq!(
            Tensor::Weights.dims(),
            DimSet::from_dims(&[Dim::R, Dim::S, Dim::C, Dim::K])
        );
        assert_eq!(
            Tensor::Inputs.dims(),
            DimSet::from_dims(&[Dim::R, Dim::S, Dim::P, Dim::Q, Dim::C, Dim::N])
        );
        assert_eq!(
            Tensor::Outputs.dims(),
            DimSet::from_dims(&[Dim::P, Dim::Q, Dim::K, Dim::N])
        );
    }

    #[test]
    fn set_algebra() {
        let w = DimSet::WEIGHTS;
        assert_eq!(w.len(), 4);
        assert_eq!(w.complement(), DimSet::from_dims(&[Dim::P, Dim::Q, Dim::N]));
        assert_eq!(w.union(w.complement()), DimSet::FULL);
        assert_eq!(w.intersect(w.complement()), DimSet::EMPTY);
        assert!(DimSet::EMPTY.is_empty());
        assert_eq!(w.without(Dim::K).len(), 3);
        assert_eq!(w.with(Dim::K), w);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DimSet::OUTPUTS.to_string(), "{P,Q,K,N}");
        assert_eq!(Dim::C.to_string(), "C");
        assert_eq!(Tensor::Inputs.to_string(), "I");
    }

    #[test]
    fn from_iterator_collects() {
        let s: DimSet = [Dim::R, Dim::N].into_iter().collect();
        assert!(s.contains(Dim::R) && s.contains(Dim::N) && s.len() == 2);
    }

    #[test]
    fn weights_union_inputs_union_outputs_is_full() {
        let u = Tensor::ALL
            .into_iter()
            .fold(DimSet::EMPTY, |acc, t| acc.union(t.dims()));
        assert_eq!(u, DimSet::FULL);
    }
}
