//! Finite-difference gradient checking.

use crate::{Tape, Var};

/// Compare reverse-mode gradients against central finite differences.
///
/// `f` is evaluated as a function of `n = x.len()` leaf variables. Returns
/// the maximum relative error over all coordinates.
///
/// # Examples
///
/// ```
/// use dosa_autodiff::{check_gradients, sum};
/// let err = check_gradients(&[1.0, 2.0, 3.0], 1e-6, |tape, xs| {
///     let sq: Vec<_> = xs.iter().map(|v| v.square()).collect();
///     sum(tape, &sq)
/// });
/// assert!(err < 1e-6);
/// ```
pub fn check_gradients<F>(x: &[f64], eps: f64, f: F) -> f64
where
    F: for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
{
    let eval = |x: &[f64]| -> f64 {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = x.iter().map(|&v| tape.var(v)).collect();
        f(&tape, &vars).value()
    };

    // Reverse-mode gradients.
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = x.iter().map(|&v| tape.var(v)).collect();
    let out = f(&tape, &vars);
    let grads = tape.backward(out);
    let analytic = grads.wrt_slice(&vars);

    let mut max_rel = 0.0f64;
    for i in 0..x.len() {
        let mut xp = x.to_vec();
        let mut xm = x.to_vec();
        let h = eps * x[i].abs().max(1.0);
        xp[i] += h;
        xm[i] -= h;
        let numeric = (eval(&xp) - eval(&xm)) / (2.0 * h);
        let denom = analytic[i].abs().max(numeric.abs()).max(1e-8);
        max_rel = max_rel.max((analytic[i] - numeric).abs() / denom);
    }
    max_rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_of, prod, softmax, sum};

    #[test]
    fn polynomial_checks() {
        let err = check_gradients(&[0.7, -1.3, 2.2], 1e-6, |_, xs| {
            xs[0] * xs[1] + xs[2].square() * xs[0] - xs[1]
        });
        assert!(err < 1e-6, "err={err}");
    }

    #[test]
    fn transcendental_checks() {
        let err = check_gradients(&[1.2, 0.4], 1e-6, |_, xs| {
            (xs[0].ln() + xs[1].exp()).sqrt() * xs[0].powf(1.7)
        });
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn deep_composition_checks() {
        let err = check_gradients(&[0.9, 1.8, 2.7, 0.3], 1e-6, |tape, xs| {
            let p = prod(tape, xs);
            let s = sum(tape, xs);
            let m = max_of(tape, xs);
            let sm = softmax(tape, xs);
            p / s + m * sm[2]
        });
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn division_chain_checks() {
        let err = check_gradients(&[3.0, 5.0, 7.0], 1e-6, |_, xs| {
            xs[0] / xs[1] / xs[2] + 1.0 / xs[0]
        });
        assert!(err < 1e-6, "err={err}");
    }
}
