//! # dosa-autodiff
//!
//! A small tape-based reverse-mode automatic-differentiation engine for
//! scalars, built for the DOSA differentiable performance model.
//!
//! The paper implements differentiability with PyTorch autograd; mature Rust
//! autodiff crates are not available offline, so this crate hand-rolls the
//! same mechanism: a [`Tape`] records every scalar operation with its local
//! partial derivatives, and [`Tape::backward`] performs one reverse sweep to
//! produce gradients of a scalar loss with respect to every input.
//!
//! ## Hot-path layout
//!
//! The tape stores nodes struct-of-arrays (`parents` / `grads` / `arity`
//! in parallel vectors) behind a single-owner arena, so recording is one
//! bump-allocation per op — no `RefCell` borrows, no per-op bounds assert
//! (the overflow check lives on the amortized growth path) — and the
//! backward sweep walks contiguous arrays. `Var ⊕ f64` operations are
//! fused into single unary nodes. Forward values live on the [`Var`]
//! itself, not the tape.
//!
//! Three more pieces round out the hot path:
//!
//! * [`SegmentPlan`] / [`Tape::backward_segmented`] — record per-layer
//!   loss terms as independent segments and sweep them on parallel
//!   workers, bit-identically to the serial sweep for any worker count
//!   (see `seg.rs` for the determinism argument).
//! * [`Scalar`] / [`Ctx`] — write model code once, instantiate it against
//!   the tape ([`Var`]), an eval-only `f64` path ([`Values`]), or the
//!   preserved pre-rewrite baseline ([`LegacyTape`]) used by parity tests
//!   and the `BENCH_*.json` speedup measurements.
//! * [`Gradients::wrt_into`] — gather leaf gradients into a caller-owned
//!   buffer, so optimizer steps allocate nothing.
//!
//! ## Example
//!
//! ```
//! use dosa_autodiff::{Tape, prod};
//!
//! let tape = Tape::new();
//! let factors: Vec<_> = [2.0, 4.0, 8.0].iter().map(|&f| tape.var(f)).collect();
//! // "Traffic" is a product of tiling factors, like in the DOSA model.
//! let traffic = prod(&tape, &factors);
//! let grads = tape.backward(traffic);
//! assert_eq!(traffic.value(), 64.0);
//! assert_eq!(grads.wrt(factors[0]), 32.0); // d(2*4*8)/d2
//! ```

#![warn(missing_docs)]

mod check;
mod legacy;
mod scalar;
mod seg;
mod tape;
mod var;

pub use check::check_gradients;
pub use legacy::{LegacyGradients, LegacyTape, LegacyVar};
pub use scalar::{Ctx, Scalar, Values};
pub use seg::{SegScratch, SegmentPlan};
pub use tape::{Gradients, GradientsView, Tape};
pub use var::{dot, max_of, prod, softmax, sum, Var};
