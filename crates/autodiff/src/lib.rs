//! # dosa-autodiff
//!
//! A small tape-based reverse-mode automatic-differentiation engine for
//! scalars, built for the DOSA differentiable performance model.
//!
//! The paper implements differentiability with PyTorch autograd; mature Rust
//! autodiff crates are not available offline, so this crate hand-rolls the
//! same mechanism: a [`Tape`] records every scalar operation with its local
//! partial derivatives, and [`Tape::backward`] performs one reverse sweep to
//! produce gradients of a scalar loss with respect to every input.
//!
//! ## Example
//!
//! ```
//! use dosa_autodiff::{Tape, prod};
//!
//! let tape = Tape::new();
//! let factors: Vec<_> = [2.0, 4.0, 8.0].iter().map(|&f| tape.var(f)).collect();
//! // "Traffic" is a product of tiling factors, like in the DOSA model.
//! let traffic = prod(&tape, &factors);
//! let grads = tape.backward(traffic);
//! assert_eq!(traffic.value(), 64.0);
//! assert_eq!(grads.wrt(factors[0]), 32.0); // d(2*4*8)/d2
//! ```

#![warn(missing_docs)]

mod check;
mod tape;
mod var;

pub use check::check_gradients;
pub use tape::{Gradients, GradientsView, Tape};
pub use var::{dot, max_of, prod, softmax, sum, Var};
