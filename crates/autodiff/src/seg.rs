//! Segmented backward sweeps: per-segment parallelism with bit-exact
//! serial-sweep semantics.
//!
//! A [`SegmentPlan`] is recorded alongside the forward pass and partitions
//! the tape's id space into ordered regions: *serial* ranges, and *groups*
//! of contiguous chunks with no edges between chunks of the same group
//! (e.g. the per-layer portions of a multi-layer loss, which only interact
//! through later cross-layer folds). [`Tape::backward_segmented`] sweeps
//! regions in reverse recording order; within a group the chunks are
//! independent, so they can be swept by parallel workers.
//!
//! ## The determinism rule
//!
//! Parallel chunk sweeps must not change a single bit of any gradient
//! relative to the flat serial sweep, for any worker count. The sweep
//! guarantees this by making every floating-point *accumulation order*
//! identical to the serial sweep's:
//!
//! * each chunk owns a disjoint slice of the adjoint buffer covering its
//!   own id range, and within the chunk sweeps ids in descending order —
//!   exactly the serial order;
//! * contributions to cells *below* the group are not applied directly
//!   (that would race and reorder); they are spilled to a per-chunk queue
//!   in sweep order and replayed serially after the group joins, in
//!   **descending chunk order** — so each below-group cell receives its
//!   contributions in descending consumer-id order, which is precisely
//!   the serial sweep's order;
//! * chunks of one group have no cross-chunk edges (debug-asserted), so
//!   no other write order exists to get wrong.
//!
//! The worker count therefore only decides *who* sweeps each chunk, never
//! the order in which any adjoint cell is accumulated.

use crate::tape::{sweep_serial, NodeId, TapeStore};
use crate::{GradientsView, Tape, Var};
use std::ops::Range;

/// Groups smaller than this many total nodes are swept serially even when
/// workers are available: a scoped-thread spawn costs more than the sweep.
const PAR_GROUP_MIN_NODES: usize = 4096;

/// One region of a [`SegmentPlan`].
#[derive(Debug, Clone)]
enum Region {
    /// Ids swept strictly serially.
    Serial(Range<u32>),
    /// A group of mutually independent contiguous chunks; the payload
    /// indexes into [`SegmentPlan::chunks`].
    Group(Range<usize>),
}

/// An ordered partition of a tape's id space into serial regions and
/// parallel groups, recorded while the forward pass runs (via
/// [`SegmentPlan::serial_to`] / [`SegmentPlan::begin_group`] /
/// [`SegmentPlan::chunk_to`] / [`SegmentPlan::end_group`] with marks taken
/// from [`Ctx::mark`](crate::Ctx::mark)).
///
/// The plan owns only flat reusable buffers, so clearing and re-recording
/// it every optimizer step allocates nothing at steady state.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    regions: Vec<Region>,
    /// Chunk ranges of all groups, in recording order; each [`Region::Group`]
    /// holds an index range into this vector.
    chunks: Vec<Range<u32>>,
    /// First id not yet covered by any region or open chunk.
    pos: u32,
    /// Index into `chunks` where the currently open group began.
    group_open: Option<usize>,
    enabled: bool,
}

impl Default for SegmentPlan {
    fn default() -> SegmentPlan {
        SegmentPlan::new()
    }
}

impl SegmentPlan {
    /// An empty, enabled plan.
    pub fn new() -> SegmentPlan {
        SegmentPlan {
            regions: Vec::new(),
            chunks: Vec::new(),
            pos: 0,
            group_open: None,
            enabled: true,
        }
    }

    /// A plan that ignores all recording calls — for value-only or
    /// legacy-baseline forward passes that will never sweep segmented.
    pub fn disabled() -> SegmentPlan {
        SegmentPlan {
            enabled: false,
            ..SegmentPlan::new()
        }
    }

    /// Reset for a fresh forward pass, keeping buffers (and the
    /// enabled/disabled mode).
    pub fn clear(&mut self) {
        self.regions.clear();
        self.chunks.clear();
        self.pos = 0;
        self.group_open = None;
    }

    /// Whether the plan contains at least one multi-chunk group.
    pub fn has_groups(&self) -> bool {
        self.regions.iter().any(|r| matches!(r, Region::Group(_)))
    }

    /// Cover `pos..mark` with a serial region (no-op if nothing was
    /// recorded since the last boundary).
    pub fn serial_to(&mut self, mark: u32) {
        if !self.enabled || mark <= self.pos {
            return;
        }
        debug_assert!(self.group_open.is_none(), "serial_to inside an open group");
        self.push_serial(self.pos..mark);
        self.pos = mark;
    }

    /// Open a parallel group at the current position.
    pub fn begin_group(&mut self) {
        if !self.enabled {
            return;
        }
        debug_assert!(self.group_open.is_none(), "nested begin_group");
        self.group_open = Some(self.chunks.len());
    }

    /// Close the current chunk of the open group at `mark` (no-op for an
    /// empty chunk).
    pub fn chunk_to(&mut self, mark: u32) {
        if !self.enabled || mark <= self.pos {
            return;
        }
        debug_assert!(self.group_open.is_some(), "chunk_to outside a group");
        self.chunks.push(self.pos..mark);
        self.pos = mark;
    }

    /// Close the open group. Groups that ended up with fewer than two
    /// chunks are folded back into the surrounding serial coverage.
    pub fn end_group(&mut self) {
        if !self.enabled {
            return;
        }
        let start = self.group_open.take().expect("end_group without begin");
        match self.chunks.len() - start {
            0 => {}
            1 => {
                let only = self.chunks.pop().expect("one chunk");
                self.push_serial(only);
            }
            _ => self.regions.push(Region::Group(start..self.chunks.len())),
        }
    }

    fn push_serial(&mut self, range: Range<u32>) {
        if let Some(Region::Serial(prev)) = self.regions.last_mut() {
            if prev.end == range.start {
                prev.end = range.end;
                return;
            }
        }
        self.regions.push(Region::Serial(range));
    }
}

/// Reusable scratch for [`Tape::backward_segmented`]: the adjoint buffer
/// plus per-chunk spill queues, all retained across sweeps so steady-state
/// steps allocate nothing.
#[derive(Debug, Default)]
pub struct SegScratch {
    adj: Vec<f64>,
    spills: Vec<Vec<(NodeId, f64)>>,
}

impl SegScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> SegScratch {
        SegScratch::default()
    }
}

impl Tape {
    /// Run the backward sweep from `output` following `plan`, using up to
    /// `threads` workers for parallel groups.
    ///
    /// Bit-identical to [`Tape::backward_into`] for **every** value of
    /// `threads` (see the module docs for why); with `threads <= 1` or a
    /// plan without groups it *is* the flat serial sweep on the scratch
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not on this tape generation.
    pub fn backward_segmented<'a>(
        &self,
        output: Var<'_>,
        plan: &SegmentPlan,
        threads: usize,
        scratch: &'a mut SegScratch,
    ) -> GradientsView<'a> {
        let store = self.store();
        let n = store.len();
        assert!((output.id as usize) < n, "output var is not on this tape");
        {
            let adj = &mut scratch.adj;
            adj.clear();
            adj.resize(n, 0.0);
            adj[output.id as usize] = 1.0;
            let hi = output.id as usize + 1;
            if threads <= 1 || !plan.has_groups() {
                sweep_serial(store, adj, 0, hi);
            } else {
                // Tail above the last planned mark (the loss assembly
                // usually ends with a serial_to, making this empty).
                if hi > plan.pos as usize {
                    sweep_serial(store, adj, plan.pos as usize, hi);
                }
                for region in plan.regions.iter().rev() {
                    match region {
                        Region::Serial(r) => {
                            sweep_serial(store, adj, r.start as usize, r.end as usize)
                        }
                        Region::Group(idx) => {
                            let chunks = &plan.chunks[idx.clone()];
                            let first = chunks[0].start;
                            let last = chunks[chunks.len() - 1].end;
                            if ((last - first) as usize) < PAR_GROUP_MIN_NODES {
                                for c in chunks.iter().rev() {
                                    sweep_serial(store, adj, c.start as usize, c.end as usize);
                                }
                            } else {
                                sweep_group(store, adj, chunks, threads, &mut scratch.spills);
                            }
                        }
                    }
                }
            }
        }
        GradientsView { adj: &scratch.adj }
    }
}

/// One chunk's unit of parallel work: its node range, the adjoint slice
/// covering exactly that range, and the spill queue for contributions that
/// land below the group.
type ChunkPart<'a> = (Range<u32>, &'a mut [f64], &'a mut Vec<(NodeId, f64)>);

/// Sweep one group's chunks on up to `threads` scoped workers, then replay
/// the below-group spills serially in descending chunk order.
fn sweep_group(
    store: &TapeStore,
    adj: &mut [f64],
    chunks: &[Range<u32>],
    threads: usize,
    spills: &mut Vec<Vec<(NodeId, f64)>>,
) {
    let group_lo = chunks[0].start as usize;
    let group_hi = chunks[chunks.len() - 1].end as usize;
    if spills.len() < chunks.len() {
        spills.resize_with(chunks.len(), Vec::new);
    }
    let (below, rest) = adj.split_at_mut(group_lo);
    let (span, _above) = rest.split_at_mut(group_hi - group_lo);
    // Carve one disjoint (chunk range, local adjoint slice, spill queue)
    // triple per chunk; the group's chunks are contiguous by construction.
    let mut parts: Vec<ChunkPart<'_>> = Vec::with_capacity(chunks.len());
    let mut span_rest = span;
    for (c, spill) in chunks.iter().zip(spills.iter_mut()) {
        debug_assert_eq!(
            c.start as usize,
            group_hi - span_rest.len(),
            "group chunks must be contiguous"
        );
        let (local, tail) = span_rest.split_at_mut((c.end - c.start) as usize);
        span_rest = tail;
        spill.clear();
        parts.push((c.clone(), local, spill));
    }
    let workers = threads.min(parts.len()).max(1);
    let per = parts.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for block in parts.chunks_mut(per) {
            scope.spawn(move || {
                for (range, local, spill) in block.iter_mut() {
                    sweep_chunk(store, range.clone(), local, spill, group_lo as NodeId);
                }
            });
        }
    });
    // Replay out-of-group contributions in descending chunk order: per
    // target cell this reproduces the flat serial sweep's descending
    // consumer-id accumulation order exactly.
    for (_, _, spill) in parts.iter().rev() {
        for &(pid, contrib) in spill.iter() {
            below[pid as usize] += contrib;
        }
    }
}

/// Sweep one chunk against its local adjoint slice, queueing contributions
/// to ids below the chunk (and necessarily below the whole group).
fn sweep_chunk(
    store: &TapeStore,
    range: Range<u32>,
    local: &mut [f64],
    spill: &mut Vec<(NodeId, f64)>,
    group_lo: NodeId,
) {
    let lo = range.start as usize;
    for i in (lo..range.end as usize).rev() {
        let a = local[i - lo];
        // dosa-lint: allow(float-eq) — exact-zero adjoint skip, same contract
        // as `sweep_serial`: only bitwise zero means no gradient to propagate.
        if a == 0.0 {
            continue;
        }
        let arity = store.arity[i] as usize;
        let parents = store.parents[i];
        let grads = store.grads[i];
        for p in 0..arity {
            let pid = parents[p];
            if pid >= range.start {
                local[(pid - range.start) as usize] += a * grads[p];
            } else {
                debug_assert!(
                    pid < group_lo,
                    "cross-chunk edge inside a parallel group: {pid} from node {i}"
                );
                spill.push((pid, a * grads[p]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sum;

    /// Build an L-chunk loss: per chunk an independent expression over its
    /// own leaves, combined by a serial sum-of-squares tail.
    fn build<'t>(
        tape: &'t Tape,
        plan: &mut SegmentPlan,
        leaves: &[Var<'t>],
        chunks: usize,
    ) -> Var<'t> {
        plan.serial_to(tape.len() as u32);
        let per = leaves.len() / chunks;
        let mut terms = Vec::new();
        plan.begin_group();
        for c in 0..chunks {
            let xs = &leaves[c * per..(c + 1) * per];
            let mut t = xs[0] * 2.0 + 1.0;
            for &x in &xs[1..] {
                t = t * x.exp().max(x.square()) + x.ln().relu();
            }
            terms.push(t);
            plan.chunk_to(tape.len() as u32);
        }
        plan.end_group();
        let s = sum(tape, &terms);
        let out = s.square() + terms[0];
        plan.serial_to(tape.len() as u32);
        out
    }

    #[test]
    fn segmented_matches_flat_for_every_worker_budget() {
        let tape = Tape::new();
        let leaves: Vec<Var<'_>> = (0..24).map(|i| tape.var(0.3 + 0.17 * i as f64)).collect();
        let mut plan = SegmentPlan::new();
        let out = build(&tape, &mut plan, &leaves, 4);
        let mut adj = Vec::new();
        let flat = tape.backward_into(out, &mut adj);
        let expect: Vec<f64> = flat.wrt_slice(&leaves);
        for threads in [1, 2, 3, 8] {
            let mut scratch = SegScratch::default();
            let seg = tape.backward_segmented(out, &plan, threads, &mut scratch);
            let got = seg.wrt_slice(&leaves);
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.to_bits(), e.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn disabled_plan_still_sweeps_correctly() {
        let tape = Tape::new();
        let x = tape.var(3.0);
        let y = x * x + x;
        let mut scratch = SegScratch::default();
        let plan = SegmentPlan::disabled();
        let g = tape.backward_segmented(y, &plan, 8, &mut scratch);
        assert_eq!(g.wrt(x), 7.0);
    }

    #[test]
    fn single_chunk_groups_fold_to_serial() {
        let mut plan = SegmentPlan::new();
        plan.serial_to(4);
        plan.begin_group();
        plan.chunk_to(10);
        plan.end_group();
        assert!(!plan.has_groups());
        plan.begin_group();
        plan.chunk_to(20);
        plan.chunk_to(30);
        plan.end_group();
        assert!(plan.has_groups());
    }
}
