//! The pre-SoA tape, preserved verbatim in spirit as a measured baseline.
//!
//! This is the recording scheme the crate used before the hot-path
//! rewrite: an array-of-structs `Vec<Node>` plus a separate values vector,
//! each behind its own `RefCell`, a per-push overflow `assert!`, and
//! `Var ⊕ f64` recorded as a constant node followed by a binary node.
//! It exists for two reasons:
//!
//! * **bit-parity tests** — the generic model code instantiates against
//!   both tapes and the gradients must match bit for bit, which pins down
//!   the rewrite's "no numeric change" claim;
//! * **the perf trajectory** — `BENCH_6.json`'s speedup numbers are
//!   measured against this path in the same run, on the same machine.
//!
//! Do not "improve" this module; its slowness is the point.

use crate::scalar::{Ctx, Scalar};
use std::cell::RefCell;
use std::ops::{Add, Div, Mul, Neg, Sub};

#[derive(Clone, Copy)]
struct Node {
    parents: [u32; 2],
    grads: [f64; 2],
    arity: u8,
}

/// The pre-rewrite AoS tape: `RefCell<Vec<Node>>` + `RefCell<Vec<f64>>`,
/// two borrows and one bounds assert per recorded op.
#[derive(Default)]
pub struct LegacyTape {
    nodes: RefCell<Vec<Node>>,
    values: RefCell<Vec<f64>>,
}

impl LegacyTape {
    /// An empty tape.
    pub fn new() -> LegacyTape {
        LegacyTape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded nodes, keeping allocations.
    pub fn clear(&self) {
        self.nodes.borrow_mut().clear();
        self.values.borrow_mut().clear();
    }

    fn record(&self, value: f64, node: Node) -> LegacyVar<'_> {
        let mut nodes = self.nodes.borrow_mut();
        assert!(nodes.len() < u32::MAX as usize, "legacy tape overflow");
        let id = nodes.len() as u32;
        nodes.push(node);
        self.values.borrow_mut().push(value);
        LegacyVar {
            tape: self,
            id,
            value,
        }
    }

    /// A differentiable leaf.
    pub fn var(&self, value: f64) -> LegacyVar<'_> {
        self.record(
            value,
            Node {
                parents: [0, 0],
                grads: [0.0, 0.0],
                arity: 0,
            },
        )
    }

    /// A constant (zero-gradient) node.
    pub fn constant(&self, value: f64) -> LegacyVar<'_> {
        self.var(value)
    }

    /// Reverse sweep from `output`, returning adjoints for every node.
    pub fn backward(&self, output: LegacyVar<'_>) -> LegacyGradients {
        let nodes = self.nodes.borrow();
        let mut adj = vec![0.0; nodes.len()];
        adj[output.id as usize] = 1.0;
        for i in (0..=output.id as usize).rev() {
            let a = adj[i];
            // dosa-lint: allow(float-eq) — exact-zero adjoint skip: only a
            // bitwise zero means "no gradient flowed here"; a tolerance would
            // silently drop real (tiny) gradients.
            if a == 0.0 {
                continue;
            }
            let node = nodes[i];
            for p in 0..node.arity as usize {
                adj[node.parents[p] as usize] += a * node.grads[p];
            }
        }
        LegacyGradients { adj }
    }
}

/// Adjoints from a [`LegacyTape::backward`] sweep.
pub struct LegacyGradients {
    adj: Vec<f64>,
}

impl LegacyGradients {
    /// Gradient with respect to one variable.
    pub fn wrt(&self, var: LegacyVar<'_>) -> f64 {
        self.adj[var.id as usize]
    }

    /// Gradients with respect to a slice of variables (allocates).
    pub fn wrt_slice(&self, vars: &[LegacyVar<'_>]) -> Vec<f64> {
        vars.iter().map(|v| self.adj[v.id as usize]).collect()
    }
}

/// A differentiable scalar on the [`LegacyTape`].
#[derive(Clone, Copy)]
pub struct LegacyVar<'t> {
    tape: &'t LegacyTape,
    id: u32,
    value: f64,
}

impl std::fmt::Debug for LegacyVar<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LegacyVar")
            .field("id", &self.id)
            .field("value", &self.value)
            .finish()
    }
}

impl<'t> LegacyVar<'t> {
    /// The forward value.
    pub fn value(self) -> f64 {
        self.value
    }

    fn unary(self, value: f64, grad: f64) -> LegacyVar<'t> {
        self.tape.record(
            value,
            Node {
                parents: [self.id, 0],
                grads: [grad, 0.0],
                arity: 1,
            },
        )
    }

    fn binary(self, rhs: LegacyVar<'t>, value: f64, ga: f64, gb: f64) -> LegacyVar<'t> {
        self.tape.record(
            value,
            Node {
                parents: [self.id, rhs.id],
                grads: [ga, gb],
                arity: 2,
            },
        )
    }
}

macro_rules! legacy_binop {
    ($trait:ident, $method:ident, |$a:ident, $b:ident| $val:expr, |$av:ident, $bv:ident| ($ga:expr, $gb:expr)) => {
        impl<'t> $trait for LegacyVar<'t> {
            type Output = LegacyVar<'t>;
            fn $method(self, rhs: LegacyVar<'t>) -> LegacyVar<'t> {
                let ($a, $b) = (self.value, rhs.value);
                let value = $val;
                let ($av, $bv) = (self.value, rhs.value);
                let _ = ($av, $bv);
                self.binary(rhs, value, $ga, $gb)
            }
        }

        // The pre-rewrite scalar form: record the constant, then a full
        // binary node — two nodes and four borrows per `x ⊕ c`.
        impl<'t> $trait<f64> for LegacyVar<'t> {
            type Output = LegacyVar<'t>;
            fn $method(self, rhs: f64) -> LegacyVar<'t> {
                let c = self.tape.constant(rhs);
                $trait::$method(self, c)
            }
        }
    };
}

legacy_binop!(Add, add, |a, b| a + b, |_av, _bv| (1.0, 1.0));
legacy_binop!(Sub, sub, |a, b| a - b, |_av, _bv| (1.0, -1.0));
legacy_binop!(Mul, mul, |a, b| a * b, |av, bv| (bv, av));
legacy_binop!(Div, div, |a, b| a / b, |av, bv| (1.0 / bv, -av / (bv * bv)));

impl<'t> Neg for LegacyVar<'t> {
    type Output = LegacyVar<'t>;
    fn neg(self) -> LegacyVar<'t> {
        self.unary(-self.value, -1.0)
    }
}

impl<'t> Add<LegacyVar<'t>> for f64 {
    type Output = LegacyVar<'t>;
    fn add(self, rhs: LegacyVar<'t>) -> LegacyVar<'t> {
        rhs + self
    }
}

impl<'t> Mul<LegacyVar<'t>> for f64 {
    type Output = LegacyVar<'t>;
    fn mul(self, rhs: LegacyVar<'t>) -> LegacyVar<'t> {
        rhs * self
    }
}

impl<'t> Sub<LegacyVar<'t>> for f64 {
    type Output = LegacyVar<'t>;
    fn sub(self, rhs: LegacyVar<'t>) -> LegacyVar<'t> {
        -rhs + self
    }
}

impl<'t> Div<LegacyVar<'t>> for f64 {
    type Output = LegacyVar<'t>;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: LegacyVar<'t>) -> LegacyVar<'t> {
        rhs.recip() * self
    }
}

impl<'t> Scalar for LegacyVar<'t> {
    fn value(self) -> f64 {
        self.value
    }
    fn ln(self) -> LegacyVar<'t> {
        self.unary(self.value.ln(), 1.0 / self.value)
    }
    fn exp(self) -> LegacyVar<'t> {
        let e = self.value.exp();
        self.unary(e, e)
    }
    fn powf(self, p: f64) -> LegacyVar<'t> {
        let v = self.value.powf(p);
        self.unary(v, p * self.value.powf(p - 1.0))
    }
    fn sqrt(self) -> LegacyVar<'t> {
        let v = self.value.sqrt();
        self.unary(v, 0.5 / v)
    }
    fn recip(self) -> LegacyVar<'t> {
        let v = 1.0 / self.value;
        self.unary(v, -v * v)
    }
    fn square(self) -> LegacyVar<'t> {
        self.unary(self.value * self.value, 2.0 * self.value)
    }
    fn max(self, rhs: LegacyVar<'t>) -> LegacyVar<'t> {
        if self.value >= rhs.value {
            self.binary(rhs, self.value, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.value, 0.0, 1.0)
        }
    }
    fn min(self, rhs: LegacyVar<'t>) -> LegacyVar<'t> {
        if self.value <= rhs.value {
            self.binary(rhs, self.value, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.value, 0.0, 1.0)
        }
    }
    fn relu(self) -> LegacyVar<'t> {
        if self.value > 0.0 {
            self.unary(self.value, 1.0)
        } else {
            self.unary(0.0, 0.0)
        }
    }
    fn hinge_below(self, k: f64) -> LegacyVar<'t> {
        if self.value < k {
            self.unary(k - self.value, -1.0)
        } else {
            self.unary(0.0, 0.0)
        }
    }
}

impl<'t> LegacyVar<'t> {
    /// Reciprocal (also available via [`Scalar::recip`]; kept inherent for
    /// the `f64 / LegacyVar` operator).
    pub fn recip(self) -> LegacyVar<'t> {
        Scalar::recip(self)
    }
}

impl<'t> Ctx for &'t LegacyTape {
    type N = LegacyVar<'t>;
    // Record every multiplication, including by literal ones, exactly as
    // the pre-refactor model did. Value-identical (a * 1.0 == a bitwise)
    // but materially more nodes — part of what BENCH_*.json measures.
    const UNIT_SKIP: bool = false;
    fn constant(self, value: f64) -> LegacyVar<'t> {
        LegacyTape::constant(self, value)
    }
    fn leaf(self, value: f64) -> LegacyVar<'t> {
        LegacyTape::var(self, value)
    }
    fn mark(self) -> u32 {
        self.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_matches_hand_gradients() {
        let tape = LegacyTape::new();
        let x = tape.var(2.0);
        let y = x * x + x * 3.0 - 1.0;
        assert_eq!(y.value(), 9.0);
        assert_eq!(tape.backward(y).wrt(x), 7.0);
    }

    #[test]
    fn legacy_scalar_ops_record_two_nodes() {
        let tape = LegacyTape::new();
        let x = tape.var(4.0);
        let before = tape.len();
        let _ = x + 1.0;
        assert_eq!(tape.len(), before + 2, "constant node + binary node");
    }

    #[test]
    fn legacy_gradients_match_new_tape_bits() {
        let old = LegacyTape::new();
        let new = crate::Tape::new();
        let inputs = [0.7, 1.3, 2.9, 0.02];
        let f_old = {
            let xs: Vec<LegacyVar<'_>> = inputs.iter().map(|&v| old.var(v)).collect();
            let mut t = xs[0] * 2.5 + 0.1;
            for &x in &xs[1..] {
                t = (t * x.exp().max(x.square()) + 4.0) / 3.0 + (2.0 - x).relu();
            }
            let y = t.ln().square();
            let g = old.backward(y);
            (y.value(), g.wrt_slice(&xs))
        };
        let f_new = {
            let xs: Vec<crate::Var<'_>> = inputs.iter().map(|&v| new.var(v)).collect();
            let mut t = xs[0] * 2.5 + 0.1;
            for &x in &xs[1..] {
                t = (t * x.exp().max(x.square()) + 4.0) / 3.0 + (2.0 - x).relu();
            }
            let y = t.ln().square();
            let g = new.backward(y);
            (y.value(), g.wrt_slice(&xs))
        };
        assert_eq!(f_old.0.to_bits(), f_new.0.to_bits());
        for (a, b) in f_old.1.iter().zip(&f_new.1) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
