//! The [`Scalar`] / [`Ctx`] abstraction: write a differentiable model
//! once, instantiate it three ways.
//!
//! * `Ctx = &Tape` → `N = Var`: records onto the SoA tape for gradients.
//! * `Ctx = Values` → `N = f64`: the eval-only path — same arithmetic,
//!   same tie-breaking, zero tape overhead. Used for value-only
//!   re-evaluations (e.g. scoring rounded candidates).
//! * `Ctx = &LegacyTape` → `N = LegacyVar`: the pre-SoA baseline kept for
//!   bit-parity tests and the benchmarked speedup trajectory.
//!
//! The f64 implementations of [`Scalar::max`] / [`Scalar::min`] /
//! [`Scalar::relu`] / [`Scalar::hinge_below`] spell out the exact
//! comparison the `Var` versions use, so the eval-only path reproduces
//! tape forward values bit for bit — including NaN propagation and which
//! side wins a tie.

/// A differentiable-model number: either a recorded [`Var`](crate::Var)
/// (new or legacy tape) or a plain `f64` on the eval-only path.
///
/// Implementations must agree *bitwise* on forward values: `f64` here is
/// not "roughly the same math", it is the same operation sequence.
pub trait Scalar:
    Copy
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::Add<f64, Output = Self>
    + std::ops::Sub<f64, Output = Self>
    + std::ops::Mul<f64, Output = Self>
    + std::ops::Div<f64, Output = Self>
{
    /// The current forward value.
    fn value(self) -> f64;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Raise to a constant power.
    fn powf(self, p: f64) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Reciprocal.
    fn recip(self) -> Self;
    /// Square.
    fn square(self) -> Self;
    /// Maximum; on a tie the gradient (and the value) goes to `self`.
    fn max(self, rhs: Self) -> Self;
    /// Minimum; on a tie the gradient (and the value) goes to `self`.
    fn min(self, rhs: Self) -> Self;
    /// `max(self, 0)` with gradient 0 at exactly 0.
    fn relu(self) -> Self;
    /// `max(k - self, 0)`: penalize values below `k`.
    fn hinge_below(self, k: f64) -> Self;
}

impl Scalar for f64 {
    #[inline]
    fn value(self) -> f64 {
        self
    }
    #[inline]
    fn ln(self) -> f64 {
        f64::ln(self)
    }
    #[inline]
    fn exp(self) -> f64 {
        f64::exp(self)
    }
    #[inline]
    fn powf(self, p: f64) -> f64 {
        f64::powf(self, p)
    }
    #[inline]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
    #[inline]
    fn recip(self) -> f64 {
        f64::recip(self)
    }
    #[inline]
    fn square(self) -> f64 {
        self * self
    }
    // NOT f64::max/min: the std versions treat NaN and ties differently
    // from the Var ops. These mirror `Var::max`/`Var::min` exactly.
    #[inline]
    fn max(self, rhs: f64) -> f64 {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
    #[inline]
    fn min(self, rhs: f64) -> f64 {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
    #[inline]
    fn relu(self) -> f64 {
        if self > 0.0 {
            self
        } else {
            0.0
        }
    }
    #[inline]
    fn hinge_below(self, k: f64) -> f64 {
        if self < k {
            k - self
        } else {
            0.0
        }
    }
}

/// A recording context: where [`Scalar`]s come from.
///
/// `&Tape` and `&LegacyTape` record; [`Values`] is the no-op eval-only
/// context. `Copy` so model code can thread it by value.
pub trait Ctx: Copy {
    /// The scalar this context produces.
    type N: Scalar;
    /// Whether model code may skip multiplications by constants it knows
    /// are exactly one (a pure node-count optimisation; skipping is
    /// value-exact because `a * 1.0 == a` bitwise). The legacy tape sets
    /// this `false` to preserve the pre-refactor encoding, so benchmarks
    /// against it measure the real before/after node counts.
    const UNIT_SKIP: bool = true;
    /// A constant (zero gradient).
    fn constant(self, value: f64) -> Self::N;
    /// A differentiable leaf.
    fn leaf(self, value: f64) -> Self::N;
    /// Current recording position, for [`SegmentPlan`](crate::SegmentPlan)
    /// boundaries. Non-recording contexts return 0.
    fn mark(self) -> u32;
}

/// The eval-only context: no tape, `N = f64`, every operation is plain
/// arithmetic with [`Var`](crate::Var)-identical semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Values;

impl Ctx for Values {
    type N = f64;
    #[inline]
    fn constant(self, value: f64) -> f64 {
        value
    }
    #[inline]
    fn leaf(self, value: f64) -> f64 {
        value
    }
    #[inline]
    fn mark(self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_max_min_mirror_var_tie_rules() {
        // Ties go to the left operand.
        assert_eq!(Scalar::max(1.0f64, 1.0), 1.0);
        // IEEE equality makes -0.0 vs 0.0 a tie, so `self` wins both ways.
        assert_eq!(Scalar::min(-0.0f64, 0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(Scalar::max(-0.0f64, 0.0).to_bits(), (-0.0f64).to_bits());
        // NaN on the left loses both comparisons (both `>=` and `<=` are
        // false), so the right side wins — same as the Var ops.
        assert_eq!(Scalar::max(f64::NAN, 2.0), 2.0);
        assert_eq!(Scalar::min(f64::NAN, 2.0), 2.0);
    }

    #[test]
    fn f64_relu_and_hinge() {
        assert_eq!(Scalar::relu(3.0f64), 3.0);
        assert_eq!(Scalar::relu(-3.0f64), 0.0);
        assert_eq!(Scalar::relu(0.0f64), 0.0);
        assert_eq!(Scalar::hinge_below(0.25f64, 1.0), 0.75);
        assert_eq!(Scalar::hinge_below(2.0f64, 1.0), 0.0);
    }

    #[test]
    fn values_ctx_is_plain_arithmetic() {
        let cx = Values;
        let x = cx.leaf(2.0);
        let y = (x * 3.0 + 1.0).ln().exp();
        assert!((y - 7.0).abs() < 1e-12);
        assert_eq!(cx.mark(), 0);
    }
}
