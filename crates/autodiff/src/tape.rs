//! The gradient tape: an append-only arena of scalar operations.

use std::cell::RefCell;
use std::fmt;

/// Index of a node on the tape.
pub(crate) type NodeId = u32;

/// One recorded operation. Each node has at most two parents; `grad[i]` is
/// the partial derivative of this node's value with respect to parent `i`,
/// computed at forward time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub parents: [NodeId; 2],
    pub grads: [f64; 2],
    pub arity: u8,
}

/// A reverse-mode automatic-differentiation tape.
///
/// Values are recorded as [`Var`](crate::Var)s; calling
/// [`Tape::backward`] produces the gradient of one scalar output with
/// respect to every recorded variable.
///
/// # Examples
///
/// ```
/// use dosa_autodiff::Tape;
/// let tape = Tape::new();
/// let x = tape.var(3.0);
/// let y = tape.var(2.0);
/// let z = x * y + x.ln();
/// let grads = tape.backward(z);
/// assert!((grads.wrt(x) - (2.0 + 1.0 / 3.0)).abs() < 1e-12);
/// assert!((grads.wrt(y) - 3.0).abs() < 1e-12);
/// ```
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
    pub(crate) values: RefCell<Vec<f64>>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear the tape, invalidating all previously created variables.
    ///
    /// Reuses allocations; useful when re-running a model every optimizer
    /// step.
    pub fn clear(&self) {
        self.nodes.borrow_mut().clear();
        self.values.borrow_mut().clear();
    }

    /// Record a leaf variable with value `v`.
    pub fn var(&self, v: f64) -> crate::Var<'_> {
        let id = self.push(Node {
            parents: [0, 0],
            grads: [0.0, 0.0],
            arity: 0,
        });
        self.values.borrow_mut().push(v);
        crate::Var {
            tape: self,
            id,
            value: v,
        }
    }

    /// Record a constant (identical to [`Tape::var`]; constants still occupy
    /// a node so gradients w.r.t. them can be inspected, and are zero-cost on
    /// the backward sweep).
    pub fn constant(&self, v: f64) -> crate::Var<'_> {
        self.var(v)
    }

    pub(crate) fn push(&self, node: Node) -> NodeId {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        assert!(id < u32::MAX as usize, "tape overflow");
        nodes.push(node);
        id as NodeId
    }

    pub(crate) fn record(&self, value: f64, node: Node) -> crate::Var<'_> {
        let id = self.push(node);
        self.values.borrow_mut().push(value);
        crate::Var {
            tape: self,
            id,
            value,
        }
    }

    /// Run the backward sweep from `output`, returning the adjoint of every
    /// node on the tape.
    ///
    /// Allocates a fresh adjoint vector; hot loops that backpropagate once
    /// per optimizer step should keep a scratch buffer alive and use
    /// [`Tape::backward_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `output` belongs to a different tape generation (i.e. the
    /// tape was [`clear`](Tape::clear)ed after `output` was created).
    pub fn backward(&self, output: crate::Var<'_>) -> Gradients {
        let mut adj = Vec::new();
        self.backward_into(output, &mut adj);
        Gradients { adj }
    }

    /// Run the backward sweep from `output` into a caller-owned adjoint
    /// buffer, reusing its allocation across calls.
    ///
    /// `adj` is cleared and resized to the tape length; on return it holds
    /// the adjoint of every node and the returned [`GradientsView`] borrows
    /// it for lookups. A GD search backpropagates once per sample —
    /// ~900–1500 times per start point — so reusing one buffer per worker
    /// removes that many transient allocations of tape size.
    ///
    /// # Panics
    ///
    /// Panics if `output` belongs to a different tape generation (i.e. the
    /// tape was [`clear`](Tape::clear)ed after `output` was created).
    pub fn backward_into<'a>(
        &self,
        output: crate::Var<'_>,
        adj: &'a mut Vec<f64>,
    ) -> GradientsView<'a> {
        let nodes = self.nodes.borrow();
        assert!(
            (output.id as usize) < nodes.len(),
            "output var is not on this tape"
        );
        adj.clear();
        adj.resize(nodes.len(), 0.0);
        adj[output.id as usize] = 1.0;
        for i in (0..=output.id as usize).rev() {
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            let node = nodes[i];
            for p in 0..node.arity as usize {
                adj[node.parents[p] as usize] += a * node.grads[p];
            }
        }
        GradientsView { adj }
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape").field("len", &self.len()).finish()
    }
}

/// The result of a backward sweep: adjoints for every tape node.
#[derive(Debug, Clone)]
pub struct Gradients {
    adj: Vec<f64>,
}

impl Gradients {
    /// Gradient of the backward output with respect to `v`.
    pub fn wrt(&self, v: crate::Var<'_>) -> f64 {
        self.adj[v.id as usize]
    }

    /// Gradients with respect to a slice of variables, in order.
    pub fn wrt_slice(&self, vars: &[crate::Var<'_>]) -> Vec<f64> {
        vars.iter().map(|&v| self.wrt(v)).collect()
    }
}

/// A borrowed view of a backward sweep's adjoints, produced by
/// [`Tape::backward_into`]; the buffer it reads stays owned by the caller.
#[derive(Debug)]
pub struct GradientsView<'a> {
    adj: &'a [f64],
}

impl GradientsView<'_> {
    /// Gradient of the backward output with respect to `v`.
    pub fn wrt(&self, v: crate::Var<'_>) -> f64 {
        self.adj[v.id as usize]
    }

    /// Gradients with respect to a slice of variables, in order.
    pub fn wrt_slice(&self, vars: &[crate::Var<'_>]) -> Vec<f64> {
        vars.iter().map(|&v| self.wrt(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_resets() {
        let tape = Tape::new();
        let _ = tape.var(1.0);
        assert_eq!(tape.len(), 1);
        tape.clear();
        assert!(tape.is_empty());
    }

    #[test]
    fn backward_of_leaf_is_one() {
        let tape = Tape::new();
        let x = tape.var(5.0);
        let g = tape.backward(x);
        assert_eq!(g.wrt(x), 1.0);
    }

    #[test]
    fn backward_into_matches_backward_and_reuses_buffer() {
        let tape = Tape::new();
        let mut adj = Vec::new();
        for k in 1..=3 {
            tape.clear();
            let x = tape.var(2.0 * k as f64);
            let y = tape.var(3.0);
            let z = x * y + x.ln();
            let expect = tape.backward(z);
            let view = tape.backward_into(z, &mut adj);
            assert_eq!(view.wrt(x), expect.wrt(x));
            assert_eq!(view.wrt(y), expect.wrt(y));
            assert_eq!(view.wrt_slice(&[x, y]), expect.wrt_slice(&[x, y]));
        }
        // The buffer sticks around sized to the last sweep.
        assert_eq!(adj.len(), tape.len());
    }

    #[test]
    fn backward_into_clears_stale_adjoints() {
        let tape = Tape::new();
        let x = tape.var(5.0);
        let y = tape.var(7.0);
        let z = x * y;
        let mut adj = vec![99.0; 16];
        let view = tape.backward_into(z, &mut adj);
        assert_eq!(view.wrt(x), 7.0);
        assert_eq!(view.wrt(y), 5.0);
    }

    #[test]
    fn unreachable_nodes_have_zero_grad() {
        let tape = Tape::new();
        let x = tape.var(5.0);
        let y = tape.var(2.0);
        let z = x * x;
        let g = tape.backward(z);
        assert_eq!(g.wrt(y), 0.0);
        assert_eq!(g.wrt(x), 10.0);
    }
}
