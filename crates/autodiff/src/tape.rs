//! The gradient tape: an append-only structure-of-arrays arena of scalar
//! operations.
//!
//! ## Layout and the recording hot path
//!
//! The tape stores one logical node per recorded operation, but the node
//! fields live in three parallel arrays (`parents`, `grads`, `arity`)
//! rather than an array of structs. The backward sweep touches exactly
//! these fields and nothing else, so the structure-of-arrays layout keeps
//! the sweep's working set contiguous and minimal; forward values are not
//! stored on the tape at all ([`Var`](crate::Var) carries its own value),
//! which removes one array append per recorded op.
//!
//! Recording is a single-owner bump append: the store sits behind one
//! [`UnsafeCell`] and every recording call takes exclusive access for the
//! duration of one push — the moral equivalent of holding a recording
//! session open for the whole forward pass, without threading a session
//! handle through every operator. This is sound because `Tape` is `!Sync`
//! (no two threads can record concurrently), no method hands out a
//! reference into the store, and no method calls user code while the
//! interior reference is live. The old implementation paid two
//! `RefCell::borrow_mut`s plus a bounds `assert!` per scalar op; the
//! rewrite pays one branch (`len == capacity`) that stays perfectly
//! predicted until the arena actually needs to grow.
//!
//! The node-id overflow check moved with it: ids are `u32`, and instead of
//! asserting on every push the tape asserts at the amortized [grow
//! boundary](TapeStore::grow) that capacity never exceeds [`MAX_NODES`] —
//! pushes between grows cannot overflow by construction.
//!
//! Backward sweeps ([`Tape::backward`], [`Tape::backward_into`], and the
//! segmented [`Tape::backward_segmented`](crate::SegmentPlan)) walk the
//! arrays in descending id order, skipping zero adjoints.

use std::cell::UnsafeCell;
use std::fmt;

/// Index of a node on the tape.
pub(crate) type NodeId = u32;

/// Hard cap on tape length: node ids must fit in a `u32` (the sentinel
/// `u32::MAX` is excluded so `len` itself always fits too).
const MAX_NODES: usize = u32::MAX as usize - 1;

/// The structure-of-arrays node storage. All three vectors always have
/// equal length; `grads[i][p]` is the partial derivative of node `i` with
/// respect to `parents[i][p]`, computed at forward time.
#[derive(Default)]
pub(crate) struct TapeStore {
    pub(crate) parents: Vec<[NodeId; 2]>,
    pub(crate) grads: Vec<[f64; 2]>,
    pub(crate) arity: Vec<u8>,
}

impl TapeStore {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.parents.len()
    }

    /// Append one node. Branch-light: the only branch is the amortized
    /// capacity check, and the id-overflow assertion lives inside the cold
    /// [`TapeStore::grow`] path.
    #[inline]
    fn push(&mut self, parents: [NodeId; 2], grads: [f64; 2], arity: u8) -> NodeId {
        if self.parents.len() == self.parents.capacity() {
            self.grow();
        }
        let id = self.parents.len() as NodeId;
        self.parents.push(parents);
        self.grads.push(grads);
        self.arity.push(arity);
        id
    }

    /// The amortized capacity (and id-overflow) boundary: doubling growth,
    /// capped at [`MAX_NODES`] so ids can never silently wrap.
    #[cold]
    #[inline(never)]
    fn grow(&mut self) {
        self.reserve_extra(self.parents.capacity().max(32));
    }

    fn reserve_extra(&mut self, extra: usize) {
        let len = self.parents.len();
        assert!(
            len < MAX_NODES,
            "tape overflow: more than {MAX_NODES} nodes"
        );
        let want = len.saturating_add(extra).min(MAX_NODES);
        let add = want - len;
        self.parents.reserve(add);
        self.grads.reserve(add);
        self.arity.reserve(add);
    }

    fn clear(&mut self) {
        self.parents.clear();
        self.grads.clear();
        self.arity.clear();
    }
}

/// Serial backward sweep over ids `lo..hi` in descending order,
/// accumulating into `adj`. Shared by the flat and segmented sweeps — the
/// segmented sweep's bit-parity argument is that its per-cell accumulation
/// order matches exactly what this loop produces.
pub(crate) fn sweep_serial(store: &TapeStore, adj: &mut [f64], lo: usize, hi: usize) {
    for i in (lo..hi).rev() {
        let a = adj[i];
        // dosa-lint: allow(float-eq) — exact-zero adjoint skip: a dead node
        // contributes exactly 0.0; tolerance-based skipping would change the
        // accumulation order the segmented sweep's bit-parity proof relies on.
        if a == 0.0 {
            continue;
        }
        let arity = store.arity[i] as usize;
        let parents = store.parents[i];
        let grads = store.grads[i];
        for p in 0..arity {
            adj[parents[p] as usize] += a * grads[p];
        }
    }
}

/// A reverse-mode automatic-differentiation tape.
///
/// Values are recorded as [`Var`](crate::Var)s; calling
/// [`Tape::backward`] produces the gradient of one scalar output with
/// respect to every recorded variable.
///
/// # Examples
///
/// ```
/// use dosa_autodiff::Tape;
/// let tape = Tape::new();
/// let x = tape.var(3.0);
/// let y = tape.var(2.0);
/// let z = x * y + x.ln();
/// let grads = tape.backward(z);
/// assert!((grads.wrt(x) - (2.0 + 1.0 / 3.0)).abs() < 1e-12);
/// assert!((grads.wrt(y) - 3.0).abs() < 1e-12);
/// ```
#[derive(Default)]
pub struct Tape {
    store: UnsafeCell<TapeStore>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Borrow the store for read-only sweep access.
    ///
    /// Crate-internal invariant: callers must not trigger recording (or
    /// any other store mutation) while the returned reference is live.
    /// Every backward sweep upholds this by construction — it runs no user
    /// code — and `Tape` is `!Sync`, so no other thread can record.
    #[inline]
    pub(crate) fn store(&self) -> &TapeStore {
        // SAFETY: aliasing — this shared borrow of the arena is only ever
        // taken by sweep code, which records nothing, so no `&mut` from
        // `clear`/`reserve`/`record` can coexist with it (all four are
        // confined to single public-method bodies and `Tape` is `!Sync`).
        // The returned `&TapeStore` borrows `self`, so the borrow checker
        // keeps it from outliving the tape or crossing a `&mut self` call.
        unsafe { &*self.store.get() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.store().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear the tape, invalidating all previously created variables.
    ///
    /// Reuses allocations; useful when re-running a model every optimizer
    /// step.
    pub fn clear(&self) {
        // SAFETY: the `&mut` is exclusive for the duration of this call —
        // `Tape` is `!Sync` (one thread), clear runs no user code that
        // could re-enter the tape, and no reference into the arena escapes
        // any public method, so none can be live across this borrow.
        // Clearing only resets lengths; it never frees the arena, so even
        // a leaked raw pointer would dangle into live (stale) storage.
        unsafe { &mut *self.store.get() }.clear();
    }

    /// Ensure capacity for at least `extra` more nodes without growing,
    /// moving the amortized overflow check even further out of the
    /// recording loop for callers that know their op count.
    pub fn reserve(&self, extra: usize) {
        // SAFETY: exclusive as in [`Tape::clear`]. Grow path: this may
        // reallocate the arena's segment vectors, which is sound only
        // because no outstanding reference into the old storage can exist
        // here — sweep borrows (`store()`) end before any `&self` method
        // returns, and recording takes its own short-lived `&mut`.
        unsafe { &mut *self.store.get() }.reserve_extra(extra);
    }

    /// Record a leaf variable with value `v`.
    pub fn var(&self, v: f64) -> crate::Var<'_> {
        self.record(v, [0, 0], [0.0, 0.0], 0)
    }

    /// Record a constant (identical to [`Tape::var`]; constants still occupy
    /// a node so gradients w.r.t. them can be inspected, and are zero-cost on
    /// the backward sweep).
    pub fn constant(&self, v: f64) -> crate::Var<'_> {
        self.var(v)
    }

    /// The recording hot path: one exclusive store access, one bump append.
    #[inline]
    pub(crate) fn record(
        &self,
        value: f64,
        parents: [NodeId; 2],
        grads: [f64; 2],
        arity: u8,
    ) -> crate::Var<'_> {
        // SAFETY: single-borrow recording — the `&mut` lives exactly for
        // this `push`, which runs no user code, so recording can never
        // re-enter the tape and observe a second live borrow. `Tape` is
        // `!Sync`, so no concurrent sweep holds a shared borrow. `push`
        // may take the grow path and reallocate segment storage; that is
        // sound here for the same reason as in [`Tape::reserve`]: no
        // reference into the arena survives outside a method body.
        let id = unsafe { &mut *self.store.get() }.push(parents, grads, arity);
        crate::Var {
            tape: self,
            id,
            value,
        }
    }

    /// Run the backward sweep from `output`, returning the adjoint of every
    /// node on the tape.
    ///
    /// Allocates a fresh adjoint vector; hot loops that backpropagate once
    /// per optimizer step should keep a scratch buffer alive and use
    /// [`Tape::backward_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `output` belongs to a different tape generation (i.e. the
    /// tape was [`clear`](Tape::clear)ed after `output` was created).
    pub fn backward(&self, output: crate::Var<'_>) -> Gradients {
        let mut adj = Vec::new();
        self.backward_into(output, &mut adj);
        Gradients { adj }
    }

    /// Run the backward sweep from `output` into a caller-owned adjoint
    /// buffer, reusing its allocation across calls.
    ///
    /// `adj` is cleared and resized to the tape length; on return it holds
    /// the adjoint of every node and the returned [`GradientsView`] borrows
    /// it for lookups. A GD search backpropagates once per sample —
    /// ~900–1500 times per start point — so reusing one buffer per worker
    /// removes that many transient allocations of tape size.
    ///
    /// # Panics
    ///
    /// Panics if `output` belongs to a different tape generation (i.e. the
    /// tape was [`clear`](Tape::clear)ed after `output` was created).
    pub fn backward_into<'a>(
        &self,
        output: crate::Var<'_>,
        adj: &'a mut Vec<f64>,
    ) -> GradientsView<'a> {
        let store = self.store();
        assert!(
            (output.id as usize) < store.len(),
            "output var is not on this tape"
        );
        adj.clear();
        adj.resize(store.len(), 0.0);
        adj[output.id as usize] = 1.0;
        sweep_serial(store, adj, 0, output.id as usize + 1);
        GradientsView { adj }
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape").field("len", &self.len()).finish()
    }
}

/// The result of a backward sweep: adjoints for every tape node.
#[derive(Debug, Clone)]
pub struct Gradients {
    adj: Vec<f64>,
}

impl Gradients {
    /// Gradient of the backward output with respect to `v`.
    pub fn wrt(&self, v: crate::Var<'_>) -> f64 {
        self.adj[v.id as usize]
    }

    /// Gradients with respect to a slice of variables, in order.
    pub fn wrt_slice(&self, vars: &[crate::Var<'_>]) -> Vec<f64> {
        vars.iter().map(|&v| self.wrt(v)).collect()
    }

    /// Like [`Gradients::wrt_slice`] but writing into a caller-owned
    /// buffer (cleared first), so per-step leaf gathers allocate nothing.
    pub fn wrt_into(&self, vars: &[crate::Var<'_>], out: &mut Vec<f64>) {
        out.clear();
        out.extend(vars.iter().map(|&v| self.wrt(v)));
    }
}

/// A borrowed view of a backward sweep's adjoints, produced by
/// [`Tape::backward_into`]; the buffer it reads stays owned by the caller.
#[derive(Debug)]
pub struct GradientsView<'a> {
    pub(crate) adj: &'a [f64],
}

impl GradientsView<'_> {
    /// Gradient of the backward output with respect to `v`.
    pub fn wrt(&self, v: crate::Var<'_>) -> f64 {
        self.adj[v.id as usize]
    }

    /// Gradients with respect to a slice of variables, in order.
    pub fn wrt_slice(&self, vars: &[crate::Var<'_>]) -> Vec<f64> {
        vars.iter().map(|&v| self.wrt(v)).collect()
    }

    /// Like [`GradientsView::wrt_slice`] but writing into a caller-owned
    /// buffer (cleared first), so per-step leaf gathers allocate nothing.
    pub fn wrt_into(&self, vars: &[crate::Var<'_>], out: &mut Vec<f64>) {
        out.clear();
        out.extend(vars.iter().map(|&v| self.wrt(v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_resets() {
        let tape = Tape::new();
        let _ = tape.var(1.0);
        assert_eq!(tape.len(), 1);
        tape.clear();
        assert!(tape.is_empty());
    }

    #[test]
    fn backward_of_leaf_is_one() {
        let tape = Tape::new();
        let x = tape.var(5.0);
        let g = tape.backward(x);
        assert_eq!(g.wrt(x), 1.0);
    }

    #[test]
    fn backward_into_matches_backward_and_reuses_buffer() {
        let tape = Tape::new();
        let mut adj = Vec::new();
        for k in 1..=3 {
            tape.clear();
            let x = tape.var(2.0 * k as f64);
            let y = tape.var(3.0);
            let z = x * y + x.ln();
            let expect = tape.backward(z);
            let view = tape.backward_into(z, &mut adj);
            assert_eq!(view.wrt(x), expect.wrt(x));
            assert_eq!(view.wrt(y), expect.wrt(y));
            assert_eq!(view.wrt_slice(&[x, y]), expect.wrt_slice(&[x, y]));
        }
        // The buffer sticks around sized to the last sweep.
        assert_eq!(adj.len(), tape.len());
    }

    #[test]
    fn backward_into_clears_stale_adjoints() {
        let tape = Tape::new();
        let x = tape.var(5.0);
        let y = tape.var(7.0);
        let z = x * y;
        let mut adj = vec![99.0; 16];
        let view = tape.backward_into(z, &mut adj);
        assert_eq!(view.wrt(x), 7.0);
        assert_eq!(view.wrt(y), 5.0);
    }

    #[test]
    fn unreachable_nodes_have_zero_grad() {
        let tape = Tape::new();
        let x = tape.var(5.0);
        let y = tape.var(2.0);
        let z = x * x;
        let g = tape.backward(z);
        assert_eq!(g.wrt(y), 0.0);
        assert_eq!(g.wrt(x), 10.0);
    }

    #[test]
    fn wrt_into_reuses_buffer() {
        let tape = Tape::new();
        let x = tape.var(2.0);
        let y = tape.var(5.0);
        let z = x * y;
        let mut out = vec![1.0; 8];
        let g = tape.backward(z);
        g.wrt_into(&[x, y], &mut out);
        assert_eq!(out, vec![5.0, 2.0]);
        let mut adj = Vec::new();
        let view = tape.backward_into(z, &mut adj);
        view.wrt_into(&[y, x], &mut out);
        assert_eq!(out, vec![2.0, 5.0]);
    }

    #[test]
    fn reserve_then_record_many() {
        let tape = Tape::new();
        tape.reserve(10_000);
        let mut v = tape.var(1.0);
        for _ in 0..9_999 {
            v = v + 1.0;
        }
        assert_eq!(tape.len(), 10_000);
        assert_eq!(tape.backward(v).wrt(v), 1.0);
    }
}
