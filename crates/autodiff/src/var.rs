//! Differentiable scalar variables and their operations.

use crate::scalar::{Ctx, Scalar};
use crate::tape::Tape;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A differentiable scalar recorded on a [`Tape`].
///
/// `Var` is `Copy`; arithmetic operators (`+ - * /`) are overloaded for
/// `Var ⊕ Var` and `Var ⊕ f64`, and record onto the owning tape. The
/// `f64` forms are *fused*: `x * 3.0` records one unary node (gradient
/// `3.0`) instead of a constant node plus a binary node, halving tape
/// traffic for the constant-heavy model code.
///
/// # Examples
///
/// ```
/// use dosa_autodiff::Tape;
/// let t = Tape::new();
/// let x = t.var(2.0);
/// let y = (x * 3.0 + 1.0).powf(2.0);
/// assert_eq!(y.value(), 49.0);
/// assert_eq!(t.backward(y).wrt(x), 2.0 * 7.0 * 3.0);
/// ```
#[derive(Clone, Copy)]
pub struct Var<'t> {
    pub(crate) tape: &'t Tape,
    pub(crate) id: u32,
    pub(crate) value: f64,
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id)
            .field("value", &self.value)
            .finish()
    }
}

impl<'t> Var<'t> {
    /// The forward value.
    #[inline]
    pub fn value(self) -> f64 {
        self.value
    }

    #[inline]
    fn unary(self, value: f64, grad: f64) -> Var<'t> {
        self.tape.record(value, [self.id, 0], [grad, 0.0], 1)
    }

    #[inline]
    fn binary(self, rhs: Var<'t>, value: f64, ga: f64, gb: f64) -> Var<'t> {
        self.tape.record(value, [self.id, rhs.id], [ga, gb], 2)
    }

    /// Natural logarithm. The input should be positive; `ln` of a
    /// non-positive value produces `NaN`/`-inf` like [`f64::ln`].
    pub fn ln(self) -> Var<'t> {
        self.unary(self.value.ln(), 1.0 / self.value)
    }

    /// Exponential.
    pub fn exp(self) -> Var<'t> {
        let e = self.value.exp();
        self.unary(e, e)
    }

    /// Power with a constant (non-differentiated) exponent.
    pub fn powf(self, k: f64) -> Var<'t> {
        let v = self.value.powf(k);
        self.unary(v, k * self.value.powf(k - 1.0))
    }

    /// Square root.
    pub fn sqrt(self) -> Var<'t> {
        let v = self.value.sqrt();
        self.unary(v, 0.5 / v)
    }

    /// Reciprocal `1/x`.
    pub fn recip(self) -> Var<'t> {
        let v = 1.0 / self.value;
        self.unary(v, -v * v)
    }

    /// Square.
    pub fn square(self) -> Var<'t> {
        self.unary(self.value * self.value, 2.0 * self.value)
    }

    /// Elementwise maximum, with the subgradient convention of routing the
    /// gradient to the larger input (ties route to `self`).
    pub fn max(self, rhs: Var<'t>) -> Var<'t> {
        if self.value >= rhs.value {
            self.binary(rhs, self.value, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.value, 0.0, 1.0)
        }
    }

    /// Elementwise minimum (subgradient; ties route to `self`).
    pub fn min(self, rhs: Var<'t>) -> Var<'t> {
        if self.value <= rhs.value {
            self.binary(rhs, self.value, 1.0, 0.0)
        } else {
            self.binary(rhs, rhs.value, 0.0, 1.0)
        }
    }

    /// Rectified linear unit `max(x, 0)`.
    pub fn relu(self) -> Var<'t> {
        if self.value > 0.0 {
            self.unary(self.value, 1.0)
        } else {
            self.unary(0.0, 0.0)
        }
    }

    /// `max(k − x, 0)` — the hinge used by the invalid-mapping penalty
    /// (Eq. 18 of the paper with `k = 1`).
    pub fn hinge_below(self, k: f64) -> Var<'t> {
        if self.value < k {
            self.unary(k - self.value, -1.0)
        } else {
            self.unary(0.0, 0.0)
        }
    }

    /// The tape this variable is recorded on.
    pub fn tape(self) -> &'t Tape {
        self.tape
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, |$a:ident, $b:ident| $val:expr, |$av:ident, $bv:ident| ($ga:expr, $gb:expr)) => {
        impl<'t> $trait for Var<'t> {
            type Output = Var<'t>;
            fn $method(self, rhs: Var<'t>) -> Var<'t> {
                let ($a, $b) = (self.value, rhs.value);
                let value = $val;
                let ($av, $bv) = (self.value, rhs.value);
                // Silence unused warnings for grads not using both.
                let _ = ($av, $bv);
                self.binary(rhs, value, $ga, $gb)
            }
        }
    };
}

impl_binop!(Add, add, |a, b| a + b, |_av, _bv| (1.0, 1.0));
impl_binop!(Sub, sub, |a, b| a - b, |_av, _bv| (1.0, -1.0));
impl_binop!(Mul, mul, |a, b| a * b, |av, bv| (bv, av));
impl_binop!(Div, div, |a, b| a / b, |av, bv| (1.0 / bv, -av / (bv * bv)));

// Var ⊕ f64: fused single-node forms. The gradient each one stores is
// exactly the product the two-node legacy encoding (constant node + binary
// op) feeds back to the variable, so fusing changes no accumulated bit —
// it only skips recording a constant leaf nobody differentiates.
impl<'t> Add<f64> for Var<'t> {
    type Output = Var<'t>;
    #[inline]
    fn add(self, rhs: f64) -> Var<'t> {
        self.unary(self.value + rhs, 1.0)
    }
}

impl<'t> Sub<f64> for Var<'t> {
    type Output = Var<'t>;
    #[inline]
    fn sub(self, rhs: f64) -> Var<'t> {
        self.unary(self.value - rhs, 1.0)
    }
}

impl<'t> Mul<f64> for Var<'t> {
    type Output = Var<'t>;
    #[inline]
    fn mul(self, rhs: f64) -> Var<'t> {
        self.unary(self.value * rhs, rhs)
    }
}

impl<'t> Div<f64> for Var<'t> {
    type Output = Var<'t>;
    #[inline]
    fn div(self, rhs: f64) -> Var<'t> {
        self.unary(self.value / rhs, 1.0 / rhs)
    }
}

impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        self.unary(-self.value, -1.0)
    }
}

impl<'t> Add<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        rhs + self
    }
}

impl<'t> Mul<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        rhs * self
    }
}

impl<'t> Sub<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        rhs.unary(self - rhs.value, -1.0)
    }
}

impl<'t> Div<Var<'t>> for f64 {
    type Output = Var<'t>;
    // `k / v` is recorded as `v.recip() * k`: one reciprocal node plus a
    // fused scale, which is exactly the intended derivative chain.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        rhs.recip() * self
    }
}

impl<'t> Scalar for Var<'t> {
    #[inline]
    fn value(self) -> f64 {
        self.value
    }
    #[inline]
    fn ln(self) -> Var<'t> {
        Var::ln(self)
    }
    #[inline]
    fn exp(self) -> Var<'t> {
        Var::exp(self)
    }
    #[inline]
    fn powf(self, p: f64) -> Var<'t> {
        Var::powf(self, p)
    }
    #[inline]
    fn sqrt(self) -> Var<'t> {
        Var::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Var<'t> {
        Var::recip(self)
    }
    #[inline]
    fn square(self) -> Var<'t> {
        Var::square(self)
    }
    #[inline]
    fn max(self, rhs: Var<'t>) -> Var<'t> {
        Var::max(self, rhs)
    }
    #[inline]
    fn min(self, rhs: Var<'t>) -> Var<'t> {
        Var::min(self, rhs)
    }
    #[inline]
    fn relu(self) -> Var<'t> {
        Var::relu(self)
    }
    #[inline]
    fn hinge_below(self, k: f64) -> Var<'t> {
        Var::hinge_below(self, k)
    }
}

impl<'t> Ctx for &'t Tape {
    type N = Var<'t>;
    #[inline]
    fn constant(self, value: f64) -> Var<'t> {
        Tape::constant(self, value)
    }
    #[inline]
    fn leaf(self, value: f64) -> Var<'t> {
        Tape::var(self, value)
    }
    #[inline]
    fn mark(self) -> u32 {
        self.len() as u32
    }
}

/// Sum of a slice of scalars. Returns a zero constant for an empty slice.
///
/// # Panics
///
/// Panics if `vars` mixes variables from different tapes (debug builds may
/// not detect this; callers must keep tapes separate).
pub fn sum<C: Ctx>(cx: C, vars: &[C::N]) -> C::N {
    match vars.split_first() {
        None => cx.constant(0.0),
        Some((&first, rest)) => rest.iter().fold(first, |acc, &v| acc + v),
    }
}

/// Product of a slice of scalars. Returns a one constant for an empty
/// slice.
pub fn prod<C: Ctx>(cx: C, vars: &[C::N]) -> C::N {
    match vars.split_first() {
        None => cx.constant(1.0),
        Some((&first, rest)) => rest.iter().fold(first, |acc, &v| acc * v),
    }
}

/// Maximum over a slice of scalars (subgradient semantics).
///
/// Returns negative infinity constant for an empty slice.
pub fn max_of<C: Ctx>(cx: C, vars: &[C::N]) -> C::N {
    match vars.split_first() {
        None => cx.constant(f64::NEG_INFINITY),
        Some((&first, rest)) => rest.iter().fold(first, |acc, &v| acc.max(v)),
    }
}

/// Numerically-stable softmax over a slice of scalars (Eq. 16's σ).
pub fn softmax<C: Ctx>(cx: C, vars: &[C::N]) -> Vec<C::N> {
    if vars.is_empty() {
        return Vec::new();
    }
    let m = vars
        .iter()
        .map(|v| v.value())
        .fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<C::N> = vars.iter().map(|&v| (v - m).exp()).collect();
    let denom = sum(cx, &exps);
    exps.into_iter().map(|e| e / denom).collect()
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot<C: Ctx>(cx: C, a: &[C::N], b: &[C::N]) -> C::N {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    let terms: Vec<C::N> = a.iter().zip(b).map(|(&x, &y)| x * y).collect();
    sum(cx, &terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Values;

    fn grad1(f: impl for<'t> Fn(&'t Tape, Var<'t>) -> Var<'t>, x: f64) -> (f64, f64) {
        let tape = Tape::new();
        let v = tape.var(x);
        let y = f(&tape, v);
        let g = tape.backward(y);
        (y.value(), g.wrt(v))
    }

    #[test]
    fn basic_arith_grads() {
        let (v, g) = grad1(|_, x| x * x + x * 3.0 - 1.0, 2.0);
        assert_eq!(v, 9.0);
        assert_eq!(g, 7.0);
    }

    #[test]
    fn div_grad() {
        let (v, g) = grad1(|_, x| 1.0 / x, 4.0);
        assert!((v - 0.25).abs() < 1e-12);
        assert!((g + 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn transcendental_grads() {
        let (v, g) = grad1(|_, x| x.ln() * x.exp(), 1.5);
        let expected = 1.5f64.exp() * (1.5f64.ln() + 1.0 / 1.5);
        assert!((v - 1.5f64.ln() * 1.5f64.exp()).abs() < 1e-12);
        assert!((g - expected).abs() < 1e-12);
    }

    #[test]
    fn max_subgradient_routes_to_argmax() {
        let tape = Tape::new();
        let a = tape.var(2.0);
        let b = tape.var(5.0);
        let m = a.max(b);
        let g = tape.backward(m);
        assert_eq!(g.wrt(a), 0.0);
        assert_eq!(g.wrt(b), 1.0);
        assert_eq!(m.value(), 5.0);
    }

    #[test]
    fn hinge_below_matches_eq18() {
        let tape = Tape::new();
        let f = tape.var(0.25);
        let pen = f.hinge_below(1.0);
        assert_eq!(pen.value(), 0.75);
        assert_eq!(tape.backward(pen).wrt(f), -1.0);
        let ok = tape.var(2.0).hinge_below(1.0);
        assert_eq!(ok.value(), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_grads_flow() {
        let tape = Tape::new();
        let xs = [tape.var(1.0), tape.var(2.0), tape.var(3.0)];
        let sm = softmax(&tape, &xs);
        let total: f64 = sm.iter().map(|v| v.value()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let g = tape.backward(sm[0]);
        // d softmax_0 / d x_0 = s0 (1 - s0) > 0
        assert!(g.wrt(xs[0]) > 0.0);
        assert!(g.wrt(xs[1]) < 0.0);
    }

    #[test]
    fn prod_and_sum_helpers() {
        let tape = Tape::new();
        let xs = [tape.var(2.0), tape.var(3.0), tape.var(4.0)];
        assert_eq!(prod(&tape, &xs).value(), 24.0);
        assert_eq!(sum(&tape, &xs).value(), 9.0);
        assert_eq!(prod(&tape, &[]).value(), 1.0);
        assert_eq!(sum(&tape, &[]).value(), 0.0);
        let p = prod(&tape, &xs);
        let g = tape.backward(p);
        assert_eq!(g.wrt(xs[0]), 12.0);
    }

    #[test]
    fn scalar_lhs_ops() {
        let tape = Tape::new();
        let x = tape.var(4.0);
        assert_eq!((2.0 - x).value(), -2.0);
        assert_eq!((8.0 / x).value(), 2.0);
        assert_eq!((3.0 * x).value(), 12.0);
        assert_eq!((1.0 + x).value(), 5.0);
    }

    #[test]
    fn fused_scalar_ops_record_one_node() {
        let tape = Tape::new();
        let x = tape.var(4.0);
        let before = tape.len();
        let _ = x + 1.0;
        let _ = x - 1.0;
        let _ = x * 2.0;
        let _ = x / 2.0;
        let _ = 2.0 - x;
        assert_eq!(tape.len(), before + 5);
        let y = x * 2.0 + 1.0;
        assert_eq!(tape.backward(y).wrt(x), 2.0);
        let z = 10.0 - x;
        assert_eq!(tape.backward(z).wrt(x), -1.0);
        let w = x / 4.0;
        assert_eq!(tape.backward(w).wrt(x), 0.25);
    }

    #[test]
    fn relu_and_square() {
        let tape = Tape::new();
        let x = tape.var(-2.0);
        assert_eq!(x.relu().value(), 0.0);
        assert_eq!(tape.backward(x.relu()).wrt(x), 0.0);
        let y = tape.var(3.0);
        assert_eq!(y.square().value(), 9.0);
        assert_eq!(tape.backward(y.square()).wrt(y), 6.0);
    }

    #[test]
    fn max_of_slice() {
        let tape = Tape::new();
        let xs = [tape.var(1.0), tape.var(9.0), tape.var(4.0)];
        let m = max_of(&tape, &xs);
        assert_eq!(m.value(), 9.0);
        let g = tape.backward(m);
        assert_eq!(g.wrt_slice(&xs), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn helpers_run_on_values_ctx() {
        let cx = Values;
        let xs = [2.0, 3.0, 4.0];
        assert_eq!(prod(cx, &xs), 24.0);
        assert_eq!(sum(cx, &xs), 9.0);
        assert_eq!(max_of(cx, &xs), 4.0);
        let sm = softmax(cx, &xs);
        assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(dot(cx, &xs, &xs), 29.0);
    }
}
