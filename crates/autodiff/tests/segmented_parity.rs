//! Parity of the segmented backward sweep on randomized multi-layer
//! losses: reverse-mode gradients must agree with finite differences,
//! match the pre-refactor [`LegacyTape`] bit-for-bit, and be bit-identical
//! for every worker budget handed to [`Tape::backward_segmented`].

use dosa_autodiff::{check_gradients, Ctx, LegacyTape, Scalar, SegScratch, SegmentPlan, Tape};
use proptest::prelude::*;

/// A nonlinear multi-layer loss exercising every op family the model hot
/// path uses (fused scalar ops, ln/exp, square/sqrt/recip, max/min, relu,
/// hinge), recorded with one tape segment per layer.
///
/// `vars` is the flat leaf list, chunked by `sizes`; all inputs must be
/// positive so the logarithms stay finite.
fn layered_loss_on<C: Ctx>(cx: C, vars: &[C::N], sizes: &[usize], plan: &mut SegmentPlan) -> C::N {
    let mut terms: Vec<C::N> = Vec::new();
    plan.serial_to(cx.mark());
    plan.begin_group();
    let mut offset = 0;
    for &size in sizes {
        let layer = &vars[offset..offset + size];
        offset += size;
        let mut acc = cx.constant(0.1);
        let mut p = cx.constant(1.0);
        for (i, &v) in layer.iter().enumerate() {
            let t = (v * 0.5 + 1.25).ln().exp() + v.square() * 0.125;
            acc = acc + t.max(v.relu() + 0.1) + v.hinge_below(0.75);
            p = p * (v.exp() * 0.25 + 1.0);
            if i % 2 == 0 {
                acc = acc + (v + 2.5).recip();
            }
        }
        let term = (acc + p.ln()).square().sqrt() + acc.min(p) * 0.01;
        terms.push(term);
        plan.chunk_to(cx.mark());
    }
    plan.end_group();
    let mut total = cx.constant(0.0);
    for &t in &terms {
        total = total + t;
    }
    let loss = (total + 1.0).ln() + total * 0.001;
    plan.serial_to(cx.mark());
    loss
}

fn layer_shapes() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.3f64..2.0, 2..6), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Finite differences, the legacy AoS tape, and the segmented sweep at
    /// worker budgets 1/2/8 all agree on randomized multi-layer losses —
    /// the last two bit-for-bit.
    #[test]
    fn segmented_matches_fd_legacy_and_every_worker_budget(layers in layer_shapes()) {
        let sizes: Vec<usize> = layers.iter().map(Vec::len).collect();
        let flat: Vec<f64> = layers.iter().flatten().copied().collect();

        // Reverse mode vs central finite differences.
        let err = check_gradients(&flat, 1e-6, |tape, vs| {
            layered_loss_on(tape, vs, &sizes, &mut SegmentPlan::disabled())
        });
        prop_assert!(err < 1e-4, "finite-difference mismatch: err={err}");

        // New SoA tape, flat backward: the reference for the bit checks.
        let tape = Tape::new();
        let vars: Vec<_> = flat.iter().map(|&v| tape.var(v)).collect();
        let mut plan = SegmentPlan::new();
        let loss = layered_loss_on(&tape, &vars, &sizes, &mut plan);
        let grads = tape.backward(loss);
        let reference: Vec<f64> = grads.wrt_slice(&vars);

        // Legacy AoS tape on the identical expression, bit-for-bit.
        let legacy = LegacyTape::new();
        let lvars: Vec<_> = flat.iter().map(|&v| legacy.var(v)).collect();
        let lloss = layered_loss_on(&legacy, &lvars, &sizes, &mut SegmentPlan::disabled());
        prop_assert_eq!(lloss.value().to_bits(), loss.value().to_bits());
        let lgrads = legacy.backward(lloss);
        for (i, &lv) in lvars.iter().enumerate() {
            prop_assert_eq!(
                lgrads.wrt(lv).to_bits(),
                reference[i].to_bits(),
                "legacy gradient {} diverged", i
            );
        }

        // Segmented sweep at several worker budgets, bit-for-bit.
        let mut scratch = SegScratch::new();
        for threads in [1usize, 2, 8] {
            let view = tape.backward_segmented(loss, &plan, threads, &mut scratch);
            for (i, &v) in vars.iter().enumerate() {
                prop_assert_eq!(
                    view.wrt(v).to_bits(),
                    reference[i].to_bits(),
                    "segmented gradient {} diverged at {} workers", i, threads
                );
            }
        }
    }
}

/// Big enough per-layer chunks to cross the parallel-group node threshold,
/// so the scoped-thread sweep (not the serial fallback) is what must stay
/// bit-identical across worker budgets.
#[test]
fn large_group_parity_across_worker_budgets() {
    let sizes = vec![600usize; 8];
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        // xorshift64*: deterministic values in (0.3, 2.0) without rand.
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        let u = (seed.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        0.3 + 1.7 * u
    };
    let flat: Vec<f64> = (0..sizes.iter().sum::<usize>()).map(|_| next()).collect();

    let tape = Tape::new();
    let vars: Vec<_> = flat.iter().map(|&v| tape.var(v)).collect();
    let mut plan = SegmentPlan::new();
    let loss = layered_loss_on(&tape, &vars, &sizes, &mut plan);
    let reference = tape.backward(loss);

    let mut scratch = SegScratch::new();
    for threads in [1usize, 2, 3, 8] {
        let view = tape.backward_segmented(loss, &plan, threads, &mut scratch);
        for &v in &vars {
            assert_eq!(
                view.wrt(v).to_bits(),
                reference.wrt(v).to_bits(),
                "diverged at {threads} workers"
            );
        }
    }
}
