//! Property-based gradient checks: reverse-mode must agree with finite
//! differences on randomized compositions.

use dosa_autodiff::{check_gradients, max_of, prod, softmax, sum, Tape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rational_functions_match_fd(a in 0.5f64..4.0, b in 0.5f64..4.0, c in 0.5f64..4.0) {
        let err = check_gradients(&[a, b, c], 1e-6, |_, xs| {
            (xs[0] * xs[1] + xs[2]) / (xs[0] + xs[1] * xs[2] + 1.0)
        });
        prop_assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn log_space_products_match_fd(xs in proptest::collection::vec(0.2f64..5.0, 2..6)) {
        let err = check_gradients(&xs, 1e-6, |tape, vs| {
            let logs: Vec<_> = vs.iter().map(|v| v.ln()).collect();
            sum(tape, &logs).exp()
        });
        prop_assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn softmax_weighted_sum_matches_fd(xs in proptest::collection::vec(-2.0f64..2.0, 3..5)) {
        let err = check_gradients(&xs, 1e-6, |tape, vs| {
            let sm = softmax(tape, vs);
            dosa_autodiff::dot(tape, &sm, vs)
        });
        prop_assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn product_gradient_is_partial_product(xs in proptest::collection::vec(0.5f64..3.0, 2..7)) {
        let tape = Tape::new();
        let vars: Vec<_> = xs.iter().map(|&x| tape.var(x)).collect();
        let p = prod(&tape, &vars);
        let g = tape.backward(p);
        for (i, &x) in xs.iter().enumerate() {
            let expected = p.value() / x;
            prop_assert!((g.wrt(vars[i]) - expected).abs() < 1e-9 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn max_of_value_matches_iter_max(xs in proptest::collection::vec(-10.0f64..10.0, 1..8)) {
        let tape = Tape::new();
        let vars: Vec<_> = xs.iter().map(|&x| tape.var(x)).collect();
        let m = max_of(&tape, &vars);
        let expected = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(m.value(), expected);
        // Exactly one unit of gradient flows back.
        let g = tape.backward(m);
        let total: f64 = vars.iter().map(|&v| g.wrt(v)).sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }
}
