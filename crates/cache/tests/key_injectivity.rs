//! Property tests of the fingerprint encoding: distinct contents never
//! collide, equal contents always do, and float canonicalization conflates
//! exactly the values IEEE `==` conflates.

use dosa_cache::{CacheKey, Fingerprinter};
use proptest::prelude::*;

/// One fingerprint over a mixed field tuple, mirroring how the search
/// layer writes keys (schema, then tagged named fields).
fn mixed_key(schema: &str, a: u64, b: i64, c: f64, d: bool, s: &str) -> CacheKey {
    Fingerprinter::new(schema)
        .field("a")
        .u64(a)
        .field("b")
        .i64(b)
        .field("c")
        .f64(c)
        .field("d")
        .bool(d)
        .field("s")
        .str(s)
        .finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same content → same key, bit for bit, across independent builders.
    #[test]
    fn equal_content_equal_key(a in 0u64..u64::MAX, b in i64::MIN..i64::MAX, c in -1.0e12f64..1.0e12, d in 0u8..2, n in 0usize..8) {
        let s = "x".repeat(n);
        let k1 = mixed_key("prop-v1", a, b, c, d == 1, &s);
        let k2 = mixed_key("prop-v1", a, b, c, d == 1, &s);
        prop_assert_eq!(&k1, &k2);
        prop_assert_eq!(k1.hash(), k2.hash());
        prop_assert_eq!(k1.as_bytes(), k2.as_bytes());
    }

    /// Varying any single field changes the key (no collisions). Floats
    /// are perturbed to the next representable value so the delta is the
    /// smallest the type can express.
    #[test]
    fn single_field_difference_never_collides(a in 0u64..u64::MAX - 1, b in i64::MIN..i64::MAX - 1, c in -1.0e12f64..1.0e12, n in 0usize..8) {
        let s = "x".repeat(n);
        let base = mixed_key("prop-v1", a, b, c, false, &s);
        prop_assert!(base != mixed_key("prop-v1", a + 1, b, c, false, &s), "u64 field ignored");
        prop_assert!(base != mixed_key("prop-v1", a, b + 1, c, false, &s), "i64 field ignored");
        let c_next = if c == 0.0 { f64::MIN_POSITIVE } else { f64::from_bits(c.to_bits() + 1) };
        prop_assert!(base != mixed_key("prop-v1", a, b, c_next, false, &s), "f64 field ignored");
        prop_assert!(base != mixed_key("prop-v1", a, b, c, true, &s), "bool field ignored");
        let mut s2 = s.clone();
        s2.push('y');
        prop_assert!(base != mixed_key("prop-v1", a, b, c, false, &s2), "str field ignored");
        prop_assert!(base != mixed_key("prop-v2", a, b, c, false, &s), "schema ignored");
    }

    /// Float canonicalization conflates exactly what IEEE `==` conflates:
    /// the two zeros collapse, every NaN collapses, and everything else
    /// keeps its bits.
    #[test]
    fn float_canonicalization_matches_ieee_equality(x in -1.0e12f64..1.0e12, nan_payload in 1u64..0xF_FFFF_FFFF_FFFF) {
        let via = |v: f64| Fingerprinter::new("float-v1").f64(v).finish();
        prop_assert_eq!(via(0.0), via(-0.0));
        prop_assert_eq!(via(f64::NAN), via(f64::from_bits(0x7FF0_0000_0000_0000 | nan_payload)));
        prop_assert_eq!(via(x) == via(-x), x == -x);
        if x != 0.0 {
            let next = f64::from_bits(x.to_bits() + 1);
            prop_assert!(via(x) != via(next), "adjacent floats must not collide");
        }
    }

    /// Splitting the same character stream differently across string
    /// fields never collides (length prefixes hold the boundaries).
    #[test]
    fn string_boundaries_are_preserved(n in 1usize..10, split in 0usize..10) {
        let text = "abcdefghij"[..n].to_string();
        let split = split % (n + 1);
        let joined = Fingerprinter::new("split-v1").str(&text).str("").finish();
        let parts = Fingerprinter::new("split-v1")
            .str(&text[..split])
            .str(&text[split..])
            .finish();
        prop_assert_eq!(joined == parts, split == n);
    }
}
