//! Cache storage: the [`CacheStore`] trait and the in-memory
//! [`ShardedLru`] backend.

use crate::key::CacheKey;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a shard, recovering the guard if a previous holder panicked. The
/// critical sections below only move plain map entries — they can't be
/// left mid-update by a panic — so a poisoned shard is always safe to
/// keep serving rather than wedging every worker that shares the cache.
///
/// This is the `dosa-cache` poisoning-recovery perimeter, the local
/// equivalent of `fault::lock` in `dosa-search` (which this crate cannot
/// depend on without inverting the crate graph).
fn lock_shard<V>(shard: &Mutex<Shard<V>>) -> MutexGuard<'_, Shard<V>> {
    // dosa-lint: allow(raw-mutex-lock) — this IS the shard-lock perimeter: the one
    // place dosa-cache touches a raw Mutex, recovering poisoned guards for callers.
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A content-addressed store a result cache can journal into and replay
/// from. Implementations must be safe to share across the service's
/// worker threads (`Send + Sync`); values are cloned out on
/// [`get`](CacheStore::get), so callers typically store `Arc`ed results.
///
/// The in-memory [`ShardedLru`] is the only backend today; the trait
/// exists so a persistent store (disk journal, redis, ...) can slot in
/// behind the same service wiring without touching the search layer.
pub trait CacheStore<V>: Send + Sync {
    /// Look `key` up, cloning the stored value out on a hit.
    fn get(&self, key: &CacheKey) -> Option<V>;

    /// Insert (or overwrite) `key` → `value`.
    fn put(&self, key: CacheKey, value: V);

    /// Number of entries currently stored.
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Entry<V> {
    value: V,
    /// Global tick of the last touch (insert or hit); the smallest tick
    /// in a shard is its least-recently-used entry.
    last_used: u64,
}

// A BTreeMap rather than a HashMap (the `nondet-iteration` invariant):
// eviction scans the shard, and on a recency tie the BTreeMap's key order
// makes the evicted entry deterministic where HashMap iteration order
// would pick a different victim run to run.
struct Shard<V> {
    map: BTreeMap<CacheKey, Entry<V>>,
}

/// An in-memory, capacity-bounded, approximately-LRU [`CacheStore`].
///
/// Keys are spread over a fixed set of shards by their precomputed hash,
/// so concurrent workers journaling results rarely contend on one lock.
/// Recency is tracked with a global atomic tick stamped on every insert
/// and hit; when an insert overflows a shard's capacity, that shard
/// evicts its smallest-tick entry (an `O(shard len)` scan — shards are
/// small and eviction is off the lookup fast path, so the simplicity is
/// worth more than a doubly-linked intrusive list). LRU is approximate
/// *across* shards (each shard evicts its own oldest) and exact within
/// one.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_cap: usize,
    tick: AtomicU64,
}

const NUM_SHARDS: usize = 16;

impl<V: Clone + Send> ShardedLru<V> {
    /// A store holding at most `capacity` entries (at least one per
    /// shard), evicting the least-recently-used entry of the overflowing
    /// shard on insert.
    pub fn new(capacity: usize) -> ShardedLru<V> {
        let per_shard_cap = capacity.div_ceil(NUM_SHARDS).max(1);
        ShardedLru {
            shards: (0..NUM_SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: BTreeMap::new(),
                    })
                })
                .collect(),
            per_shard_cap,
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        // The low bits of FNV-1a mix well; any fixed bit range works as
        // long as it is derived from the canonical bytes.
        &self.shards[(key.hash() as usize) % NUM_SHARDS]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }
}

impl<V: Clone + Send + Sync> CacheStore<V> for ShardedLru<V> {
    fn get(&self, key: &CacheKey) -> Option<V> {
        let tick = self.next_tick();
        let mut shard = lock_shard(self.shard(key));
        let entry = shard.map.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    fn put(&self, key: CacheKey, value: V) {
        let tick = self.next_tick();
        let mut shard = lock_shard(self.shard(&key));
        if shard.map.len() >= self.per_shard_cap && !shard.map.contains_key(&key) {
            // Evict this shard's least-recently-used entry.
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Fingerprinter;

    fn key(n: u64) -> CacheKey {
        Fingerprinter::new("lru-test-v1").u64(n).finish()
    }

    #[test]
    fn roundtrip_and_overwrite() {
        let lru: ShardedLru<u64> = ShardedLru::new(64);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&key(1)), None);
        lru.put(key(1), 10);
        lru.put(key(2), 20);
        assert_eq!(lru.get(&key(1)), Some(10));
        assert_eq!(lru.get(&key(2)), Some(20));
        assert_eq!(lru.len(), 2);
        lru.put(key(1), 11);
        assert_eq!(lru.get(&key(1)), Some(11));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_is_bounded_and_recent_entries_survive() {
        // One entry per shard, so every same-shard insert evicts.
        let lru: ShardedLru<u64> = ShardedLru::new(1);
        for n in 0..200 {
            lru.put(key(n), n);
        }
        assert!(lru.len() <= super::NUM_SHARDS);
        // Each shard retains exactly the last key hashed into it.
        let mut last_per_shard: BTreeMap<usize, u64> = BTreeMap::new();
        for n in 0..200 {
            last_per_shard.insert((key(n).hash() as usize) % super::NUM_SHARDS, n);
        }
        for (_, n) in last_per_shard {
            assert_eq!(lru.get(&key(n)), Some(n), "most recent key {n} evicted");
        }
    }

    #[test]
    fn get_refreshes_recency() {
        // Capacity 32 → two entries per shard, so a third same-shard
        // insert evicts whichever of the first two is least recent.
        let lru: ShardedLru<u64> = ShardedLru::new(32);
        let shard_of = |n: u64| (key(n).hash() as usize) % super::NUM_SHARDS;
        let target = shard_of(0);
        let same: Vec<u64> = (0..1000)
            .filter(|&n| shard_of(n) == target)
            .take(3)
            .collect();
        let [a, b, c] = same[..] else {
            panic!("expected three same-shard keys")
        };
        lru.put(key(a), a);
        lru.put(key(b), b);
        assert_eq!(lru.get(&key(a)), Some(a)); // refresh a: b is now oldest
        lru.put(key(c), c); // evicts b, not a
        assert_eq!(lru.get(&key(a)), Some(a));
        assert_eq!(lru.get(&key(c)), Some(c));
        assert_eq!(lru.get(&key(b)), None);
    }
}
