//! # dosa-cache
//!
//! The content-addressed result store underneath the search service's
//! result cache: every work item of a search job — a `(network, start)`
//! gradient descent, a `(network, design)` black-box evaluation — is a
//! pure function of (workload dims, strategy config, seed, stream id,
//! surrogate id), so its result can be addressed by a **canonical
//! fingerprint** of those inputs and served from a cache instead of
//! recomputed.
//!
//! This crate is deliberately free of search-domain types; it provides
//! three pieces the search layer composes:
//!
//! * [`Fingerprinter`] — builds a [`CacheKey`] from an **injective**
//!   canonical byte encoding: every field is written with a type tag and
//!   (for variable-length data) a length prefix, so two distinct field
//!   sequences can never serialize to the same bytes, and floats are
//!   canonicalized (`-0.0` → `0.0`, every NaN → one quiet-NaN bit
//!   pattern) before their bits are written.
//! * [`CacheKey`] — the finished key: the canonical bytes plus a
//!   precomputed 64-bit FNV-1a hash. Equality compares the **full
//!   bytes**, so hash collisions can never alias two different work
//!   items; the hash only buckets.
//! * [`CacheStore`] — the storage trait ([`get`](CacheStore::get) /
//!   [`put`](CacheStore::put)), implemented today by the in-memory
//!   [`ShardedLru`] and designed so a persistent backend (disk, redis,
//!   ...) can slot in behind the same service wiring later.
//!
//! The search-facing wrapper — which inputs go into a key, journaling,
//! warm-start neighbor lookup — lives in `dosa-search`'s `cache` module;
//! the end-to-end contract ("a cached result is bit-identical to a cold
//! run") is documented in the repository's `ARCHITECTURE.md`.

#![warn(missing_docs)]

mod key;
mod lru;

pub use key::{CacheKey, Fingerprinter};
pub use lru::{CacheStore, ShardedLru};
