//! Canonical cache keys: an injective, tagged byte encoding of a work
//! item's inputs plus a precomputed bucket hash.

use std::fmt;
use std::sync::Arc;

/// Every NaN canonicalizes to this quiet-NaN payload before its bits are
/// fingerprinted, so `0.0 / 0.0` and `f64::NAN` (and any signalling NaN)
/// address the same cache line.
const CANONICAL_NAN_BITS: u64 = 0x7FF8_0000_0000_0000;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Per-field type tags. Each encoded value starts with one of these, which
/// is what makes the encoding prefix-free across types: `u64(1)` and
/// `f64(1.0)` (or a `str` whose bytes happen to spell either) can never
/// collide because their tag bytes differ before any payload is compared.
#[repr(u8)]
enum Tag {
    U64 = 0x01,
    I64 = 0x02,
    F64 = 0x03,
    Bool = 0x04,
    Str = 0x05,
    /// Marks the start of a named field; the name is length-prefixed like
    /// a `Str` payload.
    Field = 0x06,
}

/// A finished content-address: the canonical bytes of a fingerprint and
/// their 64-bit FNV-1a hash.
///
/// Equality and `Hash` are **collision-proof by construction**: `Eq`
/// compares the full canonical bytes (the precomputed hash is only a fast
/// reject / bucket index), so two distinct fingerprints can never be
/// conflated no matter how the 64-bit hashes land. Cloning is cheap — the
/// bytes are behind an `Arc`.
#[derive(Clone)]
pub struct CacheKey {
    bytes: Arc<[u8]>,
    hash: u64,
}

impl CacheKey {
    /// The precomputed FNV-1a hash of the canonical bytes, for sharding
    /// and bucketing.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical byte encoding this key addresses.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl PartialEq for CacheKey {
    fn eq(&self, other: &CacheKey) -> bool {
        // Hash first (cheap reject), then the bytes (correctness).
        self.hash == other.hash && self.bytes == other.bytes
    }
}

impl Eq for CacheKey {}

// Keys order by their canonical bytes — a total order consistent with
// `Eq` (the hash is a pure function of the bytes, so it never needs to
// participate). This is what lets deterministic containers (`BTreeMap`)
// hold keys: any scan over cached entries visits them in one fixed,
// run-independent order.
impl PartialOrd for CacheKey {
    fn partial_cmp(&self, other: &CacheKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CacheKey {
    fn cmp(&self, other: &CacheKey) -> std::cmp::Ordering {
        self.bytes.cmp(&other.bytes)
    }
}

impl std::hash::Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Debug for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheKey({:016x}, {} bytes)",
            self.hash,
            self.bytes.len()
        )
    }
}

/// Builder of [`CacheKey`]s: append tagged fields, then
/// [`finish`](Fingerprinter::finish).
///
/// The encoding is injective over field sequences: every value carries a
/// type tag, variable-length payloads (strings, field names) carry a
/// length prefix, and floats are canonicalized before their bits are
/// written (`-0.0` encodes as `0.0`; every NaN encodes as one quiet-NaN
/// pattern). Two fingerprints collide only if the exact same sequence of
/// (tag, canonical payload) pairs was written — i.e. if they describe the
/// same content.
///
/// ```
/// use dosa_cache::Fingerprinter;
/// let a = Fingerprinter::new("demo-v1").f64(-0.0).finish();
/// let b = Fingerprinter::new("demo-v1").f64(0.0).finish();
/// assert_eq!(a, b); // -0.0 canonicalizes to 0.0
/// let c = Fingerprinter::new("demo-v1").u64(1).finish();
/// let d = Fingerprinter::new("demo-v1").f64(1.0).finish();
/// assert_ne!(c, d); // type tags keep distinct types apart
/// ```
#[derive(Debug, Default)]
pub struct Fingerprinter {
    buf: Vec<u8>,
}

impl Fingerprinter {
    /// Start a fingerprint under `schema` — a version-carrying namespace
    /// (e.g. `"gd-item-v1"`). Bump the schema string whenever the meaning
    /// of the downstream fields changes, so stale persisted entries can
    /// never alias new keys.
    pub fn new(schema: &str) -> Fingerprinter {
        let mut fp = Fingerprinter {
            buf: Vec::with_capacity(64),
        };
        fp.write_len_prefixed(Tag::Str, schema.as_bytes());
        fp
    }

    fn write_tag(&mut self, tag: Tag) {
        self.buf.push(tag as u8);
    }

    fn write_len_prefixed(&mut self, tag: Tag, bytes: &[u8]) {
        self.write_tag(tag);
        self.buf
            .extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(bytes);
    }

    /// Mark the start of a named field. Purely structural — it keeps
    /// adjacent same-typed values from different conceptual fields
    /// visually and byte-wise separated in the encoding.
    pub fn field(mut self, name: &str) -> Fingerprinter {
        self.write_len_prefixed(Tag::Field, name.as_bytes());
        self
    }

    /// Append an unsigned integer.
    pub fn u64(mut self, v: u64) -> Fingerprinter {
        self.write_tag(Tag::U64);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a signed integer.
    pub fn i64(mut self, v: i64) -> Fingerprinter {
        self.write_tag(Tag::I64);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a float, canonicalized first: `-0.0` encodes as `0.0`
    /// (IEEE `==` treats them as equal, so a config carrying either must
    /// address the same result) and every NaN encodes as one quiet-NaN
    /// bit pattern. All other values keep their exact bits — `1.0` and
    /// `1.0 + f64::EPSILON` are different contents.
    pub fn f64(mut self, v: f64) -> Fingerprinter {
        // dosa-lint: allow(float-eq) — IEEE `==` is the point: it conflates
        // -0.0 with 0.0, which is exactly the canonicalization being applied.
        let bits = if v == 0.0 {
            0u64 // covers -0.0: IEEE == conflates the two zeros
        } else if v.is_nan() {
            CANONICAL_NAN_BITS
        } else {
            v.to_bits()
        };
        self.write_tag(Tag::F64);
        self.buf.extend_from_slice(&bits.to_le_bytes());
        self
    }

    /// Append a boolean.
    pub fn bool(mut self, v: bool) -> Fingerprinter {
        self.write_tag(Tag::Bool);
        self.buf.push(v as u8);
        self
    }

    /// Append a string (length-prefixed, so `"ab" + "c"` and `"a" + "bc"`
    /// cannot collide).
    pub fn str(mut self, s: &str) -> Fingerprinter {
        self.write_len_prefixed(Tag::Str, s.as_bytes());
        self
    }

    /// Finish: hash the canonical bytes (FNV-1a, 64-bit) and return the
    /// key.
    pub fn finish(self) -> CacheKey {
        let mut hash = FNV_OFFSET;
        for &b in &self.buf {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        CacheKey {
            bytes: self.buf.into(),
            hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_produce_equal_keys() {
        let make = || {
            Fingerprinter::new("t-v1")
                .field("a")
                .u64(7)
                .field("b")
                .f64(0.04)
                .str("name")
                .bool(true)
                .finish()
        };
        assert_eq!(make(), make());
        assert_eq!(make().hash(), make().hash());
    }

    #[test]
    fn zero_signs_and_nans_canonicalize() {
        let pos = Fingerprinter::new("t-v1").f64(0.0).finish();
        let neg = Fingerprinter::new("t-v1").f64(-0.0).finish();
        assert_eq!(pos, neg);
        let quiet = Fingerprinter::new("t-v1").f64(f64::NAN).finish();
        let computed = Fingerprinter::new("t-v1")
            .f64(f64::INFINITY - f64::INFINITY)
            .finish();
        let weird = Fingerprinter::new("t-v1")
            .f64(f64::from_bits(0x7FF0_DEAD_BEEF_0001))
            .finish();
        assert_eq!(quiet, computed);
        assert_eq!(quiet, weird);
    }

    #[test]
    fn type_tags_keep_lookalike_payloads_apart() {
        let as_u64 = Fingerprinter::new("t-v1").u64(1.0_f64.to_bits()).finish();
        let as_f64 = Fingerprinter::new("t-v1").f64(1.0).finish();
        let as_i64 = Fingerprinter::new("t-v1")
            .i64(1.0_f64.to_bits() as i64)
            .finish();
        assert_ne!(as_u64, as_f64);
        assert_ne!(as_u64, as_i64);
    }

    #[test]
    fn length_prefixes_keep_string_boundaries() {
        let ab_c = Fingerprinter::new("t-v1").str("ab").str("c").finish();
        let a_bc = Fingerprinter::new("t-v1").str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn schema_separates_namespaces() {
        let v1 = Fingerprinter::new("t-v1").u64(3).finish();
        let v2 = Fingerprinter::new("t-v2").u64(3).finish();
        assert_ne!(v1, v2);
    }
}
