//! Conservation and monotonicity laws of the traffic model, checked across
//! random problems and mappings.

use dosa_accel::{level, HardwareConfig, Hierarchy};
use dosa_timeloop::{compute_traffic, evaluate_layer, min_hw, random_mapping, tile_words};
use dosa_workload::{Problem, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        1u64..=3,
        1u64..=3,
        1u64..=28,
        1u64..=28,
        1u64..=96,
        1u64..=96,
        1u64..=2,
    )
        .prop_map(|(r, s, p, q, c, k, stride)| {
            Problem::conv("prop", r, s, p, q, c, k, stride).expect("positive bounds")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every word of every tensor must cross the DRAM boundary at least
    /// once: reads cover weights and inputs, updates cover outputs.
    #[test]
    fn dram_traffic_covers_tensor_sizes(problem in arb_problem(), seed in 0u64..1000) {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, 16);
        let t = compute_traffic(&problem, &m, &hier);
        prop_assert!(t.flows(level::DRAM, Tensor::Weights).reads >= problem.tensor_size(Tensor::Weights));
        // Strided convolutions with R < stride legitimately skip input
        // rows, so bound by the number of provably distinct input elements:
        // each (p, q) output position touches a distinct (stride*p, stride*q)
        // input corner, per channel and batch.
        let distinct = problem.size(dosa_workload::Dim::C)
            * problem.size(dosa_workload::Dim::N)
            * problem.size(dosa_workload::Dim::P)
            * problem.size(dosa_workload::Dim::Q);
        prop_assert!(t.flows(level::DRAM, Tensor::Inputs).reads >= distinct);
        prop_assert!(t.flows(level::DRAM, Tensor::Outputs).updates >= problem.tensor_size(Tensor::Outputs));
    }

    /// Total MAC operand deliveries are conserved: weight reads at the
    /// registers equal MACs; input reads at the scratchpad equal MACs over
    /// the K-broadcast; output updates at the accumulator equal MACs over
    /// the C-reduction.
    #[test]
    fn innermost_flows_match_macs(problem in arb_problem(), seed in 0u64..1000) {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, 16);
        let t = compute_traffic(&problem, &m, &hier);
        let k_spatial = m.spatial(level::SCRATCHPAD, dosa_workload::Dim::K);
        let c_spatial = m.spatial(level::ACCUMULATOR, dosa_workload::Dim::C);
        prop_assert_eq!(t.flows(level::REGISTERS, Tensor::Weights).reads, t.macs);
        prop_assert_eq!(t.flows(level::SCRATCHPAD, Tensor::Inputs).reads, t.macs / k_spatial);
        prop_assert_eq!(t.flows(level::ACCUMULATOR, Tensor::Outputs).updates, t.macs / c_spatial);
    }

    /// Fills into a level can never be smaller than the child's fills over
    /// the broadcast factor (data flows downward through the hierarchy).
    #[test]
    fn weight_flow_is_monotone_down_the_hierarchy(problem in arb_problem(), seed in 0u64..1000) {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, 16);
        let t = compute_traffic(&problem, &m, &hier);
        // Scratchpad weight reads serve register fills exactly (no
        // irrelevant spatial fanout between them in Gemmini).
        prop_assert_eq!(
            t.flows(level::SCRATCHPAD, Tensor::Weights).reads,
            t.flows(level::REGISTERS, Tensor::Weights).fills
        );
        // DRAM weight reads serve scratchpad fills exactly.
        prop_assert_eq!(
            t.flows(level::DRAM, Tensor::Weights).reads,
            t.flows(level::SCRATCHPAD, Tensor::Weights).fills
        );
    }

    /// The minimal hardware derived from a mapping really is minimal:
    /// the mapping fits it, and the accumulator requirement matches the
    /// output tile.
    #[test]
    fn min_hw_is_sufficient_and_tight(problem in arb_problem(), seed in 0u64..1000) {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, 16);
        let hw = min_hw(&problem, &m, &hier);
        prop_assert!(dosa_timeloop::fits(&problem, &m, &hw, &hier));
        let acc_words = tile_words(&problem, &m, level::ACCUMULATOR, Tensor::Outputs);
        prop_assert!(hw.acc_words() >= acc_words);
        // Tight to within the 1 KB rounding granularity.
        prop_assert!(hw.acc_kb() <= (acc_words * 4) as f64 / 1024.0 + 1.0);
    }

    /// Latency is monotone in hardware: growing the PE array (with the
    /// same mapping) never increases modeled latency.
    #[test]
    fn latency_monotone_in_bandwidth(problem in arb_problem(), seed in 0u64..1000) {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_mapping(&mut rng, &problem, &hier, 8);
        let small = HardwareConfig::new(8, 32.0, 128.0).unwrap();
        let large = HardwareConfig::new(64, 32.0, 128.0).unwrap();
        let p_small = evaluate_layer(&problem, &m, &small, &hier);
        let p_large = evaluate_layer(&problem, &m, &large, &hier);
        prop_assert!(p_large.latency_cycles <= p_small.latency_cycles * (1.0 + 1e-12));
    }

    /// Energy is invariant to loop order permutations of bound-1 levels:
    /// reordering loops that all have factor 1 cannot change traffic.
    #[test]
    fn unit_loops_do_not_affect_traffic(problem in arb_problem(), seed in 0u64..1000) {
        use dosa_timeloop::{LoopOrder, Stationarity};
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = random_mapping(&mut rng, &problem, &hier, 16);
        // Force level-1 temporal factors to 1 by pushing them to DRAM.
        for d in dosa_workload::Dim::ALL {
            let f = m.temporal[1][d.index()];
            m.temporal[1][d.index()] = 1;
            m.temporal[3][d.index()] *= f;
        }
        m.validate(&problem, &hier).unwrap();
        let base = compute_traffic(&problem, &m, &hier);
        for s in Stationarity::ALL {
            let mut m2 = m.clone();
            m2.orders[1] = LoopOrder::canonical(s);
            let t2 = compute_traffic(&problem, &m2, &hier);
            for lvl in 0..dosa_accel::NUM_LEVELS {
                prop_assert_eq!(base.accesses(lvl), t2.accesses(lvl));
            }
        }
    }
}
