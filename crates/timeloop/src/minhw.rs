//! Minimal-hardware inference: the mapping-first step that collapses the
//! two-loop search into one (Figure 3, §4.1).

use crate::mapping::Mapping;
use crate::traffic::tile_words;
use dosa_accel::{level, HardwareConfig, Hierarchy, ACC_WORD_BYTES, SPAD_WORD_BYTES};
use dosa_workload::{Dim, Problem, Tensor};

/// The minimal hardware configuration able to execute `mapping` on
/// `problem` (Eqs. 1–5 plus the KB rounding of §6.1).
///
/// # Examples
///
/// ```
/// use dosa_timeloop::{min_hw, Mapping};
/// use dosa_accel::Hierarchy;
/// use dosa_workload::Problem;
/// let p = Problem::conv("l", 1, 1, 56, 56, 64, 64, 1)?;
/// let m = Mapping::all_at_dram(&p);
/// let hw = min_hw(&p, &m, &Hierarchy::gemmini());
/// assert_eq!(hw.pe_side(), 1); // no spatial unrolling
/// # Ok::<(), dosa_workload::ProblemError>(())
/// ```
pub fn min_hw(problem: &Problem, mapping: &Mapping, hier: &Hierarchy) -> HardwareConfig {
    // Eq. 1: the square array must fit the larger spatial factor.
    let side = Dim::ALL
        .into_iter()
        .flat_map(|d| (0..dosa_accel::NUM_LEVELS).map(move |i| mapping.spatial(i, d)))
        .max()
        .unwrap_or(1)
        .max(1);

    let acc_words = tile_words(problem, mapping, level::ACCUMULATOR, Tensor::Outputs);
    let spad_words = tile_words(problem, mapping, level::SCRATCHPAD, Tensor::Weights)
        + tile_words(problem, mapping, level::SCRATCHPAD, Tensor::Inputs);
    let _ = hier;

    let acc_kb = ((acc_words * ACC_WORD_BYTES) as f64 / 1024.0)
        .ceil()
        .max(1.0);
    let spad_kb = ((spad_words * SPAD_WORD_BYTES) as f64 / 1024.0)
        .ceil()
        .max(1.0);

    HardwareConfig::new(side, acc_kb, spad_kb)
        .expect("min-HW inference produces valid configurations")
}

/// The minimal configuration supporting every `(problem, mapping)` pair:
/// the parameter-wise max of the per-layer requirements (Figure 3).
pub fn min_hw_for_all<'a>(
    pairs: impl IntoIterator<Item = (&'a Problem, &'a Mapping)>,
    hier: &Hierarchy,
) -> HardwareConfig {
    pairs
        .into_iter()
        .map(|(p, m)| min_hw(p, m, hier))
        .reduce(|a, b| a.max(&b))
        .unwrap_or_else(|| HardwareConfig::new(1, 1.0, 1.0).expect("valid"))
}

/// Whether `mapping` can execute on fixed hardware `hw` (used by the
/// two-loop baselines and the fixed-hardware RTL experiments).
pub fn fits(problem: &Problem, mapping: &Mapping, hw: &HardwareConfig, hier: &Hierarchy) -> bool {
    let need = min_hw(problem, mapping, hier);
    need.pe_side() <= hw.pe_side()
        && need.acc_kb() <= hw.acc_kb().ceil()
        && need.spad_kb() <= hw.spad_kb().ceil()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::fig3_mapping;

    #[test]
    fn fig3_min_hw_matches_paper() {
        // Figure 3: 64x64 PEs, accumulator 896 words x 4 B ≈ 4 KB,
        // scratchpad (4096 + 896) words x 1 B ≈ 5 KB.
        let p = Problem::conv("fig3", 1, 1, 56, 56, 64, 64, 1).unwrap();
        let hw = min_hw(&p, &fig3_mapping(), &Hierarchy::gemmini());
        assert_eq!(hw.pe_side(), 64);
        assert_eq!(hw.acc_kb(), 4.0);
        assert_eq!(hw.spad_kb(), 5.0);
    }

    #[test]
    fn max_across_layers() {
        let h = Hierarchy::gemmini();
        let p1 = Problem::conv("a", 1, 1, 56, 56, 64, 64, 1).unwrap();
        let m1 = fig3_mapping();
        let p2 = Problem::conv("b", 1, 1, 8, 8, 16, 16, 1).unwrap();
        let m2 = Mapping::all_at_dram(&p2);
        let hw = min_hw_for_all([(&p1, &m1), (&p2, &m2)], &h);
        assert_eq!(hw.pe_side(), 64);
        assert_eq!(hw.acc_kb(), 4.0);
    }

    #[test]
    fn fits_is_monotone() {
        let h = Hierarchy::gemmini();
        let p = Problem::conv("fig3", 1, 1, 56, 56, 64, 64, 1).unwrap();
        let m = fig3_mapping();
        let exact = min_hw(&p, &m, &h);
        assert!(fits(&p, &m, &exact, &h));
        let bigger = HardwareConfig::new(128, exact.acc_kb() + 1.0, exact.spad_kb() + 1.0).unwrap();
        assert!(fits(&p, &m, &bigger, &h));
        let smaller = HardwareConfig::new(32, exact.acc_kb(), exact.spad_kb()).unwrap();
        assert!(!fits(&p, &m, &smaller, &h));
    }
}
