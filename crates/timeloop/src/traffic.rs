//! Exact integer traffic analysis for a mapping — the "iterative program"
//! reference model that plays Timeloop's role (§4.2, §4.6).
//!
//! ## Semantics (shared with the differentiable model)
//!
//! * `temporal[j]` loops form level `j`'s subnest; the tile resident at
//!   level `i` spans every temporal factor at levels `j < i` (Eq. 2) and —
//!   because Gemmini's SRAMs are shared across the PE array — **all** spatial
//!   factors of relevant dimensions (this reproduces every capacity in
//!   Figure 3).
//! * A tile at level `i` is re-fetched from its parent once per iteration of
//!   the relevant temporal loops above it, times every irrelevant temporal
//!   loop **outer to the innermost non-unit relevant loop** (Eq. 6). Loops
//!   with bound 1 are transparent.
//! * Reads at a tensor's innermost holding level equal `MACs` divided by the
//!   spatial fanout over irrelevant dimensions at or below that level
//!   (broadcast for inputs/weights, spatial reduction for outputs;
//!   Eqs. 8–11).
//! * Outputs follow read-modify-write semantics with first-update elision:
//!   a tile's first residency starts from zeros (no fill from the parent,
//!   no read on the first update of each element). Every residency ends in
//!   a drain to the parent, which arrives there as an update.
//! * Halo overlap between adjacent input tiles is not reused (both models
//!   count full re-fetches), a deliberate simplification applied
//!   identically on both sides of the Figure 4 correlation.

use crate::mapping::Mapping;
use dosa_accel::{Hierarchy, NUM_LEVELS};
use dosa_workload::{Dim, DimSet, Problem, Tensor};

/// Directional access counts for one (level, tensor) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TensorFlows {
    /// Words written into this level from its parent (the paper's
    /// "Writes"). For outputs these are partial-sum reloads.
    pub fills: u64,
    /// Words read out of this level: serving the child level or the MACs,
    /// plus (for outputs) drain reads and read-modify-write reads.
    pub reads: u64,
    /// Words written into this level from below (the paper's "Updates";
    /// outputs only).
    pub updates: u64,
}

impl TensorFlows {
    /// Total accesses of this tensor at this level.
    pub fn total(&self) -> u64 {
        self.fills + self.reads + self.updates
    }
}

/// One DRAM transfer stream: `transfers` moves of a `tile_words`-word tile.
/// Used for Timeloop-style per-block energy ceilings (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramStream {
    /// The tensor being moved.
    pub tensor: Tensor,
    /// Words per transfer.
    pub tile_words: u64,
    /// Number of transfers.
    pub transfers: u64,
}

/// Complete traffic summary for one layer under one mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traffic {
    /// Total multiply-accumulates (Eq. 7).
    pub macs: u64,
    /// Per-level, per-tensor directional flows.
    pub flows: [[TensorFlows; 3]; NUM_LEVELS],
    /// DRAM transfer streams for block-granularity energy accounting.
    pub dram_streams: Vec<DramStream>,
}

impl Traffic {
    /// Total accesses at memory level `i` (Eq. 12's `Accesses(i)`).
    pub fn accesses(&self, i: usize) -> u64 {
        self.flows[i].iter().map(TensorFlows::total).sum()
    }

    /// Flows of tensor `t` at level `i`.
    pub fn flows(&self, i: usize, t: Tensor) -> TensorFlows {
        self.flows[i][t.index()]
    }
}

/// The tile footprint (in words) of tensor `t` at level `i`: temporal
/// factors at levels below `i` times all spatial factors, for the
/// dimensions indexing `t`; inputs include the stride halo (Eqs. 2–4).
pub fn tile_words(problem: &Problem, mapping: &Mapping, i: usize, t: Tensor) -> u64 {
    let inner = |d: Dim| -> u64 {
        let mut f = 1u64;
        for j in 0..i {
            f *= mapping.temporal(j, d);
        }
        for j in 0..NUM_LEVELS {
            f *= mapping.spatial(j, d);
        }
        f
    };
    match t {
        Tensor::Weights => inner(Dim::R) * inner(Dim::S) * inner(Dim::C) * inner(Dim::K),
        Tensor::Outputs => inner(Dim::P) * inner(Dim::Q) * inner(Dim::K) * inner(Dim::N),
        Tensor::Inputs => {
            let h = problem.stride_p() * (inner(Dim::P) - 1) + inner(Dim::R);
            let w = problem.stride_q() * (inner(Dim::Q) - 1) + inner(Dim::S);
            inner(Dim::C) * inner(Dim::N) * h * w
        }
    }
}

/// Refetch analysis over the temporal loops above level `i` (subnests
/// `i..=3`, innermost first): returns `(rel, x)` where `rel` is the product
/// of relevant factors and `x` the product of irrelevant factors outer to
/// the innermost non-unit relevant loop (1 if no such loop).
pub fn refetch(mapping: &Mapping, i: usize, relevant: DimSet) -> (u64, u64) {
    let mut rel = 1u64;
    let mut x = 1u64;
    let mut past_innermost_relevant = false;
    for j in i..NUM_LEVELS {
        for &d in mapping.orders[j].dims() {
            let f = mapping.temporal(j, d);
            if relevant.contains(d) {
                rel *= f;
                if f > 1 {
                    past_innermost_relevant = true;
                }
            } else if past_innermost_relevant {
                // Irrelevant loop outer to the innermost non-unit relevant
                // loop: causes refetches.
                x *= f;
            }
        }
    }
    (rel, x)
}

/// Product of spatial factors over irrelevant dimensions at levels in
/// `lo..=hi` — the broadcast / spatial-reduction discount `F_{S,t}`
/// (Eqs. 8, 10).
fn spatial_discount(mapping: &Mapping, lo: usize, hi: usize, relevant: DimSet) -> u64 {
    let mut f = 1u64;
    for j in lo..=hi {
        for d in Dim::ALL {
            if !relevant.contains(d) {
                f *= mapping.spatial(j, d);
            }
        }
    }
    f
}

/// Compute the full traffic summary for `mapping` on `problem`.
///
/// The mapping should be valid (see [`Mapping::validate`]); invalid
/// mappings produce meaningless counts but do not panic.
pub fn compute_traffic(problem: &Problem, mapping: &Mapping, hier: &Hierarchy) -> Traffic {
    let macs: u64 = problem.sizes().iter().product();
    let mut flows = [[TensorFlows::default(); 3]; NUM_LEVELS];
    let mut dram_streams = Vec::new();

    for t in Tensor::ALL {
        let rel_dims = t.dims();
        let holding: Vec<usize> = (0..NUM_LEVELS)
            .filter(|&i| hier.level(i).stores(t))
            .collect();
        let outermost = *holding.last().expect("DRAM stores everything");

        // Per holding level: tile size and refetch counts.
        let mut tiles = [0u64; NUM_LEVELS];
        let mut rels = [1u64; NUM_LEVELS];
        let mut xs = [1u64; NUM_LEVELS];
        for &i in &holding {
            tiles[i] = tile_words(problem, mapping, i, t);
            let (r, x) = refetch(mapping, i, rel_dims);
            rels[i] = r;
            xs[i] = x;
        }

        for (pos, &i) in holding.iter().enumerate() {
            let child = if pos > 0 {
                Some(holding[pos - 1])
            } else {
                None
            };
            let is_outer = i == outermost;
            let f = &mut flows[i][t.index()];

            match t {
                Tensor::Weights | Tensor::Inputs => {
                    // Fills from the parent (paper's Writes), zero at the
                    // outermost level where the data originates.
                    f.fills = if is_outer {
                        0
                    } else {
                        tiles[i] * rels[i] * xs[i]
                    };
                    // Reads serving the level below (or the MACs).
                    f.reads = match child {
                        None => macs / spatial_discount(mapping, 0, i, rel_dims),
                        Some(c) => {
                            let child_fills = tiles[c] * rels[c] * xs[c];
                            child_fills / spatial_discount(mapping, c + 1, i, rel_dims)
                        }
                    };
                    if i == outermost && i == dosa_accel::level::DRAM {
                        if let Some(c) = child {
                            dram_streams.push(DramStream {
                                tensor: t,
                                tile_words: tiles[c],
                                transfers: rels[c] * xs[c],
                            });
                        }
                    }
                }
                Tensor::Outputs => {
                    let residencies = rels[i] * xs[i];
                    // Drains: every residency ends by writing the tile up.
                    let drains = if is_outer { 0 } else { tiles[i] * residencies };
                    // Fills: partial-sum reloads on revisits (first
                    // residency per distinct tile starts from zeros).
                    f.fills = if is_outer {
                        0
                    } else {
                        tiles[i] * rels[i] * (xs[i] - 1)
                    };
                    // Updates from below.
                    f.updates = match child {
                        None => macs / spatial_discount(mapping, 0, i, rel_dims),
                        Some(c) => {
                            let child_drains = tiles[c] * rels[c] * xs[c];
                            child_drains / spatial_discount(mapping, c + 1, i, rel_dims)
                        }
                    };
                    // Reads: RMW partial reads at the innermost level (first
                    // update of each element per residency is elided), plus
                    // drain reads, plus serving the child's partial reloads.
                    let rmw = if child.is_none() {
                        f.updates.saturating_sub(tiles[i] * residencies)
                    } else {
                        0
                    };
                    let serve_child = match child {
                        Some(c) => {
                            let child_refills = tiles[c] * rels[c] * (xs[c] - 1);
                            child_refills / spatial_discount(mapping, c + 1, i, rel_dims)
                        }
                        None => 0,
                    };
                    f.reads = rmw + drains + serve_child;
                    if i == outermost && i == dosa_accel::level::DRAM {
                        if let Some(c) = child {
                            // Drain stream up + reload stream down.
                            dram_streams.push(DramStream {
                                tensor: t,
                                tile_words: tiles[c],
                                transfers: rels[c] * xs[c],
                            });
                            if xs[c] > 1 {
                                dram_streams.push(DramStream {
                                    tensor: t,
                                    tile_words: tiles[c],
                                    transfers: rels[c] * (xs[c] - 1),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    Traffic {
        macs,
        flows,
        dram_streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::fig3_mapping;
    use dosa_accel::level;

    fn fig3() -> (Problem, Mapping, Hierarchy) {
        let p = Problem::conv("fig3", 1, 1, 56, 56, 64, 64, 1).unwrap();
        (p, fig3_mapping(), Hierarchy::gemmini())
    }

    #[test]
    fn fig3_tile_sizes_match_paper() {
        let (p, m, _) = fig3();
        // Figure 3 annotations.
        assert_eq!(tile_words(&p, &m, level::REGISTERS, Tensor::Weights), 4096);
        assert_eq!(tile_words(&p, &m, level::ACCUMULATOR, Tensor::Outputs), 896);
        assert_eq!(tile_words(&p, &m, level::SCRATCHPAD, Tensor::Weights), 4096);
        assert_eq!(tile_words(&p, &m, level::SCRATCHPAD, Tensor::Inputs), 896);
        // The DRAM "tile" (content below the DRAM subnest) equals the
        // scratchpad/accumulator working set here; DRAM capacity itself is
        // unbounded and never constrains a mapping.
        assert_eq!(tile_words(&p, &m, level::DRAM, Tensor::Weights), 4096);
        assert_eq!(tile_words(&p, &m, level::DRAM, Tensor::Inputs), 896);
        assert_eq!(tile_words(&p, &m, level::DRAM, Tensor::Outputs), 896);
    }

    #[test]
    fn fig3_traffic_counts() {
        let (p, m, h) = fig3();
        let t = compute_traffic(&p, &m, &h);
        let macs = 56 * 56 * 64 * 64u64;
        assert_eq!(t.macs, macs);

        // Registers: one weight read per MAC; weights filled once.
        assert_eq!(t.flows(level::REGISTERS, Tensor::Weights).reads, macs);
        assert_eq!(t.flows(level::REGISTERS, Tensor::Weights).fills, 4096);

        // Accumulator: one update per output (C fully spatial), no RMW
        // reads (first-update elision), each output drained once.
        let acc = t.flows(level::ACCUMULATOR, Tensor::Outputs);
        assert_eq!(acc.updates, 200_704);
        assert_eq!(acc.reads, 200_704); // drain reads only
        assert_eq!(acc.fills, 0);

        // Scratchpad: inputs broadcast across the 64 K-columns.
        let spad_i = t.flows(level::SCRATCHPAD, Tensor::Inputs);
        assert_eq!(spad_i.reads, macs / 64);
        assert_eq!(spad_i.fills, 200_704);
        let spad_w = t.flows(level::SCRATCHPAD, Tensor::Weights);
        assert_eq!(spad_w.reads, 4096);
        assert_eq!(spad_w.fills, 4096);

        // DRAM: weight + input reads, output drains as updates.
        assert_eq!(t.flows(level::DRAM, Tensor::Weights).reads, 4096);
        assert_eq!(t.flows(level::DRAM, Tensor::Inputs).reads, 200_704);
        assert_eq!(t.flows(level::DRAM, Tensor::Outputs).updates, 200_704);
        assert_eq!(t.flows(level::DRAM, Tensor::Outputs).reads, 0);

        assert_eq!(t.accesses(level::DRAM), 405_504);
        assert_eq!(t.accesses(level::SCRATCHPAD), 409_600);
        assert_eq!(t.accesses(level::ACCUMULATOR), 401_408);
    }

    #[test]
    fn trivial_mapping_streams_everything_from_dram() {
        let p = Problem::conv("t", 3, 3, 8, 8, 4, 4, 1).unwrap();
        let h = Hierarchy::gemmini();
        let m = Mapping::all_at_dram(&p);
        let t = compute_traffic(&p, &m, &h);
        // With all loops at DRAM, inner tiles are single elements and the
        // total MAC count flows through every level.
        assert_eq!(t.flows(level::REGISTERS, Tensor::Weights).reads, t.macs);
        // Weight tile at the scratchpad is one element, fetched per
        // relevant iteration x irrelevant-outer refetch.
        let spad_w = t.flows(level::SCRATCHPAD, Tensor::Weights);
        assert!(spad_w.fills >= p.tensor_size(Tensor::Weights));
    }

    #[test]
    fn refetch_respects_loop_order() {
        let p = Problem::conv("o", 1, 1, 4, 1, 8, 1, 1).unwrap();
        let _h = Hierarchy::gemmini();
        let mut m = Mapping::all_at_dram(&p);
        // DRAM loops: P=4 (relevant to W? no), C=8 (relevant to W).
        // WS order puts P inner, C outer: innermost relevant nonunit loop is
        // C, and P is inner to it => weights fetched only C-many times.
        m.set_orders([crate::mapping::Stationarity::WeightStationary; NUM_LEVELS]);
        let (rel, x) = refetch(&m, 0, Tensor::Weights.dims());
        assert_eq!((rel, x), (8, 1));
        // OS order puts C inner, P outer: P now causes weight refetches.
        m.set_orders([crate::mapping::Stationarity::OutputStationary; NUM_LEVELS]);
        let (rel, x) = refetch(&m, 0, Tensor::Weights.dims());
        assert_eq!((rel, x), (8, 4));
    }

    #[test]
    fn bound_one_loops_are_transparent() {
        // A relevant loop with bound 1 must not shield outer irrelevant
        // loops... and must not cause refetches itself.
        let p = Problem::conv("b1", 1, 1, 4, 1, 1, 2, 1).unwrap();
        let h = Hierarchy::gemmini();
        let mut m = Mapping::all_at_dram(&p);
        let _ = h;
        // Order at DRAM (WS): P, Q, N | R, S, C, K -> P(4) inner, K(2) outer.
        // For weights: innermost nonunit relevant loop is K; P is inner to
        // K => X = 1 even though C (bound 1, relevant) sits between them.
        m.set_orders([crate::mapping::Stationarity::WeightStationary; NUM_LEVELS]);
        let (rel, x) = refetch(&m, 0, Tensor::Weights.dims());
        assert_eq!((rel, x), (2, 1));
    }

    #[test]
    fn partial_sum_traffic_appears_with_outer_reduction_loops() {
        // Put a C loop at DRAM outside the output drain level: outputs must
        // bounce to DRAM and back.
        let p = Problem::conv("ps", 1, 1, 2, 2, 8, 2, 1).unwrap();
        let h = Hierarchy::gemmini();
        let mut m = Mapping::all_at_dram(&p);
        // Keep P,Q,K at DRAM; split C between accumulator subnest and DRAM.
        m.temporal[level::DRAM][Dim::C.index()] = 4;
        m.temporal[level::ACCUMULATOR][Dim::C.index()] = 2;
        m.validate(&p, &h).unwrap();
        // Default WS order at DRAM: [P,Q,N inner][R,S,C,K outer]; for
        // outputs the innermost relevant nonunit loop is P, C(4) is outer:
        // each output tile is revisited 4 times.
        let t = compute_traffic(&p, &m, &h);
        let o_dram = t.flows(level::DRAM, Tensor::Outputs);
        let out_size = p.tensor_size(Tensor::Outputs);
        assert_eq!(o_dram.updates, out_size * 4);
        assert_eq!(o_dram.reads, out_size * 3); // reloads on revisits 2..4
        let acc = t.flows(level::ACCUMULATOR, Tensor::Outputs);
        assert_eq!(acc.fills, out_size * 3);
        // RMW at the accumulator: 2 updates per element per residency, one
        // elided each.
        assert_eq!(acc.updates, t.macs);
    }

    #[test]
    fn accesses_sum_over_tensors() {
        let (p, m, h) = fig3();
        let t = compute_traffic(&p, &m, &h);
        for i in 0..NUM_LEVELS {
            let by_tensor: u64 = Tensor::ALL.iter().map(|&tt| t.flows(i, tt).total()).sum();
            assert_eq!(t.accesses(i), by_tensor);
        }
    }

    #[test]
    fn dram_streams_cover_dram_words() {
        let (p, m, h) = fig3();
        let t = compute_traffic(&p, &m, &h);
        let stream_words: u64 = t
            .dram_streams
            .iter()
            .map(|s| s.tile_words * s.transfers)
            .sum();
        assert_eq!(stream_words, t.accesses(level::DRAM));
    }
}
