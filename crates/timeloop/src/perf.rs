//! Reference latency / energy / EDP evaluation (Eqs. 12–14), playing the
//! role of Timeloop + Accelergy.

use crate::mapping::Mapping;
use crate::traffic::{compute_traffic, Traffic};
use dosa_accel::{pj_to_uj, EnergyModel, HardwareConfig, Hierarchy, DRAM_BLOCK_WORDS, NUM_LEVELS};
use dosa_workload::{Layer, Problem};

/// Latency and energy of one layer under one mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerf {
    /// Latency in cycles (Eq. 12).
    pub latency_cycles: f64,
    /// Energy in µJ (Eq. 13).
    pub energy_uj: f64,
}

impl LayerPerf {
    /// Per-layer energy-delay product in µJ·cycles.
    pub fn edp(&self) -> f64 {
        self.latency_cycles * self.energy_uj
    }
}

/// Performance of a whole model: per-layer sums combined per Eq. 14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPerf {
    /// Sum of per-layer latencies (weighted by repeat count), cycles.
    pub latency_cycles: f64,
    /// Sum of per-layer energies (weighted by repeat count), µJ.
    pub energy_uj: f64,
}

impl ModelPerf {
    /// Whole-model EDP (Eq. 14): `(Σ energy) × (Σ latency)`.
    pub fn edp(&self) -> f64 {
        self.latency_cycles * self.energy_uj
    }
}

/// Evaluate one layer with the exact reference model, including Timeloop's
/// per-block DRAM energy ceiling (§4.6).
pub fn evaluate_layer(
    problem: &Problem,
    mapping: &Mapping,
    hw: &HardwareConfig,
    hier: &Hierarchy,
) -> LayerPerf {
    let traffic = compute_traffic(problem, mapping, hier);
    perf_from_traffic(&traffic, mapping, hw, hier)
}

/// Evaluate from a precomputed [`Traffic`] summary.
pub fn perf_from_traffic(
    traffic: &Traffic,
    mapping: &Mapping,
    hw: &HardwareConfig,
    hier: &Hierarchy,
) -> LayerPerf {
    let energy = EnergyModel::for_config(hw);

    // Latency: roofline over compute and each memory level (Eq. 12).
    let compute = traffic.macs as f64 / mapping.spatial_product() as f64;
    let mut latency = compute;
    for i in 0..NUM_LEVELS {
        let mem = traffic.accesses(i) as f64 / hier.bandwidth(i, hw);
        latency = latency.max(mem);
    }

    // Energy (Eq. 13); DRAM counted per block transferred, like Timeloop.
    let mut pj = traffic.macs as f64 * energy.epa_mac();
    for i in 0..NUM_LEVELS - 1 {
        pj += traffic.accesses(i) as f64 * energy.epa(i);
    }
    // Timeloop counts DRAM energy per block accessed: each tensor stream's
    // total word count is rounded up to whole blocks (§4.6 — the source of
    // the small-layer divergence in Figure 4).
    let dram_words: u64 = traffic
        .dram_streams
        .iter()
        .map(|s| (s.tile_words * s.transfers).div_ceil(DRAM_BLOCK_WORDS) * DRAM_BLOCK_WORDS)
        .sum();
    pj += dram_words as f64 * energy.epa(NUM_LEVELS - 1);

    LayerPerf {
        latency_cycles: latency,
        energy_uj: pj_to_uj(pj),
    }
}

/// Evaluate a set of layers sharing one hardware configuration, combining
/// per-layer results per Eq. 14 (repeat counts weight both sums).
pub fn evaluate_model(
    layers: &[(Layer, Mapping)],
    hw: &HardwareConfig,
    hier: &Hierarchy,
) -> ModelPerf {
    let mut latency = 0.0;
    let mut energy = 0.0;
    for (layer, mapping) in layers {
        let p = evaluate_layer(&layer.problem, mapping, hw, hier);
        latency += p.latency_cycles * layer.count as f64;
        energy += p.energy_uj * layer.count as f64;
    }
    ModelPerf {
        latency_cycles: latency,
        energy_uj: energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::fig3_mapping;
    use dosa_workload::Layer;

    fn fig3() -> (Problem, Mapping, HardwareConfig, Hierarchy) {
        let p = Problem::conv("fig3", 1, 1, 56, 56, 64, 64, 1).unwrap();
        let hw = HardwareConfig::new(64, 4.0, 5.0).unwrap();
        (p, fig3_mapping(), hw, Hierarchy::gemmini())
    }

    #[test]
    fn fig3_latency_is_dram_bound() {
        let (p, m, hw, h) = fig3();
        let perf = evaluate_layer(&p, &m, &hw, &h);
        // Hand-computed in the traffic tests: DRAM moves 405,504 words at
        // 8 words/cycle.
        assert_eq!(perf.latency_cycles, 405_504.0 / 8.0);
        assert!(perf.energy_uj > 0.0);
    }

    #[test]
    fn edp_composes_multiplicatively() {
        let (p, m, hw, h) = fig3();
        let lp = evaluate_layer(&p, &m, &hw, &h);
        assert!((lp.edp() - lp.latency_cycles * lp.energy_uj).abs() < 1e-9);

        let layers = vec![
            (Layer::repeated(p.clone(), 3), m.clone()),
            (Layer::once(p.clone()), m.clone()),
        ];
        let mp = evaluate_model(&layers, &hw, &h);
        assert!((mp.latency_cycles - 4.0 * lp.latency_cycles).abs() < 1e-6);
        assert!((mp.energy_uj - 4.0 * lp.energy_uj).abs() < 1e-9);
        // Eq. 14: EDP of the model is (4E)(4L) = 16 * per-layer EDP.
        assert!((mp.edp() - 16.0 * lp.edp()).abs() / mp.edp() < 1e-9);
    }

    #[test]
    fn block_ceiling_penalizes_tiny_tiles() {
        // A tiny layer: every DRAM transfer is one element, padded to a
        // 64-word block by the reference model.
        let p = Problem::conv("tiny", 1, 1, 2, 2, 2, 2, 1).unwrap();
        let h = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let m = Mapping::all_at_dram(&p);
        let t = compute_traffic(&p, &m, &h);
        let perf = perf_from_traffic(&t, &m, &hw, &h);
        // Energy with per-word accounting would be far smaller.
        let word_pj: f64 = t.accesses(3) as f64 * 100.0;
        let block_words: u64 = t
            .dram_streams
            .iter()
            .map(|s| (s.tile_words * s.transfers).div_ceil(64) * 64)
            .sum();
        assert!(block_words > t.accesses(3));
        assert!(perf.energy_uj > pj_to_uj(word_pj));
    }

    #[test]
    fn bigger_arrays_reduce_compute_latency() {
        let p = Problem::conv("c", 3, 3, 32, 32, 64, 64, 1).unwrap();
        let h = Hierarchy::gemmini();
        let mut small = Mapping::all_at_dram(&p);
        small.temporal[3][dosa_workload::Dim::C.index()] = 16;
        small.spatial[1][dosa_workload::Dim::C.index()] = 4;
        small.validate(&p, &h).unwrap();
        let mut large = Mapping::all_at_dram(&p);
        large.temporal[3][dosa_workload::Dim::C.index()] = 1;
        large.spatial[1][dosa_workload::Dim::C.index()] = 64;
        large.validate(&p, &h).unwrap();
        let hw = HardwareConfig::new(64, 32.0, 128.0).unwrap();
        let t_small = compute_traffic(&p, &small, &h);
        let t_large = compute_traffic(&p, &large, &h);
        let c_small = t_small.macs as f64 / small.spatial_product() as f64;
        let c_large = t_large.macs as f64 / large.spatial_product() as f64;
        assert!(c_large < c_small);
        let _ = hw;
    }
}
