//! # dosa-timeloop
//!
//! The reference analytical performance model for the DOSA reproduction —
//! the role played by Timeloop + Accelergy in the paper. It provides:
//!
//! * the integer [`Mapping`] representation (temporal/spatial tiling factors
//!   per memory level plus per-level [`LoopOrder`]s, §3.1.2),
//! * exact loop-nest traffic analysis ([`compute_traffic`], §4.2),
//! * latency / energy / EDP evaluation ([`evaluate_layer`],
//!   [`evaluate_model`], Eqs. 12–14) including Timeloop's per-block DRAM
//!   energy ceiling (§4.6),
//! * minimal-hardware inference ([`min_hw`], Figure 3),
//! * random and random-pruned mappers (§6.1), and divisor utilities.
//!
//! ## Example
//!
//! ```
//! use dosa_timeloop::{evaluate_layer, min_hw, Mapping};
//! use dosa_accel::Hierarchy;
//! use dosa_workload::Problem;
//!
//! let p = Problem::conv("l", 3, 3, 28, 28, 64, 64, 1)?;
//! let m = Mapping::all_at_dram(&p);
//! let hier = Hierarchy::gemmini();
//! let hw = min_hw(&p, &m, &hier);
//! let perf = evaluate_layer(&p, &m, &hw, &hier);
//! assert!(perf.edp() > 0.0);
//! # Ok::<(), dosa_workload::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod divisors;
mod exhaustive;
mod mapper;
mod mapping;
mod minhw;
mod perf;
mod traffic;

pub use divisors::{divisors, factorize, nearest_divisor, split_into};
pub use exhaustive::{enumerate_mappings, exhaustive_best, MAX_ENUMERATION};
pub use mapper::{random_mapping, random_pruned_search, MapperResult};
pub use mapping::{LoopOrder, Mapping, MappingError, Stationarity};
pub use minhw::{fits, min_hw, min_hw_for_all};
pub use perf::{evaluate_layer, evaluate_model, perf_from_traffic, LayerPerf, ModelPerf};
pub use traffic::{compute_traffic, refetch, tile_words, DramStream, TensorFlows, Traffic};
