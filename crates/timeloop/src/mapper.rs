//! Random mapping samplers: the random mapper used by the random-search
//! baseline and the random-pruned mapper used to evaluate fixed accelerators
//! (§6.1, §6.3).

use crate::divisors::split_into;
use crate::mapping::{LoopOrder, Mapping, Stationarity};
use crate::minhw::fits;
use crate::perf::{evaluate_layer, LayerPerf};
use dosa_accel::{HardwareConfig, Hierarchy, MAX_PE_SIDE, NUM_LEVELS};
use dosa_workload::{Dim, Problem, NUM_DIMS};
use rand::Rng;

/// Slot identifiers in the per-dimension factor split, innermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Temporal(usize),
    Spatial(usize),
}

/// Sample a structurally valid random mapping for `problem`.
///
/// Each dimension's prime factors are distributed across the temporal slots
/// of levels 0..3 plus the architecturally allowed spatial slots (spatial
/// slots get double weight so that random samples exercise the array).
/// Spatial factors are capped at `spatial_cap` by demoting excess primes to
/// the same level's temporal slot. Loop orders are drawn uniformly from the
/// canonical WS/IS/OS orderings per level (the DOSA search space, §5.2.1).
pub fn random_mapping(
    rng: &mut impl Rng,
    problem: &Problem,
    hier: &Hierarchy,
    spatial_cap: u64,
) -> Mapping {
    let cap = spatial_cap.clamp(1, MAX_PE_SIDE);
    let mut temporal = [[1u64; NUM_DIMS]; NUM_LEVELS];
    let mut spatial = [[1u64; NUM_DIMS]; NUM_LEVELS];

    for d in Dim::ALL {
        // Build the slot list for this dimension: all temporal levels plus
        // any level that may spatially unroll `d`. Spatial slots are listed
        // twice to weight them up.
        let mut slots: Vec<Slot> = (0..NUM_LEVELS).map(Slot::Temporal).collect();
        for i in 0..NUM_LEVELS {
            if hier.spatial_dims(i).contains(d) {
                slots.push(Slot::Spatial(i));
                slots.push(Slot::Spatial(i));
            }
        }
        let factors = split_into(problem.size(d), slots.len(), |n| rng.gen_range(0..n));
        for (slot, f) in slots.iter().zip(factors) {
            match slot {
                Slot::Temporal(i) => temporal[*i][d.index()] *= f,
                Slot::Spatial(i) => spatial[*i][d.index()] *= f,
            }
        }
        // Enforce the spatial cap by demoting prime factors to the same
        // level's temporal slot.
        for i in 0..NUM_LEVELS {
            while spatial[i][d.index()] > cap {
                let s = spatial[i][d.index()];
                let p = crate::divisors::factorize(s)[0].0;
                spatial[i][d.index()] /= p;
                temporal[i][d.index()] *= p;
            }
        }
    }

    let mut orders = [LoopOrder::default(); NUM_LEVELS];
    for o in orders.iter_mut() {
        let s = Stationarity::ALL[rng.gen_range(0..3usize)];
        *o = LoopOrder::canonical(s);
    }

    Mapping {
        temporal,
        spatial,
        orders,
    }
}

/// Result of a pruned random mapspace search.
#[derive(Debug, Clone)]
pub struct MapperResult {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its reference-model performance.
    pub perf: LayerPerf,
    /// Number of valid (fitting) samples evaluated.
    pub valid_samples: usize,
}

/// Timeloop-style random-pruned mapper: sample `samples` random mappings for
/// `problem`, keep those that fit `hw`, and return the best by per-layer EDP.
///
/// Returns `None` if no sampled mapping fits (e.g. the problem's minimum
/// footprint exceeds the buffers).
pub fn random_pruned_search(
    rng: &mut impl Rng,
    problem: &Problem,
    hw: &HardwareConfig,
    hier: &Hierarchy,
    samples: usize,
) -> Option<MapperResult> {
    let mut best: Option<MapperResult> = None;
    let mut valid = 0usize;
    for _ in 0..samples {
        let m = random_mapping(rng, problem, hier, hw.pe_side());
        if !fits(problem, &m, hw, hier) {
            continue;
        }
        valid += 1;
        let perf = evaluate_layer(problem, &m, hw, hier);
        let better = match &best {
            None => true,
            Some(b) => perf.edp() < b.perf.edp(),
        };
        if better {
            best = Some(MapperResult {
                mapping: m,
                perf,
                valid_samples: 0,
            });
        }
    }
    best.map(|mut b| {
        b.valid_samples = valid;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_mappings_are_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = Hierarchy::gemmini();
        let p = Problem::conv("c", 3, 3, 56, 56, 64, 128, 1).unwrap();
        for _ in 0..200 {
            let m = random_mapping(&mut rng, &p, &h, 128);
            m.validate(&p, &h).unwrap();
        }
    }

    #[test]
    fn spatial_cap_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = Hierarchy::gemmini();
        let p = Problem::conv("c", 1, 1, 4, 4, 512, 512, 1).unwrap();
        for _ in 0..100 {
            let m = random_mapping(&mut rng, &p, &h, 16);
            for i in 0..NUM_LEVELS {
                for d in Dim::ALL {
                    assert!(m.spatial(i, d) <= 16);
                }
            }
            m.validate(&p, &h).unwrap();
        }
    }

    #[test]
    fn pruned_search_improves_over_first_sample() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = Hierarchy::gemmini();
        let p = Problem::conv("c", 3, 3, 28, 28, 128, 128, 1).unwrap();
        let hw = HardwareConfig::gemmini_default();
        let first = loop {
            let m = random_mapping(&mut rng, &p, &h, hw.pe_side());
            if fits(&p, &m, &hw, &h) {
                break evaluate_layer(&p, &m, &hw, &h);
            }
        };
        let best = random_pruned_search(&mut rng, &p, &hw, &h, 300).expect("some fit");
        assert!(best.perf.edp() <= first.edp());
        assert!(best.valid_samples > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let h = Hierarchy::gemmini();
        let p = Problem::conv("c", 3, 3, 14, 14, 256, 256, 1).unwrap();
        let m1 = random_mapping(&mut StdRng::seed_from_u64(42), &p, &h, 64);
        let m2 = random_mapping(&mut StdRng::seed_from_u64(42), &p, &h, 64);
        assert_eq!(m1, m2);
    }
}
