//! Integer factorization and divisor utilities used by the mapspace.
//!
//! Tiling factors must divide their problem dimension (§5.3.2), so mapping
//! construction, rounding and random sampling all reduce to divisor
//! manipulation. Problem dimensions are small (≤ ~25k), so trial division is
//! ample.

/// Prime factorization of `n` as `(prime, exponent)` pairs in increasing
/// prime order. `factorize(1)` is empty.
///
/// # Examples
///
/// ```
/// use dosa_timeloop::factorize;
/// assert_eq!(factorize(56), vec![(2, 3), (7, 1)]);
/// assert_eq!(factorize(1), vec![]);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    assert!(n > 0, "cannot factorize zero");
    let mut out = Vec::new();
    let mut p = 2u64;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut e = 0u32;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            out.push((p, e));
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// All divisors of `n` in increasing order.
///
/// # Examples
///
/// ```
/// use dosa_timeloop::divisors;
/// assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn divisors(n: u64) -> Vec<u64> {
    let mut out = vec![1u64];
    for (p, e) in factorize(n) {
        let base_len = out.len();
        let mut pk = 1u64;
        for _ in 0..e {
            pk *= p;
            for i in 0..base_len {
                out.push(out[i] * pk);
            }
        }
    }
    out.sort_unstable();
    out
}

/// The divisor of `n` closest to `x` (ties break toward the smaller
/// divisor), optionally bounded above by `cap`.
///
/// This is the rounding primitive of §5.3.2: each relaxed tiling factor is
/// rounded to the nearest divisor of its problem dimension without exceeding
/// the remaining quotient.
///
/// # Examples
///
/// ```
/// use dosa_timeloop::nearest_divisor;
/// assert_eq!(nearest_divisor(56, 5.2, None), 4);
/// assert_eq!(nearest_divisor(56, 100.0, None), 56);
/// assert_eq!(nearest_divisor(56, 100.0, Some(10)), 8);
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `cap == Some(0)`.
pub fn nearest_divisor(n: u64, x: f64, cap: Option<u64>) -> u64 {
    if let Some(c) = cap {
        assert!(c > 0, "cap must be positive");
    }
    let mut best = 1u64;
    let mut best_dist = f64::INFINITY;
    for d in divisors(n) {
        if let Some(c) = cap {
            if d > c {
                break;
            }
        }
        let dist = (d as f64 - x).abs();
        if dist < best_dist {
            best_dist = dist;
            best = d;
        }
    }
    best
}

/// Split `n` into `parts` cofactors whose product is `n`, distributing each
/// prime factor to a slot chosen by `pick(upper_bound) -> index`.
///
/// `pick` is called once per prime factor with the number of slots and must
/// return an index `< parts`. Deterministic given `pick`.
///
/// # Examples
///
/// ```
/// use dosa_timeloop::split_into;
/// // Send every factor to slot 0.
/// let parts = split_into(24, 3, |_| 0);
/// assert_eq!(parts, vec![24, 1, 1]);
/// ```
///
/// # Panics
///
/// Panics if `parts == 0` or if `pick` returns an out-of-range index.
pub fn split_into(n: u64, parts: usize, mut pick: impl FnMut(usize) -> usize) -> Vec<u64> {
    assert!(parts > 0, "need at least one part");
    let mut out = vec![1u64; parts];
    for (p, e) in factorize(n) {
        for _ in 0..e {
            let slot = pick(parts);
            assert!(slot < parts, "pick returned out-of-range slot");
            out[slot] *= p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_small_numbers() {
        assert_eq!(factorize(2), vec![(2, 1)]);
        assert_eq!(factorize(97), vec![(97, 1)]);
        assert_eq!(factorize(720), vec![(2, 4), (3, 2), (5, 1)]);
    }

    #[test]
    fn divisors_of_prime_and_one() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(13), vec![1, 13]);
    }

    #[test]
    fn divisors_count_matches_formula() {
        // d(n) = prod (e_i + 1)
        for n in [12u64, 56, 224, 1000, 1024, 25088] {
            let expected: usize = factorize(n)
                .iter()
                .map(|&(_, e)| (e + 1) as usize)
                .product();
            assert_eq!(divisors(n).len(), expected, "n={n}");
        }
    }

    #[test]
    fn nearest_divisor_rounds_and_caps() {
        assert_eq!(nearest_divisor(64, 15.9, None), 16);
        assert_eq!(nearest_divisor(64, 0.0, None), 1);
        assert_eq!(nearest_divisor(7, 3.4, None), 1); // divisors 1, 7; 3.4 closer to 1
        assert_eq!(nearest_divisor(7, 4.1, None), 7);
        assert_eq!(nearest_divisor(64, 64.0, Some(32)), 32);
    }

    #[test]
    fn split_preserves_product() {
        let mut i = 0usize;
        let parts = split_into(360, 4, |n| {
            i += 1;
            i % n
        });
        assert_eq!(parts.iter().product::<u64>(), 360);
        assert_eq!(parts.len(), 4);
    }
}
