//! Exhaustive mapspace enumeration for small problems.
//!
//! For layers whose dimensions have few divisors, the whole Gemmini
//! mapspace (divisor tilings across the four subnests and two spatial
//! slots, times the canonical per-level orderings) can be enumerated
//! outright. This provides ground-truth optima to validate the heuristic
//! and gradient-based searchers against, and a brute-force oracle for
//! property tests.

use crate::divisors::divisors;
use crate::mapping::{LoopOrder, Mapping, Stationarity};
use crate::minhw::fits;
use crate::perf::{evaluate_layer, LayerPerf};
use dosa_accel::{level, HardwareConfig, Hierarchy, NUM_LEVELS};
use dosa_workload::{Dim, Problem, NUM_DIMS};

/// Upper bound on enumerated tilings before [`enumerate_mappings`] refuses
/// (protects against accidental combinatorial explosions in tests).
pub const MAX_ENUMERATION: usize = 2_000_000;

/// Enumerate every structurally valid tiling of `problem` (spatial factors
/// capped at `spatial_cap`), invoking `f` for each mapping with every
/// combination of canonical per-level orderings reduced to a single shared
/// choice per level set `orderings` (to bound the count, orderings are
/// enumerated uniformly across levels).
///
/// Returns the number of (tiling, ordering) pairs visited, or `None` if the
/// space exceeds [`MAX_ENUMERATION`].
pub fn enumerate_mappings(
    problem: &Problem,
    hier: &Hierarchy,
    spatial_cap: u64,
    mut f: impl FnMut(&Mapping),
) -> Option<usize> {
    // Per-dimension factor slots, innermost first:
    // T0, S1 (C only), T1, S2 (K only), T2; DRAM absorbs the remainder.
    #[derive(Clone, Copy)]
    enum Slot {
        T(usize),
        S(usize),
    }
    let slots_for = |d: Dim| -> Vec<Slot> {
        let mut v = vec![Slot::T(0)];
        if hier.spatial_dims(level::ACCUMULATOR).contains(d) {
            v.push(Slot::S(level::ACCUMULATOR));
        }
        v.push(Slot::T(1));
        if hier.spatial_dims(level::SCRATCHPAD).contains(d) {
            v.push(Slot::S(level::SCRATCHPAD));
        }
        v.push(Slot::T(2));
        v
    };

    // Enumerate per-dimension assignments recursively.
    fn assignments(n: u64, slots: usize, cap_per_slot: &dyn Fn(usize) -> u64) -> Vec<Vec<u64>> {
        if slots == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for d in divisors(n) {
            if d > cap_per_slot(0) {
                continue;
            }
            for rest in assignments(n / d, slots - 1, &|i| cap_per_slot(i + 1)) {
                let mut v = Vec::with_capacity(slots);
                v.push(d);
                v.extend(rest);
                out.push(v);
            }
        }
        out
    }

    let mut per_dim: Vec<(Vec<Slot>, Vec<Vec<u64>>)> = Vec::with_capacity(NUM_DIMS);
    let mut total: usize = 1;
    for d in Dim::ALL {
        let slots = slots_for(d);
        let slot_caps: Vec<u64> = slots
            .iter()
            .map(|s| match s {
                Slot::T(_) => u64::MAX,
                Slot::S(_) => spatial_cap,
            })
            .collect();
        let asg = assignments(problem.size(d), slots.len(), &move |i| slot_caps[i]);
        total = total.checked_mul(asg.len())?;
        if total > MAX_ENUMERATION {
            return None;
        }
        per_dim.push((slots, asg));
    }
    total = total.checked_mul(Stationarity::ALL.len())?;
    if total > MAX_ENUMERATION {
        return None;
    }

    // Odometer over per-dimension assignment indices.
    let mut idx = [0usize; NUM_DIMS];
    let mut count = 0usize;
    loop {
        let mut m = Mapping::all_at_dram(problem);
        for (di, d) in Dim::ALL.into_iter().enumerate() {
            let (slots, asg) = &per_dim[di];
            let choice = &asg[idx[di]];
            let mut inner_product = 1u64;
            for (slot, &factor) in slots.iter().zip(choice) {
                inner_product *= factor;
                match slot {
                    Slot::T(lvl) => m.temporal[*lvl][d.index()] = factor,
                    Slot::S(lvl) => m.spatial[*lvl][d.index()] = factor,
                }
            }
            m.temporal[NUM_LEVELS - 1][d.index()] = problem.size(d) / inner_product;
        }
        for s in Stationarity::ALL {
            let mut ms = m.clone();
            ms.orders = [LoopOrder::canonical(s); NUM_LEVELS];
            f(&ms);
            count += 1;
        }

        // Advance the odometer.
        let mut carry = true;
        for (di, slot) in idx.iter_mut().enumerate() {
            if !carry {
                break;
            }
            *slot += 1;
            if *slot >= per_dim[di].1.len() {
                *slot = 0;
            } else {
                carry = false;
            }
        }
        if carry {
            break;
        }
    }
    Some(count)
}

/// Brute-force optimum: the best per-layer EDP mapping of `problem` on
/// fixed hardware `hw`, or `None` if the space is too large or nothing
/// fits.
pub fn exhaustive_best(
    problem: &Problem,
    hw: &HardwareConfig,
    hier: &Hierarchy,
) -> Option<(Mapping, LayerPerf)> {
    let mut best: Option<(Mapping, LayerPerf)> = None;
    enumerate_mappings(problem, hier, hw.pe_side(), |m| {
        if !fits(problem, m, hw, hier) {
            return;
        }
        let perf = evaluate_layer(problem, m, hw, hier);
        let better = match &best {
            None => true,
            Some((_, b)) => perf.edp() < b.edp(),
        };
        if better {
            best = Some((m.clone(), perf));
        }
    })?;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::random_pruned_search;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Problem {
        // Dims with few divisors keep the space enumerable.
        Problem::conv("tiny", 1, 1, 4, 4, 8, 8, 1).unwrap()
    }

    #[test]
    fn enumeration_visits_only_valid_mappings() {
        let p = tiny();
        let hier = Hierarchy::gemmini();
        let mut n = 0usize;
        let visited = enumerate_mappings(&p, &hier, 8, |m| {
            m.validate(&p, &hier).unwrap();
            n += 1;
        })
        .expect("space is small");
        assert_eq!(n, visited);
        assert!(n > 1000, "only {n} mappings enumerated");
    }

    #[test]
    fn random_mapper_never_beats_exhaustive_optimum() {
        let p = tiny();
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::new(8, 4.0, 8.0).unwrap();
        let (_, best) = exhaustive_best(&p, &hw, &hier).expect("something fits");
        let mut rng = StdRng::seed_from_u64(9);
        if let Some(found) = random_pruned_search(&mut rng, &p, &hw, &hier, 500) {
            assert!(
                found.perf.edp() >= best.edp() * (1.0 - 1e-12),
                "random {} beat exhaustive {}",
                found.perf.edp(),
                best.edp()
            );
        }
    }

    #[test]
    fn refuses_oversized_spaces() {
        let big = Problem::conv("big", 3, 3, 224, 224, 512, 512, 1).unwrap();
        let hier = Hierarchy::gemmini();
        assert_eq!(enumerate_mappings(&big, &hier, 128, |_| {}), None);
    }
}
