//! Integer mapping representation: temporal/spatial tiling factors per
//! memory level plus per-level loop orders (§3.1.2).

use dosa_accel::{Hierarchy, MAX_PE_SIDE, NUM_LEVELS};
use dosa_workload::{Dim, DimSet, Problem, Tensor, NUM_DIMS};

use std::fmt;

/// A permutation of the seven problem dimensions, innermost loop first,
/// fixing the loop ordering at one memory level (§3.1.2 decision 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopOrder([Dim; NUM_DIMS]);

/// The three canonical per-level orderings DOSA searches over (§5.2.1):
/// each keeps one tensor stationary by placing the dimensions irrelevant to
/// it innermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stationarity {
    /// Weight-stationary: `{P,Q,N}` innermost.
    WeightStationary,
    /// Input-stationary: `{K}` innermost.
    InputStationary,
    /// Output-stationary: `{R,S,C}` innermost.
    OutputStationary,
}

impl Stationarity {
    /// All three options, in the paper's WS/IS/OS order.
    pub const ALL: [Stationarity; 3] = [
        Stationarity::WeightStationary,
        Stationarity::InputStationary,
        Stationarity::OutputStationary,
    ];

    /// Short display name ("WS"/"IS"/"OS").
    pub fn name(self) -> &'static str {
        match self {
            Stationarity::WeightStationary => "WS",
            Stationarity::InputStationary => "IS",
            Stationarity::OutputStationary => "OS",
        }
    }

    /// The tensor kept stationary.
    pub fn tensor(self) -> Tensor {
        match self {
            Stationarity::WeightStationary => Tensor::Weights,
            Stationarity::InputStationary => Tensor::Inputs,
            Stationarity::OutputStationary => Tensor::Outputs,
        }
    }
}

impl fmt::Display for Stationarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl LoopOrder {
    /// Build an order from an explicit innermost-first permutation.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a permutation of all seven dimensions.
    pub fn new(dims: [Dim; NUM_DIMS]) -> LoopOrder {
        let set: DimSet = dims.into_iter().collect();
        assert_eq!(set, DimSet::FULL, "loop order must be a permutation");
        LoopOrder(dims)
    }

    /// The canonical ordering minimizing refetches of `s.tensor()`:
    /// dimensions irrelevant to that tensor are placed innermost.
    pub fn canonical(s: Stationarity) -> LoopOrder {
        let rel = s.tensor().dims();
        let mut dims = [Dim::R; NUM_DIMS];
        let mut i = 0;
        for d in Dim::ALL {
            if !rel.contains(d) {
                dims[i] = d;
                i += 1;
            }
        }
        for d in Dim::ALL {
            if rel.contains(d) {
                dims[i] = d;
                i += 1;
            }
        }
        LoopOrder(dims)
    }

    /// Dimensions, innermost first.
    pub fn dims(&self) -> &[Dim; NUM_DIMS] {
        &self.0
    }

    /// Position of `d` (0 = innermost).
    pub fn position(&self, d: Dim) -> usize {
        self.0
            .iter()
            .position(|&x| x == d)
            .expect("order contains every dim")
    }
}

impl Default for LoopOrder {
    fn default() -> Self {
        LoopOrder::canonical(Stationarity::WeightStationary)
    }
}

impl fmt::Display for LoopOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "<")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Why a mapping is invalid for a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The product of factors for a dimension does not equal the problem
    /// bound.
    ProductMismatch {
        /// Offending dimension.
        dim: Dim,
        /// Product of all (temporal × spatial) factors of that dimension.
        product: u64,
        /// The problem's bound for that dimension.
        expected: u64,
    },
    /// A spatial factor was placed at a (level, dim) the hardware cannot
    /// unroll.
    DisallowedSpatial {
        /// Memory level of the offending factor.
        level: usize,
        /// Offending dimension.
        dim: Dim,
    },
    /// A spatial factor exceeds the maximum PE array side.
    SpatialTooLarge {
        /// Offending dimension.
        dim: Dim,
        /// The factor value.
        factor: u64,
    },
    /// A factor was zero.
    ZeroFactor,
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ProductMismatch {
                dim,
                product,
                expected,
            } => write!(
                f,
                "factors of {dim} multiply to {product}, problem needs {expected}"
            ),
            MappingError::DisallowedSpatial { level, dim } => {
                write!(f, "spatial factor for {dim} not allowed at level {level}")
            }
            MappingError::SpatialTooLarge { dim, factor } => {
                write!(f, "spatial factor {factor} for {dim} exceeds {MAX_PE_SIDE}")
            }
            MappingError::ZeroFactor => write!(f, "tiling factors must be at least 1"),
        }
    }
}

impl std::error::Error for MappingError {}

/// An integer mapping: temporal and spatial tiling factors for every
/// (memory level, dimension) pair, plus a loop order per level.
///
/// Conventions (see `DESIGN.md` and the `traffic` module docs):
/// * `temporal[i][d]` is the bound of the temporal loop for dimension `d`
///   in level `i`'s subnest (level 3 = DRAM loops, level 0 = innermost).
/// * `spatial[i][d]` is the spatial fanout below level `i` (Gemmini WS
///   allows `C` below the accumulator and `K` below the scratchpad; Eq. 1).
/// * For each dimension the product of every factor equals the problem
///   bound.
///
/// # Examples
///
/// ```
/// use dosa_timeloop::Mapping;
/// use dosa_workload::Problem;
/// use dosa_accel::Hierarchy;
///
/// let p = Problem::conv("l", 1, 1, 56, 56, 64, 64, 1)?;
/// let m = Mapping::all_at_dram(&p);
/// assert!(m.validate(&p, &Hierarchy::gemmini()).is_ok());
/// # Ok::<(), dosa_workload::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// Temporal factors per level per dim.
    pub temporal: [[u64; NUM_DIMS]; NUM_LEVELS],
    /// Spatial factors per level per dim.
    pub spatial: [[u64; NUM_DIMS]; NUM_LEVELS],
    /// Loop order per level (applies to the level's temporal subnest).
    pub orders: [LoopOrder; NUM_LEVELS],
}

impl Mapping {
    /// The trivial mapping: every loop at DRAM, no spatial unrolling.
    pub fn all_at_dram(problem: &Problem) -> Mapping {
        let mut temporal = [[1u64; NUM_DIMS]; NUM_LEVELS];
        temporal[NUM_LEVELS - 1] = problem.sizes();
        Mapping {
            temporal,
            spatial: [[1; NUM_DIMS]; NUM_LEVELS],
            orders: [LoopOrder::default(); NUM_LEVELS],
        }
    }

    /// Temporal factor at `(level, dim)`.
    #[inline]
    pub fn temporal(&self, level: usize, d: Dim) -> u64 {
        self.temporal[level][d.index()]
    }

    /// Spatial factor at `(level, dim)`.
    #[inline]
    pub fn spatial(&self, level: usize, d: Dim) -> u64 {
        self.spatial[level][d.index()]
    }

    /// Product of temporal and spatial factors for dimension `d` across all
    /// levels.
    pub fn product(&self, d: Dim) -> u64 {
        let mut p = 1u64;
        for i in 0..NUM_LEVELS {
            p = p
                .saturating_mul(self.temporal[i][d.index()])
                .saturating_mul(self.spatial[i][d.index()]);
        }
        p
    }

    /// Product of every spatial factor — the number of PEs a mapping
    /// utilizes (denominator of Eq. 12's compute latency).
    pub fn spatial_product(&self) -> u64 {
        let mut p = 1u64;
        for lvl in &self.spatial {
            for &f in lvl {
                p = p.saturating_mul(f);
            }
        }
        p
    }

    /// Check structural validity against a problem and hierarchy
    /// (§3.1.2's product constraint, spatial placement, PE cap).
    ///
    /// # Errors
    ///
    /// Returns the first [`MappingError`] found.
    pub fn validate(&self, problem: &Problem, hier: &Hierarchy) -> Result<(), MappingError> {
        for lvl in 0..NUM_LEVELS {
            for d in Dim::ALL {
                if self.temporal[lvl][d.index()] == 0 || self.spatial[lvl][d.index()] == 0 {
                    return Err(MappingError::ZeroFactor);
                }
                let s = self.spatial[lvl][d.index()];
                if s > 1 {
                    if !hier.spatial_dims(lvl).contains(d) {
                        return Err(MappingError::DisallowedSpatial { level: lvl, dim: d });
                    }
                    if s > MAX_PE_SIDE {
                        return Err(MappingError::SpatialTooLarge { dim: d, factor: s });
                    }
                }
            }
        }
        for d in Dim::ALL {
            let product = self.product(d);
            let expected = problem.size(d);
            if product != expected {
                return Err(MappingError::ProductMismatch {
                    dim: d,
                    product,
                    expected,
                });
            }
        }
        Ok(())
    }

    /// Set every level's loop order from per-level stationarity choices.
    pub fn set_orders(&mut self, per_level: [Stationarity; NUM_LEVELS]) {
        for (i, s) in per_level.into_iter().enumerate() {
            self.orders[i] = LoopOrder::canonical(s);
        }
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for lvl in (0..NUM_LEVELS).rev() {
            write!(f, "L{lvl} [{}]:", self.orders[lvl])?;
            for d in Dim::ALL {
                let t = self.temporal(lvl, d);
                let s = self.spatial(lvl, d);
                if t > 1 {
                    write!(f, " {d}t{t}")?;
                }
                if s > 1 {
                    write!(f, " {d}s{s}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) use tests::fig3_mapping;

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_accel::level;

    fn fig3_problem() -> Problem {
        Problem::conv("fig3", 1, 1, 56, 56, 64, 64, 1).unwrap()
    }

    /// The mapping shown in Figure 3 of the paper.
    pub(crate) fn fig3_mapping() -> Mapping {
        let mut m = Mapping::all_at_dram(&fig3_problem());
        // DRAM: p3 in [0:56), q3 in [0:4)
        m.temporal[level::DRAM] = [1; NUM_DIMS];
        m.temporal[level::DRAM][Dim::P.index()] = 56;
        m.temporal[level::DRAM][Dim::Q.index()] = 4;
        // spatial k2 = 64 below scratchpad, spatial c1 = 64 below accumulator
        m.spatial[level::SCRATCHPAD][Dim::K.index()] = 64;
        m.spatial[level::ACCUMULATOR][Dim::C.index()] = 64;
        // registers subnest: q0 in [0:14)
        m.temporal[level::REGISTERS][Dim::Q.index()] = 14;
        m
    }

    #[test]
    fn fig3_mapping_is_valid() {
        let p = fig3_problem();
        let m = fig3_mapping();
        assert!(m.validate(&p, &Hierarchy::gemmini()).is_ok());
        assert_eq!(m.spatial_product(), 4096);
        assert_eq!(m.product(Dim::Q), 56);
    }

    #[test]
    fn product_mismatch_detected() {
        let p = fig3_problem();
        let mut m = fig3_mapping();
        m.temporal[level::DRAM][Dim::P.index()] = 28;
        let err = m.validate(&p, &Hierarchy::gemmini()).unwrap_err();
        assert!(matches!(
            err,
            MappingError::ProductMismatch {
                dim: Dim::P,
                product: 28,
                expected: 56
            }
        ));
    }

    #[test]
    fn disallowed_spatial_detected() {
        let p = fig3_problem();
        let mut m = fig3_mapping();
        // Move the C spatial factor to the scratchpad level, which only
        // allows K.
        m.spatial[level::ACCUMULATOR][Dim::C.index()] = 1;
        m.spatial[level::SCRATCHPAD][Dim::C.index()] = 64;
        let err = m.validate(&p, &Hierarchy::gemmini()).unwrap_err();
        assert!(matches!(
            err,
            MappingError::DisallowedSpatial {
                level: 2,
                dim: Dim::C
            }
        ));
    }

    #[test]
    fn spatial_cap_detected() {
        let p = Problem::conv("big", 1, 1, 1, 1, 256, 1, 1).unwrap();
        let mut m = Mapping::all_at_dram(&p);
        m.temporal[level::DRAM][Dim::C.index()] = 1;
        m.spatial[level::ACCUMULATOR][Dim::C.index()] = 256;
        let err = m.validate(&p, &Hierarchy::gemmini()).unwrap_err();
        assert!(matches!(
            err,
            MappingError::SpatialTooLarge {
                dim: Dim::C,
                factor: 256
            }
        ));
    }

    #[test]
    fn zero_factor_detected() {
        let p = fig3_problem();
        let mut m = fig3_mapping();
        m.temporal[level::REGISTERS][Dim::R.index()] = 0;
        assert_eq!(
            m.validate(&p, &Hierarchy::gemmini()),
            Err(MappingError::ZeroFactor)
        );
    }

    #[test]
    fn canonical_orders_put_irrelevant_innermost() {
        let ws = LoopOrder::canonical(Stationarity::WeightStationary);
        // First three dims must be the non-weight dims {P, Q, N}.
        let inner: DimSet = ws.dims()[..3].iter().copied().collect();
        assert_eq!(inner, Tensor::Weights.dims().complement());

        let os = LoopOrder::canonical(Stationarity::OutputStationary);
        let inner: DimSet = os.dims()[..3].iter().copied().collect();
        assert_eq!(inner, Tensor::Outputs.dims().complement());

        let is = LoopOrder::canonical(Stationarity::InputStationary);
        assert_eq!(is.dims()[0], Dim::K);
        assert_eq!(is.position(Dim::K), 0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn loop_order_rejects_duplicates() {
        let _ = LoopOrder::new([Dim::R; NUM_DIMS]);
    }

    #[test]
    fn display_shows_nontrivial_factors() {
        let s = fig3_mapping().to_string();
        assert!(s.contains("Pt56"));
        assert!(s.contains("Ks64"));
        assert!(s.contains("Qt14"));
    }
}
