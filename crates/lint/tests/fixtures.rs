//! Fixture self-tests for every lint rule: each rule must **fire** on a
//! bad fixture, stay **silent** on a good one, and be silenced — with the
//! suppression counted — by a justified pragma. A linter that can't prove
//! both directions on known input can't be trusted as a CI gate.

use dosa_lint::rules::lint_source;
use dosa_lint::Rule;

/// Path under a service-facing *and* deterministic crate: every rule
/// family applies.
const SEARCH: &str = "crates/search/src/fixture.rs";
/// Deterministic but not service-facing: `nondet-iteration` applies,
/// `panic-perimeter` does not.
const MODEL: &str = "crates/model/src/fixture.rs";
/// Neither deterministic nor service-facing.
const NN: &str = "crates/nn/src/fixture.rs";
/// A test file: only the always-on rules apply.
const TEST_FILE: &str = "crates/search/tests/fixture.rs";

fn rules_fired(path: &str, src: &str) -> Vec<Rule> {
    lint_source(path, src)
        .violations
        .iter()
        .map(|d| d.rule)
        .collect()
}

// ---------------------------------------------------------------- raw-mutex-lock

#[test]
fn raw_mutex_lock_fires_on_bad_input() {
    let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock().unwrap()\n}\n";
    let fired = rules_fired(NN, src);
    assert!(fired.contains(&Rule::RawMutexLock), "got {fired:?}");
    // Diagnostic points at the line holding `.lock(`.
    let lint = lint_source(NN, src);
    assert_eq!(lint.violations[0].line, 2);
}

#[test]
fn raw_mutex_lock_applies_even_in_test_code() {
    // A poisoned test mutex wedges the whole suite, so tests get no pass.
    let src = "#[test]\nfn t() {\n    let _ = M.lock();\n}\n";
    assert!(rules_fired(TEST_FILE, src).contains(&Rule::RawMutexLock));
}

#[test]
fn raw_mutex_lock_silent_on_good_input() {
    let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *crate::fault::lock(m)\n}\n";
    assert!(rules_fired(NN, src).is_empty());
}

#[test]
fn raw_mutex_lock_suppressed_by_pragma() {
    let src = "fn lock_shard(m: &std::sync::Mutex<u32>) -> u32 {\n    \
               // dosa-lint: allow(raw-mutex-lock) — this helper is the documented perimeter.\n    \
               *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n";
    let lint = lint_source(NN, src);
    assert!(lint.violations.is_empty(), "got {:?}", lint.violations);
    assert_eq!(lint.suppressed, 1);
}

// ------------------------------------------------------------ undocumented-unsafe

#[test]
fn undocumented_unsafe_fires_on_bad_input() {
    let src = "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    assert!(rules_fired(NN, src).contains(&Rule::UndocumentedUnsafe));
}

#[test]
fn undocumented_unsafe_silent_with_safety_comment() {
    let src = "fn f(p: *const u32) -> u32 {\n    \
               // SAFETY: callers pass a valid, aligned, live pointer.\n    \
               unsafe { *p }\n}\n";
    assert!(rules_fired(NN, src).is_empty());
}

#[test]
fn undocumented_unsafe_fires_on_unsafe_fn_without_comment() {
    let src = "pub unsafe fn f(p: *const u32) -> u32 {\n    *p\n}\n";
    assert!(rules_fired(NN, src).contains(&Rule::UndocumentedUnsafe));
}

#[test]
fn undocumented_unsafe_suppressed_by_pragma() {
    let src = "fn f(p: *const u32) -> u32 {\n    \
               // dosa-lint: allow(undocumented-unsafe) — documented at the call site instead.\n    \
               unsafe { *p }\n}\n";
    let lint = lint_source(NN, src);
    assert!(lint.violations.is_empty());
    assert_eq!(lint.suppressed, 1);
}

// -------------------------------------------------------------- nondet-iteration

#[test]
fn nondet_iteration_fires_in_deterministic_crate() {
    let src =
        "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    let fired = rules_fired(MODEL, src);
    assert!(fired.contains(&Rule::NondetIteration), "got {fired:?}");
}

#[test]
fn nondet_iteration_fires_on_hashset_too() {
    let src =
        "fn f() -> std::collections::HashSet<u32> {\n    std::collections::HashSet::new()\n}\n";
    assert!(rules_fired(MODEL, src).contains(&Rule::NondetIteration));
}

#[test]
fn nondet_iteration_ignores_non_deterministic_crates_and_tests() {
    let src =
        "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    assert!(rules_fired(NN, src).is_empty());
    assert!(rules_fired(TEST_FILE, src).is_empty());
    // ... and #[cfg(test)] modules inside a deterministic crate.
    let in_mod = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
                  #[test]\n    fn t() {\n        let _ = HashMap::<u32, u32>::new();\n    }\n}\n";
    assert!(rules_fired(MODEL, in_mod).is_empty());
}

#[test]
fn nondet_iteration_silent_on_btreemap() {
    let src =
        "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> {\n    BTreeMap::new()\n}\n";
    assert!(rules_fired(MODEL, src).is_empty());
}

#[test]
fn nondet_iteration_suppressed_by_pragma() {
    let src = "// dosa-lint: allow(nondet-iteration) — keyed by id, never iterated.\n\
               use std::collections::HashMap;\nfn f() {\n    let _: Option<HashMap<u32, u32>> = None;\n}\n";
    let lint = lint_source(MODEL, src);
    // The pragma covers the `use` line; the body mention two lines down
    // still fires — suppression is deliberately line-scoped, not file-wide.
    assert_eq!(lint.suppressed, 1);
    assert!(lint.violations.iter().all(|d| d.line > 2));
}

// --------------------------------------------------------------- panic-perimeter

#[test]
fn panic_perimeter_fires_on_unwrap_expect_and_panic() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
               fn g(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n\
               fn h() {\n    panic!(\"boom\");\n}\n";
    let fired = rules_fired(SEARCH, src);
    assert_eq!(
        fired.iter().filter(|r| **r == Rule::PanicPerimeter).count(),
        3,
        "got {fired:?}"
    );
}

#[test]
fn panic_perimeter_only_applies_to_service_crates() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert!(rules_fired(NN, src).is_empty());
    assert!(rules_fired(MODEL, src).is_empty());
}

#[test]
fn panic_perimeter_exempts_test_code() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert!(rules_fired(TEST_FILE, src).is_empty());
    let in_mod = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                  Some(1u32).unwrap();\n    }\n}\n";
    assert!(rules_fired(SEARCH, in_mod).is_empty());
}

#[test]
fn panic_perimeter_suppressed_by_pragma() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    \
               // dosa-lint: allow(panic-perimeter) — unreachable: validated at submit.\n    \
               x.unwrap()\n}\n";
    let lint = lint_source(SEARCH, src);
    assert!(lint.violations.is_empty());
    assert_eq!(lint.suppressed, 1);
}

// --------------------------------------------------------------------- float-eq

#[test]
fn float_eq_fires_on_literal_and_nan_comparisons() {
    let src = "fn f(x: f64) -> bool {\n    x == 1.5\n}\n\
               fn g(x: f64) -> bool {\n    x != f64::NAN\n}\n";
    let fired = rules_fired(NN, src);
    assert_eq!(
        fired.iter().filter(|r| **r == Rule::FloatEq).count(),
        2,
        "got {fired:?}"
    );
}

#[test]
fn float_eq_silent_on_integer_compare_and_tolerance() {
    let src = "fn f(x: i64) -> bool {\n    x == 1\n}\n\
               fn g(a: f64, b: f64) -> bool {\n    (a - b).abs() < 1e-12\n}\n\
               fn h(a: f64, b: f64) -> bool {\n    a.to_bits() == b.to_bits()\n}\n";
    assert!(rules_fired(NN, src).is_empty());
}

#[test]
fn float_eq_exempts_test_code() {
    let src = "#[test]\nfn t() {\n    assert!(1.0 == compute());\n}\n";
    assert!(rules_fired(TEST_FILE, src).is_empty());
}

#[test]
fn float_eq_suppressed_by_pragma() {
    let src = "fn f(x: f64) -> u64 {\n    \
               // dosa-lint: allow(float-eq) — IEEE == is the canonicalization.\n    \
               if x == 0.0 { 0 } else { x.to_bits() }\n}\n";
    let lint = lint_source(NN, src);
    assert!(lint.violations.is_empty());
    assert_eq!(lint.suppressed, 1);
}

// ---------------------------------------------------------------- invalid-pragma

#[test]
fn bare_pragma_without_justification_is_invalid_and_does_not_suppress() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    \
               // dosa-lint: allow(panic-perimeter)\n    \
               x.unwrap()\n}\n";
    let lint = lint_source(SEARCH, src);
    let fired: Vec<Rule> = lint.violations.iter().map(|d| d.rule).collect();
    assert!(fired.contains(&Rule::InvalidPragma), "got {fired:?}");
    assert!(fired.contains(&Rule::PanicPerimeter), "got {fired:?}");
    assert_eq!(lint.suppressed, 0);
}

#[test]
fn unknown_rule_name_in_pragma_is_invalid() {
    let src = "// dosa-lint: allow(made-up-rule) — a perfectly sincere justification.\nfn f() {}\n";
    assert!(rules_fired(NN, src).contains(&Rule::InvalidPragma));
}

#[test]
fn pragma_cannot_allow_invalid_pragma_itself() {
    let src = "// dosa-lint: allow(invalid-pragma) — trying to silence the meta-rule.\nfn f() {}\n";
    assert!(rules_fired(NN, src).contains(&Rule::InvalidPragma));
}

#[test]
fn prose_mentioning_the_tool_is_not_a_pragma() {
    let src = "// The dosa-lint: style pragmas are documented in ARCHITECTURE.md.\n\
               //! Run dosa-lint via `repro lint`.\nfn f() {}\n";
    let lint = lint_source(NN, src);
    assert!(lint.violations.is_empty(), "got {:?}", lint.violations);
    assert_eq!(lint.suppressed, 0);
}
