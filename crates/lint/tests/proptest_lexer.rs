//! Randomized lexer-soundness tests: rule-triggering payloads wrapped in
//! any literal or comment container must never produce a diagnostic, and
//! must never derail the lexer from the code that follows the container.
//! This is the property the whole tool rests on — a lexer that "sees"
//! `panic!` inside a string would make every diagnostic suspect.

use dosa_lint::lexer::lex;
use dosa_lint::rules::lint_source;
use proptest::prelude::*;

/// Code fragments that trip at least one rule when they appear as code.
/// None contain quotes, so every container below can hold them verbatim.
const PAYLOADS: [&str; 7] = [
    "m.lock().unwrap()",
    "unsafe { *p }",
    "HashMap::new()",
    "panic!(boom)",
    "x == 1.5",
    "x != f64::NAN",
    "opt.expect(msg)",
];

/// Wrap `payload` in container number `kind` (literal or comment), as one
/// self-contained statement/item. `hashes` picks the raw-string guard
/// length; `depth` the block-comment nesting depth.
fn embed(kind: usize, payload: &str, hashes: usize, depth: usize) -> String {
    let h = "#".repeat(1 + hashes % 3);
    match kind % 6 {
        0 => format!("fn f() -> &'static str {{\n    \"{payload}\"\n}}\n"),
        1 => format!("fn f() -> &'static str {{\n    r{h}\"{payload}\"{h}\n}}\n"),
        2 => format!("fn f() -> &'static [u8] {{\n    b\"{payload}\"\n}}\n"),
        3 => format!("fn f() -> &'static [u8] {{\n    br{h}\"{payload}\"{h}\n}}\n"),
        4 => {
            // Nested block comment: every nesting level must close before
            // the lexer returns to code.
            let open = "/*".repeat(1 + depth % 3);
            let close = "*/".repeat(1 + depth % 3);
            format!("{open} {payload} {close}\nfn f() {{}}\n")
        }
        _ => format!("// {payload}\nfn f() {{}}\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn payloads_inside_containers_never_fire(
        kind in 0usize..6,
        which in 0usize..PAYLOADS.len(),
        hashes in 0usize..3,
        depth in 0usize..3,
    ) {
        let src = embed(kind, PAYLOADS[which], hashes, depth);
        // Lint under the strictest scope (service + deterministic crate).
        let lint = lint_source("crates/search/src/fixture.rs", &src);
        prop_assert!(
            lint.violations.is_empty(),
            "container {} leaked payload {:?}: {:?}",
            kind % 6,
            PAYLOADS[which],
            lint.violations
        );
        prop_assert_eq!(lint.suppressed, 0);
    }

    #[test]
    fn containers_never_swallow_following_code(
        kind in 0usize..6,
        which in 0usize..PAYLOADS.len(),
        hashes in 0usize..3,
        depth in 0usize..3,
    ) {
        // Append a sentinel *after* the container: if the container's end
        // were mislexed, the sentinel would vanish into a string/comment.
        let src = format!(
            "{}fn sentinel_marker_fn() {{}}\n",
            embed(kind, PAYLOADS[which], hashes, depth)
        );
        let tokens = lex(&src);
        prop_assert!(
            tokens.iter().any(|t| t.kind.is_ident("sentinel_marker_fn")),
            "sentinel swallowed by container {} around {:?}",
            kind % 6,
            PAYLOADS[which]
        );
        // ... and the sentinel must be *code*, not comment text.
        let in_code = tokens
            .iter()
            .filter(|t| !t.kind.is_comment())
            .any(|t| t.kind.is_ident("sentinel_marker_fn"));
        prop_assert!(in_code);
    }

    #[test]
    fn char_literals_never_assemble_into_operators(
        reps in 1usize..5,
    ) {
        // If the lexer misread char literals, these fragments could fuse
        // into `1.0 == x` / `!=` token runs and trip float-eq.
        let tuple = "('1', '.', '0', '=', '=', 'x', '!', '=')";
        let src = format!(
            "fn f() -> [(char, char, char, char, char, char, char, char); {reps}] {{\n    [{}]\n}}\n",
            vec![tuple; reps].join(", ")
        );
        let lint = lint_source("crates/search/src/fixture.rs", &src);
        prop_assert!(lint.violations.is_empty(), "got {:?}", lint.violations);
    }
}
