//! The rule engine: named project-invariant rules over one file's token
//! stream, pragma-based suppression, and `#[cfg(test)]` scoping.
//!
//! Every rule guards a documented workspace invariant (see
//! `ARCHITECTURE.md`, "Static analysis & invariant enforcement"):
//!
//! | rule | invariant |
//! | --- | --- |
//! | `raw-mutex-lock` | poisoning recovery: all locking goes through `fault::lock`/`wait`/`wait_timeout` or the `dosa-cache` shard-lock helper |
//! | `undocumented-unsafe` | unsafe audit: every `unsafe` block/fn carries a `// SAFETY:` comment |
//! | `nondet-iteration` | bit-exact determinism: no `HashMap`/`HashSet` in deterministic crates' non-test code |
//! | `panic-perimeter` | panic containment: no `.unwrap()`/`.expect(`/`panic!` in service-facing library code |
//! | `float-eq` | bit-parity discipline: no `==`/`!=` against float literals outside tests |
//!
//! Suppression is explicit and auditable: a
//! `// dosa-lint: allow(<rule>) — <justification>` comment suppresses that
//! rule on its own line and on the next code line, and the justification
//! text is **required** — a bare pragma is itself a violation
//! (`invalid-pragma`).

use crate::lexer::{Token, TokenKind};

/// The named rules. `invalid-pragma` is the meta-rule that fires on
/// malformed or unjustified suppression pragmas; it is deliberately not
/// suppressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.lock()` outside the poisoning-recovery helpers.
    RawMutexLock,
    /// `unsafe` without an immediately preceding `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// `HashMap`/`HashSet` in a deterministic crate's non-test code.
    NondetIteration,
    /// `.unwrap()`/`.expect(`/`panic!` in service-facing library code.
    PanicPerimeter,
    /// `==`/`!=` against a float literal or float constant.
    FloatEq,
    /// A malformed, unknown, or unjustified `dosa-lint:` pragma.
    InvalidPragma,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 6] = [
        Rule::RawMutexLock,
        Rule::UndocumentedUnsafe,
        Rule::NondetIteration,
        Rule::PanicPerimeter,
        Rule::FloatEq,
        Rule::InvalidPragma,
    ];

    /// The rule's kebab-case name as written in pragmas and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RawMutexLock => "raw-mutex-lock",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::NondetIteration => "nondet-iteration",
            Rule::PanicPerimeter => "panic-perimeter",
            Rule::FloatEq => "float-eq",
            Rule::InvalidPragma => "invalid-pragma",
        }
    }

    /// Parse a pragma rule name. `invalid-pragma` is not allowable, so it
    /// does not parse.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "raw-mutex-lock" => Some(Rule::RawMutexLock),
            "undocumented-unsafe" => Some(Rule::UndocumentedUnsafe),
            "nondet-iteration" => Some(Rule::NondetIteration),
            "panic-perimeter" => Some(Rule::PanicPerimeter),
            "float-eq" => Some(Rule::FloatEq),
            _ => None,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description with the expected remedy.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rule families apply to a file, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// The whole file is test/bench/example code (`tests/`, `benches/`,
    /// `examples/` directories).
    pub test_file: bool,
    /// Library code of a crate whose results must be bit-exact
    /// (`search`, `model`, `autodiff`, `cache`): `nondet-iteration`
    /// applies.
    pub deterministic_crate: bool,
    /// Library code of a service-facing crate (`search`, `cache`):
    /// `panic-perimeter` applies.
    pub service_crate: bool,
}

/// Crates whose non-test code must iterate deterministically.
pub const DETERMINISTIC_CRATES: [&str; 4] = ["autodiff", "cache", "model", "search"];

/// Crates whose library code faces the service and must stay panic-free
/// outside documented perimeters.
pub const SERVICE_CRATES: [&str; 2] = ["cache", "search"];

impl FileScope {
    /// Classify a workspace-relative path (forward slashes).
    pub fn from_path(rel: &str) -> FileScope {
        let rel = rel.replace('\\', "/");
        let in_dir =
            |dir: &str| rel.starts_with(&format!("{dir}/")) || rel.contains(&format!("/{dir}/"));
        let test_file = in_dir("tests") || in_dir("benches") || in_dir("examples");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .filter(|_| rel.contains("/src/"));
        let deterministic_crate =
            crate_name.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c)) && !test_file;
        let service_crate = crate_name.is_some_and(|c| SERVICE_CRATES.contains(&c)) && !test_file;
        FileScope {
            test_file,
            deterministic_crate,
            service_crate,
        }
    }
}

/// A parsed `// dosa-lint: allow(<rule>) — <justification>` pragma.
struct Pragma {
    rule: Rule,
    /// The pragma comment's own line; it suppresses `rule` here and on
    /// the next code line.
    line: u32,
}

/// Minimum justification length (after stripping separator punctuation).
/// Short enough to never reject a real sentence, long enough that `— ok`
/// does not count as an audit trail.
const MIN_JUSTIFICATION: usize = 10;

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Unsuppressed violations, in line order.
    pub violations: Vec<Diagnostic>,
    /// Violations silenced by a justified pragma.
    pub suppressed: usize,
}

/// Lint one file's source. `rel_path` decides rule scoping (see
/// [`FileScope`]); pass paths exactly as they appear in the workspace
/// (e.g. `crates/search/src/service.rs`).
pub fn lint_source(rel_path: &str, src: &str) -> FileLint {
    let scope = FileScope::from_path(rel_path);
    let tokens = crate::lexer::lex(src);
    // Code view: indices of non-comment tokens, the stream rules match on.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].kind.is_comment())
        .collect();

    let test_regions = find_test_regions(&tokens, &code);
    let in_test = |line: u32| {
        scope.test_file
            || test_regions
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    };

    let mut raw: Vec<(Rule, u32, String)> = Vec::new();

    raw_mutex_lock(&tokens, &code, &mut raw);
    undocumented_unsafe(&tokens, &mut raw);
    if scope.deterministic_crate {
        nondet_iteration(&tokens, &code, &in_test, &mut raw);
    }
    if scope.service_crate {
        panic_perimeter(&tokens, &code, &in_test, &mut raw);
    }
    float_eq(&tokens, &code, &in_test, &mut raw);

    let (pragmas, mut violations) = collect_pragmas(rel_path, &tokens);
    // A pragma covers its own line and the next line holding code.
    let next_code_line = |after: u32| {
        code.iter()
            .map(|&i| tokens[i].line)
            .filter(|&l| l > after)
            .min()
    };

    let mut suppressed = 0usize;
    for (rule, line, message) in raw {
        let covered = pragmas
            .iter()
            .any(|p| p.rule == rule && (p.line == line || next_code_line(p.line) == Some(line)));
        if covered {
            suppressed += 1;
        } else {
            violations.push(Diagnostic {
                file: rel_path.to_string(),
                line,
                rule,
                message,
            });
        }
    }
    violations.sort_by_key(|d| (d.line, d.rule));
    FileLint {
        violations,
        suppressed,
    }
}

/// Parse every `dosa-lint:` pragma; malformed ones become
/// [`Rule::InvalidPragma`] diagnostics (never suppressible).
fn collect_pragmas(rel_path: &str, tokens: &[Token]) -> (Vec<Pragma>, Vec<Diagnostic>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens {
        let Some(text) = tok.kind.comment_text() else {
            continue;
        };
        // A pragma must START the comment (doc markers `/`/`!` and
        // whitespace aside) — prose that merely mentions dosa-lint, like
        // this sentence or the syntax examples in the docs, is not a
        // pragma attempt.
        let trimmed = text.trim_start_matches(['/', '!', ' ', '\t']);
        if !trimmed.starts_with("dosa-lint") {
            continue;
        }
        let at = text.find("dosa-lint").expect("starts_with implies find");
        let mut fail = |message: String| {
            bad.push(Diagnostic {
                file: rel_path.to_string(),
                line: tok.line,
                rule: Rule::InvalidPragma,
                message,
            });
        };
        let rest = text[at + "dosa-lint".len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            fail("pragma must read `dosa-lint: allow(<rule>) — <justification>`".into());
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            fail("pragma must read `dosa-lint: allow(<rule>) — <justification>`".into());
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            fail("missing `(` after `allow`".into());
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("missing `)` after the rule name".into());
            continue;
        };
        let names = &rest[..close];
        let justification = rest[close + 1..]
            .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ','));
        let mut rules = Vec::new();
        let mut ok = true;
        for name in names.split(',') {
            match Rule::from_name(name.trim()) {
                Some(rule) => rules.push(rule),
                None => {
                    fail(format!(
                        "unknown rule `{}` (known: {})",
                        name.trim(),
                        Rule::ALL
                            .iter()
                            .take(5)
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        if justification.chars().count() < MIN_JUSTIFICATION {
            fail(format!(
                "pragma needs a written justification (≥ {MIN_JUSTIFICATION} chars) after `allow(…)`"
            ));
            continue;
        }
        for rule in rules {
            pragmas.push(Pragma {
                rule,
                line: tok.line,
            });
        }
    }
    (pragmas, bad)
}

/// Line ranges covered by `#[cfg(test)]`- or `#[test]`-attributed items
/// (the braces of the item the attribute precedes). Files under `tests/`
/// etc. are handled by [`FileScope::test_file`] instead.
fn find_test_regions(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let tok = |k: usize| &tokens[code[k]];
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut k = 0usize;
    while k + 2 < code.len() {
        // `#[cfg(test)]` => # [ cfg ( test ) ] ; `#[test]` => # [ test ].
        let is_cfg_test = k + 6 < code.len()
            && tok(k).kind == TokenKind::Punct('#')
            && tok(k + 1).kind == TokenKind::Punct('[')
            && tok(k + 2).kind.is_ident("cfg")
            && tok(k + 3).kind == TokenKind::Punct('(')
            && tok(k + 4).kind.is_ident("test")
            && tok(k + 5).kind == TokenKind::Punct(')')
            && tok(k + 6).kind == TokenKind::Punct(']');
        let is_test_attr = tok(k).kind == TokenKind::Punct('#')
            && tok(k + 1).kind == TokenKind::Punct('[')
            && tok(k + 2).kind.is_ident("test")
            && k + 3 < code.len()
            && tok(k + 3).kind == TokenKind::Punct(']');
        if !(is_cfg_test || is_test_attr) {
            k += 1;
            continue;
        }
        let mut j = k + if is_cfg_test { 7 } else { 4 };
        // Skip any further attributes between the test marker and the item.
        while j + 1 < code.len() && tok(j).kind == TokenKind::Punct('#') {
            let mut depth = 0usize;
            j += 1;
            while j < code.len() {
                match tok(j).kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // The attributed item: everything to its matching closing brace
        // (or nothing, for brace-less items like `mod tests;`).
        while j < code.len()
            && tok(j).kind != TokenKind::Punct('{')
            && tok(j).kind != TokenKind::Punct(';')
        {
            j += 1;
        }
        if j < code.len() && tok(j).kind == TokenKind::Punct('{') {
            let open_line = tok(j).line;
            let mut depth = 0usize;
            while j < code.len() {
                match tok(j).kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let close_line = if j < code.len() {
                tok(j).end_line
            } else {
                u32::MAX
            };
            regions.push((open_line, close_line));
            k = j.max(k + 1);
        } else {
            k = j.max(k + 1);
        }
    }
    regions
}

/// `raw-mutex-lock`: any `.lock(` call. Applies everywhere, tests
/// included — a poisoned test mutex wedges the suite exactly like a
/// production one. The helpers themselves carry pragmas.
fn raw_mutex_lock(tokens: &[Token], code: &[usize], out: &mut Vec<(Rule, u32, String)>) {
    for w in code.windows(3) {
        let [a, b, c] = [&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]];
        if a.kind == TokenKind::Punct('.')
            && b.kind.is_ident("lock")
            && c.kind == TokenKind::Punct('(')
        {
            out.push((
                Rule::RawMutexLock,
                b.line,
                "raw `.lock()` bypasses poisoning recovery; use `fault::lock`/`wait`/\
                 `wait_timeout` (crates/search/src/fault.rs) or the dosa-cache shard-lock helper"
                    .into(),
            ));
        }
    }
}

/// `undocumented-unsafe`: every `unsafe` token must have a `// SAFETY:`
/// comment immediately above it (attribute lines and earlier code on the
/// same line are looked through).
fn undocumented_unsafe(tokens: &[Token], out: &mut Vec<(Rule, u32, String)>) {
    // Lines whose first non-comment token is `#` — attribute lines the
    // backward scan may step over.
    let mut first_code_on_line: std::collections::BTreeMap<u32, char> = Default::default();
    for t in tokens {
        if t.kind.is_comment() {
            continue;
        }
        first_code_on_line.entry(t.line).or_insert(match t.kind {
            TokenKind::Punct(c) => c,
            _ => '\0',
        });
    }
    let attr_line = |l: u32| first_code_on_line.get(&l) == Some(&'#');

    for i in 0..tokens.len() {
        if !tokens[i].kind.is_ident("unsafe") {
            continue;
        }
        let line = tokens[i].line;
        let mut documented = false;
        for j in (0..i).rev() {
            let t = &tokens[j];
            if let Some(text) = t.kind.comment_text() {
                if text.contains("SAFETY:") {
                    documented = true;
                    break;
                }
                continue; // scan up through a comment stack
            }
            if t.end_line == line || attr_line(t.line) {
                continue; // earlier code on the same line, or an attribute
            }
            break; // real code on an earlier line: the comment isn't adjacent
        }
        if !documented {
            out.push((
                Rule::UndocumentedUnsafe,
                line,
                "`unsafe` without an immediately preceding `// SAFETY:` comment stating the \
                 invariant that makes it sound"
                    .into(),
            ));
        }
    }
}

/// `nondet-iteration`: `HashMap`/`HashSet` in deterministic crates'
/// non-test code — iteration order varies run to run (and by hasher
/// seed), which can leak into result ordering and tie-breaking.
fn nondet_iteration(
    tokens: &[Token],
    code: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<(Rule, u32, String)>,
) {
    for &i in code {
        let t = &tokens[i];
        let name = match &t.kind {
            TokenKind::Ident(n) if n == "HashMap" || n == "HashSet" => n,
            _ => continue,
        };
        if in_test(t.line) {
            continue;
        }
        let replacement = if name == "HashMap" {
            "BTreeMap"
        } else {
            "BTreeSet"
        };
        out.push((
            Rule::NondetIteration,
            t.line,
            format!(
                "`{name}` iteration order is nondeterministic; deterministic crates must use \
                 `{replacement}` in non-test code"
            ),
        ));
    }
}

/// `panic-perimeter`: `.unwrap()`, `.expect(`, and `panic!` in
/// service-facing library code. Jobs must fail typed (`JobError`), never
/// by unwinding through the service.
fn panic_perimeter(
    tokens: &[Token],
    code: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<(Rule, u32, String)>,
) {
    for w in code.windows(3) {
        let [a, b, c] = [&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]];
        if in_test(b.line) {
            continue;
        }
        let method_call = a.kind == TokenKind::Punct('.') && c.kind == TokenKind::Punct('(');
        let what = match &b.kind {
            TokenKind::Ident(n) if method_call && (n == "unwrap" || n == "expect") => {
                format!(".{n}()")
            }
            _ => {
                if a.kind.is_ident("panic") && b.kind == TokenKind::Punct('!') && !in_test(a.line) {
                    "panic!".to_string()
                } else {
                    continue;
                }
            }
        };
        let line = if what == "panic!" { a.line } else { b.line };
        out.push((
            Rule::PanicPerimeter,
            line,
            format!(
                "`{what}` in service-facing library code can unwind through the service; \
                 return a typed error or justify the perimeter with a pragma"
            ),
        ));
    }
}

const FLOAT_CONSTS: [&str; 3] = ["NAN", "INFINITY", "NEG_INFINITY"];

fn is_float_const(kind: &TokenKind) -> bool {
    matches!(kind, TokenKind::Ident(n) if FLOAT_CONSTS.contains(&n.as_str()))
}

/// `float-eq`: `==`/`!=` where one operand is literally a float (or a
/// named float constant). Exact float comparison is only sound in
/// bit-parity helpers, which live in test code; library code must compare
/// bits explicitly or use tolerances.
fn float_eq(
    tokens: &[Token],
    code: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<(Rule, u32, String)>,
) {
    for k in 0..code.len() {
        let op = &tokens[code[k]];
        if op.kind != TokenKind::EqEq && op.kind != TokenKind::NotEq {
            continue;
        }
        if in_test(op.line) {
            continue;
        }
        let at = |d: isize| {
            let idx = k as isize + d;
            (idx >= 0 && (idx as usize) < code.len()).then(|| &tokens[code[idx as usize]].kind)
        };
        let prev_hit =
            matches!(at(-1), Some(TokenKind::Float)) || at(-1).is_some_and(is_float_const);
        let next_hit = matches!(at(1), Some(TokenKind::Float))
            || at(1).is_some_and(is_float_const)
            || (matches!(at(1), Some(TokenKind::Punct('-')))
                && matches!(at(2), Some(TokenKind::Float)))
            || (matches!(at(1), Some(TokenKind::Ident(n)) if n == "f64" || n == "f32")
                && matches!(at(2), Some(TokenKind::Punct(':')))
                && matches!(at(3), Some(TokenKind::Punct(':')))
                && at(4).is_some_and(is_float_const));
        if prev_hit || next_hit {
            let op_name = if op.kind == TokenKind::EqEq {
                "=="
            } else {
                "!="
            };
            out.push((
                Rule::FloatEq,
                op.line,
                format!(
                    "`{op_name}` against a float literal outside bit-parity test helpers; \
                     compare bits/tolerances explicitly or justify with a pragma"
                ),
            ));
        }
    }
}
