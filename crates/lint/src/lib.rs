//! # dosa-lint
//!
//! The workspace invariant checker: a hand-rolled, comment/string/raw-
//! string-aware Rust lexer ([`lexer`]) feeding a rule engine ([`rules`])
//! that walks every workspace `.rs` file and mechanically enforces the
//! project's load-bearing conventions — bit-exact determinism, service-
//! wide panic containment, and the unsafe audit trail. The workspace is
//! offline-vendored, so there is no `syn`; the lexer is the whole
//! front-end, and every rule is a short token-sequence pattern.
//!
//! Run it as `repro lint` (full report), `repro --smoke lint` (the CI
//! gate), or the standalone `dosa-lint` binary. The tool exits nonzero on
//! any unsuppressed violation; suppressions are explicit, per-line, and
//! auditable:
//!
//! ```text
//! // dosa-lint: allow(panic-perimeter) — validated at submit(); index is in bounds
//! let cfg = self.configs.get(i).unwrap();
//! ```
//!
//! A pragma without a written justification is itself a violation
//! (`invalid-pragma`). See `ARCHITECTURE.md`, "Static analysis &
//! invariant enforcement", for the rule table and how each rule maps to a
//! determinism or containment invariant.
//!
//! `vendor/` is deliberately **not** walked: the vendored stand-ins are
//! third-party API shims kept byte-stable (they use raw locks and hash
//! maps internally by design) and are covered by the `cargo clippy`
//! allowlist instead.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{Diagnostic, FileLint, FileScope, Rule};

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never walked: generated output, third-party code, and VCS
/// internals.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "output_dir", "node_modules"];

/// The outcome of linting a whole workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files checked.
    pub files: usize,
    /// Unsuppressed violations across all files, in (file, line) order.
    pub violations: Vec<Diagnostic>,
    /// Violations silenced by justified pragmas, across all files.
    pub suppressed: usize,
}

impl Report {
    /// Whether the tree passes (zero unsuppressed violations).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule violation counts, in [`Rule::ALL`] order (zero-count rules
    /// included, so the summary always shows the full rule set).
    pub fn counts(&self) -> Vec<(Rule, usize)> {
        let mut by_rule: BTreeMap<Rule, usize> = Rule::ALL.iter().map(|&r| (r, 0)).collect();
        for d in &self.violations {
            *by_rule.entry(d.rule).or_default() += 1;
        }
        Rule::ALL.iter().map(|&r| (r, by_rule[&r])).collect()
    }

    /// Render the full report: every diagnostic, then the per-rule
    /// summary table and the verdict line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for d in &self.violations {
            let _ = writeln!(out, "{d}");
        }
        if !self.violations.is_empty() {
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "rule                 violations");
        for (rule, n) in self.counts() {
            let _ = writeln!(out, "{:<20} {n}", rule.name());
        }
        let _ = writeln!(
            out,
            "\n{} file(s) checked, {} violation(s), {} suppressed by pragma — {}",
            self.files,
            self.violations.len(),
            self.suppressed,
            if self.clean() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Ascend from `start` to the workspace root: the nearest ancestor whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Every lintable `.rs` file under `root`, as workspace-relative paths
/// with forward slashes, sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint every workspace `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in workspace_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let file = rules::lint_source(&rel, &src);
        report.files += 1;
        report.suppressed += file.suppressed;
        report.violations.extend(file.violations);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        let s = FileScope::from_path("crates/search/src/service.rs");
        assert!(s.deterministic_crate && s.service_crate && !s.test_file);
        let s = FileScope::from_path("crates/model/src/edp.rs");
        assert!(s.deterministic_crate && !s.service_crate);
        let s = FileScope::from_path("crates/search/tests/service.rs");
        assert!(s.test_file && !s.deterministic_crate && !s.service_crate);
        let s = FileScope::from_path("crates/bench/src/main.rs");
        assert!(!s.deterministic_crate && !s.service_crate && !s.test_file);
        let s = FileScope::from_path("examples/batched_service.rs");
        assert!(s.test_file);
        let s = FileScope::from_path("src/lib.rs");
        assert!(!s.deterministic_crate && !s.test_file);
    }

    #[test]
    fn report_renders_counts_and_verdict() {
        let mut r = Report {
            files: 3,
            ..Default::default()
        };
        assert!(r.clean());
        assert!(r.render().contains("PASS"));
        r.violations.push(Diagnostic {
            file: "x.rs".into(),
            line: 1,
            rule: Rule::FloatEq,
            message: "m".into(),
        });
        assert!(!r.clean());
        let rendered = r.render();
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("float-eq"));
        assert!(rendered.contains("x.rs:1:"));
    }
}
