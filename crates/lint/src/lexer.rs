//! A hand-rolled Rust lexer, sound over exactly the constructs that can
//! hide lintable text: line comments, (nested) block comments, string
//! literals with escapes, raw and byte strings with any hash count, char
//! literals, and lifetimes.
//!
//! The workspace is offline-vendored, so parsing with `syn` is not an
//! option; this lexer deliberately produces a *flat token stream* rather
//! than a syntax tree. That is enough for the rule engine because every
//! project invariant the rules enforce is recognizable from short token
//! sequences (`.lock(`, `unsafe`, `HashMap`, `== 0.0`, ...) — the hard
//! part is never *matching* those sequences but *not* matching them when
//! they appear inside a comment, a string, a raw string, or a char
//! literal. Everything that is not code becomes a [`TokenKind::LineComment`] /
//! [`TokenKind::BlockComment`] token (kept, with text, because the pragma
//! and `// SAFETY:` rules read them) or an opaque [`TokenKind::Str`] /
//! [`TokenKind::Char`] literal token.

/// One lexed token. `line` is the 1-based line of the token's first
/// character; `end_line` the line of its last (they differ only for block
/// comments and multi-line string literals).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed, with text where a rule needs it.
    pub kind: TokenKind,
    /// 1-based start line.
    pub line: u32,
    /// 1-based end line (== `line` for single-line tokens).
    pub end_line: u32,
}

/// Token classification. Only comments and identifiers carry their text;
/// literal payloads are deliberately opaque so no rule can ever match
/// inside them.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `lock`, ...).
    Ident(String),
    /// A lifetime such as `'a` (no closing quote — distinguished from
    /// char literals by lookahead).
    Lifetime,
    /// Integer literal (including hex/octal/binary forms).
    Int,
    /// Float literal (`1.0`, `1.`, `2e-3`, `1f64`, ...).
    Float,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\u{7B}'`, `b'\''`.
    Char,
    /// `// …` comment (text excludes the leading slashes). Doc comments
    /// (`///`, `//!`) lex as line comments too.
    LineComment(String),
    /// `/* … */` comment, nesting-aware (text excludes the delimiters).
    BlockComment(String),
    /// A single punctuation character.
    Punct(char),
    /// The `==` operator.
    EqEq,
    /// The `!=` operator.
    NotEq,
}

impl TokenKind {
    /// Whether this token is a (line or block) comment.
    pub fn is_comment(&self) -> bool {
        matches!(self, TokenKind::LineComment(_) | TokenKind::BlockComment(_))
    }

    /// The comment text, if this token is a comment.
    pub fn comment_text(&self) -> Option<&str> {
        match self {
            TokenKind::LineComment(t) | TokenKind::BlockComment(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, TokenKind::Ident(t) if t == name)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a flat token stream. Never fails: unterminated literals
/// and comments simply run to end of input (the tool lints source that
/// `rustc` already accepted, so the recovery path only matters for
/// robustness on fixtures).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek() {
        let start_line = cur.line;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' => match cur.peek_at(1) {
                Some(b'/') => lex_line_comment(&mut cur),
                Some(b'*') => lex_block_comment(&mut cur),
                _ => {
                    cur.bump();
                    TokenKind::Punct('/')
                }
            },
            b'"' => lex_string(&mut cur),
            b'\'' => lex_char_or_lifetime(&mut cur),
            b'r' => lex_r(&mut cur),
            b'b' => lex_b(&mut cur),
            b'=' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Punct('=')
                }
            }
            b'!' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Punct('!')
                }
            }
            b if b.is_ascii_digit() => lex_number(&mut cur),
            b if is_ident_start(b) => lex_ident(&mut cur),
            _ => {
                cur.bump();
                TokenKind::Punct(b as char)
            }
        };
        out.push(Token {
            kind,
            line: start_line,
            end_line: cur.line,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // /
    cur.bump(); // /
    let start = cur.pos;
    while let Some(b) = cur.peek() {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::LineComment(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned())
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // /
    cur.bump(); // *
    let start = cur.pos;
    let mut depth = 1usize;
    while let Some(b) = cur.peek() {
        if b == b'/' && cur.peek_at(1) == Some(b'*') {
            depth += 1;
            cur.bump();
            cur.bump();
        } else if b == b'*' && cur.peek_at(1) == Some(b'/') {
            depth -= 1;
            let end = cur.pos;
            cur.bump();
            cur.bump();
            if depth == 0 {
                return TokenKind::BlockComment(
                    String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
                );
            }
        } else {
            cur.bump();
        }
    }
    // Unterminated: everything to EOF is comment.
    TokenKind::BlockComment(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned())
}

/// A plain (escaped) string body, after the opening `"` has been bumped by
/// the caller... actually bumps the opening quote itself.
fn lex_string(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // "
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump(); // the escaped char, whatever it is
            }
            b'"' => break,
            _ => {}
        }
    }
    TokenKind::Str
}

/// Raw string body starting at the first `#` or `"` (after `r` / `br`):
/// counts hashes, then scans for `"` followed by the same hash count.
/// Returns `None` if this is not actually a raw string opener (e.g. a raw
/// identifier `r#fn`).
fn lex_raw_string_body(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let mut hashes = 0usize;
    while cur.peek_at(hashes) == Some(b'#') {
        hashes += 1;
    }
    if cur.peek_at(hashes) != Some(b'"') {
        return None;
    }
    for _ in 0..=hashes {
        cur.bump(); // the hashes and the opening quote
    }
    while let Some(b) = cur.bump() {
        if b == b'"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek() == Some(b'#') {
                cur.bump();
                matched += 1;
            }
            if matched == hashes {
                return Some(TokenKind::Str);
            }
        }
    }
    Some(TokenKind::Str) // unterminated: runs to EOF
}

fn lex_r(cur: &mut Cursor<'_>) -> TokenKind {
    // `r"…"` / `r#"…"#` are raw strings; `r#ident` is a raw identifier;
    // bare `r…` is an ordinary identifier.
    let save = (cur.pos, cur.line);
    cur.bump(); // r
    if let Some(kind) = lex_raw_string_body(cur) {
        return kind;
    }
    if cur.peek() == Some(b'#') && cur.peek_at(1).is_some_and(is_ident_start) {
        cur.bump(); // # of the raw identifier
        return lex_ident(cur);
    }
    (cur.pos, cur.line) = save;
    lex_ident(cur)
}

fn lex_b(cur: &mut Cursor<'_>) -> TokenKind {
    // `b"…"`, `br#"…"#`, `b'…'` are byte literals; bare `b…` is an ident.
    match (cur.peek_at(1), cur.peek_at(2)) {
        (Some(b'"'), _) => {
            cur.bump(); // b
            lex_string(cur)
        }
        (Some(b'\''), _) => {
            cur.bump(); // b
            lex_byte_char(cur)
        }
        (Some(b'r'), Some(b'"' | b'#')) => {
            let save = (cur.pos, cur.line);
            cur.bump(); // b
            cur.bump(); // r
            match lex_raw_string_body(cur) {
                Some(kind) => kind,
                None => {
                    (cur.pos, cur.line) = save;
                    lex_ident(cur)
                }
            }
        }
        _ => lex_ident(cur),
    }
}

/// A byte-char literal `b'…'`; the `b` has been consumed, `cur` sits on
/// the quote. Unlike `'`, this is never a lifetime.
fn lex_byte_char(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
    TokenKind::Char
}

fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    // Disambiguation: `'` then an escape is always a char literal; `'`
    // then an ident char is a lifetime *unless* the char after it closes
    // the quote (`'a'`). Anything else (`'('`, `'"'`, `'0'`…) is a char.
    match (cur.peek_at(1), cur.peek_at(2)) {
        (Some(c), Some(b'\'')) if c != b'\\' => {
            cur.bump(); // '
            cur.bump(); // the char
            cur.bump(); // '
            TokenKind::Char
        }
        (Some(c), _) if is_ident_start(c) => {
            cur.bump(); // '
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokenKind::Lifetime
        }
        _ => lex_byte_char(cur), // escape or punct char: scan to closing quote
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> TokenKind {
    let start = cur.pos;
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::Ident(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned())
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        )
    {
        // Radix-prefixed integers never contain a decimal point and their
        // `e`/`E` digits are not exponents.
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|b| b.is_ascii_hexdigit() || b == b'_')
        {
            cur.bump();
        }
    } else {
        while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
        // A decimal point only makes this a float when it is NOT a range
        // (`1..2`), a method call (`1.max(2)`), or a field access.
        if cur.peek() == Some(b'.')
            && !matches!(cur.peek_at(1), Some(b'.'))
            && !cur.peek_at(1).is_some_and(is_ident_start)
        {
            float = true;
            cur.bump();
            while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                cur.bump();
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(cur.peek_at(1), Some(b'+' | b'-')));
            if cur.peek_at(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                cur.bump(); // e
                for _ in 0..sign {
                    cur.bump();
                }
                while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    cur.bump();
                }
            }
        }
    }
    // Type suffix (`u32`, `f64`, …) — an `f` suffix forces float.
    if cur.peek().is_some_and(is_ident_start) {
        if cur.peek() == Some(b'f') {
            float = true;
        }
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_and_code_separate() {
        let toks = kinds("let x = 1; // trailing .lock()\n/* block unsafe */ y");
        assert!(toks.iter().any(|t| t.is_ident("x")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, TokenKind::LineComment(c) if c.contains(".lock()"))));
        assert!(toks
            .iter()
            .any(|t| matches!(t, TokenKind::BlockComment(c) if c.contains("unsafe"))));
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* nested unsafe */ still comment */ real_code");
        assert_eq!(
            toks.iter().filter(|t| t.is_comment()).count(),
            1,
            "one nested block comment"
        );
        assert!(toks.iter().any(|t| t.is_ident("real_code")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn strings_hide_everything() {
        let toks = kinds(r#"let s = "unsafe .lock() // not a comment */ HashMap"; t"#);
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("t")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r##\"quote \" and \"# still inside unsafe\"##; after";
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("fn r#unsafe() {}");
        // The raw identifier lexes as the ident `unsafe` — rules must use
        // surrounding context; here we only assert it is not a string.
        assert!(!toks.iter().any(|t| matches!(t, TokenKind::Str)));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"unsafe"; let c = b'\''; let d = br#"lock"#; x"##);
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Char).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("x")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let z = 'z'; }");
        assert_eq!(
            toks.iter().filter(|t| **t == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Char).count(), 3);
    }

    #[test]
    fn char_literal_with_quote_does_not_derail() {
        // A '"' char must not open a string: the following "unsafe" text
        // is a real string literal, and `after` is real code.
        let toks = kinds(r#"let q = '"'; let s = "unsafe"; after"#);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn numbers_classify() {
        assert_eq!(kinds("1"), vec![TokenKind::Int]);
        assert_eq!(kinds("1.0"), vec![TokenKind::Float]);
        assert_eq!(kinds("1."), vec![TokenKind::Float]);
        assert_eq!(kinds("1e-3"), vec![TokenKind::Float]);
        assert_eq!(kinds("2f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("0x1E"), vec![TokenKind::Int]);
        assert_eq!(kinds("1_000"), vec![TokenKind::Int]);
        // Ranges and method calls on ints stay ints.
        let toks = kinds("1..2");
        assert_eq!(toks[0], TokenKind::Int);
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], TokenKind::Int);
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn operators() {
        assert_eq!(kinds("=="), vec![TokenKind::EqEq]);
        assert_eq!(kinds("!="), vec![TokenKind::NotEq]);
        assert_eq!(
            kinds("<="),
            vec![TokenKind::Punct('<'), TokenKind::Punct('=')]
        );
        assert_eq!(
            kinds("=>"),
            vec![TokenKind::Punct('='), TokenKind::Punct('>')]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n/* c\nd */\ne");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[2].end_line, 4);
        assert_eq!(toks[3].line, 5);
    }
}
