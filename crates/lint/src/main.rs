//! Standalone entry point: `dosa-lint [ROOT]`.
//!
//! With no argument, ascends from the current directory to the enclosing
//! Cargo workspace root. Prints every unsuppressed violation plus the
//! per-rule summary and exits nonzero on any violation — the same engine
//! `repro lint` and the `repro --smoke lint` CI gate drive.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) if arg == "--help" || arg == "-h" => {
            eprintln!("usage: dosa-lint [WORKSPACE_ROOT]");
            return ExitCode::SUCCESS;
        }
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().expect("cannot read current directory");
            match dosa_lint::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("dosa-lint: no enclosing Cargo workspace found");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    match dosa_lint::lint_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dosa-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
