//! The DOSA differentiable performance model (§4): closed-form capacity,
//! traffic, latency and energy expressions on the autodiff tape.
//!
//! The structure mirrors `dosa_timeloop::traffic` exactly — same tile,
//! refetch, broadcast and elision semantics — with two deliberate
//! differences (§4.6): all arithmetic is smooth (no integer ceilings) and
//! DRAM energy is counted per element rather than per block. Evaluated at an
//! integer mapping, latency matches the reference bit-for-bit and energy
//! differs only by the DRAM block ceiling, reproducing Figure 4.
//!
//! Everything here is generic over a [`Ctx`]: instantiate with `&Tape` for
//! gradients, [`Values`](dosa_autodiff::Values) for a tape-free forward
//! evaluation, or `&LegacyTape` for the pre-rewrite parity baseline. The
//! model knows which factors are exactly one (the *unit* mask) and skips
//! recording those multiplications — `x * 1` is `x` down to the last bit,
//! and unit factors are always constants, so no gradient is lost.

use crate::relaxed::RelaxedMapping;
use dosa_accel::{
    level, HardwareConfig, Hierarchy, EPA_ACC_BASE, EPA_ACC_SLOPE, EPA_DRAM, EPA_MAC,
    EPA_REGISTERS, EPA_SPAD_BASE, EPA_SPAD_SLOPE, MAX_PE_SIDE, NUM_LEVELS,
};
use dosa_autodiff::{max_of, Ctx, Scalar, SegmentPlan, Tape, Var};
use dosa_timeloop::{LoopOrder, Mapping};
use dosa_workload::{Dim, DimSet, Problem, Tensor, NUM_DIMS};

/// Threshold above which a continuous loop bound is considered non-unit for
/// the refetch mask (bound-1 loops are transparent).
const UNIT_EPS: f64 = 1.0 + 1e-9;

/// A product accumulator that starts empty instead of at a recorded `1.0`
/// constant: unit factors are skipped entirely, and an all-unit product
/// resolves to the shared unit node via [`UnitProd::finish`].
#[derive(Clone, Copy)]
struct UnitProd<N> {
    acc: Option<N>,
}

impl<N: Scalar> UnitProd<N> {
    #[inline]
    fn new() -> UnitProd<N> {
        UnitProd { acc: None }
    }

    #[inline]
    fn mul(&mut self, f: N) {
        self.acc = Some(match self.acc {
            Some(a) => a * f,
            None => f,
        });
    }

    #[inline]
    fn finish(self, unit: N) -> N {
        self.acc.unwrap_or(unit)
    }
}

/// Differentiable tiling factors for one layer, including the inferred
/// DRAM-level factors (§5.3.3).
#[derive(Clone, Copy)]
pub struct FactorVars<N> {
    /// Temporal factor variables per level per dim (level 3 inferred).
    pub temporal: [[N; NUM_DIMS]; NUM_LEVELS],
    /// Spatial factor variables per level per dim.
    pub spatial: [[N; NUM_DIMS]; NUM_LEVELS],
    /// Loop orders (fixed during a gradient step).
    pub orders: [LoopOrder; NUM_LEVELS],
    /// The shared constant-one node unit entries alias.
    unit: N,
    /// Bit `d` set ⇒ `temporal[lvl][d]` is the unit constant.
    temporal_unit: [u8; NUM_LEVELS],
    /// Bit `d` set ⇒ `spatial[lvl][d]` is the unit constant.
    spatial_unit: [u8; NUM_LEVELS],
}

impl<N: Scalar> FactorVars<N> {
    /// Build factor variables from a relaxed mapping, appending the leaf
    /// variables (the raw log-space parameters, in
    /// [`RelaxedMapping::params`] order) to `leaves_out` — no allocation
    /// when the caller reuses its buffer across steps.
    pub fn from_relaxed_in<C: Ctx<N = N>>(
        cx: C,
        problem: &Problem,
        relaxed: &RelaxedMapping,
        leaves_out: &mut Vec<N>,
    ) -> FactorVars<N> {
        let base = leaves_out.len();
        for row in &relaxed.log_temporal {
            for &x in row {
                leaves_out.push(cx.leaf(x));
            }
        }
        leaves_out.push(cx.leaf(relaxed.log_spatial_c));
        leaves_out.push(cx.leaf(relaxed.log_spatial_k));
        let leaves = &leaves_out[base..];
        let one = cx.constant(1.0);
        let mut temporal = [[one; NUM_DIMS]; NUM_LEVELS];
        let mut spatial = [[one; NUM_DIMS]; NUM_LEVELS];
        for lvl in 0..3 {
            for d in Dim::ALL {
                temporal[lvl][d.index()] = leaves[lvl * NUM_DIMS + d.index()].exp();
            }
        }
        spatial[level::ACCUMULATOR][Dim::C.index()] = leaves[3 * NUM_DIMS].exp();
        spatial[level::SCRATCHPAD][Dim::K.index()] = leaves[3 * NUM_DIMS + 1].exp();
        // Every temporal factor is a live exp (or the inferred DRAM ratio
        // below); among spatial factors only ACC/C and SPAD/K are live.
        let all: u8 = if C::UNIT_SKIP {
            (1u8 << NUM_DIMS) - 1
        } else {
            0
        };
        let mut spatial_unit = [all; NUM_LEVELS];
        spatial_unit[level::ACCUMULATOR] &= !(1 << Dim::C.index());
        spatial_unit[level::SCRATCHPAD] &= !(1 << Dim::K.index());
        let fv_partial = FactorVars {
            temporal,
            spatial,
            orders: [LoopOrder::canonical(relaxed.orders[0]); NUM_LEVELS],
            unit: one,
            temporal_unit: [0; NUM_LEVELS],
            spatial_unit,
        };
        // Inferred DRAM factors: problem size over the product of inner
        // factors. Gradients flow through the division.
        let mut temporal = fv_partial.temporal;
        for d in Dim::ALL {
            let mut inner = UnitProd::new();
            for lvl in 0..3 {
                fv_partial.mul_temporal(&mut inner, lvl, d);
            }
            for lvl in 0..NUM_LEVELS {
                fv_partial.mul_spatial(&mut inner, lvl, d);
            }
            temporal[level::DRAM][d.index()] =
                cx.constant(problem.size(d) as f64) / inner.finish(one);
        }
        let orders = core::array::from_fn(|i| LoopOrder::canonical(relaxed.orders[i]));
        FactorVars {
            temporal,
            orders,
            ..fv_partial
        }
    }

    /// Build constant factor variables from an integer mapping (used for
    /// model-correlation studies; no useful gradients). Factors that are
    /// exactly 1 share a single unit node instead of recording their own
    /// constants.
    pub fn from_mapping<C: Ctx<N = N>>(cx: C, mapping: &Mapping) -> FactorVars<N> {
        let one = cx.constant(1.0);
        let mut temporal = [[one; NUM_DIMS]; NUM_LEVELS];
        let mut spatial = [[one; NUM_DIMS]; NUM_LEVELS];
        let mut temporal_unit = [0u8; NUM_LEVELS];
        let mut spatial_unit = [0u8; NUM_LEVELS];
        for i in 0..NUM_LEVELS {
            for d in 0..NUM_DIMS {
                let t = mapping.temporal[i][d] as f64;
                // dosa-lint: allow(float-eq) — `t` is an integer tile factor
                // cast to f64; 1.0 is exactly representable, so `== 1.0` is an
                // exact unit-factor test, not a tolerance question.
                if t == 1.0 && C::UNIT_SKIP {
                    temporal_unit[i] |= 1 << d;
                } else {
                    temporal[i][d] = cx.constant(t);
                }
                let s = mapping.spatial[i][d] as f64;
                // dosa-lint: allow(float-eq) — same as the temporal factor
                // above: integer-valued f64, exact unit test.
                if s == 1.0 && C::UNIT_SKIP {
                    spatial_unit[i] |= 1 << d;
                } else {
                    spatial[i][d] = cx.constant(s);
                }
            }
        }
        FactorVars {
            temporal,
            spatial,
            orders: mapping.orders,
            unit: one,
            temporal_unit,
            spatial_unit,
        }
    }

    fn temporal(&self, lvl: usize, d: Dim) -> N {
        self.temporal[lvl][d.index()]
    }

    fn spatial(&self, lvl: usize, d: Dim) -> N {
        self.spatial[lvl][d.index()]
    }

    #[inline]
    fn temporal_is_unit(&self, lvl: usize, d: Dim) -> bool {
        self.temporal_unit[lvl] & (1 << d.index()) != 0
    }

    #[inline]
    fn spatial_is_unit(&self, lvl: usize, d: Dim) -> bool {
        self.spatial_unit[lvl] & (1 << d.index()) != 0
    }

    /// Multiply the temporal factor at `(lvl, d)` into `p` unless it is a
    /// unit constant.
    #[inline]
    fn mul_temporal(&self, p: &mut UnitProd<N>, lvl: usize, d: Dim) {
        if !self.temporal_is_unit(lvl, d) {
            p.mul(self.temporal(lvl, d));
        }
    }

    /// Multiply the spatial factor at `(lvl, d)` into `p` unless it is a
    /// unit constant.
    #[inline]
    fn mul_spatial(&self, p: &mut UnitProd<N>, lvl: usize, d: Dim) {
        if !self.spatial_is_unit(lvl, d) {
            p.mul(self.spatial(lvl, d));
        }
    }

    /// Product of all spatial factors (utilized PEs, Eq. 12).
    pub fn spatial_product<C: Ctx<N = N>>(&self, _cx: C) -> N {
        let mut p = UnitProd::new();
        for lvl in 0..NUM_LEVELS {
            for d in Dim::ALL {
                self.mul_spatial(&mut p, lvl, d);
            }
        }
        p.finish(self.unit)
    }

    /// The invalid-mapping penalty (Eq. 18): `Σ max(1 − f, 0)` over every
    /// factor, including the inferred DRAM factors. Unit factors contribute
    /// an exact zero and are skipped.
    pub fn penalty<C: Ctx<N = N>>(&self, cx: C) -> N {
        let mut pen = cx.constant(0.0);
        for lvl in 0..NUM_LEVELS {
            for d in Dim::ALL {
                if !self.temporal_is_unit(lvl, d) {
                    pen = pen + self.temporal(lvl, d).hinge_below(1.0);
                }
                if !self.spatial_is_unit(lvl, d) {
                    pen = pen + self.spatial(lvl, d).hinge_below(1.0);
                }
            }
        }
        pen
    }
}

impl<'t> FactorVars<Var<'t>> {
    /// Tape-allocating convenience form of [`FactorVars::from_relaxed_in`],
    /// returning the leaf variables in a fresh vector.
    pub fn from_relaxed(
        tape: &'t Tape,
        problem: &Problem,
        relaxed: &RelaxedMapping,
    ) -> (FactorVars<Var<'t>>, Vec<Var<'t>>) {
        let mut leaves = Vec::new();
        let fv = FactorVars::from_relaxed_in(tape, problem, relaxed, &mut leaves);
        (fv, leaves)
    }
}

/// Differentiable hardware parameters (the minimal parameterization of
/// Figure 3, or constants when evaluating a fixed design).
pub struct HwVars<N> {
    /// PE array side (`√C_PE`).
    pub pe_side: N,
    /// Accumulator capacity in words.
    pub acc_words: N,
    /// Scratchpad capacity in words.
    pub spad_words: N,
}

impl<N: Scalar> HwVars<N> {
    /// Constants from a concrete configuration.
    pub fn fixed<C: Ctx<N = N>>(cx: C, hw: &HardwareConfig) -> HwVars<N> {
        HwVars {
            pe_side: cx.constant(hw.pe_side() as f64),
            acc_words: cx.constant(hw.acc_words() as f64),
            spad_words: cx.constant(hw.spad_words() as f64),
        }
    }

    /// Derive the minimal hardware supporting all `layers` (Eqs. 1–5 plus
    /// the cross-layer max of Figure 3), on the tape so gradients flow from
    /// hardware-dependent energy and bandwidth back into tiling factors.
    pub fn derive<C: Ctx<N = N>>(cx: C, layers: &[(&Problem, &FactorVars<N>)]) -> HwVars<N> {
        Self::derive_with_pe(cx, layers, None)
    }

    /// Like [`HwVars::derive`] but with the PE side pinned (the Fig. 12
    /// setting: 16×16 PEs fixed, buffers and mappings searched).
    pub fn derive_with_pe<C: Ctx<N = N>>(
        cx: C,
        layers: &[(&Problem, &FactorVars<N>)],
        fixed_pe_side: Option<u64>,
    ) -> HwVars<N> {
        Self::derive_with_pe_in(cx, layers, fixed_pe_side, &mut SegmentPlan::disabled())
    }

    /// Segment-aware form of [`HwVars::derive_with_pe`]: each layer's
    /// capacity terms are recorded as one chunk of a parallel group on
    /// `plan` (they only interact through the cross-layer max, which is
    /// recorded serially after the group).
    pub fn derive_with_pe_in<C: Ctx<N = N>>(
        cx: C,
        layers: &[(&Problem, &FactorVars<N>)],
        fixed_pe_side: Option<u64>,
        plan: &mut SegmentPlan,
    ) -> HwVars<N> {
        let mut sides = Vec::new();
        let mut accs = Vec::new();
        let mut spads = Vec::new();
        plan.serial_to(cx.mark());
        plan.begin_group();
        for (p, fv) in layers {
            // The unit stand-in goes first so max-fold tie routing matches
            // a full 28-entry scan (unit-valued entries precede the live
            // ACC/C and SPAD/K factors in level-major order).
            sides.push(fv.unit);
            for lvl in 0..NUM_LEVELS {
                for d in Dim::ALL {
                    if !fv.spatial_is_unit(lvl, d) {
                        sides.push(fv.spatial(lvl, d));
                    }
                }
            }
            accs.push(tile_words_var(
                cx,
                p,
                fv,
                level::ACCUMULATOR,
                Tensor::Outputs,
            ));
            let w = tile_words_var(cx, p, fv, level::SCRATCHPAD, Tensor::Weights);
            let i = tile_words_var(cx, p, fv, level::SCRATCHPAD, Tensor::Inputs);
            spads.push(w + i);
            plan.chunk_to(cx.mark());
        }
        plan.end_group();
        let pe_side = match fixed_pe_side {
            Some(s) => cx.constant(s as f64),
            None => {
                let side = max_of(cx, &sides);
                // Cap at the architectural maximum (§6.1).
                side.min(cx.constant(MAX_PE_SIDE as f64))
            }
        };
        let hw = HwVars {
            pe_side,
            acc_words: max_of(cx, &accs),
            spad_words: max_of(cx, &spads),
        };
        plan.serial_to(cx.mark());
        hw
    }

    /// Round the current values into a concrete [`HardwareConfig`]
    /// (buffers up to whole KB, §6.1).
    pub fn to_config(&self) -> HardwareConfig {
        let side = (self.pe_side.value().round() as u64).clamp(1, MAX_PE_SIDE);
        let acc_kb = (self.acc_words.value() * 4.0 / 1024.0).ceil().max(1.0);
        let spad_kb = (self.spad_words.value() / 1024.0).ceil().max(1.0);
        HardwareConfig::new(side, acc_kb, spad_kb).expect("derived hardware is valid")
    }
}

/// Differentiable tile footprint of tensor `t` at level `i` (Eqs. 2–4):
/// temporal factors below `i` times all spatial factors of relevant dims,
/// with the stride halo for inputs.
pub fn tile_words_var<C: Ctx>(
    cx: C,
    problem: &Problem,
    fv: &FactorVars<C::N>,
    i: usize,
    t: Tensor,
) -> C::N {
    let _ = cx;
    let inner = |d: Dim| -> C::N {
        let mut f = UnitProd::new();
        for j in 0..i {
            fv.mul_temporal(&mut f, j, d);
        }
        for j in 0..NUM_LEVELS {
            fv.mul_spatial(&mut f, j, d);
        }
        f.finish(fv.unit)
    };
    match t {
        Tensor::Weights => inner(Dim::R) * inner(Dim::S) * inner(Dim::C) * inner(Dim::K),
        Tensor::Outputs => inner(Dim::P) * inner(Dim::Q) * inner(Dim::K) * inner(Dim::N),
        Tensor::Inputs => {
            let h = (inner(Dim::P) - 1.0) * problem.stride_p() as f64 + inner(Dim::R);
            let w = (inner(Dim::Q) - 1.0) * problem.stride_q() as f64 + inner(Dim::S);
            inner(Dim::C) * inner(Dim::N) * h * w
        }
    }
}

/// Differentiable refetch analysis (mirror of `dosa_timeloop::refetch`):
/// `(rel, x)` over the temporal loops above level `i`. The mask — which
/// loops are outer to the innermost non-unit relevant loop — is decided
/// from current forward values, keeping integer evaluations exact.
fn refetch_var<N: Scalar>(fv: &FactorVars<N>, i: usize, relevant: DimSet) -> (N, N) {
    let mut rel = UnitProd::new();
    let mut x = UnitProd::new();
    let mut past_innermost_relevant = false;
    for j in i..NUM_LEVELS {
        for &d in fv.orders[j].dims() {
            let f = fv.temporal(j, d);
            if relevant.contains(d) {
                fv.mul_temporal(&mut rel, j, d);
                if f.value() > UNIT_EPS {
                    past_innermost_relevant = true;
                }
            } else if past_innermost_relevant {
                fv.mul_temporal(&mut x, j, d);
            }
        }
    }
    (rel.finish(fv.unit), x.finish(fv.unit))
}

/// Differentiable broadcast / spatial-reduction discount over levels
/// `lo..=hi` (Eqs. 8, 10).
fn spatial_discount_var<N: Scalar>(
    fv: &FactorVars<N>,
    lo: usize,
    hi: usize,
    relevant: DimSet,
) -> N {
    let mut f = UnitProd::new();
    for j in lo..=hi {
        for d in Dim::ALL {
            if !relevant.contains(d) {
                fv.mul_spatial(&mut f, j, d);
            }
        }
    }
    f.finish(fv.unit)
}

/// Differentiable latency and energy of one layer (Eqs. 12–13).
pub struct LayerPerfVars<N> {
    /// Latency in cycles.
    pub latency: N,
    /// Energy in µJ.
    pub energy_uj: N,
}

/// Evaluate the differentiable model for one layer on hardware `hw`.
pub fn layer_perf_vars<C: Ctx>(
    cx: C,
    problem: &Problem,
    fv: &FactorVars<C::N>,
    hw: &HwVars<C::N>,
    hier: &Hierarchy,
) -> LayerPerfVars<C::N> {
    let macs = cx.constant(problem.macs() as f64);
    let mut accesses: [C::N; NUM_LEVELS] = [cx.constant(0.0); NUM_LEVELS];

    for t in Tensor::ALL {
        let rel_dims = t.dims();
        let holding: Vec<usize> = (0..NUM_LEVELS)
            .filter(|&i| hier.level(i).stores(t))
            .collect();
        let outermost = *holding.last().expect("DRAM stores everything");

        let mut tiles: Vec<C::N> = Vec::with_capacity(holding.len());
        let mut refetches: Vec<(C::N, C::N)> = Vec::with_capacity(holding.len());
        for &i in &holding {
            tiles.push(tile_words_var(cx, problem, fv, i, t));
            refetches.push(refetch_var(fv, i, rel_dims));
        }

        for (pos, &i) in holding.iter().enumerate() {
            let (rel, x) = refetches[pos];
            let tile = tiles[pos];
            let child = if pos > 0 { Some(pos - 1) } else { None };
            let is_outer = i == outermost;
            let mut level_total = cx.constant(0.0);

            match t {
                Tensor::Weights | Tensor::Inputs => {
                    if !is_outer {
                        level_total = level_total + tile * rel * x; // fills
                    }
                    let reads = match child {
                        None => macs / spatial_discount_var(fv, 0, i, rel_dims),
                        Some(c) => {
                            let (crel, cx_) = refetches[c];
                            let child_fills = tiles[c] * crel * cx_;
                            child_fills / spatial_discount_var(fv, holding[c] + 1, i, rel_dims)
                        }
                    };
                    level_total = level_total + reads;
                }
                Tensor::Outputs => {
                    let residencies = rel * x;
                    if !is_outer {
                        // Drain reads + partial reloads (fills on revisits).
                        let drains = tile * residencies;
                        let fills = tile * rel * (x - 1.0);
                        level_total = level_total + drains + fills;
                    }
                    let updates = match child {
                        None => macs / spatial_discount_var(fv, 0, i, rel_dims),
                        Some(c) => {
                            let (crel, cx_) = refetches[c];
                            let child_drains = tiles[c] * crel * cx_;
                            child_drains / spatial_discount_var(fv, holding[c] + 1, i, rel_dims)
                        }
                    };
                    level_total = level_total + updates;
                    match child {
                        None => {
                            // RMW reads with first-update elision.
                            let rmw = (updates - tile * residencies).relu();
                            level_total = level_total + rmw;
                        }
                        Some(c) => {
                            let (crel, cx_) = refetches[c];
                            let child_refills = tiles[c] * crel * (cx_ - 1.0);
                            let serve = child_refills
                                / spatial_discount_var(fv, holding[c] + 1, i, rel_dims);
                            level_total = level_total + serve;
                        }
                    }
                }
            }
            accesses[i] = accesses[i] + level_total;
        }
    }

    // Latency (Eq. 12): roofline over compute and memory levels.
    let compute = macs / fv.spatial_product(cx);
    let pe2 = hw.pe_side * hw.pe_side;
    let bw: [C::N; NUM_LEVELS] = [
        pe2 * 2.0,
        hw.pe_side * 2.0,
        hw.pe_side * 2.0,
        cx.constant(8.0),
    ];
    let mut latency = compute;
    for i in 0..NUM_LEVELS {
        latency = latency.max(accesses[i] / bw[i]);
    }

    // Energy (Eq. 13) with capacity-dependent SRAM EPAs (Table 2).
    let acc_kb = hw.acc_words * (4.0 / 1024.0);
    let spad_kb = hw.spad_words * (1.0 / 1024.0);
    let epa_acc = acc_kb / hw.pe_side * EPA_ACC_SLOPE + EPA_ACC_BASE;
    let epa_spad = spad_kb * EPA_SPAD_SLOPE + EPA_SPAD_BASE;
    let pj = macs * EPA_MAC
        + accesses[level::REGISTERS] * EPA_REGISTERS
        + accesses[level::ACCUMULATOR] * epa_acc
        + accesses[level::SCRATCHPAD] * epa_spad
        + accesses[level::DRAM] * EPA_DRAM;
    let energy_uj = pj * 1e-6;

    LayerPerfVars { latency, energy_uj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_timeloop::{compute_traffic, evaluate_layer, random_mapping};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diff_perf(problem: &Problem, mapping: &Mapping, hw: &HardwareConfig) -> (f64, f64) {
        let tape = Tape::new();
        let hier = Hierarchy::gemmini();
        let fv = FactorVars::from_mapping(&tape, mapping);
        let hwv = HwVars::fixed(&tape, hw);
        let perf = layer_perf_vars(&tape, problem, &fv, &hwv, &hier);
        (perf.latency.value(), perf.energy_uj.value())
    }

    #[test]
    fn latency_matches_reference_exactly_on_integer_mappings() {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(1234);
        let problems = [
            Problem::conv("a", 3, 3, 56, 56, 64, 64, 1).unwrap(),
            Problem::conv("b", 1, 1, 14, 14, 256, 1024, 1).unwrap(),
            Problem::conv("c", 7, 7, 112, 112, 3, 64, 2).unwrap(),
            Problem::matmul("d", 512, 768, 768).unwrap(),
        ];
        for p in &problems {
            for _ in 0..25 {
                let m = random_mapping(&mut rng, p, &hier, 16);
                let reference = evaluate_layer(p, &m, &hw, &hier);
                let (lat, _) = diff_perf(p, &m, &hw);
                let rel =
                    (lat - reference.latency_cycles).abs() / reference.latency_cycles.max(1.0);
                assert!(
                    rel < 1e-9,
                    "{p}: diff {lat} vs ref {}",
                    reference.latency_cycles
                );
            }
        }
    }

    #[test]
    fn eval_ctx_matches_tape_forward_bits() {
        use dosa_autodiff::Values;
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(77);
        let p = Problem::conv("e", 3, 3, 28, 28, 32, 64, 1).unwrap();
        for _ in 0..10 {
            let m = random_mapping(&mut rng, &p, &hier, 16);
            let (lat_t, e_t) = diff_perf(&p, &m, &hw);
            let fv = FactorVars::from_mapping(Values, &m);
            let hwv = HwVars::fixed(Values, &hw);
            let perf = layer_perf_vars(Values, &p, &fv, &hwv, &hier);
            assert_eq!(perf.latency.to_bits(), lat_t.to_bits());
            assert_eq!(perf.energy_uj.to_bits(), e_t.to_bits());
        }
    }

    #[test]
    fn energy_differs_only_by_dram_block_ceiling() {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(99);
        let p = Problem::conv("a", 3, 3, 28, 28, 128, 128, 1).unwrap();
        for _ in 0..25 {
            let m = random_mapping(&mut rng, &p, &hier, 16);
            let reference = evaluate_layer(&p, &m, &hw, &hier);
            let (_, energy) = diff_perf(&p, &m, &hw);
            // Reference >= diff (ceiling only adds energy), and the gap is
            // exactly the DRAM padding.
            let traffic = compute_traffic(&p, &m, &hier);
            let padded: u64 = traffic
                .dram_streams
                .iter()
                .map(|s| (s.tile_words * s.transfers).div_ceil(64) * 64)
                .sum();
            let pad_uj = (padded - traffic.accesses(3)) as f64 * 100.0 * 1e-6;
            assert!(
                (reference.energy_uj - energy - pad_uj).abs() / reference.energy_uj.max(1e-12)
                    < 1e-9,
                "gap mismatch"
            );
        }
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let p = Problem::conv("g", 3, 3, 28, 28, 64, 64, 1).unwrap();
        let hier = Hierarchy::gemmini();
        let tape = Tape::new();
        let mut relaxed =
            crate::relaxed::RelaxedMapping::identity(dosa_timeloop::Stationarity::WeightStationary);
        // Start away from 1 so masks are active.
        let v: Vec<f64> = (0..crate::relaxed::PARAMS_PER_LAYER)
            .map(|i| 0.3 + 0.05 * i as f64)
            .collect();
        relaxed.set_params(&v);
        let (fv, leaves) = FactorVars::from_relaxed(&tape, &p, &relaxed);
        let hw = HwVars::derive(&tape, &[(&p, &fv)]);
        let perf = layer_perf_vars(&tape, &p, &fv, &hw, &hier);
        let loss = perf.latency * perf.energy_uj;
        let grads = tape.backward(loss);
        let nonzero = leaves.iter().filter(|l| grads.wrt(**l) != 0.0).count();
        // Every log-factor should influence EDP (a few may sit on flat
        // max() branches, but most must be active).
        assert!(nonzero > leaves.len() / 2, "only {nonzero} active grads");
    }

    #[test]
    fn derived_hw_matches_integer_min_hw() {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(5);
        let p = Problem::conv("h", 1, 1, 56, 56, 64, 64, 1).unwrap();
        for _ in 0..20 {
            let m = random_mapping(&mut rng, &p, &hier, 64);
            let expect = dosa_timeloop::min_hw(&p, &m, &hier);
            let tape = Tape::new();
            let fv = FactorVars::from_mapping(&tape, &m);
            let hw = HwVars::derive(&tape, &[(&p, &fv)]);
            let got = hw.to_config();
            assert_eq!(got.pe_side(), expect.pe_side());
            assert_eq!(got.acc_kb(), expect.acc_kb());
            assert_eq!(got.spad_kb(), expect.spad_kb());
        }
    }

    #[test]
    fn penalty_zero_for_valid_relaxed_points() {
        let p = Problem::conv("v", 1, 1, 8, 8, 16, 16, 1).unwrap();
        let tape = Tape::new();
        let relaxed =
            crate::relaxed::RelaxedMapping::identity(dosa_timeloop::Stationarity::WeightStationary);
        let (fv, _) = FactorVars::from_relaxed(&tape, &p, &relaxed);
        assert_eq!(fv.penalty(&tape).value(), 0.0);
    }

    #[test]
    fn penalty_positive_when_products_overflow() {
        let p = Problem::conv("v", 1, 1, 8, 8, 16, 16, 1).unwrap();
        let tape = Tape::new();
        let mut relaxed =
            crate::relaxed::RelaxedMapping::identity(dosa_timeloop::Stationarity::WeightStationary);
        relaxed.log_temporal[0][Dim::P.index()] = (32.0f64).ln(); // > P=8
        let (fv, leaves) = FactorVars::from_relaxed(&tape, &p, &relaxed);
        let pen = fv.penalty(&tape);
        assert!(pen.value() > 0.0);
        // The gradient should push the offending factor down.
        let grads = tape.backward(pen);
        let p_idx = Dim::P.index();
        assert!(grads.wrt(leaves[p_idx]) > 0.0);
    }
}
