//! The DOSA differentiable performance model (§4): closed-form capacity,
//! traffic, latency and energy expressions on the autodiff tape.
//!
//! The structure mirrors `dosa_timeloop::traffic` exactly — same tile,
//! refetch, broadcast and elision semantics — with two deliberate
//! differences (§4.6): all arithmetic is smooth (no integer ceilings) and
//! DRAM energy is counted per element rather than per block. Evaluated at an
//! integer mapping, latency matches the reference bit-for-bit and energy
//! differs only by the DRAM block ceiling, reproducing Figure 4.

use crate::relaxed::RelaxedMapping;
use dosa_accel::{
    level, HardwareConfig, Hierarchy, EPA_ACC_BASE, EPA_ACC_SLOPE, EPA_DRAM, EPA_MAC,
    EPA_REGISTERS, EPA_SPAD_BASE, EPA_SPAD_SLOPE, MAX_PE_SIDE, NUM_LEVELS,
};
use dosa_autodiff::{max_of, Tape, Var};
use dosa_timeloop::{LoopOrder, Mapping};
use dosa_workload::{Dim, DimSet, Problem, Tensor, NUM_DIMS};

/// Threshold above which a continuous loop bound is considered non-unit for
/// the refetch mask (bound-1 loops are transparent).
const UNIT_EPS: f64 = 1.0 + 1e-9;

/// Differentiable tiling factors for one layer, including the inferred
/// DRAM-level factors (§5.3.3).
#[derive(Clone, Copy)]
pub struct FactorVars<'t> {
    /// Temporal factor variables per level per dim (level 3 inferred).
    pub temporal: [[Var<'t>; NUM_DIMS]; NUM_LEVELS],
    /// Spatial factor variables per level per dim.
    pub spatial: [[Var<'t>; NUM_DIMS]; NUM_LEVELS],
    /// Loop orders (fixed during a gradient step).
    pub orders: [LoopOrder; NUM_LEVELS],
}

impl<'t> FactorVars<'t> {
    /// Build factor variables from a relaxed mapping, returning the leaf
    /// variables (the raw log-space parameters, in
    /// [`RelaxedMapping::params`] order) whose gradients drive Adam.
    pub fn from_relaxed(
        tape: &'t Tape,
        problem: &Problem,
        relaxed: &RelaxedMapping,
    ) -> (FactorVars<'t>, Vec<Var<'t>>) {
        let params = relaxed.params();
        let leaves: Vec<Var<'t>> = params.iter().map(|&x| tape.var(x)).collect();
        let one = tape.constant(1.0);
        let mut temporal = [[one; NUM_DIMS]; NUM_LEVELS];
        let mut spatial = [[one; NUM_DIMS]; NUM_LEVELS];
        for lvl in 0..3 {
            for d in Dim::ALL {
                temporal[lvl][d.index()] = leaves[lvl * NUM_DIMS + d.index()].exp();
            }
        }
        spatial[level::ACCUMULATOR][Dim::C.index()] = leaves[3 * NUM_DIMS].exp();
        spatial[level::SCRATCHPAD][Dim::K.index()] = leaves[3 * NUM_DIMS + 1].exp();
        // Inferred DRAM factors: problem size over the product of inner
        // factors. Gradients flow through the division.
        for d in Dim::ALL {
            let mut inner = one;
            for level_temporal in temporal.iter().take(3) {
                inner = inner * level_temporal[d.index()];
            }
            for level_spatial in &spatial {
                inner = inner * level_spatial[d.index()];
            }
            temporal[level::DRAM][d.index()] = tape.constant(problem.size(d) as f64) / inner;
        }
        let orders = core::array::from_fn(|i| LoopOrder::canonical(relaxed.orders[i]));
        (
            FactorVars {
                temporal,
                spatial,
                orders,
            },
            leaves,
        )
    }

    /// Build constant factor variables from an integer mapping (used for
    /// model-correlation studies; no useful gradients).
    pub fn from_mapping(tape: &'t Tape, mapping: &Mapping) -> FactorVars<'t> {
        let temporal = core::array::from_fn(|i| {
            core::array::from_fn(|d| tape.constant(mapping.temporal[i][d] as f64))
        });
        let spatial = core::array::from_fn(|i| {
            core::array::from_fn(|d| tape.constant(mapping.spatial[i][d] as f64))
        });
        FactorVars {
            temporal,
            spatial,
            orders: mapping.orders,
        }
    }

    fn temporal(&self, lvl: usize, d: Dim) -> Var<'t> {
        self.temporal[lvl][d.index()]
    }

    fn spatial(&self, lvl: usize, d: Dim) -> Var<'t> {
        self.spatial[lvl][d.index()]
    }

    /// Product of all spatial factors (utilized PEs, Eq. 12).
    pub fn spatial_product(&self, tape: &'t Tape) -> Var<'t> {
        let mut p = tape.constant(1.0);
        for lvl in 0..NUM_LEVELS {
            for d in Dim::ALL {
                p = p * self.spatial(lvl, d);
            }
        }
        p
    }

    /// The invalid-mapping penalty (Eq. 18): `Σ max(1 − f, 0)` over every
    /// factor, including the inferred DRAM factors.
    pub fn penalty(&self, tape: &'t Tape) -> Var<'t> {
        let mut pen = tape.constant(0.0);
        for lvl in 0..NUM_LEVELS {
            for d in Dim::ALL {
                pen = pen + self.temporal(lvl, d).hinge_below(1.0);
                pen = pen + self.spatial(lvl, d).hinge_below(1.0);
            }
        }
        pen
    }
}

/// Differentiable hardware parameters (the minimal parameterization of
/// Figure 3, or constants when evaluating a fixed design).
pub struct HwVars<'t> {
    /// PE array side (`√C_PE`).
    pub pe_side: Var<'t>,
    /// Accumulator capacity in words.
    pub acc_words: Var<'t>,
    /// Scratchpad capacity in words.
    pub spad_words: Var<'t>,
}

impl<'t> HwVars<'t> {
    /// Constants from a concrete configuration.
    pub fn fixed(tape: &'t Tape, hw: &HardwareConfig) -> HwVars<'t> {
        HwVars {
            pe_side: tape.constant(hw.pe_side() as f64),
            acc_words: tape.constant(hw.acc_words() as f64),
            spad_words: tape.constant(hw.spad_words() as f64),
        }
    }

    /// Derive the minimal hardware supporting all `layers` (Eqs. 1–5 plus
    /// the cross-layer max of Figure 3), on the tape so gradients flow from
    /// hardware-dependent energy and bandwidth back into tiling factors.
    pub fn derive(tape: &'t Tape, layers: &[(&Problem, &FactorVars<'t>)]) -> HwVars<'t> {
        Self::derive_with_pe(tape, layers, None)
    }

    /// Like [`HwVars::derive`] but with the PE side pinned (the Fig. 12
    /// setting: 16×16 PEs fixed, buffers and mappings searched).
    pub fn derive_with_pe(
        tape: &'t Tape,
        layers: &[(&Problem, &FactorVars<'t>)],
        fixed_pe_side: Option<u64>,
    ) -> HwVars<'t> {
        let mut sides = Vec::new();
        let mut accs = Vec::new();
        let mut spads = Vec::new();
        for (p, fv) in layers {
            for lvl in 0..NUM_LEVELS {
                for d in Dim::ALL {
                    sides.push(fv.spatial(lvl, d));
                }
            }
            accs.push(tile_words_var(
                tape,
                p,
                fv,
                level::ACCUMULATOR,
                Tensor::Outputs,
            ));
            let w = tile_words_var(tape, p, fv, level::SCRATCHPAD, Tensor::Weights);
            let i = tile_words_var(tape, p, fv, level::SCRATCHPAD, Tensor::Inputs);
            spads.push(w + i);
        }
        let pe_side = match fixed_pe_side {
            Some(s) => tape.constant(s as f64),
            None => {
                let side = max_of(tape, &sides);
                // Cap at the architectural maximum (§6.1).
                side.min(tape.constant(MAX_PE_SIDE as f64))
            }
        };
        HwVars {
            pe_side,
            acc_words: max_of(tape, &accs),
            spad_words: max_of(tape, &spads),
        }
    }

    /// Round the current values into a concrete [`HardwareConfig`]
    /// (buffers up to whole KB, §6.1).
    pub fn to_config(&self) -> HardwareConfig {
        let side = (self.pe_side.value().round() as u64).clamp(1, MAX_PE_SIDE);
        let acc_kb = (self.acc_words.value() * 4.0 / 1024.0).ceil().max(1.0);
        let spad_kb = (self.spad_words.value() / 1024.0).ceil().max(1.0);
        HardwareConfig::new(side, acc_kb, spad_kb).expect("derived hardware is valid")
    }
}

/// Differentiable tile footprint of tensor `t` at level `i` (Eqs. 2–4):
/// temporal factors below `i` times all spatial factors of relevant dims,
/// with the stride halo for inputs.
pub fn tile_words_var<'t>(
    tape: &'t Tape,
    problem: &Problem,
    fv: &FactorVars<'t>,
    i: usize,
    t: Tensor,
) -> Var<'t> {
    let inner = |d: Dim| -> Var<'t> {
        let mut f = tape.constant(1.0);
        for j in 0..i {
            f = f * fv.temporal(j, d);
        }
        for j in 0..NUM_LEVELS {
            f = f * fv.spatial(j, d);
        }
        f
    };
    match t {
        Tensor::Weights => inner(Dim::R) * inner(Dim::S) * inner(Dim::C) * inner(Dim::K),
        Tensor::Outputs => inner(Dim::P) * inner(Dim::Q) * inner(Dim::K) * inner(Dim::N),
        Tensor::Inputs => {
            let h = (inner(Dim::P) - 1.0) * problem.stride_p() as f64 + inner(Dim::R);
            let w = (inner(Dim::Q) - 1.0) * problem.stride_q() as f64 + inner(Dim::S);
            inner(Dim::C) * inner(Dim::N) * h * w
        }
    }
}

/// Differentiable refetch analysis (mirror of `dosa_timeloop::refetch`):
/// `(rel, x)` over the temporal loops above level `i`. The mask — which
/// loops are outer to the innermost non-unit relevant loop — is decided
/// from current forward values, keeping integer evaluations exact.
fn refetch_var<'t>(
    tape: &'t Tape,
    fv: &FactorVars<'t>,
    i: usize,
    relevant: DimSet,
) -> (Var<'t>, Var<'t>) {
    let mut rel = tape.constant(1.0);
    let mut x = tape.constant(1.0);
    let mut past_innermost_relevant = false;
    for j in i..NUM_LEVELS {
        for &d in fv.orders[j].dims() {
            let f = fv.temporal(j, d);
            if relevant.contains(d) {
                rel = rel * f;
                if f.value() > UNIT_EPS {
                    past_innermost_relevant = true;
                }
            } else if past_innermost_relevant {
                x = x * f;
            }
        }
    }
    (rel, x)
}

/// Differentiable broadcast / spatial-reduction discount over levels
/// `lo..=hi` (Eqs. 8, 10).
fn spatial_discount_var<'t>(
    tape: &'t Tape,
    fv: &FactorVars<'t>,
    lo: usize,
    hi: usize,
    relevant: DimSet,
) -> Var<'t> {
    let mut f = tape.constant(1.0);
    for j in lo..=hi {
        for d in Dim::ALL {
            if !relevant.contains(d) {
                f = f * fv.spatial(j, d);
            }
        }
    }
    f
}

/// Differentiable latency and energy of one layer (Eqs. 12–13).
pub struct LayerPerfVars<'t> {
    /// Latency in cycles.
    pub latency: Var<'t>,
    /// Energy in µJ.
    pub energy_uj: Var<'t>,
}

/// Evaluate the differentiable model for one layer on hardware `hw`.
pub fn layer_perf_vars<'t>(
    tape: &'t Tape,
    problem: &Problem,
    fv: &FactorVars<'t>,
    hw: &HwVars<'t>,
    hier: &Hierarchy,
) -> LayerPerfVars<'t> {
    let macs = tape.constant(problem.macs() as f64);
    let mut accesses: [Var<'t>; NUM_LEVELS] = [tape.constant(0.0); NUM_LEVELS];

    for t in Tensor::ALL {
        let rel_dims = t.dims();
        let holding: Vec<usize> = (0..NUM_LEVELS)
            .filter(|&i| hier.level(i).stores(t))
            .collect();
        let outermost = *holding.last().expect("DRAM stores everything");

        let mut tiles: Vec<Var<'t>> = Vec::with_capacity(holding.len());
        let mut refetches: Vec<(Var<'t>, Var<'t>)> = Vec::with_capacity(holding.len());
        for &i in &holding {
            tiles.push(tile_words_var(tape, problem, fv, i, t));
            refetches.push(refetch_var(tape, fv, i, rel_dims));
        }

        for (pos, &i) in holding.iter().enumerate() {
            let (rel, x) = refetches[pos];
            let tile = tiles[pos];
            let child = if pos > 0 { Some(pos - 1) } else { None };
            let is_outer = i == outermost;
            let mut level_total = tape.constant(0.0);

            match t {
                Tensor::Weights | Tensor::Inputs => {
                    if !is_outer {
                        level_total = level_total + tile * rel * x; // fills
                    }
                    let reads = match child {
                        None => macs / spatial_discount_var(tape, fv, 0, i, rel_dims),
                        Some(c) => {
                            let (crel, cx) = refetches[c];
                            let child_fills = tiles[c] * crel * cx;
                            child_fills
                                / spatial_discount_var(tape, fv, holding[c] + 1, i, rel_dims)
                        }
                    };
                    level_total = level_total + reads;
                }
                Tensor::Outputs => {
                    let residencies = rel * x;
                    if !is_outer {
                        // Drain reads + partial reloads (fills on revisits).
                        let drains = tile * residencies;
                        let fills = tile * rel * (x - 1.0);
                        level_total = level_total + drains + fills;
                    }
                    let updates = match child {
                        None => macs / spatial_discount_var(tape, fv, 0, i, rel_dims),
                        Some(c) => {
                            let (crel, cx) = refetches[c];
                            let child_drains = tiles[c] * crel * cx;
                            child_drains
                                / spatial_discount_var(tape, fv, holding[c] + 1, i, rel_dims)
                        }
                    };
                    level_total = level_total + updates;
                    match child {
                        None => {
                            // RMW reads with first-update elision.
                            let rmw = (updates - tile * residencies).relu();
                            level_total = level_total + rmw;
                        }
                        Some(c) => {
                            let (crel, cx) = refetches[c];
                            let child_refills = tiles[c] * crel * (cx - 1.0);
                            let serve = child_refills
                                / spatial_discount_var(tape, fv, holding[c] + 1, i, rel_dims);
                            level_total = level_total + serve;
                        }
                    }
                }
            }
            accesses[i] = accesses[i] + level_total;
        }
    }

    // Latency (Eq. 12): roofline over compute and memory levels.
    let compute = macs / fv.spatial_product(tape);
    let pe2 = hw.pe_side * hw.pe_side;
    let bw: [Var<'t>; NUM_LEVELS] = [
        pe2 * 2.0,
        hw.pe_side * 2.0,
        hw.pe_side * 2.0,
        tape.constant(8.0),
    ];
    let mut latency = compute;
    for i in 0..NUM_LEVELS {
        latency = latency.max(accesses[i] / bw[i]);
    }

    // Energy (Eq. 13) with capacity-dependent SRAM EPAs (Table 2).
    let acc_kb = hw.acc_words * (4.0 / 1024.0);
    let spad_kb = hw.spad_words * (1.0 / 1024.0);
    let epa_acc = acc_kb / hw.pe_side * EPA_ACC_SLOPE + EPA_ACC_BASE;
    let epa_spad = spad_kb * EPA_SPAD_SLOPE + EPA_SPAD_BASE;
    let pj = macs * EPA_MAC
        + accesses[level::REGISTERS] * EPA_REGISTERS
        + accesses[level::ACCUMULATOR] * epa_acc
        + accesses[level::SCRATCHPAD] * epa_spad
        + accesses[level::DRAM] * EPA_DRAM;
    let energy_uj = pj * 1e-6;

    LayerPerfVars { latency, energy_uj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_timeloop::{compute_traffic, evaluate_layer, random_mapping};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diff_perf(problem: &Problem, mapping: &Mapping, hw: &HardwareConfig) -> (f64, f64) {
        let tape = Tape::new();
        let hier = Hierarchy::gemmini();
        let fv = FactorVars::from_mapping(&tape, mapping);
        let hwv = HwVars::fixed(&tape, hw);
        let perf = layer_perf_vars(&tape, problem, &fv, &hwv, &hier);
        (perf.latency.value(), perf.energy_uj.value())
    }

    #[test]
    fn latency_matches_reference_exactly_on_integer_mappings() {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(1234);
        let problems = [
            Problem::conv("a", 3, 3, 56, 56, 64, 64, 1).unwrap(),
            Problem::conv("b", 1, 1, 14, 14, 256, 1024, 1).unwrap(),
            Problem::conv("c", 7, 7, 112, 112, 3, 64, 2).unwrap(),
            Problem::matmul("d", 512, 768, 768).unwrap(),
        ];
        for p in &problems {
            for _ in 0..25 {
                let m = random_mapping(&mut rng, p, &hier, 16);
                let reference = evaluate_layer(p, &m, &hw, &hier);
                let (lat, _) = diff_perf(p, &m, &hw);
                let rel =
                    (lat - reference.latency_cycles).abs() / reference.latency_cycles.max(1.0);
                assert!(
                    rel < 1e-9,
                    "{p}: diff {lat} vs ref {}",
                    reference.latency_cycles
                );
            }
        }
    }

    #[test]
    fn energy_differs_only_by_dram_block_ceiling() {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut rng = StdRng::seed_from_u64(99);
        let p = Problem::conv("a", 3, 3, 28, 28, 128, 128, 1).unwrap();
        for _ in 0..25 {
            let m = random_mapping(&mut rng, &p, &hier, 16);
            let reference = evaluate_layer(&p, &m, &hw, &hier);
            let (_, energy) = diff_perf(&p, &m, &hw);
            // Reference >= diff (ceiling only adds energy), and the gap is
            // exactly the DRAM padding.
            let traffic = compute_traffic(&p, &m, &hier);
            let padded: u64 = traffic
                .dram_streams
                .iter()
                .map(|s| (s.tile_words * s.transfers).div_ceil(64) * 64)
                .sum();
            let pad_uj = (padded - traffic.accesses(3)) as f64 * 100.0 * 1e-6;
            assert!(
                (reference.energy_uj - energy - pad_uj).abs() / reference.energy_uj.max(1e-12)
                    < 1e-9,
                "gap mismatch"
            );
        }
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let p = Problem::conv("g", 3, 3, 28, 28, 64, 64, 1).unwrap();
        let hier = Hierarchy::gemmini();
        let tape = Tape::new();
        let mut relaxed =
            crate::relaxed::RelaxedMapping::identity(dosa_timeloop::Stationarity::WeightStationary);
        // Start away from 1 so masks are active.
        let v: Vec<f64> = (0..crate::relaxed::PARAMS_PER_LAYER)
            .map(|i| 0.3 + 0.05 * i as f64)
            .collect();
        relaxed.set_params(&v);
        let (fv, leaves) = FactorVars::from_relaxed(&tape, &p, &relaxed);
        let hw = HwVars::derive(&tape, &[(&p, &fv)]);
        let perf = layer_perf_vars(&tape, &p, &fv, &hw, &hier);
        let loss = perf.latency * perf.energy_uj;
        let grads = tape.backward(loss);
        let nonzero = leaves.iter().filter(|l| grads.wrt(**l) != 0.0).count();
        // Every log-factor should influence EDP (a few may sit on flat
        // max() branches, but most must be active).
        assert!(nonzero > leaves.len() / 2, "only {nonzero} active grads");
    }

    #[test]
    fn derived_hw_matches_integer_min_hw() {
        let hier = Hierarchy::gemmini();
        let mut rng = StdRng::seed_from_u64(5);
        let p = Problem::conv("h", 1, 1, 56, 56, 64, 64, 1).unwrap();
        for _ in 0..20 {
            let m = random_mapping(&mut rng, &p, &hier, 64);
            let expect = dosa_timeloop::min_hw(&p, &m, &hier);
            let tape = Tape::new();
            let fv = FactorVars::from_mapping(&tape, &m);
            let hw = HwVars::derive(&tape, &[(&p, &fv)]);
            let got = hw.to_config();
            assert_eq!(got.pe_side(), expect.pe_side());
            assert_eq!(got.acc_kb(), expect.acc_kb());
            assert_eq!(got.spad_kb(), expect.spad_kb());
        }
    }

    #[test]
    fn penalty_zero_for_valid_relaxed_points() {
        let p = Problem::conv("v", 1, 1, 8, 8, 16, 16, 1).unwrap();
        let tape = Tape::new();
        let relaxed =
            crate::relaxed::RelaxedMapping::identity(dosa_timeloop::Stationarity::WeightStationary);
        let (fv, _) = FactorVars::from_relaxed(&tape, &p, &relaxed);
        assert_eq!(fv.penalty(&tape).value(), 0.0);
    }

    #[test]
    fn penalty_positive_when_products_overflow() {
        let p = Problem::conv("v", 1, 1, 8, 8, 16, 16, 1).unwrap();
        let tape = Tape::new();
        let mut relaxed =
            crate::relaxed::RelaxedMapping::identity(dosa_timeloop::Stationarity::WeightStationary);
        relaxed.log_temporal[0][Dim::P.index()] = (32.0f64).ln(); // > P=8
        let (fv, leaves) = FactorVars::from_relaxed(&tape, &p, &relaxed);
        let pen = fv.penalty(&tape);
        assert!(pen.value() > 0.0);
        // The gradient should push the offending factor down.
        let grads = tape.backward(pen);
        let p_idx = Dim::P.index();
        assert!(grads.wrt(leaves[p_idx]) > 0.0);
    }
}
