//! # dosa-model
//!
//! DOSA's differentiable performance model (§4): relaxed log-space mappings,
//! closed-form traffic/latency/energy expressions on the
//! [`dosa_autodiff`] tape, minimal-hardware derivation, the invalid-mapping
//! penalty (Eq. 18), and the whole-model EDP loss (Eq. 14) including the
//! softmax loop-ordering variant (Eq. 15–17).
//!
//! Evaluated at an integer mapping the model reproduces the
//! [`dosa_timeloop`] reference exactly on latency and up to the DRAM block
//! ceiling on energy — the Figure 4 correlation.
//!
//! ## Example
//!
//! ```
//! use dosa_model::{build_loss, LossOptions, RelaxedMapping};
//! use dosa_autodiff::Tape;
//! use dosa_accel::Hierarchy;
//! use dosa_timeloop::Stationarity;
//! use dosa_workload::{Layer, Problem};
//!
//! let layers = vec![Layer::once(Problem::conv("l", 3, 3, 28, 28, 64, 64, 1)?)];
//! let relaxed = vec![RelaxedMapping::identity(Stationarity::WeightStationary)];
//! let tape = Tape::new();
//! let built = build_loss(&tape, &layers, &relaxed, &Hierarchy::gemmini(), &LossOptions::default());
//! let grads = tape.backward(built.loss);
//! assert!(built.edp > 0.0);
//! assert!(grads.wrt(built.leaves[0][0]).is_finite());
//! # Ok::<(), dosa_workload::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod diff;
mod edp;
mod relaxed;

pub use diff::{layer_perf_vars, tile_words_var, FactorVars, HwVars, LayerPerfVars};
pub use edp::{build_loss, build_loss_in, predict, BuiltLoss, BuiltLossG, LossOptions};
pub use relaxed::{round_all, RelaxedMapping, PARAMS_PER_LAYER};
