//! Whole-model loss assembly (Eq. 14, Eq. 17, Eq. 18).
//!
//! DOSA's gradient-descent loss is the model EDP — the product of summed
//! per-layer energies and latencies — plus the invalid-mapping penalty. We
//! optimize `ln(EDP) + w·penalty`: the logarithm makes gradient magnitudes
//! scale-free across workloads (EDPs span 1e9–1e16 µJ·cycles) so the O(1)
//! penalty term stays effective; minima are unchanged.
//!
//! The softmax loop-ordering loss (Eq. 15–17) weights the WS/IS/OS variants
//! of each layer by a softmax over `−τ·ln(EDP)` — a numerically robust
//! stand-in for the paper's softmax over inverse EDPs, which degenerates to
//! uniform weights at the magnitudes involved (see DESIGN.md).
//!
//! [`build_loss_in`] is generic over the recording [`Ctx`] and feeds a
//! [`SegmentPlan`] while it records: each layer's factor construction,
//! capacity terms and performance terms become independent chunks of three
//! parallel groups (layers only interact through the cross-layer hardware
//! max and the final sums), which is what lets
//! `Tape::backward_segmented` sweep per-layer work on parallel workers
//! without changing a single gradient bit.

use crate::diff::{layer_perf_vars, FactorVars, HwVars};
use crate::relaxed::RelaxedMapping;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_autodiff::{softmax, sum, Ctx, Scalar, SegmentPlan, Tape, Values, Var};
use dosa_timeloop::{LoopOrder, Stationarity};
use dosa_workload::Layer;

/// Configuration for [`build_loss`].
#[derive(Debug, Clone, Copy)]
pub struct LossOptions {
    /// Pin the PE array side instead of deriving it from spatial factors
    /// (the Fig. 12 setting).
    pub fixed_pe_side: Option<u64>,
    /// Evaluate on a fixed hardware configuration instead of the derived
    /// minimal hardware.
    pub fixed_hw: Option<HardwareConfig>,
    /// Use the gradient-based softmax loop-ordering loss (§5.2.2) instead
    /// of the fixed per-layer orderings.
    pub softmax_ordering: bool,
    /// Temperature `τ` of the softmax weighting.
    pub softmax_temperature: f64,
    /// Weight of the invalid-mapping penalty (Eq. 18).
    pub penalty_weight: f64,
}

impl Default for LossOptions {
    fn default() -> Self {
        LossOptions {
            fixed_pe_side: None,
            fixed_hw: None,
            softmax_ordering: false,
            softmax_temperature: 4.0,
            penalty_weight: 1.0,
        }
    }
}

/// A fully assembled differentiable loss for one gradient step, generic
/// over the recording context ([`build_loss_in`]).
pub struct BuiltLossG<N> {
    /// The loss to backpropagate: `ln(EDP) + w·penalty`.
    pub loss: N,
    /// Forward model EDP in µJ·cycles.
    pub edp: f64,
    /// Forward model energy in µJ.
    pub energy_uj: f64,
    /// Forward model latency in cycles.
    pub latency: f64,
    /// Forward penalty value.
    pub penalty: f64,
}

/// A fully assembled differentiable loss for one gradient step.
pub struct BuiltLoss<'t> {
    /// The loss to backpropagate: `ln(EDP) + w·penalty`.
    pub loss: Var<'t>,
    /// Leaf variables per layer (in [`RelaxedMapping::params`] order).
    pub leaves: Vec<Vec<Var<'t>>>,
    /// Forward model EDP in µJ·cycles.
    pub edp: f64,
    /// Forward model energy in µJ.
    pub energy_uj: f64,
    /// Forward model latency in cycles.
    pub latency: f64,
    /// Forward penalty value.
    pub penalty: f64,
}

/// Assemble the differentiable loss for `layers` at the point `relaxed`,
/// recording segment boundaries on `plan` and appending every leaf (layer
/// by layer, [`RelaxedMapping::params`] order) to `leaves_out`.
///
/// Callers that reuse `plan` and `leaves_out` across steps (clearing them
/// first) allocate nothing here beyond the recording itself.
///
/// # Panics
///
/// Panics if `layers` and `relaxed` have different lengths or are empty.
pub fn build_loss_in<C: Ctx>(
    cx: C,
    layers: &[Layer],
    relaxed: &[RelaxedMapping],
    hier: &Hierarchy,
    opts: &LossOptions,
    plan: &mut SegmentPlan,
    leaves_out: &mut Vec<C::N>,
) -> BuiltLossG<C::N> {
    assert_eq!(layers.len(), relaxed.len(), "one relaxed mapping per layer");
    assert!(!layers.is_empty(), "need at least one layer");

    // Group 1: per-layer factor variables (leaves, exps, DRAM inference).
    let mut factor_vars = Vec::with_capacity(layers.len());
    plan.serial_to(cx.mark());
    plan.begin_group();
    for (layer, r) in layers.iter().zip(relaxed) {
        factor_vars.push(FactorVars::from_relaxed_in(
            cx,
            &layer.problem,
            r,
            leaves_out,
        ));
        plan.chunk_to(cx.mark());
    }
    plan.end_group();

    let refs: Vec<(&dosa_workload::Problem, &FactorVars<C::N>)> = layers
        .iter()
        .zip(&factor_vars)
        .map(|(l, fv)| (&l.problem, fv))
        .collect();
    // Group 2 (inside derive_with_pe_in): per-layer capacity terms, then
    // the serial cross-layer max.
    let hw = match opts.fixed_hw {
        Some(cfg) => HwVars::fixed(cx, &cfg),
        None => HwVars::derive_with_pe_in(cx, &refs, opts.fixed_pe_side, plan),
    };

    // Group 3: per-layer performance terms (including the softmax ordering
    // variants — each layer's three orderings stay inside its chunk).
    let mut energies = Vec::with_capacity(layers.len());
    let mut latencies = Vec::with_capacity(layers.len());
    plan.serial_to(cx.mark());
    plan.begin_group();
    for (layer, fv) in layers.iter().zip(&factor_vars) {
        let count = layer.count as f64;
        if opts.softmax_ordering {
            // Evaluate all three canonical orderings and weight them by a
            // softmax over -tau * ln(EDP) (Eq. 15-17).
            let mut option_e = Vec::with_capacity(3);
            let mut option_l = Vec::with_capacity(3);
            let mut scores = Vec::with_capacity(3);
            for s in Stationarity::ALL {
                let mut fv_s = *fv;
                fv_s.orders = [LoopOrder::canonical(s); dosa_accel::NUM_LEVELS];
                let perf = layer_perf_vars(cx, &layer.problem, &fv_s, &hw, hier);
                scores.push(-(perf.energy_uj * perf.latency).ln() * opts.softmax_temperature);
                option_e.push(perf.energy_uj);
                option_l.push(perf.latency);
            }
            let w = softmax(cx, &scores);
            let e = dosa_autodiff::dot(cx, &w, &option_e);
            let l = dosa_autodiff::dot(cx, &w, &option_l);
            energies.push(e * count);
            latencies.push(l * count);
        } else {
            let perf = layer_perf_vars(cx, &layer.problem, fv, &hw, hier);
            energies.push(perf.energy_uj * count);
            latencies.push(perf.latency * count);
        }
        plan.chunk_to(cx.mark());
    }
    plan.end_group();

    // Serial tail: cross-layer sums, EDP, penalty and the final loss.
    let energy = sum(cx, &energies);
    let latency = sum(cx, &latencies);
    let edp = energy * latency;

    let mut pen = cx.constant(0.0);
    for fv in &factor_vars {
        pen = pen + fv.penalty(cx);
    }
    let loss = edp.ln() + pen * opts.penalty_weight;
    plan.serial_to(cx.mark());

    BuiltLossG {
        loss,
        edp: edp.value(),
        energy_uj: energy.value(),
        latency: latency.value(),
        penalty: pen.value(),
    }
}

/// Assemble the differentiable loss for `layers` at the point `relaxed`.
///
/// Convenience form of [`build_loss_in`] without segment planning,
/// returning per-layer leaf vectors.
///
/// # Panics
///
/// Panics if `layers` and `relaxed` have different lengths or are empty.
pub fn build_loss<'t>(
    tape: &'t Tape,
    layers: &[Layer],
    relaxed: &[RelaxedMapping],
    hier: &Hierarchy,
    opts: &LossOptions,
) -> BuiltLoss<'t> {
    let mut plan = SegmentPlan::disabled();
    let mut flat = Vec::new();
    let built = build_loss_in(tape, layers, relaxed, hier, opts, &mut plan, &mut flat);
    let leaves = flat
        .chunks(crate::relaxed::PARAMS_PER_LAYER)
        .map(|c| c.to_vec())
        .collect();
    BuiltLoss {
        loss: built.loss,
        leaves,
        edp: built.edp,
        energy_uj: built.energy_uj,
        latency: built.latency,
        penalty: built.penalty,
    }
}

/// Forward-only model prediction (energy µJ, latency cycles, EDP) at a
/// relaxed point — runs on the tape-free [`Values`] context, so value-only
/// re-evaluations record nothing and allocate almost nothing.
pub fn predict(
    layers: &[Layer],
    relaxed: &[RelaxedMapping],
    hier: &Hierarchy,
    opts: &LossOptions,
) -> (f64, f64, f64) {
    let mut plan = SegmentPlan::disabled();
    let mut leaves = Vec::new();
    let built = build_loss_in(Values, layers, relaxed, hier, opts, &mut plan, &mut leaves);
    (built.energy_uj, built.latency, built.edp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(), 2),
            Layer::once(Problem::matmul("b", 128, 256, 512).unwrap()),
        ]
    }

    fn start(layers: &[Layer]) -> Vec<RelaxedMapping> {
        layers
            .iter()
            .map(|_| {
                let mut r = RelaxedMapping::identity(Stationarity::WeightStationary);
                let v: Vec<f64> = (0..crate::relaxed::PARAMS_PER_LAYER)
                    .map(|i| 0.2 + 0.03 * i as f64)
                    .collect();
                r.set_params(&v);
                r
            })
            .collect()
    }

    #[test]
    fn loss_is_finite_and_backpropagates() {
        let layers = layers();
        let relaxed = start(&layers);
        let tape = Tape::new();
        let built = build_loss(
            &tape,
            &layers,
            &relaxed,
            &Hierarchy::gemmini(),
            &LossOptions::default(),
        );
        assert!(built.loss.value().is_finite());
        assert!(built.edp > 0.0);
        let grads = tape.backward(built.loss);
        let active: usize = built
            .leaves
            .iter()
            .flatten()
            .filter(|l| grads.wrt(**l) != 0.0)
            .count();
        assert!(active > 10);
    }

    #[test]
    fn predict_matches_tape_forward_bits() {
        let layers = layers();
        let relaxed = start(&layers);
        let hier = Hierarchy::gemmini();
        for opts in [
            LossOptions::default(),
            LossOptions {
                softmax_ordering: true,
                ..LossOptions::default()
            },
        ] {
            let tape = Tape::new();
            let built = build_loss(&tape, &layers, &relaxed, &hier, &opts);
            let (e, l, edp) = predict(&layers, &relaxed, &hier, &opts);
            assert_eq!(e.to_bits(), built.energy_uj.to_bits());
            assert_eq!(l.to_bits(), built.latency.to_bits());
            assert_eq!(edp.to_bits(), built.edp.to_bits());
        }
    }

    #[test]
    fn softmax_ordering_loss_close_to_best_fixed_ordering() {
        let layers = layers();
        let relaxed = start(&layers);
        let hier = Hierarchy::gemmini();
        let soft = LossOptions {
            softmax_ordering: true,
            ..LossOptions::default()
        };
        let (_, _, edp_soft) = predict(&layers, &relaxed, &hier, &soft);
        // Best fixed uniform ordering.
        let mut best = f64::INFINITY;
        for s in Stationarity::ALL {
            let fixed: Vec<RelaxedMapping> = relaxed
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.orders = [s; 4];
                    r
                })
                .collect();
            let (_, _, edp) = predict(&layers, &fixed, &hier, &LossOptions::default());
            best = best.min(edp);
        }
        // The softmax blend is bounded between best and worst options, and
        // with modest temperature should sit near the best.
        assert!(edp_soft >= best * 0.99);
        assert!(edp_soft <= best * 10.0);
    }

    #[test]
    fn fixed_hw_changes_prediction() {
        let layers = layers();
        let relaxed = start(&layers);
        let hier = Hierarchy::gemmini();
        let (_, _, derived) = predict(&layers, &relaxed, &hier, &LossOptions::default());
        let big = LossOptions {
            fixed_hw: Some(HardwareConfig::new(64, 1024.0, 4096.0).unwrap()),
            ..LossOptions::default()
        };
        let (_, _, fixed) = predict(&layers, &relaxed, &hier, &big);
        assert_ne!(derived, fixed);
    }

    #[test]
    fn repeat_counts_scale_sums() {
        let p = Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap();
        let hier = Hierarchy::gemmini();
        let relaxed = vec![RelaxedMapping::identity(Stationarity::WeightStationary)];
        let one = vec![Layer::once(p.clone())];
        let three = vec![Layer::repeated(p, 3)];
        let (e1, l1, _) = predict(&one, &relaxed, &hier, &LossOptions::default());
        let (e3, l3, _) = predict(&three, &relaxed, &hier, &LossOptions::default());
        assert!((e3 - 3.0 * e1).abs() / e3 < 1e-12);
        assert!((l3 - 3.0 * l1).abs() / l3 < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one relaxed mapping per layer")]
    fn mismatched_lengths_panic() {
        let tape = Tape::new();
        let layers = layers();
        let _ = build_loss(
            &tape,
            &layers,
            &[],
            &Hierarchy::gemmini(),
            &LossOptions::default(),
        );
    }
}
