//! Relaxed (continuous) mappings: the optimization variables of DOSA's
//! gradient-descent search (§3.1.2, §5.3).
//!
//! Per layer, DOSA optimizes the temporal tiling factors of the three
//! on-chip levels (registers, accumulator, scratchpad subnests) and the two
//! spatial factors Gemmini's WS dataflow supports, all in log space so they
//! stay positive. DRAM-level factors are not free variables: they are
//! inferred by dividing the problem bound by the product of the inner
//! factors (§5.3.3).

use dosa_accel::{level, Hierarchy, MAX_PE_SIDE, NUM_LEVELS};
use dosa_timeloop::{nearest_divisor, LoopOrder, Mapping, Stationarity};
use dosa_workload::{Dim, Problem, NUM_DIMS};

/// Number of free parameters per layer: 7 dims × 3 on-chip levels temporal
/// + 2 spatial factors.
pub const PARAMS_PER_LAYER: usize = NUM_DIMS * 3 + 2;

/// A continuous mapping for one layer: log-space tiling factors plus a
/// per-level loop-order (stationarity) choice.
///
/// # Examples
///
/// ```
/// use dosa_model::RelaxedMapping;
/// use dosa_timeloop::Stationarity;
/// use dosa_workload::Problem;
///
/// let p = Problem::conv("l", 1, 1, 56, 56, 64, 64, 1)?;
/// let r = RelaxedMapping::identity(Stationarity::WeightStationary);
/// let m = r.round(&p);
/// assert!(m.validate(&p, &dosa_accel::Hierarchy::gemmini()).is_ok());
/// # Ok::<(), dosa_workload::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxedMapping {
    /// `log_temporal[i][d]`: log temporal factor of dim `d` at level `i`
    /// (levels 0..3; DRAM inferred).
    pub log_temporal: [[f64; NUM_DIMS]; 3],
    /// Log spatial factor for `C` below the accumulator (`f_{S,1,C}`).
    pub log_spatial_c: f64,
    /// Log spatial factor for `K` below the scratchpad (`f_{S,2,K}`).
    pub log_spatial_k: f64,
    /// Per-level loop-order choice (applied as the canonical ordering).
    pub orders: [Stationarity; NUM_LEVELS],
}

impl RelaxedMapping {
    /// All factors 1 (everything at DRAM), with a uniform ordering.
    pub fn identity(order: Stationarity) -> RelaxedMapping {
        RelaxedMapping {
            log_temporal: [[0.0; NUM_DIMS]; 3],
            log_spatial_c: 0.0,
            log_spatial_k: 0.0,
            orders: [order; NUM_LEVELS],
        }
    }

    /// Lift an integer mapping into log space (DRAM temporal factors are
    /// dropped; they are re-inferred on evaluation and rounding).
    ///
    /// Loop orders are preserved only if they are canonical orderings; any
    /// other permutation maps to the nearest canonical choice by innermost
    /// dimension.
    pub fn from_mapping(m: &Mapping) -> RelaxedMapping {
        let mut log_temporal = [[0.0; NUM_DIMS]; 3];
        for (i, row) in log_temporal.iter_mut().enumerate() {
            for d in Dim::ALL {
                row[d.index()] = (m.temporal(i, d) as f64).ln();
            }
        }
        let orders = core::array::from_fn(|i| {
            let ord = &m.orders[i];
            *Stationarity::ALL
                .iter()
                .find(|s| LoopOrder::canonical(**s) == *ord)
                .unwrap_or(&Stationarity::WeightStationary)
        });
        RelaxedMapping {
            log_temporal,
            log_spatial_c: (m.spatial(level::ACCUMULATOR, Dim::C) as f64).ln(),
            log_spatial_k: (m.spatial(level::SCRATCHPAD, Dim::K) as f64).ln(),
            orders,
        }
    }

    /// Flatten to the parameter vector Adam optimizes (length
    /// [`PARAMS_PER_LAYER`]); layout: temporal level-major, then spatial C,
    /// spatial K.
    pub fn params(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(PARAMS_PER_LAYER);
        self.params_into(&mut v);
        v
    }

    /// Append the [`RelaxedMapping::params`] vector to `out` without
    /// allocating — the engine's per-step parameter refill path.
    pub fn params_into(&self, out: &mut Vec<f64>) {
        for row in &self.log_temporal {
            out.extend_from_slice(row);
        }
        out.push(self.log_spatial_c);
        out.push(self.log_spatial_k);
    }

    /// Inverse of [`RelaxedMapping::params`].
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != PARAMS_PER_LAYER`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), PARAMS_PER_LAYER);
        for (i, row) in self.log_temporal.iter_mut().enumerate() {
            row.copy_from_slice(&params[i * NUM_DIMS..(i + 1) * NUM_DIMS]);
        }
        self.log_spatial_c = params[3 * NUM_DIMS];
        self.log_spatial_k = params[3 * NUM_DIMS + 1];
    }

    /// The continuous factor value at `(level, dim)` for levels 0..3.
    pub fn temporal_value(&self, lvl: usize, d: Dim) -> f64 {
        self.log_temporal[lvl][d.index()].exp()
    }

    /// The inferred continuous DRAM factor for `d` (§5.3.3): the problem
    /// bound divided by the product of all inner factors.
    pub fn dram_factor(&self, problem: &Problem, d: Dim) -> f64 {
        let mut inner = 1.0f64;
        for lvl in 0..3 {
            inner *= self.temporal_value(lvl, d);
        }
        if d == Dim::C {
            inner *= self.log_spatial_c.exp();
        }
        if d == Dim::K {
            inner *= self.log_spatial_k.exp();
        }
        problem.size(d) as f64 / inner
    }

    /// Round to the nearest valid integer mapping (§5.3.2): for each
    /// dimension, walk factors innermost-to-outermost, rounding each to the
    /// nearest divisor of the remaining quotient (spatial factors capped at
    /// [`MAX_PE_SIDE`]); the DRAM factor absorbs the remainder.
    pub fn round(&self, problem: &Problem) -> Mapping {
        self.round_with_cap(problem, MAX_PE_SIDE)
    }

    /// [`RelaxedMapping::round`] with a tighter spatial cap — used when the
    /// PE array side is pinned (the Fig. 12 setting).
    pub fn round_with_cap(&self, problem: &Problem, spatial_cap: u64) -> Mapping {
        let cap = spatial_cap.clamp(1, MAX_PE_SIDE);
        let mut temporal = [[1u64; NUM_DIMS]; NUM_LEVELS];
        let mut spatial = [[1u64; NUM_DIMS]; NUM_LEVELS];

        for d in Dim::ALL {
            let mut remaining = problem.size(d);
            // Innermost to outermost: T0, S1 (C only), T1, S2 (K only), T2.
            let take = |target: f64, cap: Option<u64>, remaining: &mut u64| -> u64 {
                let f = nearest_divisor(*remaining, target, cap);
                *remaining /= f;
                f
            };
            temporal[0][d.index()] = take(self.temporal_value(0, d), None, &mut remaining);
            if d == Dim::C {
                spatial[level::ACCUMULATOR][d.index()] = take(
                    self.log_spatial_c.exp(),
                    Some(cap.min(remaining.max(1))),
                    &mut remaining,
                );
            }
            temporal[1][d.index()] = take(self.temporal_value(1, d), None, &mut remaining);
            if d == Dim::K {
                spatial[level::SCRATCHPAD][d.index()] = take(
                    self.log_spatial_k.exp(),
                    Some(cap.min(remaining.max(1))),
                    &mut remaining,
                );
            }
            temporal[2][d.index()] = take(self.temporal_value(2, d), None, &mut remaining);
            temporal[level::DRAM][d.index()] = remaining;
        }

        let orders = core::array::from_fn(|i| LoopOrder::canonical(self.orders[i]));
        Mapping {
            temporal,
            spatial,
            orders,
        }
    }

    /// Sum of `max(1 - f, 0)` over every factor including the inferred DRAM
    /// factors — the value of the invalid-mapping penalty (Eq. 18) at the
    /// current point (used for reporting; the differentiable version lives
    /// in the diff module).
    pub fn penalty_value(&self, problem: &Problem) -> f64 {
        let mut pen = 0.0;
        for row in &self.log_temporal {
            for &lf in row {
                pen += (1.0 - lf.exp()).max(0.0);
            }
        }
        pen += (1.0 - self.log_spatial_c.exp()).max(0.0);
        pen += (1.0 - self.log_spatial_k.exp()).max(0.0);
        for d in Dim::ALL {
            pen += (1.0 - self.dram_factor(problem, d)).max(0.0);
        }
        pen
    }
}

/// Round a slice of per-layer relaxed mappings and validate them.
///
/// # Panics
///
/// Panics if rounding ever produces an invalid mapping (a bug — rounding is
/// correct by construction).
pub fn round_all(
    relaxed: &[RelaxedMapping],
    problems: &[Problem],
    hier: &Hierarchy,
) -> Vec<Mapping> {
    relaxed
        .iter()
        .zip(problems)
        .map(|(r, p)| {
            let m = r.round(p);
            m.validate(p, hier)
                .unwrap_or_else(|e| panic!("rounding produced invalid mapping for {p}: {e}"));
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> Problem {
        Problem::conv("t", 3, 3, 56, 56, 64, 96, 1).unwrap()
    }

    #[test]
    fn round_trip_preserves_integer_mappings() {
        let p = problem();
        let hier = Hierarchy::gemmini();
        let mut rng_mapping = Mapping::all_at_dram(&p);
        rng_mapping.temporal[0][Dim::Q.index()] = 14;
        rng_mapping.temporal[1][Dim::P.index()] = 8;
        rng_mapping.temporal[3][Dim::Q.index()] = 4;
        rng_mapping.temporal[3][Dim::P.index()] = 7;
        rng_mapping.temporal[3][Dim::R.index()] = 3;
        rng_mapping.temporal[3][Dim::S.index()] = 1;
        rng_mapping.temporal[0][Dim::S.index()] = 3;
        rng_mapping.temporal[3][Dim::N.index()] = 1;
        rng_mapping.temporal[3][Dim::C.index()] = 1;
        rng_mapping.spatial[level::ACCUMULATOR][Dim::C.index()] = 64;
        rng_mapping.spatial[level::SCRATCHPAD][Dim::K.index()] = 32;
        rng_mapping.temporal[3][Dim::K.index()] = 3;
        rng_mapping.validate(&p, &hier).unwrap();

        let relaxed = RelaxedMapping::from_mapping(&rng_mapping);
        let rounded = relaxed.round(&p);
        assert_eq!(rounded, {
            let mut expect = rng_mapping.clone();
            // Orders collapse to canonical (they already are).
            expect.orders = rng_mapping.orders;
            expect
        });
    }

    #[test]
    fn rounding_always_valid_even_from_garbage() {
        let p = problem();
        let hier = Hierarchy::gemmini();
        for seed in 0..50 {
            let mut r = RelaxedMapping::identity(Stationarity::WeightStationary);
            // Deterministic pseudo-garbage parameters in [-2, 4).
            let mut v = Vec::new();
            let mut x = seed as f64 * 0.7368;
            for _ in 0..PARAMS_PER_LAYER {
                x = (x * 9301.0 + 49297.0) % 233280.0;
                v.push(x / 233280.0 * 6.0 - 2.0);
            }
            r.set_params(&v);
            let m = r.round(&p);
            m.validate(&p, &hier)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn params_round_trip() {
        let mut r = RelaxedMapping::identity(Stationarity::OutputStationary);
        let v: Vec<f64> = (0..PARAMS_PER_LAYER)
            .map(|i| i as f64 * 0.1 - 1.0)
            .collect();
        r.set_params(&v);
        assert_eq!(r.params(), v);
    }

    #[test]
    fn dram_factor_inference() {
        let p = problem();
        let mut r = RelaxedMapping::identity(Stationarity::WeightStationary);
        r.log_temporal[0][Dim::P.index()] = (7.0f64).ln();
        assert!((r.dram_factor(&p, Dim::P) - 8.0).abs() < 1e-9);
        assert!((r.dram_factor(&p, Dim::K) - 96.0).abs() < 1e-9);
        r.log_spatial_k = (8.0f64).ln();
        assert!((r.dram_factor(&p, Dim::K) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn penalty_detects_overflowed_products() {
        let p = problem();
        let mut r = RelaxedMapping::identity(Stationarity::WeightStationary);
        assert_eq!(r.penalty_value(&p), 0.0);
        // Push P's inner product beyond the problem bound: DRAM factor < 1.
        r.log_temporal[0][Dim::P.index()] = (112.0f64).ln();
        assert!(r.penalty_value(&p) > 0.0);
    }

    #[test]
    fn spatial_rounding_respects_pe_cap() {
        let p = Problem::conv("wide", 1, 1, 4, 4, 512, 512, 1).unwrap();
        let mut r = RelaxedMapping::identity(Stationarity::WeightStationary);
        r.log_spatial_c = (512.0f64).ln();
        r.log_spatial_k = (512.0f64).ln();
        let m = r.round(&p);
        assert!(m.spatial(level::ACCUMULATOR, Dim::C) <= MAX_PE_SIDE);
        assert!(m.spatial(level::SCRATCHPAD, Dim::K) <= MAX_PE_SIDE);
        m.validate(&p, &Hierarchy::gemmini()).unwrap();
    }
}
