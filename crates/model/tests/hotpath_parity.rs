//! Hot-path parity for the generic loss builder: [`build_loss_in`] on the
//! new SoA [`Tape`] must match the pre-refactor [`LegacyTape`] bit-for-bit
//! on randomized multi-layer parameter points, and the segmented backward
//! sweep must be bit-identical to the flat sweep at every worker budget.

use dosa_accel::Hierarchy;
use dosa_autodiff::{LegacyTape, Scalar, SegScratch, SegmentPlan, Tape};
use dosa_model::{build_loss_in, LossOptions, RelaxedMapping, PARAMS_PER_LAYER};
use dosa_timeloop::Stationarity;
use dosa_workload::{Layer, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn layers() -> Vec<Layer> {
    vec![
        Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(), 2),
        Layer::once(Problem::matmul("b", 128, 256, 512).unwrap()),
        Layer::once(Problem::conv("c", 1, 1, 14, 14, 256, 128, 1).unwrap()),
    ]
}

fn random_start(layers: &[Layer], rng: &mut StdRng) -> Vec<RelaxedMapping> {
    layers
        .iter()
        .map(|_| {
            let mut r = RelaxedMapping::identity(Stationarity::WeightStationary);
            let v: Vec<f64> = (0..PARAMS_PER_LAYER)
                .map(|_| rng.gen_range(0.05f64..1.5))
                .collect();
            r.set_params(&v);
            r
        })
        .collect()
}

fn options() -> [LossOptions; 2] {
    [
        LossOptions::default(),
        LossOptions {
            softmax_ordering: true,
            ..LossOptions::default()
        },
    ]
}

/// The legacy AoS tape and the new SoA tape produce bit-identical loss
/// values and leaf gradients on randomized parameter points, for both the
/// fixed-ordering and softmax-ordering losses.
#[test]
fn legacy_and_soa_tapes_agree_bitwise_on_random_points() {
    let layers = layers();
    let hier = Hierarchy::gemmini();
    let mut rng = StdRng::seed_from_u64(61);
    for round in 0..8 {
        let relaxed = random_start(&layers, &mut rng);
        for opts in options() {
            let tape = Tape::new();
            let mut leaves = Vec::new();
            let built = build_loss_in(
                &tape,
                &layers,
                &relaxed,
                &hier,
                &opts,
                &mut SegmentPlan::disabled(),
                &mut leaves,
            );
            let grads = tape.backward(built.loss);
            let flat = grads.wrt_slice(&leaves);

            let legacy = LegacyTape::new();
            let mut lleaves = Vec::new();
            let lbuilt = build_loss_in(
                &legacy,
                &layers,
                &relaxed,
                &hier,
                &opts,
                &mut SegmentPlan::disabled(),
                &mut lleaves,
            );
            assert_eq!(
                lbuilt.loss.value().to_bits(),
                built.loss.value().to_bits(),
                "loss diverged on round {round}"
            );
            assert_eq!(lbuilt.edp.value().to_bits(), built.edp.value().to_bits());
            let lgrads = legacy.backward(lbuilt.loss);
            assert_eq!(lleaves.len(), leaves.len());
            for (i, &lv) in lleaves.iter().enumerate() {
                assert_eq!(
                    lgrads.wrt(lv).to_bits(),
                    flat[i].to_bits(),
                    "gradient {i} diverged on round {round}"
                );
            }
        }
    }
}

/// The segmented sweep over the real model loss — per-layer factor,
/// derivation, and performance groups — is bit-identical to the flat
/// backward sweep for worker budgets 1, 2, and 8.
#[test]
fn segmented_model_backward_matches_flat_for_every_worker_budget() {
    let layers = layers();
    let hier = Hierarchy::gemmini();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..4 {
        let relaxed = random_start(&layers, &mut rng);
        for opts in options() {
            let tape = Tape::new();
            let mut plan = SegmentPlan::new();
            let mut leaves = Vec::new();
            let built = build_loss_in(
                &tape,
                &layers,
                &relaxed,
                &hier,
                &opts,
                &mut plan,
                &mut leaves,
            );
            let reference = tape.backward(built.loss);
            let mut scratch = SegScratch::new();
            for threads in [1usize, 2, 8] {
                let view = tape.backward_segmented(built.loss, &plan, threads, &mut scratch);
                for &leaf in &leaves {
                    assert_eq!(
                        view.wrt(leaf).to_bits(),
                        reference.wrt(leaf).to_bits(),
                        "diverged at {threads} workers"
                    );
                }
            }
        }
    }
}
