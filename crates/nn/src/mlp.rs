//! A small fully-connected network with hand-rolled backpropagation.
//!
//! The paper's learned latency model (§4.7) is a Mind-Mappings-style MLP
//! with 7 hidden fully-connected layers and ~5.7k parameters, trained to
//! predict the residual between the analytical model's latency and the
//! measured Gemmini-RTL latency. This implementation matches that shape
//! (7 hidden layers of width 28 ≈ 5.8k parameters at 33 inputs) and adds a
//! tape-based forward pass so the trained network stays differentiable with
//! respect to its *inputs* inside DOSA's gradient-descent search.

use dosa_autodiff::{Tape, Var};
use rand::Rng;

/// One dense layer: `y = W x + b` with row-major weights.
#[derive(Debug, Clone)]
struct Dense {
    weights: Vec<f64>, // out x in
    bias: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut impl Rng) -> Dense {
        // He initialization for ReLU networks.
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            weights,
            bias: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.bias[o];
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            out.push(acc);
        }
    }
}

/// A multilayer perceptron with ReLU hidden activations and a scalar linear
/// output.
///
/// # Examples
///
/// ```
/// use dosa_nn::Mlp;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::paper_architecture(4, &mut rng);
/// let y = mlp.forward(&[0.1, -0.2, 0.3, 0.4]);
/// assert!(y.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Per-feature normalization subtracted before the first layer.
    pub norm_mean: Vec<f64>,
    /// Per-feature normalization scale.
    pub norm_std: Vec<f64>,
}

impl Mlp {
    /// Hidden width used by [`Mlp::paper_architecture`].
    pub const HIDDEN_WIDTH: usize = 28;
    /// Hidden depth used by [`Mlp::paper_architecture`] (§4.7: 7 hidden
    /// fully-connected layers).
    pub const HIDDEN_LAYERS: usize = 7;

    /// Build an MLP with the given layer sizes (including input and the
    /// final scalar output).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or the last is not 1.
    pub fn new(sizes: &[usize], rng: &mut impl Rng) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert_eq!(
            *sizes.last().expect("nonempty"),
            1,
            "scalar output expected"
        );
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            norm_mean: vec![0.0; sizes[0]],
            norm_std: vec![1.0; sizes[0]],
        }
    }

    /// The architecture of §4.7: 7 hidden layers, scalar output
    /// (≈5.7k parameters at the 33-feature input of the latency model).
    pub fn paper_architecture(inputs: usize, rng: &mut impl Rng) -> Mlp {
        let mut sizes = vec![inputs];
        sizes.extend(std::iter::repeat_n(Self::HIDDEN_WIDTH, Self::HIDDEN_LAYERS));
        sizes.push(1);
        Mlp::new(&sizes, rng)
    }

    /// Number of input features.
    pub fn num_inputs(&self) -> usize {
        self.layers[0].inputs
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.bias.len())
            .sum()
    }

    /// Fit the input normalization to a dataset (mean / std per feature).
    pub fn fit_normalization(&mut self, features: &[Vec<f64>]) {
        let n = features.len().max(1) as f64;
        let dim = self.num_inputs();
        let mut mean = vec![0.0; dim];
        for f in features {
            for (m, x) in mean.iter_mut().zip(f) {
                *m += x / n;
            }
        }
        let mut var = vec![0.0; dim];
        for f in features {
            for ((v, x), m) in var.iter_mut().zip(f).zip(&mean) {
                *v += (x - m) * (x - m) / n;
            }
        }
        self.norm_mean = mean;
        self.norm_std = var.into_iter().map(|v| v.sqrt().max(1e-6)).collect();
    }

    fn normalize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.norm_mean)
            .zip(&self.norm_std)
            .map(|((x, m), s)| (x - m) / s)
            .collect()
    }

    /// Forward pass producing the scalar output.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Mlp::num_inputs`].
    pub fn forward(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_inputs(), "feature dimension mismatch");
        let mut a = self.normalize(x);
        let mut z = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&a, &mut z);
            if li + 1 < self.layers.len() {
                for v in z.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut a, &mut z);
        }
        a[0]
    }

    /// Forward and backward pass for one sample; returns the output and
    /// accumulates parameter gradients of `0.5*(y - target)^2` into `grads`
    /// (laid out layer by layer: weights then bias).
    pub(crate) fn forward_backward(&self, x: &[f64], target: f64, grads: &mut [f64]) -> f64 {
        let mut activations: Vec<Vec<f64>> = vec![self.normalize(x)];
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = Vec::new();
            layer.forward(activations.last().expect("nonempty"), &mut z);
            if li + 1 < self.layers.len() {
                for v in z.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            activations.push(z);
        }
        let y = activations.last().expect("nonempty")[0];

        // Backward.
        let mut delta = vec![y - target]; // dL/dy for 0.5*(y-t)^2
        let mut offset = grads.len();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            offset -= layer.weights.len() + layer.bias.len();
            let (gw, gb) = grads[offset..offset + layer.weights.len() + layer.bias.len()]
                .split_at_mut(layer.weights.len());
            let input = &activations[li];
            let mut next_delta = vec![0.0; layer.inputs];
            for o in 0..layer.outputs {
                let d = delta[o];
                gb[o] += d;
                let row = &mut gw[o * layer.inputs..(o + 1) * layer.inputs];
                let wrow = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                for i in 0..layer.inputs {
                    row[i] += d * input[i];
                    next_delta[i] += d * wrow[i];
                }
            }
            // ReLU derivative w.r.t. the previous layer's post-activation.
            if li > 0 {
                for (nd, a) in next_delta.iter_mut().zip(&activations[li]) {
                    if *a <= 0.0 {
                        *nd = 0.0;
                    }
                }
            }
            delta = next_delta;
        }
        y
    }

    /// Flat view of all parameters (weights then bias, per layer).
    pub fn params(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            v.extend_from_slice(&l.weights);
            v.extend_from_slice(&l.bias);
        }
        v
    }

    /// Overwrite all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params());
        let mut off = 0;
        for l in &mut self.layers {
            let nw = l.weights.len();
            l.weights.copy_from_slice(&params[off..off + nw]);
            off += nw;
            let nb = l.bias.len();
            l.bias.copy_from_slice(&params[off..off + nb]);
            off += nb;
        }
    }

    /// Record the forward pass on an autodiff [`Tape`] with the network
    /// weights as constants, so the output is differentiable with respect
    /// to the *input* variables — how the trained correction model joins
    /// DOSA's gradient-descent loss (§4.7, §6.5).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Mlp::num_inputs`].
    pub fn forward_tape<'t>(&self, tape: &'t Tape, x: &[Var<'t>]) -> Var<'t> {
        assert_eq!(x.len(), self.num_inputs(), "feature dimension mismatch");
        let mut a: Vec<Var<'t>> = x
            .iter()
            .zip(self.norm_mean.iter().zip(&self.norm_std))
            .map(|(&v, (m, s))| (v - *m) / *s)
            .collect();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = Vec::with_capacity(layer.outputs);
            for o in 0..layer.outputs {
                let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                let mut acc = tape.constant(layer.bias[o]);
                for (w, xi) in row.iter().zip(&a) {
                    acc = acc + *xi * *w;
                }
                if li + 1 < self.layers.len() {
                    acc = acc.relu();
                }
                z.push(acc);
            }
            a = z;
        }
        a[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_architecture_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::paper_architecture(33, &mut rng);
        // 34*28 + 6*29*28 + 29 = 5853 ≈ the paper's 5737.
        assert_eq!(mlp.num_params(), 34 * 28 + 6 * 29 * 28 + 29);
        assert!((mlp.num_params() as i64 - 5737).abs() < 300);
    }

    #[test]
    fn params_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[3, 5, 1], &mut rng);
        let p = mlp.params();
        let mut p2 = p.clone();
        for v in p2.iter_mut() {
            *v += 0.5;
        }
        mlp.set_params(&p2);
        assert_eq!(mlp.params(), p2);
        assert_ne!(mlp.params(), p);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[4, 6, 6, 1], &mut rng);
        // Bias the network away from dead ReLUs.
        let mut p = mlp.params();
        for v in p.iter_mut() {
            *v += 0.05;
        }
        mlp.set_params(&p);
        let x = [0.3, -0.7, 1.2, 0.4];
        let target = 0.9;
        let mut grads = vec![0.0; mlp.num_params()];
        let _ = mlp.forward_backward(&x, target, &mut grads);
        let loss = |m: &Mlp| {
            let y = m.forward(&x);
            0.5 * (y - target) * (y - target)
        };
        let eps = 1e-6;
        let mut worst: f64 = 0.0;
        for i in (0..mlp.num_params()).step_by(7) {
            let mut plus = mlp.clone();
            let mut pp = plus.params();
            pp[i] += eps;
            plus.set_params(&pp);
            let mut minus = mlp.clone();
            let mut pm = minus.params();
            pm[i] -= eps;
            minus.set_params(&pm);
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let denom = grads[i].abs().max(fd.abs()).max(1e-6);
            worst = worst.max((grads[i] - fd).abs() / denom);
        }
        assert!(worst < 1e-4, "worst relative grad error {worst}");
    }

    #[test]
    fn tape_forward_matches_plain_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[5, 8, 8, 1], &mut rng);
        mlp.fit_normalization(&[
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![2.0, 1.0, 0.0, -1.0, -2.0],
        ]);
        let x = [0.5, 1.5, -0.5, 2.0, 0.0];
        let plain = mlp.forward(&x);
        let tape = Tape::new();
        let vars: Vec<_> = x.iter().map(|&v| tape.var(v)).collect();
        let y = mlp.forward_tape(&tape, &vars);
        assert!((plain - y.value()).abs() < 1e-12);
        // Input gradients exist.
        let g = tape.backward(y);
        assert!(vars.iter().any(|v| g.wrt(*v) != 0.0));
    }

    #[test]
    fn normalization_is_applied() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&[2, 4, 1], &mut rng);
        let before = mlp.forward(&[10.0, 20.0]);
        mlp.fit_normalization(&[vec![10.0, 20.0], vec![30.0, 40.0]]);
        let after = mlp.forward(&[10.0, 20.0]);
        assert_ne!(before, after);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_input_dim_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&[3, 4, 1], &mut rng);
        let _ = mlp.forward(&[1.0]);
    }
}
