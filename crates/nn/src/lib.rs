//! # dosa-nn
//!
//! A hand-rolled multilayer perceptron used as DOSA's learned latency
//! correction model (§4.7): a Mind-Mappings-style network with 7 hidden
//! fully-connected layers and ≈5.7k parameters that predicts the residual
//! between the analytical model and measured Gemmini-RTL latency.
//!
//! Backpropagation is implemented directly (parameter gradients for Adam
//! training), and [`Mlp::forward_tape`] replays the trained network on the
//! [`dosa_autodiff`] tape so it remains differentiable with respect to its
//! inputs inside the one-loop gradient-descent search.
//!
//! ## Example
//!
//! ```
//! use dosa_nn::{train, Dataset, Mlp, TrainConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut data = Dataset::default();
//! for i in 0..64 {
//!     let x = i as f64 / 64.0;
//!     data.push(vec![x], 2.0 * x - 1.0);
//! }
//! let mut mlp = Mlp::new(&[1, 8, 1], &mut rng);
//! let cfg = TrainConfig { epochs: 50, ..TrainConfig::default() };
//! let history = train(&mut mlp, &data, &cfg, &mut rng);
//! assert!(history.last().unwrap() < &history[0]);
//! ```

#![warn(missing_docs)]

mod mlp;
mod train;

pub use mlp::Mlp;
pub use train::{mse, spearman, train, Dataset, TrainConfig};
