//! Adam-based training loop for the correction MLP (§6.5.1), plus the
//! Spearman rank-correlation metric used by Figures 10 and 11.

use crate::mlp::Mlp;
use rand::seq::SliceRandom;
use rand::Rng;

/// A regression dataset: feature rows and scalar targets.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature vectors.
    pub features: Vec<Vec<f64>>,
    /// Regression targets.
    pub targets: Vec<f64>,
}

impl Dataset {
    /// Add one sample.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        self.features.push(features);
        self.targets.push(target);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Split into (train, test) with `test_fraction` of samples held out,
    /// shuffled by `rng`.
    pub fn split(&self, test_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(self.len()));
        let take = |ids: &[usize]| Dataset {
            features: ids.iter().map(|&i| self.features[i].clone()).collect(),
            targets: ids.iter().map(|&i| self.targets[i]).collect(),
        };
        (take(train_idx), take(test_idx))
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 400,
            batch_size: 64,
            learning_rate: 3e-3,
        }
    }
}

/// Train `mlp` on `data` with Adam and MSE loss; fits input normalization
/// first. Returns the mean loss per epoch.
pub fn train(mlp: &mut Mlp, data: &Dataset, cfg: &TrainConfig, rng: &mut impl Rng) -> Vec<f64> {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    mlp.fit_normalization(&data.features);

    let n_params = mlp.num_params();
    let mut params = mlp.params();
    let mut m = vec![0.0; n_params];
    let mut v = vec![0.0; n_params];
    let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    let mut t = 0usize;

    let mut history = Vec::with_capacity(cfg.epochs);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut grads = vec![0.0; n_params];

    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(cfg.batch_size.max(1)) {
            grads.iter_mut().for_each(|g| *g = 0.0);
            for &i in batch {
                let y = mlp.forward_backward(&data.features[i], data.targets[i], &mut grads);
                let d = y - data.targets[i];
                epoch_loss += 0.5 * d * d;
            }
            let scale = 1.0 / batch.len() as f64;
            t += 1;
            let bc1 = 1.0 - b1.powi(t as i32);
            let bc2 = 1.0 - b2.powi(t as i32);
            for i in 0..n_params {
                let g = grads[i] * scale;
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                params[i] -= cfg.learning_rate * (m[i] / bc1) / ((v[i] / bc2).sqrt() + eps);
            }
            mlp.set_params(&params);
        }
        history.push(epoch_loss / data.len() as f64);
    }
    history
}

/// Mean squared error of `mlp` on `data`.
pub fn mse(mlp: &Mlp, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.features
        .iter()
        .zip(&data.targets)
        .map(|(x, &t)| {
            let d = mlp.forward(x) - t;
            d * d
        })
        .sum::<f64>()
        / data.len() as f64
}

/// Spearman rank correlation between two equal-length slices — the accuracy
/// metric of Figures 10 and 11 (§6.5.2). Ties receive average ranks.
///
/// Returns 0 for slices shorter than 2.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman needs equal lengths");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut r = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    // dosa-lint: allow(float-eq) — degenerate-variance guard before the
    // division below; only an exactly-zero sum of squares divides by zero.
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_learns_a_simple_function() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut data = Dataset::default();
        for _ in 0..256 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            data.push(vec![x, y], 0.5 * x - 0.8 * y + 0.1);
        }
        let mut mlp = Mlp::new(&[2, 16, 16, 1], &mut rng);
        let before = mse(&mlp, &data);
        let cfg = TrainConfig {
            epochs: 120,
            batch_size: 32,
            learning_rate: 5e-3,
        };
        let history = train(&mut mlp, &data, &cfg, &mut rng);
        let after = mse(&mlp, &data);
        assert!(after < before * 0.05, "before={before} after={after}");
        assert!(history.last().expect("epochs ran") < &history[0]);
    }

    #[test]
    fn split_partitions_samples() {
        let mut data = Dataset::default();
        for i in 0..100 {
            data.push(vec![i as f64], i as f64);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = data.split(0.2, &mut rng);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<f64> = train.targets.iter().chain(&test.targets).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn spearman_detects_monotone_relations() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x.exp()).collect(); // monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_noise() {
        let a = vec![1.0, 1.0, 2.0, 3.0];
        let b = vec![1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let flat = vec![5.0; 4];
        assert_eq!(spearman(&a, &flat), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_empty_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[2, 4, 1], &mut rng);
        let _ = train(
            &mut mlp,
            &Dataset::default(),
            &TrainConfig::default(),
            &mut rng,
        );
    }
}
