//! Latency models for real-hardware DSE (§4.7, §6.5): the analytical-only
//! model, a DNN-only model trained from "measured" RTL latencies, and the
//! DNN-augmented analytical model — plus the one-loop GD search built on
//! top of them (Figure 12) and the feature extraction they share.

use crate::gd::{GdConfig, SearchResult};
use crate::request::{SearchRequest, Surrogate};
use crate::service::SearchService;
use dosa_accel::{HardwareConfig, Hierarchy, ACC_WORD_BYTES};
use dosa_autodiff::{Tape, Var};
use dosa_model::{HwVars, RelaxedMapping, PARAMS_PER_LAYER};
use dosa_nn::{train, Dataset, Mlp, TrainConfig};
use dosa_rtl::{simulate_latency, RtlConfig};
use dosa_timeloop::{evaluate_layer, fits, random_mapping, Mapping, ModelPerf};
use dosa_workload::{Dim, Layer, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of input features of the learned latency model: 7 log layer
/// dimensions + the per-layer mapping parameters + 3 log hardware
/// parameters (§4.7: "the model's inputs include the layer's dimensions, a
/// mapping, and a hardware configuration").
pub const NUM_FEATURES: usize = 7 + PARAMS_PER_LAYER + 3;

/// Plain-value feature vector for one (layer, mapping, hardware) triple.
pub fn features(problem: &Problem, relaxed: &RelaxedMapping, hw: &HardwareConfig) -> Vec<f64> {
    let mut f = Vec::with_capacity(NUM_FEATURES);
    for d in Dim::ALL {
        f.push((problem.size(d) as f64).ln());
    }
    f.extend(relaxed.params());
    f.push((hw.pe_side() as f64).ln());
    f.push(hw.acc_kb().ln());
    f.push(hw.spad_kb().ln());
    f
}

/// Tape-recorded feature vector: constants for the layer dimensions, the
/// raw log-factor leaves for the mapping, and (possibly derived) hardware
/// variables — keeping the learned model differentiable w.r.t. the search
/// variables.
pub fn feature_vars<'t>(
    tape: &'t Tape,
    problem: &Problem,
    leaves: &[Var<'t>],
    hw: &HwVars<Var<'t>>,
) -> Vec<Var<'t>> {
    let mut f = Vec::with_capacity(NUM_FEATURES);
    for d in Dim::ALL {
        f.push(tape.constant((problem.size(d) as f64).ln()));
    }
    f.extend_from_slice(leaves);
    f.push(hw.pe_side.ln());
    f.push((hw.acc_words * (ACC_WORD_BYTES as f64 / 1024.0)).ln());
    f.push((hw.spad_words * (1.0 / 1024.0)).ln());
    f
}

/// One "FireSim measurement": a layer, mapping, hardware configuration and
/// the simulated RTL latency alongside the analytical prediction.
#[derive(Debug, Clone)]
pub struct RtlSample {
    /// The layer shape.
    pub problem: Problem,
    /// The evaluated mapping.
    pub mapping: Mapping,
    /// The hardware configuration it ran on.
    pub hw: HardwareConfig,
    /// Simulated Gemmini-RTL latency (cycles).
    pub rtl_cycles: f64,
    /// Analytical-model latency (cycles).
    pub analytical_cycles: f64,
}

/// A dataset of RTL measurements (the paper's 1567 random mappings,
/// §6.5.1).
#[derive(Debug, Clone, Default)]
pub struct RtlDataset {
    /// The samples.
    pub samples: Vec<RtlSample>,
}

/// Generate an RTL training dataset: `n` random mappings roughly evenly
/// distributed over `layers` (§6.5.1), on 16×16-PE hardware with randomized
/// buffer sizes.
pub fn generate_rtl_dataset(
    layers: &[Layer],
    n: usize,
    hier: &Hierarchy,
    rtl_cfg: &RtlConfig,
    seed: u64,
) -> RtlDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(n);
    let mut i = 0usize;
    let mut attempts = 0usize;
    while samples.len() < n && attempts < 50 * n {
        attempts += 1;
        let layer = &layers[i % layers.len()];
        let acc_kb = 2f64.powf(rng.gen_range(4.0..8.0)).round(); // 16..256 KB
        let spad_kb = 2f64.powf(rng.gen_range(6.0..10.0)).round(); // 64..1024 KB

        // dosa-lint: allow(panic-perimeter) — the sampled ranges (16 PEs,
        // 16..256 KB acc, 64..1024 KB spad) are valid by construction; a
        // failure here means the sampler itself broke.
        let hw = HardwareConfig::new(16, acc_kb, spad_kb).expect("valid");
        let mapping = random_mapping(&mut rng, &layer.problem, hier, hw.pe_side());
        if !fits(&layer.problem, &mapping, &hw, hier) {
            continue;
        }
        let analytical = evaluate_layer(&layer.problem, &mapping, &hw, hier).latency_cycles;
        let rtl = simulate_latency(&layer.problem, &mapping, &hw, hier, rtl_cfg);
        samples.push(RtlSample {
            problem: layer.problem.clone(),
            mapping,
            hw,
            rtl_cycles: rtl,
            analytical_cycles: analytical,
        });
        i += 1;
    }
    RtlDataset { samples }
}

/// Which latency model drives the search (§6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModelKind {
    /// The differentiable analytical model alone (§4.1–4.5).
    Analytical,
    /// A DNN trained from scratch on measured latencies.
    DnnOnly,
    /// The analytical model corrected by a DNN trained on residuals (§4.7).
    Combined,
}

impl LatencyModelKind {
    /// Display name matching Figure 12's legend.
    pub fn name(self) -> &'static str {
        match self {
            LatencyModelKind::Analytical => "DOSA Analytical",
            LatencyModelKind::DnnOnly => "DOSA DNN-Only",
            LatencyModelKind::Combined => "DOSA Analytical+DNN",
        }
    }
}

/// A trained latency predictor.
#[derive(Debug, Clone)]
pub struct LatencyPredictor {
    /// The model kind.
    pub kind: LatencyModelKind,
    mlp: Option<Mlp>,
}

impl LatencyPredictor {
    /// The analytical-only predictor (no learned component).
    pub fn analytical() -> LatencyPredictor {
        LatencyPredictor {
            kind: LatencyModelKind::Analytical,
            mlp: None,
        }
    }

    /// Train a predictor of the given kind on `data`. For
    /// [`LatencyModelKind::Analytical`] this is a no-op returning the
    /// analytical predictor. Both learned models share the architecture
    /// and hyperparameters (§6.5.1).
    pub fn fit(
        kind: LatencyModelKind,
        data: &RtlDataset,
        cfg: &TrainConfig,
        seed: u64,
    ) -> LatencyPredictor {
        if kind == LatencyModelKind::Analytical {
            return LatencyPredictor::analytical();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::paper_architecture(NUM_FEATURES, &mut rng);
        let mut ds = Dataset::default();
        for s in &data.samples {
            let relaxed = RelaxedMapping::from_mapping(&s.mapping);
            let f = features(&s.problem, &relaxed, &s.hw);
            let target = match kind {
                LatencyModelKind::DnnOnly => s.rtl_cycles.ln(),
                LatencyModelKind::Combined => (s.rtl_cycles / s.analytical_cycles).ln(),
                LatencyModelKind::Analytical => unreachable!(),
            };
            ds.push(f, target);
        }
        let _ = train(&mut mlp, &ds, cfg, &mut rng);
        LatencyPredictor {
            kind,
            mlp: Some(mlp),
        }
    }

    /// Predicted latency in cycles for an integer mapping.
    pub fn predict(
        &self,
        problem: &Problem,
        mapping: &Mapping,
        hw: &HardwareConfig,
        hier: &Hierarchy,
    ) -> f64 {
        let analytical = evaluate_layer(problem, mapping, hw, hier).latency_cycles;
        match (self.kind, &self.mlp) {
            (LatencyModelKind::Analytical, _) => analytical,
            (kind, Some(mlp)) => {
                let relaxed = RelaxedMapping::from_mapping(mapping);
                let out = mlp.forward(&features(problem, &relaxed, hw));
                match kind {
                    LatencyModelKind::DnnOnly => out.clamp(0.0, 40.0).exp(),
                    LatencyModelKind::Combined => analytical * out.clamp(-2.0, 6.0).exp(),
                    LatencyModelKind::Analytical => unreachable!(),
                }
            }
            _ => analytical,
        }
    }

    /// Tape-recorded latency prediction, differentiable w.r.t. the leaves.
    pub(crate) fn latency_var<'t>(
        &self,
        tape: &'t Tape,
        problem: &Problem,
        leaves: &[Var<'t>],
        hw: &HwVars<Var<'t>>,
        analytical: Var<'t>,
    ) -> Var<'t> {
        match (self.kind, &self.mlp) {
            (LatencyModelKind::Analytical, _) => analytical,
            (kind, Some(mlp)) => {
                let f = feature_vars(tape, problem, leaves, hw);
                let out = mlp.forward_tape(tape, &f);
                match kind {
                    LatencyModelKind::DnnOnly => {
                        out.min(tape.constant(40.0)).max(tape.constant(0.0)).exp()
                    }
                    LatencyModelKind::Combined => {
                        analytical * out.min(tape.constant(6.0)).max(tape.constant(-2.0)).exp()
                    }
                    LatencyModelKind::Analytical => unreachable!(),
                }
            }
            _ => analytical,
        }
    }

    /// Whole-model performance prediction for rounded mappings: energy from
    /// the reference model (energy is always analytical, §6.5), latency
    /// from this predictor.
    pub fn predict_model(
        &self,
        layers: &[Layer],
        mappings: &[Mapping],
        hw: &HardwareConfig,
        hier: &Hierarchy,
    ) -> ModelPerf {
        let mut energy = 0.0;
        let mut latency = 0.0;
        for (layer, m) in layers.iter().zip(mappings) {
            let ref_perf = evaluate_layer(&layer.problem, m, hw, hier);
            energy += ref_perf.energy_uj * layer.count as f64;
            latency += self.predict(&layer.problem, m, hw, hier) * layer.count as f64;
        }
        ModelPerf {
            latency_cycles: latency,
            energy_uj: energy,
        }
    }
}

/// "Measured" whole-model performance: RTL-simulated latency (the FireSim
/// role) combined with reference-model energy, as in §6.5's evaluation.
pub fn evaluate_rtl(
    layers: &[Layer],
    mappings: &[Mapping],
    hw: &HardwareConfig,
    hier: &Hierarchy,
    rtl_cfg: &RtlConfig,
) -> ModelPerf {
    let mut energy = 0.0;
    let mut latency = 0.0;
    for (layer, m) in layers.iter().zip(mappings) {
        let ref_perf = evaluate_layer(&layer.problem, m, hw, hier);
        energy += ref_perf.energy_uj * layer.count as f64;
        latency += simulate_latency(&layer.problem, m, hw, hier, rtl_cfg) * layer.count as f64;
    }
    ModelPerf {
        latency_cycles: latency,
        energy_uj: energy,
    }
}

/// One-loop GD search against a (possibly learned) latency model, with the
/// PE side pinned and buffer sizes + mappings searched — the Figure 12
/// flow. Best points are selected by *predicted* EDP (the paper selects
/// mappings by predicted performance before measuring them on FireSim).
///
/// This is a thin blocking shim over the job service: it submits one
/// single-network
/// [`Surrogate::PredictedLatency`](crate::Surrogate::PredictedLatency)
/// request to a throwaway [`SearchService`](crate::SearchService) (thread
/// budget from the calling thread's rayon configuration) and waits; start
/// points descend in parallel and merge deterministically.
///
/// # Panics
///
/// Panics if `layers` is empty or `cfg` fails
/// [`GdConfig::validate`](GdConfig::validate).
pub fn dosa_search_rtl(
    layers: &[Layer],
    hier: &Hierarchy,
    cfg: &GdConfig,
    predictor: &LatencyPredictor,
) -> SearchResult {
    assert!(!layers.is_empty(), "need at least one layer");
    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .build();
    let request = SearchRequest::builder(hier.clone())
        .network("network", layers.to_vec())
        .surrogate(Surrogate::PredictedLatency(predictor.clone()))
        .config(*cfg)
        .build();
    let handle = match service.submit(request) {
        Ok(handle) => handle,
        // dosa-lint: allow(panic-perimeter) — documented perimeter of the
        // one-call convenience entrypoint; callers wanting typed errors use
        // `SearchService::submit` + `wait` directly.
        Err(e) => panic!("invalid GdConfig: {e}"),
    };
    handle
        .wait()
        // dosa-lint: allow(panic-perimeter) — same convenience-entrypoint
        // perimeter: the service path surfaces this as a typed JobError.
        .unwrap_or_else(|err| panic!("search job failed: {err}"))
        .into_single()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_nn::spearman;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::once(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap()),
            Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
        ]
    }

    #[test]
    fn dataset_generation_is_even_and_deterministic() {
        let hier = Hierarchy::gemmini();
        let ds = generate_rtl_dataset(&layers(), 40, &hier, &RtlConfig::default(), 5);
        assert_eq!(ds.samples.len(), 40);
        let a_count = ds
            .samples
            .iter()
            .filter(|s| s.problem.name() == "a")
            .count();
        assert!((15..=25).contains(&a_count), "uneven split: {a_count}");
        let ds2 = generate_rtl_dataset(&layers(), 40, &hier, &RtlConfig::default(), 5);
        assert_eq!(ds.samples.len(), ds2.samples.len());
        assert_eq!(ds.samples[0].rtl_cycles, ds2.samples[0].rtl_cycles);
    }

    #[test]
    fn combined_model_beats_analytical_correlation_on_train_distribution() {
        let hier = Hierarchy::gemmini();
        let train_ds = generate_rtl_dataset(&layers(), 220, &hier, &RtlConfig::default(), 1);
        let test_ds = generate_rtl_dataset(&layers(), 60, &hier, &RtlConfig::default(), 2);
        let cfg = TrainConfig {
            epochs: 150,
            batch_size: 32,
            learning_rate: 3e-3,
        };
        let combined = LatencyPredictor::fit(LatencyModelKind::Combined, &train_ds, &cfg, 0);
        let analytical = LatencyPredictor::analytical();

        let truth: Vec<f64> = test_ds.samples.iter().map(|s| s.rtl_cycles.ln()).collect();
        let corr = |p: &LatencyPredictor| {
            let pred: Vec<f64> = test_ds
                .samples
                .iter()
                .map(|s| p.predict(&s.problem, &s.mapping, &s.hw, &hier).ln())
                .collect();
            spearman(&pred, &truth)
        };
        let c_comb = corr(&combined);
        let c_ana = corr(&analytical);
        assert!(c_comb > 0.6, "combined corr {c_comb}");
        assert!(
            c_comb >= c_ana - 0.1,
            "combined {c_comb} vs analytical {c_ana}"
        );
    }

    #[test]
    fn rtl_search_respects_fixed_pe() {
        let hier = Hierarchy::gemmini();
        let cfg = GdConfig {
            start_points: 1,
            steps_per_start: 40,
            round_every: 20,
            fixed_pe_side: Some(16),
            ..GdConfig::default()
        };
        let res = dosa_search_rtl(&layers(), &hier, &cfg, &LatencyPredictor::analytical());
        assert_eq!(res.best_hw.pe_side(), 16);
        assert!(res.best_edp.is_finite());
        for (l, m) in layers().iter().zip(&res.best_mappings) {
            m.validate(&l.problem, &hier).unwrap();
        }
    }

    #[test]
    fn evaluate_rtl_composes_energy_and_latency() {
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let ls = layers();
        let mappings: Vec<Mapping> = ls
            .iter()
            .map(|l| crate::cosa::cosa_mapping(&l.problem, &hw, &hier))
            .collect();
        let perf = evaluate_rtl(&ls, &mappings, &hw, &hier, &RtlConfig::default());
        assert!(perf.edp() > 0.0);
        // RTL latency must exceed the analytical roofline.
        let paired: Vec<(Layer, Mapping)> = ls.iter().cloned().zip(mappings).collect();
        let ref_perf = dosa_timeloop::evaluate_model(&paired, &hw, &hier);
        assert!(perf.latency_cycles > ref_perf.latency_cycles);
        assert!((perf.energy_uj - ref_perf.energy_uj).abs() < 1e-9);
    }
}
