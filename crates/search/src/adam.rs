//! Adam optimizer over a flat parameter vector — the descent algorithm DOSA
//! uses (§6.1: "the specific descent algorithm DOSA uses is Adam").

/// Adam state for a fixed-size parameter vector.
///
/// # Examples
///
/// ```
/// use dosa_search::Adam;
/// let mut opt = Adam::new(2, 0.1);
/// let mut params = vec![1.0, -2.0];
/// for _ in 0..200 {
///     // Minimize x^2 + y^2.
///     let grads: Vec<f64> = params.iter().map(|p| 2.0 * p).collect();
///     opt.step(&mut params, &grads);
/// }
/// assert!(params.iter().all(|p| p.abs() < 1e-2));
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    /// Learning rate.
    pub learning_rate: f64,
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub epsilon: f64,
}

impl Adam {
    /// Create state for `n` parameters with the given learning rate.
    pub fn new(n: usize, learning_rate: f64) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// Apply one update in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths of `params`/`grads` differ from the state size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            params[i] -=
                self.learning_rate * (self.m[i] / bc1) / ((self.v[i] / bc2).sqrt() + self.epsilon);
        }
    }

    /// Reset moments (used when restarting from a rounded point).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let mut opt = Adam::new(3, 0.05);
        let target = [3.0, -1.0, 0.5];
        let mut p = vec![0.0; 3];
        for _ in 0..2000 {
            let g: Vec<f64> = p.iter().zip(&target).map(|(x, t)| 2.0 * (x - t)).collect();
            opt.step(&mut p, &g);
        }
        for (x, t) in p.iter().zip(&target) {
            assert!((x - t).abs() < 1e-2, "{x} vs {t}");
        }
    }

    #[test]
    fn reset_clears_momentum() {
        let mut opt = Adam::new(1, 0.1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        assert_eq!(opt.t, 0);
        let before = p[0];
        opt.step(&mut p, &[0.0]);
        // With zero gradient and reset moments, nothing moves.
        assert_eq!(p[0], before);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[0.0]);
    }
}
