//! Gaussian-process regression with an RBF kernel — the surrogate for the
//! Bayesian-optimization baseline (§6.1, Spotlight-style hyperparameters).

/// A Gaussian process fit to observations, with a squared-exponential
/// kernel `σ² exp(−‖x−x'‖²/2ℓ²)` plus observation noise.
///
/// Inputs are standardized internally; targets are centered.
///
/// # Examples
///
/// ```
/// use dosa_search::GaussianProcess;
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![0.0, 1.0, 4.0, 9.0];
/// let gp = GaussianProcess::fit(xs, ys, 1.0, 0.01);
/// let (mean, _var) = gp.predict(&[1.5]);
/// assert!((mean - 2.2).abs() < 1.5);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f64>>, // standardized inputs
    alpha: Vec<f64>,  // (K + σn² I)⁻¹ (y - mean)
    chol: Vec<f64>,   // lower Cholesky factor, row-major n x n
    n: usize,
    dim: usize,
    lengthscale: f64,
    signal_var: f64,
    y_mean: f64,
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
}

impl GaussianProcess {
    /// Fit a GP to `(xs, ys)` with the given kernel lengthscale (in
    /// standardized input units) and noise standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty, rows have inconsistent dimension, or the
    /// kernel matrix is not positive definite (excluded by the noise term).
    pub fn fit(xs: Vec<Vec<f64>>, ys: Vec<f64>, lengthscale: f64, noise_std: f64) -> Self {
        assert!(!xs.is_empty(), "GP needs observations");
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        let dim = xs[0].len();

        // Standardize features.
        let mut feat_mean = vec![0.0; dim];
        for x in &xs {
            assert_eq!(x.len(), dim, "inconsistent feature dimension");
            for (m, v) in feat_mean.iter_mut().zip(x) {
                *m += v / n as f64;
            }
        }
        let mut feat_std = vec![0.0; dim];
        for x in &xs {
            for ((s, v), m) in feat_std.iter_mut().zip(x).zip(&feat_mean) {
                *s += (v - m) * (v - m) / n as f64;
            }
        }
        for s in feat_std.iter_mut() {
            *s = s.sqrt().max(1e-9);
        }
        let x: Vec<Vec<f64>> = xs
            .iter()
            .map(|row| {
                row.iter()
                    .zip(feat_mean.iter().zip(&feat_std))
                    .map(|(v, (m, s))| (v - m) / s)
                    .collect()
            })
            .collect();

        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();

        // Signal variance from the data.
        let signal_var = (yc.iter().map(|y| y * y).sum::<f64>() / n as f64).max(1e-12);

        // Kernel matrix + noise.
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = rbf(&x[i], &x[j], lengthscale, signal_var);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
            k[i * n + i] += noise_std * noise_std + 1e-10;
        }

        let chol = cholesky(&k, n);
        // Solve (LLᵀ) alpha = yc.
        let mut alpha = forward_sub(&chol, &yc, n);
        alpha = backward_sub(&chol, &alpha, n);

        GaussianProcess {
            x,
            alpha,
            chol,
            n,
            dim,
            lengthscale,
            signal_var,
            y_mean,
            feat_mean,
            feat_std,
        }
    }

    /// Posterior mean and variance at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let xs: Vec<f64> = x
            .iter()
            .zip(self.feat_mean.iter().zip(&self.feat_std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect();
        let kstar: Vec<f64> = self
            .x
            .iter()
            .map(|xi| rbf(xi, &xs, self.lengthscale, self.signal_var))
            .collect();
        let mean = self.y_mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        // var = k(x,x) - vᵀv with v = L⁻¹ k*.
        let v = forward_sub(&self.chol, &kstar, self.n);
        let var = (self.signal_var - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var)
    }

    /// Expected improvement for *minimization* below `best`.
    pub fn expected_improvement(&self, x: &[f64], best: f64) -> f64 {
        let (mean, var) = self.predict(x);
        let sd = var.sqrt();
        if sd < 1e-12 {
            return (best - mean).max(0.0);
        }
        let z = (best - mean) / sd;
        (best - mean) * norm_cdf(z) + sd * norm_pdf(z)
    }
}

fn rbf(a: &[f64], b: &[f64], lengthscale: f64, signal_var: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    signal_var * (-d2 / (2.0 * lengthscale * lengthscale)).exp()
}

fn cholesky(k: &[f64], n: usize) -> Vec<f64> {
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = k[i * n + j];
            for p in 0..j {
                sum -= l[i * n + p] * l[j * n + p];
            }
            if i == j {
                assert!(sum > 0.0, "kernel matrix not positive definite");
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    l
}

fn forward_sub(l: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[i * n + j] * y[j];
        }
        y[i] = sum / l[i * n + i];
    }
    y
}

fn backward_sub(l: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in (i + 1)..n {
            sum -= l[j * n + i] * x[j];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, max error ~1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![0.2, 2.0]];
        let ys = vec![1.0, -2.0, 3.0];
        let gp = GaussianProcess::fit(xs.clone(), ys.clone(), 1.0, 1e-4);
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, var) = gp.predict(x);
            assert!((mean - y).abs() < 0.05, "{mean} vs {y}");
            assert!(var < 0.05);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0, 1.0];
        let gp = GaussianProcess::fit(xs, ys, 0.5, 1e-3);
        let (_, near) = gp.predict(&[0.5]);
        let (_, far) = gp.predict(&[10.0]);
        assert!(far > near);
    }

    #[test]
    fn ei_prefers_promising_regions() {
        // y = (x-2)^2 sampled away from the minimum; EI at x=2 should beat
        // EI at x=-3.
        let xs: Vec<Vec<f64>> = [-1.0f64, 0.0, 1.0, 3.0, 4.0, 5.0]
            .iter()
            .map(|&x| vec![x])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 2.0) * (x[0] - 2.0)).collect();
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let gp = GaussianProcess::fit(xs, ys, 1.0, 1e-3);
        assert!(gp.expected_improvement(&[2.0], best) > gp.expected_improvement(&[-3.0], best));
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "GP needs observations")]
    fn empty_fit_panics() {
        let _ = GaussianProcess::fit(vec![], vec![], 1.0, 0.1);
    }
}
