//! A deterministic constrained mapper standing in for CoSA (§3.2 step 1,
//! §6.1, §6.4; DESIGN.md substitution 3).
//!
//! CoSA formulates scheduling as a mixed-integer program solved with
//! Gurobi; neither is available offline. This substitute reproduces CoSA's
//! *role* in DOSA — producing strong, capacity-respecting mappings for a
//! given hardware configuration, deterministically — with a greedy
//! prime-factor allocator: maximize PE utilization first, then pack the
//! buffers from the innermost level outward. Like the paper's CoSA setup,
//! the scratchpad is partitioned equally between inputs and weights.

use dosa_accel::{level, HardwareConfig, Hierarchy};
use dosa_timeloop::{factorize, tile_words, LoopOrder, Mapping, Stationarity};
use dosa_workload::{Dim, Problem, Tensor};

/// Largest divisor of `n` that is `<= cap`.
fn largest_divisor_capped(n: u64, cap: u64) -> u64 {
    dosa_timeloop::divisors(n)
        .into_iter()
        .take_while(|&d| d <= cap)
        .last()
        .unwrap_or(1)
}

/// Produce a deterministic, capacity-respecting mapping of `problem` onto
/// `hw`.
///
/// The result always validates structurally; it fits within `hw`'s buffers
/// whenever the minimum footprint allows (a single innermost iteration plus
/// the spatial array working set).
pub fn cosa_mapping(problem: &Problem, hw: &HardwareConfig, hier: &Hierarchy) -> Mapping {
    let mut m = Mapping::all_at_dram(problem);
    m.set_orders([Stationarity::WeightStationary; dosa_accel::NUM_LEVELS]);

    // Remaining (un-assigned) extent per dimension; assigned factors are
    // divided out of the DRAM factor as they move inward.
    let assign = |m: &mut Mapping, lvl: usize, spatial: bool, d: Dim, f: u64| {
        debug_assert_eq!(m.temporal[level::DRAM][d.index()] % f, 0);
        m.temporal[level::DRAM][d.index()] /= f;
        if spatial {
            m.spatial[lvl][d.index()] *= f;
        } else {
            m.temporal[lvl][d.index()] *= f;
        }
    };

    // 1) Spatial utilization (Eq. 1): C below the accumulator, K below the
    //    scratchpad, both as large as the array allows.
    let sc = largest_divisor_capped(problem.size(Dim::C), hw.pe_side());
    assign(&mut m, level::ACCUMULATOR, true, Dim::C, sc);
    let sk = largest_divisor_capped(problem.size(Dim::K), hw.pe_side());
    assign(&mut m, level::SCRATCHPAD, true, Dim::K, sk);

    // Capacity budgets in words.
    let acc_budget = hw.acc_words();
    let half_spad = hw.spad_words() / 2; // CoSA's equal W/I partition.

    // 2) Register subnest: amortize weight preloads by streaming output
    //    pixels (Q then P) for at least ~2 array sides per tile, without
    //    overflowing the accumulator (the register subnest sits inside the
    //    accumulator tile).
    let target = 2 * hw.pe_side();
    for d in [Dim::Q, Dim::P] {
        loop {
            let have: u64 = m.temporal[0].iter().product();
            let remaining = m.temporal[level::DRAM][d.index()];
            if have >= target || remaining <= 1 {
                break;
            }
            let p = factorize(remaining)[0].0;
            let mut candidate = m.clone();
            candidate.temporal[level::DRAM][d.index()] /= p;
            candidate.temporal[0][d.index()] *= p;
            let fits = tile_words(problem, &candidate, level::ACCUMULATOR, Tensor::Outputs)
                <= acc_budget
                && tile_words(problem, &candidate, level::SCRATCHPAD, Tensor::Inputs) <= half_spad;
            if fits {
                m = candidate;
            } else {
                break;
            }
        }
    }

    // 3) Accumulator subnest: grow output-tile dims while the output tile
    //    fits the accumulator. P/Q growth also inflates the scratchpad
    //    input tile through the stride halo, so the scratchpad budget is
    //    enforced here too.
    grow_while_fits(
        &mut m,
        problem,
        level::ACCUMULATOR,
        &[Dim::K, Dim::P, Dim::Q, Dim::N],
        |m| {
            tile_words(problem, m, level::ACCUMULATOR, Tensor::Outputs) <= acc_budget
                && tile_words(problem, m, level::SCRATCHPAD, Tensor::Inputs) <= half_spad
        },
    );

    // 4) Reduction dims (R, S, C) grow in the *accumulator subnest*: there
    //    they sit inner to the output-tile loops (with the OS ordering the
    //    permutation step below selects), so partial sums accumulate fully
    //    on chip instead of bouncing to DRAM. Their factors still size the
    //    scratchpad weight/input tiles, which bound the growth.
    grow_while_fits(
        &mut m,
        problem,
        level::ACCUMULATOR,
        &[Dim::R, Dim::S, Dim::C],
        |m| {
            tile_words(problem, m, level::SCRATCHPAD, Tensor::Weights) <= half_spad
                && tile_words(problem, m, level::SCRATCHPAD, Tensor::Inputs) <= half_spad
        },
    );

    //    Then more output pixels in the scratchpad subnest while inputs
    //    still fit their half.
    grow_while_fits(&mut m, problem, level::SCRATCHPAD, &[Dim::P, Dim::Q], |m| {
        tile_words(problem, m, level::SCRATCHPAD, Tensor::Inputs) <= half_spad
    });

    // 5) Loop orderings: CoSA's MIP also selects permutations; choose the
    //    best WS/IS/OS ordering per level for this mapping (this is what
    //    keeps reduction loops inside the output-tile loops and avoids
    //    partial-sum thrashing to DRAM).
    let layer = dosa_workload::Layer::once(problem.clone());
    let mut ms = [m];
    let _ = crate::gd::choose_best_orderings(std::slice::from_ref(&layer), &mut ms, hw, hier);
    let [m] = ms;

    debug_assert!(m.validate(problem, hier).is_ok());
    m
}

/// Repeatedly move the smallest prime factor of each dimension in `dims`
/// from DRAM into `lvl`'s temporal subnest while `fits` holds.
fn grow_while_fits(
    m: &mut Mapping,
    problem: &Problem,
    lvl: usize,
    dims: &[Dim],
    fits: impl Fn(&Mapping) -> bool,
) {
    let _ = problem;
    loop {
        let mut moved = false;
        for &d in dims {
            let remaining = m.temporal[level::DRAM][d.index()];
            if remaining <= 1 {
                continue;
            }
            let p = factorize(remaining)[0].0;
            let mut candidate = m.clone();
            candidate.temporal[level::DRAM][d.index()] /= p;
            candidate.temporal[lvl][d.index()] *= p;
            if fits(&candidate) {
                *m = candidate;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// CoSA mappings for a set of layers on one hardware design (§3.2 step 1).
pub fn cosa_mappings(problems: &[&Problem], hw: &HardwareConfig, hier: &Hierarchy) -> Vec<Mapping> {
    problems.iter().map(|p| cosa_mapping(p, hw, hier)).collect()
}

/// The loop order CoSA emits (weight-stationary everywhere).
pub fn cosa_order() -> LoopOrder {
    LoopOrder::canonical(Stationarity::WeightStationary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_timeloop::{evaluate_layer, fits, min_hw, random_mapping};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Hierarchy, HardwareConfig) {
        (Hierarchy::gemmini(), HardwareConfig::gemmini_default())
    }

    #[test]
    fn cosa_mapping_is_valid_and_fits() {
        let (h, hw) = setup();
        for p in [
            Problem::conv("a", 3, 3, 56, 56, 64, 64, 1).unwrap(),
            Problem::conv("b", 7, 7, 112, 112, 3, 64, 2).unwrap(),
            Problem::matmul("c", 512, 768, 3072).unwrap(),
            Problem::conv("d", 1, 1, 7, 7, 2048, 512, 1).unwrap(),
        ] {
            let m = cosa_mapping(&p, &hw, &h);
            m.validate(&p, &h).unwrap();
            assert!(fits(&p, &m, &hw, &h), "{p}: needs {}", min_hw(&p, &m, &h));
        }
    }

    #[test]
    fn cosa_uses_the_array() {
        let (h, hw) = setup();
        let p = Problem::conv("a", 3, 3, 56, 56, 64, 64, 1).unwrap();
        let m = cosa_mapping(&p, &hw, &h);
        assert_eq!(m.spatial(level::ACCUMULATOR, Dim::C), 16);
        assert_eq!(m.spatial(level::SCRATCHPAD, Dim::K), 16);
    }

    #[test]
    fn cosa_beats_average_random_mapping() {
        let (h, hw) = setup();
        let p = Problem::conv("a", 3, 3, 28, 28, 128, 128, 1).unwrap();
        let cosa_perf = evaluate_layer(&p, &cosa_mapping(&p, &hw, &h), &hw, &h);
        let mut rng = StdRng::seed_from_u64(17);
        let mut sum = 0.0;
        let mut n = 0;
        while n < 30 {
            let m = random_mapping(&mut rng, &p, &h, hw.pe_side());
            if fits(&p, &m, &hw, &h) {
                sum += evaluate_layer(&p, &m, &hw, &h).edp().ln();
                n += 1;
            }
        }
        let avg_random = (sum / n as f64).exp();
        assert!(
            cosa_perf.edp() < avg_random,
            "cosa {} vs avg random {}",
            cosa_perf.edp(),
            avg_random
        );
    }

    #[test]
    fn deterministic() {
        let (h, hw) = setup();
        let p = Problem::conv("a", 3, 3, 28, 28, 128, 128, 1).unwrap();
        assert_eq!(cosa_mapping(&p, &hw, &h), cosa_mapping(&p, &hw, &h));
    }

    #[test]
    fn respects_small_arrays() {
        let h = Hierarchy::gemmini();
        let hw = HardwareConfig::new(4, 8.0, 16.0).unwrap();
        let p = Problem::conv("a", 3, 3, 28, 28, 128, 128, 1).unwrap();
        let m = cosa_mapping(&p, &hw, &h);
        m.validate(&p, &h).unwrap();
        assert!(m.spatial(level::ACCUMULATOR, Dim::C) <= 4);
        assert!(fits(&p, &m, &hw, &h));
    }
}
