//! Failure domains of the [`SearchService`](crate::SearchService): the
//! typed [`JobError`] a failed job reports, the [`DeadlinePolicy`]
//! deciding what happens when a job's deadline expires, the deterministic
//! [`FaultPlan`] injection harness the robustness smokes drive the
//! service with, and the poison-recovering lock helpers that keep one
//! panicking worker from wedging every other job.
//!
//! ## Failure domains
//!
//! One work item is one failure domain. A panic (or a non-finite loss)
//! inside an item is caught at the item boundary, fails **only that
//! item's job** with a typed [`JobError`], and the persistent worker
//! that ran the item survives to pull the next one — sibling jobs on
//! the same service keep their bit-identical results. Should a defect
//! ever escape an item's unwind boundary and kill a worker thread, the
//! dying worker respawns a replacement on its way down, so the pool
//! never silently loses capacity. Service-wide state (the ready queue,
//! the per-job execution ledgers, the warm-start index) is never left
//! poisoned: the handful of mutexes guarding it are locked through this
//! module's `lock`/`wait`/`wait_timeout` helpers, which recover a
//! poisoned guard instead of propagating the panic. That recovery is
//! sound because every panic that could occur while those locks are
//! held is contained *before* it reaches them: work items (including
//! job planning and the final merge) run inside per-dispatch
//! `catch_unwind` boundaries on the workers — the critical sections
//! themselves only move plain values and never unwind mid-update.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why a job ended in [`JobStatus::Failed`](crate::JobStatus::Failed).
///
/// Retrieved from [`JobHandle::error`](crate::JobHandle::error) (the
/// typed companion of [`status()`](crate::JobHandle::status)) or as the
/// `Err` of [`JobHandle::wait`](crate::JobHandle::wait). Every variant
/// names exactly one failure domain; none of them affects any other job
/// on the service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobError {
    /// A work item panicked. The panic was caught at the item boundary
    /// (the item's worker slot was released normally), the job's
    /// remaining items ran to completion — journaling into the result
    /// cache as usual, so a resubmit resumes — and the job as a whole
    /// failed with the lowest-indexed faulting item.
    WorkerPanic {
        /// The faulting work item's planned position (GD: the
        /// `(network, start)` item index in plan order; random: the
        /// `(network, design)` index; BB-BO: the network index).
        item: usize,
        /// The panic payload, stringified (`"<non-string panic>"` when
        /// the payload was neither `String` nor `&str`).
        payload: String,
    },
    /// A descent's loss went NaN and never recovered: the periodic
    /// rounding checkpoint that adjudicates a suspect descent also
    /// evaluated NaN, so the item reported a typed failure instead of
    /// merging a bogus `best_edp`. (A transiently NaN loss that the next
    /// rounding proves recovered is tolerated, as the descent loop's
    /// zeroed-gradient fallback has always done.)
    NonFiniteLoss {
        /// The faulting work item's planned position.
        item: usize,
        /// The 1-based gradient step at which the loss first went NaN.
        step: usize,
    },
    /// The job's [`deadline`](crate::SearchRequestBuilder::deadline)
    /// expired under [`DeadlinePolicy::Kill`]: in-flight items stopped at
    /// their next step boundary and the job terminated with this error
    /// instead of a result.
    DeadlineExceeded,
    /// The job's runner thread panicked outside any work item (planning,
    /// merging). The job still reached a terminal state — handle methods
    /// never hang or propagate the panic.
    RunnerPanic {
        /// The panic payload, stringified.
        payload: String,
    },
    /// The runner died without storing results or an error — a defensive
    /// variant so [`JobHandle::wait`](crate::JobHandle::wait) stays total
    /// instead of panicking on a terminal job with no results.
    ResultsUnavailable,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::WorkerPanic { item, payload } => {
                write!(f, "work item {item} panicked: {payload}")
            }
            JobError::NonFiniteLoss { item, step } => {
                write!(
                    f,
                    "work item {item} produced a non-finite loss at gradient step {step}"
                )
            }
            JobError::DeadlineExceeded => {
                write!(f, "job deadline expired under DeadlinePolicy::Kill")
            }
            JobError::RunnerPanic { payload } => {
                write!(f, "job runner panicked outside any work item: {payload}")
            }
            JobError::ResultsUnavailable => {
                write!(f, "job reached a terminal state without storing results")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// What happens when a job's
/// [`deadline`](crate::SearchRequestBuilder::deadline) expires before the
/// job completes. Deadlines are measured from **submission**, so time
/// spent queued counts against the budget — exactly the SLO a caller
/// experiences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum DeadlinePolicy {
    /// Terminate the job: the cancel flag flips (in-flight items stop at
    /// their next step boundary, waiting items stop competing for slots
    /// immediately) and the job ends
    /// [`Failed`](crate::JobStatus::Failed) with
    /// [`JobError::DeadlineExceeded`]. The default.
    #[default]
    Kill,
    /// Degrade gracefully: at the deadline the job stops admitting **new**
    /// work items (in-flight items run to completion, so every per-item
    /// result stays bit-exact), and the job completes with the
    /// deterministic merge of all items finished so far, flagged
    /// [`degraded`](crate::BatchResult::degraded). Under sequential
    /// per-network execution the degraded result is a bitwise prefix of
    /// the uninterrupted run's history; completed items still journal to
    /// the result cache, so an identical resubmit resumes from them.
    Degrade,
}

/// One injected fault of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Panic inside the work item (exercises the `catch_unwind`
    /// containment path → [`JobError::WorkerPanic`]).
    Panic,
    /// Sleep this many milliseconds before running the item normally.
    /// Result-neutral by construction — the item's output is bit-exact —
    /// so delays move wall-clock time only (used to hold a deadline open
    /// over a chosen item).
    Delay(u64),
    /// Force the item's first gradient step to report a non-finite loss,
    /// exercising the real NaN guard in the descent loop
    /// (→ [`JobError::NonFiniteLoss`]). Only gradient-descent items
    /// descend, so the injection is a no-op on black-box work items.
    NonFiniteLoss,
}

/// A deterministic fault-injection plan, threaded through a request via
/// [`SearchRequestBuilder::fault_plan`](crate::SearchRequestBuilder::fault_plan)
/// — the service's **test-only chaos hook**, driving the `repro faults`
/// robustness gates.
///
/// Faults are keyed by *planned work-item position* (the same plan order
/// the result cache and the merge use), so a plan is a pure function of
/// the request it is attached to: same request + same plan → same faults
/// at the same items, every run. An empty plan is a bit-exact no-op — the
/// consultation itself never perturbs a result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; bit-exact no-op).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Inject `kind` at planned work-item position `item` (builder
    /// style). A later injection at the same position replaces the
    /// earlier one.
    pub fn inject(mut self, item: usize, kind: FaultKind) -> FaultPlan {
        self.faults.insert(item, kind);
        self
    }

    /// A seeded plan over `items` work items: a tiny deterministic PRNG
    /// (splitmix64) picks roughly `density` of the positions and assigns
    /// each a fault kind. Same `(seed, items, density)` → same plan,
    /// every run — the property the interleaving proptest relies on.
    pub fn seeded(seed: u64, items: usize, density: f64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for item in 0..items {
            let roll = (next() >> 11) as f64 / (1u64 << 53) as f64;
            if roll < density {
                let kind = match next() % 3 {
                    0 => FaultKind::Panic,
                    1 => FaultKind::Delay(next() % 5),
                    _ => FaultKind::NonFiniteLoss,
                };
                plan.faults.insert(item, kind);
            }
        }
        plan
    }

    /// The fault injected at planned position `item`, if any.
    pub fn fault_at(&self, item: usize) -> Option<FaultKind> {
        self.faults.get(&item).copied()
    }

    /// Whether the plan injects nothing (guaranteed bit-exact no-op).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

/// Stringify a caught panic payload for a [`JobError`]. `panic!("...")`
/// payloads are `&str` or `String`; anything else is summarized.
pub(crate) fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Ok(s) = payload.downcast::<String>() {
        *s
    } else {
        "<non-string panic>".to_string()
    }
}

/// Lock `mutex`, recovering the guard if a previous holder panicked.
///
/// Poison recovery is sound service-wide because panics are contained at
/// the work-item / runner boundary *before* they can unwind through a
/// critical section — the sections guarded by these mutexes only move
/// plain values (queue entries, slot counts, terminal states) and never
/// call panicking user code; see the module docs.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // dosa-lint: allow(raw-mutex-lock) — this IS the poisoning-recovery perimeter:
    // the single raw lock every service mutex is routed through.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock`].
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison recovery as [`lock`].
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic_and_positional() {
        let a = FaultPlan::seeded(7, 32, 0.5);
        let b = FaultPlan::seeded(7, 32, 0.5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(8, 32, 0.5);
        assert_ne!(a, c, "different seeds should disagree somewhere");

        let manual = FaultPlan::new()
            .inject(3, FaultKind::Panic)
            .inject(3, FaultKind::Delay(10));
        assert_eq!(manual.fault_at(3), Some(FaultKind::Delay(10)));
        assert_eq!(manual.fault_at(4), None);
        assert_eq!(manual.len(), 1);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.fault_at(0), None);
        let sparse = FaultPlan::seeded(1, 100, 0.0);
        assert!(sparse.is_empty());
    }

    #[test]
    fn lock_recovers_a_poisoned_mutex() {
        let m = std::sync::Arc::new(Mutex::new(5u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            // dosa-lint: allow(raw-mutex-lock) — deliberately poisons a raw guard to
            // prove the helper under test recovers it; fault::lock here would be circular.
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 5);
    }

    #[test]
    fn payloads_stringify() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).expect_err("panics");
        assert_eq!(payload_string(caught), "boom 7");
        let caught = std::panic::catch_unwind(|| panic!("literal")).expect_err("panics");
        assert_eq!(payload_string(caught), "literal");
    }

    #[test]
    fn errors_display() {
        let e = JobError::WorkerPanic {
            item: 3,
            payload: "x".into(),
        };
        assert!(e.to_string().contains("work item 3"));
        assert!(JobError::DeadlineExceeded.to_string().contains("deadline"));
    }
}
