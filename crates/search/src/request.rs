//! Search-job descriptions: the [`SearchRequest`] builder submitted to a
//! [`SearchService`](crate::SearchService), the [`Surrogate`] selecting
//! which differentiable loss a gradient-descent job descends on, and the
//! typed [`ConfigError`] validation applied at the service boundary.
//!
//! A request owns everything a job needs — the memory hierarchy, one or
//! more named networks (a *batch*), and a [`Strategy`] carrying the
//! search algorithm and its budget — so jobs can run on the service's
//! background workers with no borrowed state. Per-network seeds keep
//! every network's result bit-identical to a standalone submission with
//! the same seed (see [`SearchService`](crate::SearchService) for the
//! guarantee).

use crate::engine::DiffLoss;
use crate::fault::{DeadlinePolicy, FaultPlan};
use crate::gd::GdConfig;
use crate::latency_model::LatencyPredictor;
use crate::sched::SchedPolicy;
use crate::strategy::Strategy;
use dosa_accel::Hierarchy;
use dosa_model::LossOptions;
use dosa_workload::Layer;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A strategy configuration or [`SearchRequest`] rejected at the service
/// boundary.
///
/// Returned by [`GdConfig::validate`],
/// [`RandomSearchConfig::validate`](crate::RandomSearchConfig::validate),
/// [`BbboConfig::validate`](crate::BbboConfig::validate) and
/// [`SearchService::submit`](crate::SearchService::submit); the variants
/// name the field that would otherwise panic (or silently misbehave) deep
/// inside a searcher — most notably `round_every == 0`, which used to hit
/// a divide-by-zero in the gradient loop, and `init_random == 0`, which
/// used to let BB-BO's Gaussian process fit on an empty design set.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `start_points` was zero: the search would have nothing to descend.
    ZeroStartPoints,
    /// `steps_per_start` was zero: no gradient steps would run.
    ZeroStepsPerStart,
    /// `round_every` was zero: the rounding cadence `step % round_every`
    /// would divide by zero.
    ZeroRoundEvery,
    /// `learning_rate` was non-finite or not positive.
    BadLearningRate(f64),
    /// `num_hw` was zero: a black-box search would evaluate no designs.
    ZeroHwDesigns,
    /// `samples_per_hw` was zero: every design would go unsampled.
    ZeroSamplesPerHw,
    /// `candidates` was zero: a BB-BO step would have no candidate
    /// designs to score by expected improvement.
    ZeroCandidates,
    /// `init_random` was zero or exceeded `num_hw`: BB-BO's Gaussian
    /// process would fit on an empty (or impossibly short) design set.
    BadInitRandom {
        /// The rejected `init_random` value.
        init_random: usize,
        /// The configured total number of hardware designs.
        num_hw: usize,
    },
    /// A non-default [`Surrogate`] was combined with a black-box strategy
    /// (named by the payload) that cannot descend on it; surrogates apply
    /// to [`Strategy::GradientDescent`] only.
    SurrogateNotApplicable(&'static str),
    /// The request named no networks.
    EmptyBatch,
    /// A network in the request had no layers.
    EmptyNetwork(String),
    /// Two networks in one request share a name, making their results
    /// indistinguishable on demultiplex.
    DuplicateNetwork(String),
    /// `max_parallelism` was set to zero: the job could never hold a
    /// worker slot and would sit admitted-but-idle forever.
    ZeroParallelism,
    /// Warm starting was requested with a strategy (named by the payload)
    /// that has no descent to seed; [`WarmStart`] applies to
    /// [`Strategy::GradientDescent`] only.
    WarmStartNotApplicable(&'static str),
    /// A deadline of zero duration was set: the job would expire before
    /// its first work item could start.
    ZeroDeadline,
    /// `segment_steps` was `Some(0)`: a zero-step segment would re-enqueue
    /// forever without ever advancing the descent.
    ZeroSegmentSteps,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroStartPoints => write!(f, "start_points must be at least 1"),
            ConfigError::ZeroStepsPerStart => write!(f, "steps_per_start must be at least 1"),
            ConfigError::ZeroRoundEvery => {
                write!(
                    f,
                    "round_every must be at least 1 (the rounding cadence divides by it)"
                )
            }
            ConfigError::BadLearningRate(lr) => {
                write!(f, "learning_rate must be finite and positive, got {lr}")
            }
            ConfigError::ZeroHwDesigns => write!(f, "num_hw must be at least 1"),
            ConfigError::ZeroSamplesPerHw => write!(f, "samples_per_hw must be at least 1"),
            ConfigError::ZeroCandidates => write!(f, "candidates must be at least 1"),
            ConfigError::BadInitRandom {
                init_random,
                num_hw,
            } => {
                write!(
                    f,
                    "init_random must be in 1..=num_hw (got {init_random} with num_hw {num_hw}); \
                     the GP would fit on an empty or short design set"
                )
            }
            ConfigError::SurrogateNotApplicable(strategy) => {
                write!(
                    f,
                    "a non-default surrogate was set but the {strategy} strategy cannot use one \
                     (surrogates apply to gradient descent only)"
                )
            }
            ConfigError::EmptyBatch => write!(f, "request contains no networks"),
            ConfigError::EmptyNetwork(name) => write!(f, "network {name:?} has no layers"),
            ConfigError::DuplicateNetwork(name) => {
                write!(
                    f,
                    "network name {name:?} appears more than once in the batch"
                )
            }
            ConfigError::ZeroParallelism => {
                write!(
                    f,
                    "max_parallelism must be at least 1 when set (the job could \
                     never hold a worker slot)"
                )
            }
            ConfigError::WarmStartNotApplicable(strategy) => {
                write!(
                    f,
                    "warm starting was requested but the {strategy} strategy has no \
                     descent to seed (warm starts apply to gradient descent only)"
                )
            }
            ConfigError::ZeroDeadline => {
                write!(
                    f,
                    "deadline must be non-zero (a zero deadline expires before the \
                     first work item can start)"
                )
            }
            ConfigError::ZeroSegmentSteps => {
                write!(
                    f,
                    "segment_steps must be at least 1 when set (a zero-step segment \
                     would re-enqueue forever without advancing)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl GdConfig {
    /// Check this configuration for values the engine cannot run on,
    /// returning the first offending field as a typed [`ConfigError`].
    ///
    /// [`SearchService::submit`](crate::SearchService::submit) calls this
    /// on every request; the blocking shims
    /// ([`dosa_search`](crate::dosa_search),
    /// [`dosa_search_rtl`](crate::dosa_search_rtl)) panic on the error it
    /// returns.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.start_points == 0 {
            return Err(ConfigError::ZeroStartPoints);
        }
        if self.steps_per_start == 0 {
            return Err(ConfigError::ZeroStepsPerStart);
        }
        if self.round_every == 0 {
            return Err(ConfigError::ZeroRoundEvery);
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(ConfigError::BadLearningRate(self.learning_rate));
        }
        if self.segment_steps == Some(0) {
            return Err(ConfigError::ZeroSegmentSteps);
        }
        Ok(())
    }
}

/// A user-supplied differentiable surrogate, pluggable into the service
/// where the built-in [`Surrogate`] variants do not fit (area-constrained
/// EDP, energy-delay², latency-SLO losses, ...).
///
/// The factory borrows the job's owned layers and hierarchy for the
/// duration of one network's descent; the loss it returns must satisfy
/// the same determinism contract as every [`DiffLoss`].
pub trait CustomSurrogate: Send + Sync {
    /// Loss options used when generating this surrogate's start points
    /// (the §5.3.1 rejection rule predicts with these). The default pins
    /// the PE side iff the config does.
    fn loss_options(&self, cfg: &GdConfig) -> LossOptions {
        LossOptions {
            fixed_pe_side: cfg.fixed_pe_side,
            ..LossOptions::default()
        }
    }

    /// Build the loss one network descends on.
    fn make<'a>(
        &'a self,
        layers: &'a [Layer],
        hier: &'a Hierarchy,
        cfg: &GdConfig,
    ) -> Box<dyn DiffLoss + 'a>;
}

/// Which differentiable loss a job descends on.
#[derive(Clone, Default)]
pub enum Surrogate {
    /// The plain differentiable-EDP loss of §5
    /// ([`EdpLoss`](crate::EdpLoss)), honoring `GdConfig::strategy` and
    /// `GdConfig::fixed_pe_side` — the surrogate behind
    /// [`dosa_search`](crate::dosa_search).
    #[default]
    Edp,
    /// The §6.5 predictor-adjusted latency loss
    /// ([`PredictedLatencyLoss`](crate::PredictedLatencyLoss)) with the PE
    /// side pinned to `GdConfig::fixed_pe_side` (default 16) — the
    /// surrogate behind [`dosa_search_rtl`](crate::dosa_search_rtl).
    PredictedLatency(LatencyPredictor),
    /// A user-supplied [`CustomSurrogate`].
    Custom(Arc<dyn CustomSurrogate>),
}

impl fmt::Debug for Surrogate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Surrogate::Edp => f.write_str("Surrogate::Edp"),
            Surrogate::PredictedLatency(p) => {
                write!(f, "Surrogate::PredictedLatency({:?})", p.kind)
            }
            Surrogate::Custom(_) => f.write_str("Surrogate::Custom(..)"),
        }
    }
}

/// Whether a gradient-descent job seeds an extra descent from the best
/// cached result for its network shape.
///
/// Warm starting is **opt-in by design**: a warm-started result depends
/// on whatever the service's [`ResultCache`](crate::ResultCache) happens
/// to hold, so it trades the bit-identical-to-a-cold-run guarantee for a
/// (monotone — the extra start can only match or improve the best) head
/// start. With the default [`WarmStart::Off`], enabling the cache never
/// changes any result bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum WarmStart {
    /// No warm start; results are bit-identical to a cold run even with
    /// a cache attached. The default.
    #[default]
    Off,
    /// Seed one extra descent per network from the best relaxed mapping
    /// any previous job journaled for the same network shape (same
    /// hierarchy and layer shapes; seed, budget, and surrogate may all
    /// differ). Silently skipped when the service has no cache or the
    /// cache has no neighbor yet.
    NearestNeighbor,
}

/// One named network inside a (possibly batched) request.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Name the per-network result is demultiplexed under.
    pub name: String,
    /// The layers being co-optimized (one entry per unique layer).
    pub layers: Vec<Layer>,
    /// Seed for this network's start points and descents; `None` inherits
    /// `GdConfig::seed`. A network's result is bit-identical to a
    /// standalone submission with the same effective seed.
    pub seed: Option<u64>,
}

/// A search job: one network or a batch of named networks, a
/// [`Strategy`] (the algorithm plus its budget and seed), scheduling
/// knobs (a [`SchedPolicy`] and an optional parallelism cap), and — for
/// gradient descent — a surrogate, all owned so the job can run on
/// background workers. Build one with [`SearchRequest::builder`] and
/// submit it with [`SearchService::submit`](crate::SearchService::submit).
#[derive(Debug, Clone)]
pub struct SearchRequest {
    pub(crate) hier: Hierarchy,
    pub(crate) networks: Vec<NetworkSpec>,
    pub(crate) surrogate: Surrogate,
    pub(crate) strategy: Strategy,
    pub(crate) policy: SchedPolicy,
    pub(crate) max_parallelism: Option<usize>,
    pub(crate) warm_start: WarmStart,
    pub(crate) deadline: Option<Duration>,
    pub(crate) deadline_policy: DeadlinePolicy,
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
}

impl SearchRequest {
    /// Start building a request against `hier`.
    pub fn builder(hier: Hierarchy) -> SearchRequestBuilder {
        SearchRequestBuilder {
            request: SearchRequest {
                hier,
                networks: Vec::new(),
                surrogate: Surrogate::Edp,
                strategy: Strategy::default(),
                policy: SchedPolicy::default(),
                max_parallelism: None,
                warm_start: WarmStart::Off,
                deadline: None,
                deadline_policy: DeadlinePolicy::default(),
                fault_plan: None,
            },
        }
    }

    /// The search strategy this job runs.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The gradient-descent budget, if this is a
    /// [`Strategy::GradientDescent`] request.
    pub fn gd_config(&self) -> Option<&GdConfig> {
        match &self.strategy {
            Strategy::GradientDescent(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// The networks in submission order.
    pub fn networks(&self) -> &[NetworkSpec] {
        &self.networks
    }

    /// The surrogate a gradient-descent job will descend on.
    pub fn surrogate(&self) -> &Surrogate {
        &self.surrogate
    }

    /// How this job competes for worker slots against the other jobs on
    /// its service ([`SchedPolicy::Fifo`] unless set via
    /// [`SearchRequestBuilder::policy`]).
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The job's worker-slot cap, if it declared one
    /// ([`SearchRequestBuilder::max_parallelism`]); `None` lets the job
    /// use the service's whole budget when nothing else is running.
    pub fn max_parallelism(&self) -> Option<usize> {
        self.max_parallelism
    }

    /// Whether this job seeds an extra descent from a cached neighbor
    /// ([`WarmStart::Off`] unless set via
    /// [`SearchRequestBuilder::warm_start`]).
    pub fn warm_start(&self) -> WarmStart {
        self.warm_start
    }

    /// The job's deadline, if it declared one
    /// ([`SearchRequestBuilder::deadline`]). Measured from submission.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// What happens when the deadline expires
    /// ([`DeadlinePolicy::Kill`] unless set via
    /// [`SearchRequestBuilder::deadline_policy`]). Meaningless without a
    /// deadline.
    pub fn deadline_policy(&self) -> DeadlinePolicy {
        self.deadline_policy
    }

    /// The deterministic fault-injection plan attached to this request,
    /// if any (the test-only chaos hook; see
    /// [`SearchRequestBuilder::fault_plan`]).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_deref()
    }

    /// Coarse estimate of the total model evaluations this request will
    /// consume: the strategy's per-network estimate
    /// ([`Strategy::estimated_samples`]) times the batch size. Used as
    /// the [`SchedPolicy::ShortestFirst`] ranking key — it orders jobs,
    /// it does not bound them.
    pub fn estimated_samples(&self) -> u64 {
        self.strategy
            .estimated_samples()
            .saturating_mul(self.networks.len().max(1) as u64)
    }

    /// Full service-boundary validation: the strategy configuration
    /// ([`Strategy::validate`]), surrogate applicability (non-default
    /// surrogates require [`Strategy::GradientDescent`]), the scheduling
    /// knobs (a declared parallelism cap must be at least 1), plus the
    /// batch shape (non-empty, non-empty layers, unique names).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.strategy.validate()?;
        if self.max_parallelism == Some(0) {
            return Err(ConfigError::ZeroParallelism);
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        if !matches!(self.strategy, Strategy::GradientDescent(_))
            && !matches!(self.surrogate, Surrogate::Edp)
        {
            return Err(ConfigError::SurrogateNotApplicable(self.strategy.name()));
        }
        if !matches!(self.strategy, Strategy::GradientDescent(_))
            && self.warm_start != WarmStart::Off
        {
            return Err(ConfigError::WarmStartNotApplicable(self.strategy.name()));
        }
        if self.networks.is_empty() {
            return Err(ConfigError::EmptyBatch);
        }
        for (i, net) in self.networks.iter().enumerate() {
            if net.layers.is_empty() {
                return Err(ConfigError::EmptyNetwork(net.name.clone()));
            }
            if self.networks[..i].iter().any(|n| n.name == net.name) {
                return Err(ConfigError::DuplicateNetwork(net.name.clone()));
            }
        }
        Ok(())
    }

    /// The effective seed of network `index` (its own, or the
    /// strategy's).
    pub(crate) fn network_seed(&self, index: usize) -> u64 {
        self.networks[index].seed.unwrap_or(self.strategy.seed())
    }
}

/// Builder for [`SearchRequest`]; see [`SearchRequest::builder`].
#[derive(Debug, Clone)]
pub struct SearchRequestBuilder {
    request: SearchRequest,
}

impl SearchRequestBuilder {
    /// Add a network to the batch, seeded by the request's
    /// `GdConfig::seed`.
    pub fn network(self, name: impl Into<String>, layers: Vec<Layer>) -> SearchRequestBuilder {
        self.push_network(name.into(), layers, None)
    }

    /// Add a network with its own seed, decoupling its start points and
    /// descents from the other networks in the batch.
    pub fn network_seeded(
        self,
        name: impl Into<String>,
        layers: Vec<Layer>,
        seed: u64,
    ) -> SearchRequestBuilder {
        self.push_network(name.into(), layers, Some(seed))
    }

    fn push_network(
        mut self,
        name: String,
        layers: Vec<Layer>,
        seed: Option<u64>,
    ) -> SearchRequestBuilder {
        self.request
            .networks
            .push(NetworkSpec { name, layers, seed });
        self
    }

    /// Select the surrogate loss a gradient-descent job descends on
    /// (default: [`Surrogate::Edp`]). Rejected at validation if the
    /// request's strategy is not [`Strategy::GradientDescent`] and the
    /// surrogate is not the default.
    pub fn surrogate(mut self, surrogate: Surrogate) -> SearchRequestBuilder {
        self.request.surrogate = surrogate;
        self
    }

    /// Select the search algorithm and its budget (default:
    /// gradient descent with [`GdConfig::default`]).
    pub fn strategy(mut self, strategy: Strategy) -> SearchRequestBuilder {
        self.request.strategy = strategy;
        self
    }

    /// Set a gradient-descent budget and seed — shorthand for
    /// `.strategy(Strategy::GradientDescent(cfg))`, kept so existing
    /// GD-only callers read naturally.
    pub fn config(mut self, cfg: GdConfig) -> SearchRequestBuilder {
        self.request.strategy = Strategy::GradientDescent(cfg);
        self
    }

    /// Select how this job competes for worker slots against the other
    /// jobs on its service (default: [`SchedPolicy::Fifo`]). The policy
    /// reorders wall-clock time only — results are bit-identical under
    /// every policy and interleaving.
    pub fn policy(mut self, policy: SchedPolicy) -> SearchRequestBuilder {
        self.request.policy = policy;
        self
    }

    /// Cap how many worker slots this job may hold at once (default: the
    /// service's whole thread budget). A long job capped at `n` provably
    /// leaves `threads - n` slots for the jobs submitted after it.
    /// Rejected at validation if zero; silently clamped down to the
    /// service budget at submission.
    pub fn max_parallelism(mut self, n: usize) -> SearchRequestBuilder {
        self.request.max_parallelism = Some(n);
        self
    }

    /// Opt into seeding one extra descent per network from the best
    /// cached neighbor of its shape (default: [`WarmStart::Off`]). Does
    /// nothing unless the service carries a
    /// [`ResultCache`](crate::ResultCache); rejected at validation for
    /// non-gradient-descent strategies. See [`WarmStart`] for the
    /// determinism tradeoff.
    pub fn warm_start(mut self, warm: WarmStart) -> SearchRequestBuilder {
        self.request.warm_start = warm;
        self
    }

    /// Give the job a deadline, measured from **submission** (queue time
    /// counts — this is the SLO a caller experiences). What happens at
    /// expiry is decided by [`deadline_policy`](Self::deadline_policy):
    /// the default [`DeadlinePolicy::Kill`] fails the job with
    /// [`JobError::DeadlineExceeded`](crate::JobError::DeadlineExceeded);
    /// [`DeadlinePolicy::Degrade`] returns the deterministic merge of the
    /// work items completed so far, flagged
    /// [`degraded`](crate::BatchResult::degraded). Rejected at validation
    /// if zero.
    pub fn deadline(mut self, deadline: Duration) -> SearchRequestBuilder {
        self.request.deadline = Some(deadline);
        self
    }

    /// Select what happens when the [`deadline`](Self::deadline) expires
    /// (default: [`DeadlinePolicy::Kill`]). Has no effect without a
    /// deadline.
    pub fn deadline_policy(mut self, policy: DeadlinePolicy) -> SearchRequestBuilder {
        self.request.deadline_policy = policy;
        self
    }

    /// Attach a deterministic [`FaultPlan`] — the service's **test-only
    /// chaos hook**, used by the `repro faults` robustness gates to
    /// inject panics, delays, and non-finite losses at chosen work-item
    /// positions. An empty plan is a guaranteed bit-exact no-op; a plan
    /// only ever affects the job it is attached to.
    pub fn fault_plan(mut self, plan: FaultPlan) -> SearchRequestBuilder {
        self.request.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Finish building. Validation happens at
    /// [`SearchService::submit`](crate::SearchService::submit) (or call
    /// [`SearchRequest::validate`] directly).
    pub fn build(self) -> SearchRequest {
        self.request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn layer() -> Layer {
        Layer::once(Problem::matmul("m", 8, 32, 32).unwrap())
    }

    #[test]
    fn default_config_is_valid() {
        GdConfig::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_each_degenerate_field() {
        let cases = [
            (
                GdConfig {
                    start_points: 0,
                    ..GdConfig::default()
                },
                ConfigError::ZeroStartPoints,
            ),
            (
                GdConfig {
                    steps_per_start: 0,
                    ..GdConfig::default()
                },
                ConfigError::ZeroStepsPerStart,
            ),
            (
                GdConfig {
                    round_every: 0,
                    ..GdConfig::default()
                },
                ConfigError::ZeroRoundEvery,
            ),
            (
                GdConfig {
                    learning_rate: f64::NAN,
                    ..GdConfig::default()
                },
                ConfigError::BadLearningRate(f64::NAN),
            ),
            (
                GdConfig {
                    learning_rate: -0.5,
                    ..GdConfig::default()
                },
                ConfigError::BadLearningRate(-0.5),
            ),
            (
                GdConfig {
                    segment_steps: Some(0),
                    ..GdConfig::default()
                },
                ConfigError::ZeroSegmentSteps,
            ),
        ];
        for (cfg, expected) in cases {
            let err = cfg.validate().unwrap_err();
            // NaN != NaN; compare the discriminants via Debug.
            assert_eq!(format!("{err:?}"), format!("{expected:?}"));
        }
    }

    #[test]
    fn request_validation_covers_batch_shape() {
        let hier = Hierarchy::gemmini();
        let empty = SearchRequest::builder(hier.clone()).build();
        assert_eq!(empty.validate(), Err(ConfigError::EmptyBatch));

        let no_layers = SearchRequest::builder(hier.clone())
            .network("empty", Vec::new())
            .build();
        assert_eq!(
            no_layers.validate(),
            Err(ConfigError::EmptyNetwork("empty".into()))
        );

        let dup = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .network("a", vec![layer()])
            .build();
        assert_eq!(
            dup.validate(),
            Err(ConfigError::DuplicateNetwork("a".into()))
        );

        let ok = SearchRequest::builder(hier)
            .network("a", vec![layer()])
            .network_seeded("b", vec![layer()], 9)
            .build();
        ok.validate().unwrap();
        assert_eq!(ok.network_seed(0), ok.strategy().seed());
        assert_eq!(ok.network_seed(1), 9);
    }

    #[test]
    fn request_validation_dispatches_to_the_strategy_config() {
        use crate::{BbboConfig, RandomSearchConfig};
        let hier = Hierarchy::gemmini();
        let bad_random = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .strategy(Strategy::Random(RandomSearchConfig {
                num_hw: 0,
                ..RandomSearchConfig::default()
            }))
            .build();
        assert_eq!(bad_random.validate(), Err(ConfigError::ZeroHwDesigns));

        let bad_bbbo = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .strategy(Strategy::BayesOpt(BbboConfig {
                init_random: 0,
                ..BbboConfig::default()
            }))
            .build();
        assert_eq!(
            bad_bbbo.validate(),
            Err(ConfigError::BadInitRandom {
                init_random: 0,
                num_hw: 100
            })
        );

        let ok = SearchRequest::builder(hier)
            .network("a", vec![layer()])
            .strategy(Strategy::Random(RandomSearchConfig::default()))
            .build();
        ok.validate().unwrap();
        assert!(ok.gd_config().is_none());
    }

    #[test]
    fn non_default_surrogate_requires_gradient_descent() {
        use crate::{LatencyPredictor, RandomSearchConfig};
        let hier = Hierarchy::gemmini();
        let mixed = SearchRequest::builder(hier)
            .network("a", vec![layer()])
            .surrogate(Surrogate::PredictedLatency(LatencyPredictor::analytical()))
            .strategy(Strategy::Random(RandomSearchConfig::default()))
            .build();
        assert_eq!(
            mixed.validate(),
            Err(ConfigError::SurrogateNotApplicable("random"))
        );
    }

    #[test]
    fn warm_start_requires_gradient_descent() {
        use crate::RandomSearchConfig;
        let hier = Hierarchy::gemmini();
        let mixed = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .warm_start(WarmStart::NearestNeighbor)
            .strategy(Strategy::Random(RandomSearchConfig::default()))
            .build();
        assert_eq!(
            mixed.validate(),
            Err(ConfigError::WarmStartNotApplicable("random"))
        );

        let gd = SearchRequest::builder(hier)
            .network("a", vec![layer()])
            .warm_start(WarmStart::NearestNeighbor)
            .build();
        gd.validate().unwrap();
        assert_eq!(gd.warm_start(), WarmStart::NearestNeighbor);
    }

    #[test]
    fn scheduling_knobs_default_validate_and_estimate() {
        let hier = Hierarchy::gemmini();
        let request = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .network("b", vec![layer()])
            .config(GdConfig {
                start_points: 3,
                steps_per_start: 100,
                ..GdConfig::default()
            })
            .build();
        assert_eq!(request.policy(), SchedPolicy::Fifo);
        assert_eq!(request.max_parallelism(), None);
        assert_eq!(request.estimated_samples(), 2 * 3 * 100);
        request.validate().unwrap();

        let tuned = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .policy(SchedPolicy::Priority(3))
            .max_parallelism(2)
            .build();
        assert_eq!(tuned.policy(), SchedPolicy::Priority(3));
        assert_eq!(tuned.max_parallelism(), Some(2));
        tuned.validate().unwrap();

        let zero = SearchRequest::builder(hier)
            .network("a", vec![layer()])
            .max_parallelism(0)
            .build();
        assert_eq!(zero.validate(), Err(ConfigError::ZeroParallelism));
    }

    #[test]
    fn deadline_knobs_default_and_validate() {
        let hier = Hierarchy::gemmini();
        let plain = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .build();
        assert_eq!(plain.deadline(), None);
        assert_eq!(plain.deadline_policy(), DeadlinePolicy::Kill);
        assert!(plain.fault_plan().is_none());
        plain.validate().unwrap();

        let dl = SearchRequest::builder(hier.clone())
            .network("a", vec![layer()])
            .deadline(Duration::from_millis(200))
            .deadline_policy(DeadlinePolicy::Degrade)
            .fault_plan(FaultPlan::new().inject(0, crate::FaultKind::Delay(1)))
            .build();
        assert_eq!(dl.deadline(), Some(Duration::from_millis(200)));
        assert_eq!(dl.deadline_policy(), DeadlinePolicy::Degrade);
        assert_eq!(dl.fault_plan().map(FaultPlan::len), Some(1));
        dl.validate().unwrap();

        let zero = SearchRequest::builder(hier)
            .network("a", vec![layer()])
            .deadline(Duration::ZERO)
            .build();
        assert_eq!(zero.validate(), Err(ConfigError::ZeroDeadline));
    }
}
