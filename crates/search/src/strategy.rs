//! The pluggable search-strategy layer: [`Strategy`] selects which
//! algorithm a [`SearchRequest`](crate::SearchRequest) runs — the
//! differentiable one-loop gradient descent or one of the paper's
//! black-box baselines — while the [`SearchService`](crate::SearchService)
//! supplies the same job lifecycle (queueing, live progress, cooperative
//! cancellation, batching, per-network determinism) to all of them.
//!
//! Every strategy owns its own configuration and seed; a request's
//! networks may override the seed individually
//! ([`SearchRequestBuilder::network_seeded`](crate::SearchRequestBuilder::network_seeded)).
//! Strategy configurations are validated at
//! [`SearchService::submit`](crate::SearchService::submit) via
//! [`Strategy::validate`], which dispatches to the per-config `validate`
//! methods ([`GdConfig::validate`], [`RandomSearchConfig::validate`],
//! [`BbboConfig::validate`]).

use crate::bbbo::BbboConfig;
use crate::gd::GdConfig;
use crate::random_search::RandomSearchConfig;
use crate::request::ConfigError;

/// Which search algorithm a job runs. Every variant executes through the
/// same [`SearchService`](crate::SearchService) lifecycle — queued,
/// observable, cancellable, batchable — and every variant is
/// bit-identical per network to a standalone run with the same seed, for
/// any worker-thread budget.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Strategy {
    /// DOSA's differentiable one-loop gradient descent (§3.2, §5),
    /// descending the request's [`Surrogate`](crate::Surrogate). Start
    /// points fan out across the worker fleet. The default.
    GradientDescent(GdConfig),
    /// The random-search baseline (§6.1: N hardware designs × M joint
    /// mapping samples). Hardware designs fan out across the worker
    /// fleet, each searched by a private RNG stream derived from the
    /// seed.
    Random(RandomSearchConfig),
    /// The two-loop Bayesian-optimization baseline (Spotlight-style
    /// BB-BO, §6.1). The outer Gaussian-process loop stays sequential and
    /// seed-deterministic; the inner random-mapper samples and the
    /// expected-improvement candidate scoring fan out across the fleet.
    BayesOpt(BbboConfig),
}

impl Default for Strategy {
    fn default() -> Strategy {
        Strategy::GradientDescent(GdConfig::default())
    }
}

impl Strategy {
    /// Short human-readable name ("gradient-descent" / "random" /
    /// "bayes-opt"), used in errors and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::GradientDescent(_) => "gradient-descent",
            Strategy::Random(_) => "random",
            Strategy::BayesOpt(_) => "bayes-opt",
        }
    }

    /// The strategy's base RNG seed — the default for networks that do
    /// not carry their own.
    pub fn seed(&self) -> u64 {
        match self {
            Strategy::GradientDescent(cfg) => cfg.seed,
            Strategy::Random(cfg) => cfg.seed,
            Strategy::BayesOpt(cfg) => cfg.seed,
        }
    }

    /// The work-item granularity this strategy caches and replays at
    /// when the service carries a
    /// [`ResultCache`](crate::ResultCache): `(network, start point)`
    /// descents for gradient descent, `(network, hardware design)`
    /// evaluations for random search, and whole networks for BB-BO
    /// (every outer GP step conditions on all previous observations, so
    /// nothing finer is pure). Used in cache reports.
    pub fn cache_granularity(&self) -> &'static str {
        match self {
            Strategy::GradientDescent(_) => "start-point",
            Strategy::Random(_) => "hardware-design",
            Strategy::BayesOpt(_) => "network",
        }
    }

    /// Validate this strategy's configuration, dispatching to the
    /// per-config `validate` method. Called on every request at
    /// [`SearchService::submit`](crate::SearchService::submit).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            Strategy::GradientDescent(cfg) => cfg.validate(),
            Strategy::Random(cfg) => cfg.validate(),
            Strategy::BayesOpt(cfg) => cfg.validate(),
        }
    }

    /// Coarse per-network estimate of the model evaluations this
    /// strategy's budget implies — gradient steps for
    /// [`Strategy::GradientDescent`], design × mapping samples for the
    /// black-box strategies. The scheduler uses it as the
    /// [`SchedPolicy::ShortestFirst`](crate::SchedPolicy::ShortestFirst)
    /// ranking key; it orders jobs by expected size and is **not** a
    /// bound (rounding evaluations and EI scoring are excluded).
    pub fn estimated_samples(&self) -> u64 {
        match self {
            Strategy::GradientDescent(cfg) => {
                (cfg.start_points as u64).saturating_mul(cfg.steps_per_start as u64)
            }
            Strategy::Random(cfg) => (cfg.num_hw as u64).saturating_mul(cfg.samples_per_hw as u64),
            Strategy::BayesOpt(cfg) => {
                (cfg.num_hw as u64).saturating_mul(cfg.samples_per_hw as u64)
            }
        }
    }
}

impl RandomSearchConfig {
    /// Check this configuration for values the random searcher cannot run
    /// on, returning the first offending field as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_hw == 0 {
            return Err(ConfigError::ZeroHwDesigns);
        }
        if self.samples_per_hw == 0 {
            return Err(ConfigError::ZeroSamplesPerHw);
        }
        Ok(())
    }
}

impl BbboConfig {
    /// Check this configuration for values BB-BO cannot run on, returning
    /// the first offending field as a typed [`ConfigError`] — notably
    /// `init_random` of 0 or above `num_hw`, which used to let the
    /// Gaussian process fit on an empty or impossibly short design set.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_hw == 0 {
            return Err(ConfigError::ZeroHwDesigns);
        }
        if self.samples_per_hw == 0 {
            return Err(ConfigError::ZeroSamplesPerHw);
        }
        if self.candidates == 0 {
            return Err(ConfigError::ZeroCandidates);
        }
        if self.init_random == 0 || self.init_random > self.num_hw {
            return Err(ConfigError::BadInitRandom {
                init_random: self.init_random,
                num_hw: self.num_hw,
            });
        }
        Ok(())
    }
}

/// Derive the seed of an independent RNG stream from a base seed and a
/// stream index (splitmix64-style finalizer). The black-box strategies
/// hand each parallel work item — a hardware design in random search, a
/// joint mapping sample in BB-BO's inner loop — its own stream, so fleet
/// scheduling can never perturb the drawn values: results stay
/// bit-identical for every worker count and batch composition.
pub(crate) fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_strategy_is_gd_with_default_config() {
        let s = Strategy::default();
        assert_eq!(s.name(), "gradient-descent");
        assert_eq!(s.seed(), GdConfig::default().seed);
        s.validate().unwrap();
    }

    #[test]
    fn random_config_validation_rejects_degenerate_fields() {
        RandomSearchConfig::default().validate().unwrap();
        let zero_hw = RandomSearchConfig {
            num_hw: 0,
            ..RandomSearchConfig::default()
        };
        assert_eq!(zero_hw.validate(), Err(ConfigError::ZeroHwDesigns));
        let zero_samples = RandomSearchConfig {
            samples_per_hw: 0,
            ..RandomSearchConfig::default()
        };
        assert_eq!(zero_samples.validate(), Err(ConfigError::ZeroSamplesPerHw));
    }

    #[test]
    fn bbbo_config_validation_rejects_degenerate_fields() {
        BbboConfig::default().validate().unwrap();
        let cases = [
            (
                BbboConfig {
                    num_hw: 0,
                    ..BbboConfig::default()
                },
                ConfigError::ZeroHwDesigns,
            ),
            (
                BbboConfig {
                    samples_per_hw: 0,
                    ..BbboConfig::default()
                },
                ConfigError::ZeroSamplesPerHw,
            ),
            (
                BbboConfig {
                    candidates: 0,
                    ..BbboConfig::default()
                },
                ConfigError::ZeroCandidates,
            ),
            (
                BbboConfig {
                    init_random: 0,
                    ..BbboConfig::default()
                },
                ConfigError::BadInitRandom {
                    init_random: 0,
                    num_hw: 100,
                },
            ),
            (
                BbboConfig {
                    num_hw: 4,
                    init_random: 5,
                    ..BbboConfig::default()
                },
                ConfigError::BadInitRandom {
                    init_random: 5,
                    num_hw: 4,
                },
            ),
        ];
        for (cfg, expected) in cases {
            assert_eq!(cfg.validate(), Err(expected));
        }
    }

    #[test]
    fn estimated_samples_track_the_configured_budgets() {
        let gd = Strategy::GradientDescent(GdConfig {
            start_points: 7,
            steps_per_start: 890,
            ..GdConfig::default()
        });
        assert_eq!(gd.estimated_samples(), 7 * 890);
        let random = Strategy::Random(RandomSearchConfig {
            num_hw: 10,
            samples_per_hw: 1000,
            seed: 0,
        });
        assert_eq!(random.estimated_samples(), 10 * 1000);
        let bayes = Strategy::BayesOpt(BbboConfig::default());
        assert_eq!(bayes.estimated_samples(), 100 * 100);
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = stream_seed(0, 0);
        assert_eq!(a, stream_seed(0, 0), "stream seeds must be deterministic");
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for stream in 0..64u64 {
                seen.insert(stream_seed(seed, stream));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "stream seeds should not collide");
    }
}
