//! DOSA's one-loop gradient-descent co-search (§3.2, §5).
//!
//! One search run follows the paper's toolflow: generate start points
//! (random hardware + CoSA mappings, with the §5.3.1 rejection rule), run
//! Adam on all layers' log tiling factors simultaneously against the
//! differentiable EDP loss, round to valid mappings every N steps
//! (§5.3.2), optionally re-select loop orderings on each rounding (§5.2.1)
//! or blend them with the softmax loss (§5.2.2), and evaluate every rounded
//! point with the reference model, tracking the best hardware + mapping
//! configuration found. Every model evaluation — one gradient step or one
//! reference evaluation — counts as one *sample*, making the histories
//! comparable to the black-box baselines (§6.3).

use crate::request::SearchRequest;
use crate::service::SearchService;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_timeloop::{
    evaluate_layer, evaluate_model, min_hw_for_all, LoopOrder, Mapping, ModelPerf, Stationarity,
};
use dosa_workload::Layer;

/// Loop-ordering search strategy (§5.2, Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopOrderStrategy {
    /// No loop-ordering search: keep the start point's orderings.
    Baseline,
    /// Re-select the best of WS/IS/OS per layer at every rounding (§5.2.1).
    Iterate,
    /// Gradient-based softmax weighting of WS/IS/OS (§5.2.2).
    Softmax,
}

/// Configuration of one DOSA search run.
#[derive(Debug, Clone, Copy)]
pub struct GdConfig {
    /// Number of start points (the paper uses 7).
    pub start_points: usize,
    /// Gradient steps per start point (890 in §6.2, 1490 in §6.3–6.5).
    pub steps_per_start: usize,
    /// Round to a valid mapping every this many steps (300 / 500).
    pub round_every: usize,
    /// Adam learning rate on the log tiling factors.
    pub learning_rate: f64,
    /// Loop-ordering strategy.
    pub strategy: LoopOrderStrategy,
    /// Pin the PE array side (Fig. 12); `None` derives it from mappings.
    pub fixed_pe_side: Option<u64>,
    /// Start-point rejection factor (§5.3.1; the paper uses 10).
    pub rejection_factor: f64,
    /// RNG seed; runs are deterministic given the seed.
    pub seed: u64,
    /// Run each start point in bounded segments of this many gradient
    /// steps: after a segment the descent checkpoints its full state
    /// (parameters, Adam moments, partial history) and re-enqueues, so
    /// long descents cannot monopolize the service's worker pool.
    /// `None` (the default) runs each start to completion in one item.
    /// Segmentation is bit-exact: any `k` produces the same result as
    /// the unsegmented run, so it is deliberately **excluded** from the
    /// result-cache fingerprint.
    pub segment_steps: Option<usize>,
}

impl Default for GdConfig {
    fn default() -> Self {
        GdConfig {
            start_points: 7,
            steps_per_start: 890,
            round_every: 300,
            learning_rate: 0.04,
            strategy: LoopOrderStrategy::Iterate,
            fixed_pe_side: None,
            rejection_factor: 10.0,
            seed: 0,
            segment_steps: None,
        }
    }
}

/// One point of a best-so-far history: reference-model EDP after a number
/// of model evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchPoint {
    /// Model evaluations consumed so far.
    pub samples: usize,
    /// Best reference-evaluated EDP found so far (µJ·cycles; infinite
    /// until the first valid evaluation).
    pub best_edp: f64,
}

/// Result of a search run (DOSA or a baseline).
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best reference-model EDP found.
    pub best_edp: f64,
    /// Hardware configuration of the best point.
    pub best_hw: HardwareConfig,
    /// Per-layer mappings of the best point.
    pub best_mappings: Vec<Mapping>,
    /// Best-so-far history over samples.
    pub history: Vec<SearchPoint>,
    /// Total model evaluations consumed.
    pub samples: usize,
}

impl SearchResult {
    pub(crate) fn empty() -> SearchResult {
        SearchResult {
            best_edp: f64::INFINITY,
            best_hw: HardwareConfig::gemmini_default(),
            best_mappings: Vec::new(),
            history: Vec::new(),
            samples: 0,
        }
    }

    pub(crate) fn consider(&mut self, edp: f64, hw: &HardwareConfig, mappings: &[Mapping]) {
        if edp < self.best_edp {
            self.best_edp = edp;
            self.best_hw = *hw;
            self.best_mappings = mappings.to_vec();
        }
    }

    pub(crate) fn record(&mut self) {
        self.history.push(SearchPoint {
            samples: self.samples,
            best_edp: self.best_edp,
        });
    }

    /// Record the final best-so-far point unless the last record already
    /// captured the current sample count — the black-box searchers used
    /// to push a duplicated trailing `SearchPoint` whenever the
    /// `record_every` cadence landed on the last sample. Keeps the
    /// history's `samples` axis strictly increasing.
    pub(crate) fn record_final(&mut self) {
        if self.samples == 0 {
            return;
        }
        if self.history.last().is_none_or(|p| p.samples < self.samples) {
            self.record();
        }
        debug_assert!(
            self.history.windows(2).all(|w| w[0].samples < w[1].samples),
            "history must have strictly increasing sample counts"
        );
    }
}

/// Evaluate rounded mappings with the reference model on their minimal
/// hardware (or with the PE side pinned), returning the configuration and
/// whole-model performance.
pub fn evaluate_rounded(
    layers: &[Layer],
    mappings: &[Mapping],
    fixed_pe_side: Option<u64>,
    hier: &Hierarchy,
) -> (HardwareConfig, ModelPerf) {
    let pairs: Vec<(&dosa_workload::Problem, &Mapping)> = layers
        .iter()
        .zip(mappings)
        .map(|(l, m)| (&l.problem, m))
        .collect();
    let mut hw = min_hw_for_all(pairs, hier);
    if let Some(side) = fixed_pe_side {
        // dosa-lint: allow(panic-perimeter) — `side` comes from a validated
        // config and the SRAM sizes from `min_hw_for_all` are in range, so
        // the constructor cannot fail; an `Err` here is a bug.
        hw = HardwareConfig::new(side, hw.acc_kb(), hw.spad_kb()).expect("valid pe side");
    }
    let paired: Vec<(Layer, Mapping)> = layers
        .iter()
        .cloned()
        .zip(mappings.iter().cloned())
        .collect();
    let perf = evaluate_model(&paired, &hw, hier);
    (hw, perf)
}

/// Greedy per-layer, per-level loop-ordering selection (§5.2.1: "three
/// loop orderings per layer per level"): for each layer and memory level,
/// pick the WS/IS/OS ordering minimizing whole-model EDP given every other
/// current choice. Returns the chosen stationarity per layer per level and
/// updates `mappings` in place.
#[allow(clippy::needless_range_loop)] // (layer, level) coordinate descent reads clearest indexed
pub fn choose_best_orderings(
    layers: &[Layer],
    mappings: &mut [Mapping],
    hw: &HardwareConfig,
    hier: &Hierarchy,
) -> Vec<[Stationarity; dosa_accel::NUM_LEVELS]> {
    const NL: usize = dosa_accel::NUM_LEVELS;
    let n = layers.len();
    let mut choices = vec![[Stationarity::WeightStationary; NL]; n];
    // Seed choices and totals from the current orderings.
    let eval = |layer: &Layer, m: &Mapping| {
        let perf = evaluate_layer(&layer.problem, m, hw, hier);
        (
            perf.energy_uj * layer.count as f64,
            perf.latency_cycles * layer.count as f64,
        )
    };
    for (i, m) in mappings.iter_mut().enumerate() {
        for lvl in 0..NL {
            let s = *Stationarity::ALL
                .iter()
                .find(|s| LoopOrder::canonical(**s) == m.orders[lvl])
                .unwrap_or(&Stationarity::WeightStationary);
            choices[i][lvl] = s;
            m.orders[lvl] = LoopOrder::canonical(s);
        }
    }
    let mut per_layer: Vec<(f64, f64)> = layers
        .iter()
        .zip(mappings.iter())
        .map(|(l, m)| eval(l, m))
        .collect();
    let mut energy: f64 = per_layer.iter().map(|p| p.0).sum();
    let mut latency: f64 = per_layer.iter().map(|p| p.1).sum();

    // Two greedy coordinate passes over (layer, level) choices.
    for _ in 0..2 {
        for i in 0..n {
            for lvl in 0..NL {
                let (e_cur, l_cur) = per_layer[i];
                let mut best = (choices[i][lvl], e_cur, l_cur);
                let mut best_edp = energy * latency;
                for s in Stationarity::ALL {
                    if s == choices[i][lvl] {
                        continue;
                    }
                    let mut m = mappings[i].clone();
                    m.orders[lvl] = LoopOrder::canonical(s);
                    let (e, l) = eval(&layers[i], &m);
                    let edp = (energy - e_cur + e) * (latency - l_cur + l);
                    if edp < best_edp {
                        best_edp = edp;
                        best = (s, e, l);
                    }
                }
                if best.0 != choices[i][lvl] {
                    choices[i][lvl] = best.0;
                    mappings[i].orders[lvl] = LoopOrder::canonical(best.0);
                    energy += best.1 - e_cur;
                    latency += best.2 - l_cur;
                    per_layer[i] = (best.1, best.2);
                }
            }
        }
    }
    choices
}

/// Run the full DOSA one-loop search on `layers`, blocking until done.
///
/// This is a thin shim over the job service: it submits one
/// single-network [`Surrogate::Edp`](crate::Surrogate::Edp) request to a
/// throwaway [`SearchService`](crate::SearchService) and waits. Start
/// points are generated sequentially from `cfg.seed`, descended in
/// parallel, and merged deterministically — the result is bit-identical
/// for every worker-thread count. The thread budget is read from the
/// calling thread's rayon configuration (`ThreadPool::install` scopes and
/// `build_global` both apply), so existing `--threads`-style knobs keep
/// working. For batching, live progress, or cancellation, use the service
/// directly.
///
/// # Panics
///
/// Panics if `layers` is empty or `cfg` fails
/// [`GdConfig::validate`](GdConfig::validate).
pub fn dosa_search(layers: &[Layer], hier: &Hierarchy, cfg: &GdConfig) -> SearchResult {
    assert!(!layers.is_empty(), "need at least one layer");
    let service = SearchService::builder()
        .threads(rayon::current_num_threads())
        .build();
    let request = SearchRequest::builder(hier.clone())
        .network("network", layers.to_vec())
        .config(*cfg)
        .build();
    let handle = match service.submit(request) {
        Ok(handle) => handle,
        // dosa-lint: allow(panic-perimeter) — documented perimeter of the
        // one-call convenience entrypoint; callers wanting typed errors use
        // `SearchService::submit` + `wait` directly.
        Err(e) => panic!("invalid GdConfig: {e}"),
    };
    handle
        .wait()
        // dosa-lint: allow(panic-perimeter) — same convenience-entrypoint
        // perimeter: the service path surfaces this as a typed JobError.
        .unwrap_or_else(|err| panic!("search job failed: {err}"))
        .into_single()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn tiny_layers() -> Vec<Layer> {
        vec![
            Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(), 2),
            Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
        ]
    }

    fn tiny_cfg() -> GdConfig {
        GdConfig {
            start_points: 2,
            steps_per_start: 60,
            round_every: 30,
            ..GdConfig::default()
        }
    }

    #[test]
    fn search_finds_valid_configuration() {
        let layers = tiny_layers();
        let hier = Hierarchy::gemmini();
        let res = dosa_search(&layers, &hier, &tiny_cfg());
        assert!(res.best_edp.is_finite());
        assert_eq!(res.best_mappings.len(), 2);
        for (l, m) in layers.iter().zip(&res.best_mappings) {
            m.validate(&l.problem, &hier).unwrap();
        }
        assert!(res.samples >= 120);
        // History is monotone non-increasing.
        for w in res.history.windows(2) {
            assert!(w[1].best_edp <= w[0].best_edp);
        }
    }

    #[test]
    fn gd_improves_over_first_rounding() {
        let layers = tiny_layers();
        let hier = Hierarchy::gemmini();
        let cfg = GdConfig {
            start_points: 1,
            steps_per_start: 300,
            round_every: 60,
            seed: 3,
            ..GdConfig::default()
        };
        let res = dosa_search(&layers, &hier, &cfg);
        let first = res
            .history
            .iter()
            .find(|p| p.best_edp.is_finite())
            .expect("some evaluation");
        assert!(
            res.best_edp <= first.best_edp,
            "final {} vs first {}",
            res.best_edp,
            first.best_edp
        );
    }

    #[test]
    fn fixed_pe_side_is_respected() {
        let layers = tiny_layers();
        let hier = Hierarchy::gemmini();
        let cfg = GdConfig {
            fixed_pe_side: Some(16),
            ..tiny_cfg()
        };
        let res = dosa_search(&layers, &hier, &cfg);
        assert_eq!(res.best_hw.pe_side(), 16);
        for m in &res.best_mappings {
            assert!(m.spatial_product() <= 16 * 16);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let layers = tiny_layers();
        let hier = Hierarchy::gemmini();
        let a = dosa_search(&layers, &hier, &tiny_cfg());
        let b = dosa_search(&layers, &hier, &tiny_cfg());
        assert_eq!(a.best_edp, b.best_edp);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    #[should_panic(expected = "invalid GdConfig: round_every must be at least 1")]
    fn degenerate_round_every_panics_with_a_typed_message() {
        // Formerly a bare divide-by-zero deep in the gradient loop; now a
        // ConfigError surfaced at the service boundary.
        let cfg = GdConfig {
            round_every: 0,
            ..tiny_cfg()
        };
        dosa_search(&tiny_layers(), &Hierarchy::gemmini(), &cfg);
    }

    #[test]
    fn ordering_selection_never_hurts() {
        let layers = tiny_layers();
        let hier = Hierarchy::gemmini();
        let hw = HardwareConfig::gemmini_default();
        let mut mappings: Vec<Mapping> = layers
            .iter()
            .map(|l| crate::cosa::cosa_mapping(&l.problem, &hw, &hier))
            .collect();
        let paired: Vec<(Layer, Mapping)> = layers
            .iter()
            .cloned()
            .zip(mappings.iter().cloned())
            .collect();
        let before = evaluate_model(&paired, &hw, &hier).edp();
        choose_best_orderings(&layers, &mut mappings, &hw, &hier);
        let paired: Vec<(Layer, Mapping)> = layers
            .iter()
            .cloned()
            .zip(mappings.iter().cloned())
            .collect();
        let after = evaluate_model(&paired, &hw, &hier).edp();
        assert!(after <= before * (1.0 + 1e-9), "{after} vs {before}");
    }
}
