//! The service-level result cache: content-addressed replay of completed
//! work items, checkpoint/resume journaling, and the warm-start neighbor
//! index.
//!
//! ## Why work items are cacheable at all
//!
//! Every work item the service fans out — a `(network, start point)`
//! gradient descent, a `(network, hardware design)` random-search
//! evaluation, a whole network's BB-BO run — is a **pure function** of
//! its inputs: the workload dimensions, the memory hierarchy, the
//! strategy configuration, the surrogate, the effective seed, and the
//! item's stream index. That purity is the determinism invariant the CI
//! parity gates already enforce (see `ARCHITECTURE.md`), which makes
//! results content-addressable: fingerprint the inputs, and the cached
//! result **is** the recomputed result, bit for bit.
//!
//! ## Key schema
//!
//! Keys are built with [`dosa_cache::Fingerprinter`] — an injective,
//! type-tagged, length-prefixed encoding with canonicalized floats
//! (`-0.0` → `0.0`, one NaN pattern) — under a versioned schema string
//! per item kind:
//!
//! | builder | schema | covers |
//! | --- | --- | --- |
//! | [`gd_item_key`] | `gd-item-v1` | hierarchy, layer shapes, surrogate id, every **result-affecting** `GdConfig` field, effective seed, start index |
//! | [`random_item_key`] | `random-item-v1` | hierarchy, layer shapes, `samples_per_hw`, effective seed, design index |
//! | [`bayes_network_key`] | `bayes-net-v1` | hierarchy, layer shapes, every `BbboConfig` field, effective seed |
//! | [`network_shape_key`] | `net-shape-v1` | hierarchy + layer shapes only (the warm-start neighborhood) |
//!
//! Layer *names* are deliberately excluded — two networks with identical
//! shapes share results. `GdConfig::start_points` and `rejection_factor`
//! are included even though a single descent never reads them: the §5.3.1
//! rejection rule's forced-acceptance bound depends on the total count,
//! so the start point at index `i` is only a pure function of the seed
//! *given* those fields. Conversely, a random-search design at index `i`
//! is independent of `num_hw`, so that field is excluded and a shorter
//! budget's items replay into a longer one's. `GdConfig::segment_steps`
//! is likewise **deliberately excluded**: segmentation moves descents
//! between worker dispatches but never changes a result bit (a tested
//! invariant), so a descent journaled under one segment length replays
//! under any other — including a cancelled segmented job resuming
//! unsegmented, and vice versa.
//!
//! Not everything has a stable canonical identity: a learned
//! [`LatencyPredictor`](crate::LatencyPredictor) (its MLP weights live
//! only in memory) and [`Surrogate::Custom`](crate::Surrogate) losses
//! yield `None` keys, and their work items simply bypass the cache.
//!
//! ## Replay, journaling, and warm starts
//!
//! [`ResultCache`] wraps any [`CacheStore`] (the in-memory
//! [`ShardedLru`] by default). The service
//! consults it per work item *before* the item competes for a worker
//! slot, journals each item's result the moment the item completes
//! (never on cancellation, so partial results are never replayed), and
//! maintains a secondary **warm index** from [`network_shape_key`] to the
//! best relaxed mapping seen for that shape — the neighbor a
//! [`WarmStart::NearestNeighbor`](crate::WarmStart) request seeds an
//! extra descent from. See `ARCHITECTURE.md` ("Result cache & resume")
//! for the lifecycle diagram and the determinism argument.

use crate::bbbo::BbboConfig;
use crate::gd::SearchResult;
use crate::gd::{GdConfig, LoopOrderStrategy};
use crate::latency_model::LatencyModelKind;
use crate::random_search::RandomSearchConfig;
use crate::request::Surrogate;
use dosa_accel::Hierarchy;
use dosa_cache::{CacheKey, CacheStore, Fingerprinter, ShardedLru};
use dosa_model::RelaxedMapping;
use dosa_timeloop::Stationarity;
use dosa_workload::Layer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default entry capacity of [`ResultCache::in_memory`].
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Append one memory level per field: name, tensor placement, spatial
/// fanout dimension.
fn fingerprint_hierarchy(mut fp: Fingerprinter, hier: &Hierarchy) -> Fingerprinter {
    fp = fp.field("hierarchy");
    for level in hier.levels() {
        fp = fp.str(level.name);
        for &stores in &level.stores {
            fp = fp.bool(stores);
        }
        fp = fp.i64(level.spatial_dim.map_or(-1, |d| d as i64));
    }
    fp
}

/// Append every layer's *shape*: kind, the seven dimension sizes, the
/// strides, and the repeat count. Names are excluded on purpose — the
/// models never read them, so equally-shaped networks share cache lines.
fn fingerprint_layers(mut fp: Fingerprinter, layers: &[Layer]) -> Fingerprinter {
    fp = fp.field("layers").u64(layers.len() as u64);
    for layer in layers {
        let p = &layer.problem;
        fp = fp.str(&p.kind().to_string());
        for size in p.sizes() {
            fp = fp.u64(size);
        }
        fp = fp.u64(p.stride_p()).u64(p.stride_q()).u64(layer.count);
    }
    fp
}

/// The surrogate's stable identity, or `None` if it has none (learned
/// predictor weights and custom losses live only in memory, so their
/// items must bypass the cache rather than risk aliasing).
fn surrogate_id(surrogate: &Surrogate) -> Option<&'static str> {
    match surrogate {
        Surrogate::Edp => Some("edp"),
        Surrogate::PredictedLatency(p) if p.kind == LatencyModelKind::Analytical => {
            Some("latency-analytical")
        }
        Surrogate::PredictedLatency(_) => None,
        Surrogate::Custom(_) => None,
    }
}

fn loop_order_name(strategy: LoopOrderStrategy) -> &'static str {
    match strategy {
        LoopOrderStrategy::Baseline => "baseline",
        LoopOrderStrategy::Iterate => "iterate",
        LoopOrderStrategy::Softmax => "softmax",
    }
}

/// Append every result-affecting [`GdConfig`] field plus the effective
/// seed — including `start_points`/`rejection_factor`, which shape the
/// §5.3.1 start-point sequence itself, but **not** `segment_steps`,
/// which only re-buckets the same gradient steps into worker dispatches
/// and is bit-invisible in results (see the module docs).
fn fingerprint_gd_config(fp: Fingerprinter, cfg: &GdConfig) -> Fingerprinter {
    fp.field("gd-config")
        .u64(cfg.start_points as u64)
        .u64(cfg.steps_per_start as u64)
        .u64(cfg.round_every as u64)
        .f64(cfg.learning_rate)
        .str(loop_order_name(cfg.strategy))
        .i64(cfg.fixed_pe_side.map_or(-1, |s| s as i64))
        .f64(cfg.rejection_factor)
        .field("seed")
        .u64(cfg.seed)
}

/// Content-address of one `(network, start point)` gradient-descent work
/// item, or `None` when the surrogate has no stable identity. `cfg` must
/// be the **network-effective** config (its `seed` already resolved via
/// `SearchRequest::network_seed`).
pub fn gd_item_key(
    hier: &Hierarchy,
    layers: &[Layer],
    surrogate: &Surrogate,
    cfg: &GdConfig,
    start_index: usize,
) -> Option<CacheKey> {
    let surrogate = surrogate_id(surrogate)?;
    let mut fp = Fingerprinter::new("gd-item-v1");
    fp = fingerprint_hierarchy(fp, hier);
    fp = fingerprint_layers(fp, layers);
    fp = fp.field("surrogate").str(surrogate);
    fp = fingerprint_gd_config(fp, cfg);
    Some(fp.field("start").u64(start_index as u64).finish())
}

/// Content-address of one warm-started descent: the regular GD fields
/// plus the seeding relaxed mappings **by content** (every log-space
/// parameter bit and loop ordering), since a warm start's inputs come
/// from the cache rather than the RNG stream.
pub(crate) fn warm_item_key(
    hier: &Hierarchy,
    layers: &[Layer],
    surrogate: &Surrogate,
    cfg: &GdConfig,
    start_index: usize,
    relaxed: &[RelaxedMapping],
) -> Option<CacheKey> {
    let surrogate = surrogate_id(surrogate)?;
    let mut fp = Fingerprinter::new("gd-warm-item-v1");
    fp = fingerprint_hierarchy(fp, hier);
    fp = fingerprint_layers(fp, layers);
    fp = fp.field("surrogate").str(surrogate);
    fp = fingerprint_gd_config(fp, cfg);
    fp = fp.field("start").u64(start_index as u64).field("warm-seed");
    for r in relaxed {
        for p in r.params() {
            fp = fp.f64(p);
        }
        for &order in &r.orders {
            fp = fp.u64(stationarity_index(order));
        }
    }
    Some(fp.finish())
}

fn stationarity_index(s: Stationarity) -> u64 {
    match s {
        Stationarity::WeightStationary => 0,
        Stationarity::InputStationary => 1,
        Stationarity::OutputStationary => 2,
    }
}

/// Content-address of one `(network, hardware design)` random-search work
/// item. `num_hw` is deliberately excluded: design `i` is drawn by a
/// fixed number of RNG values, so it is a pure function of `(seed, i)`
/// regardless of the total budget — a shorter run's items replay into a
/// longer one's. `cfg` must be the network-effective config.
pub fn random_item_key(
    hier: &Hierarchy,
    layers: &[Layer],
    cfg: &RandomSearchConfig,
    design_index: usize,
) -> CacheKey {
    let mut fp = Fingerprinter::new("random-item-v1");
    fp = fingerprint_hierarchy(fp, hier);
    fp = fingerprint_layers(fp, layers);
    fp.field("samples-per-hw")
        .u64(cfg.samples_per_hw as u64)
        .field("seed")
        .u64(cfg.seed)
        .field("design")
        .u64(design_index as u64)
        .finish()
}

/// Content-address of one network's whole BB-BO run. The outer Gaussian
/// process is sequential and every step conditions on all previous
/// observations, so the cacheable unit is the whole network, not a step.
/// `cfg` must be the network-effective config.
pub fn bayes_network_key(hier: &Hierarchy, layers: &[Layer], cfg: &BbboConfig) -> CacheKey {
    let mut fp = Fingerprinter::new("bayes-net-v1");
    fp = fingerprint_hierarchy(fp, hier);
    fp = fingerprint_layers(fp, layers);
    fp.field("bbbo-config")
        .u64(cfg.num_hw as u64)
        .u64(cfg.init_random as u64)
        .u64(cfg.samples_per_hw as u64)
        .u64(cfg.candidates as u64)
        .field("seed")
        .u64(cfg.seed)
        .finish()
}

/// The warm-start neighborhood key: hierarchy and layer shapes only, with
/// seed, strategy, config, and surrogate all ignored — any search that
/// ever optimized this shape is a neighbor worth seeding a descent from.
pub fn network_shape_key(hier: &Hierarchy, layers: &[Layer]) -> CacheKey {
    let mut fp = Fingerprinter::new("net-shape-v1");
    fp = fingerprint_hierarchy(fp, hier);
    fingerprint_layers(fp, layers).finish()
}

/// Observability counters of one [`ResultCache`] (service-wide, across
/// all jobs; per-job counters live on
/// [`JobHandle::stats`](crate::JobHandle::stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultCacheStats {
    /// Work-item lookups served from the cache.
    pub hits: u64,
    /// Work-item lookups that missed and ran on the fleet.
    pub misses: u64,
    /// Completed work items journaled into the store.
    pub journaled: u64,
}

/// Best relaxed mapping seen for one network shape — the warm-start
/// neighbor.
struct WarmEntry {
    best_edp: f64,
    relaxed: Vec<RelaxedMapping>,
}

/// The search-facing result cache a
/// [`SearchService`](crate::SearchService) consults per work item (see
/// [`SearchServiceBuilder::cache`](crate::SearchServiceBuilder::cache)):
/// a content-addressed [`CacheStore`] of completed work-item results,
/// plus the warm-start neighbor index and lock-free hit/miss/journal
/// counters.
///
/// One `ResultCache` may back any number of services; sharing one is how
/// a resubmitted (e.g. previously cancelled) job replays its completed
/// work items, and how repeated traffic for popular networks is served
/// for a hash lookup instead of a descent.
pub struct ResultCache {
    store: Arc<dyn CacheStore<Arc<SearchResult>>>,
    /// Keyed by [`network_shape_key`]. A `BTreeMap`, not a `HashMap`: any
    /// scan over warm candidates (e.g. future nearest-neighbor widening)
    /// must visit entries in deterministic key order, so that candidates
    /// tying on distance resolve to the same winner every run.
    warm: Mutex<BTreeMap<CacheKey, WarmEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    journaled: AtomicU64,
}

impl ResultCache {
    /// A cache over an in-memory [`ShardedLru`] holding at most
    /// `capacity` work-item results
    /// ([`DEFAULT_CACHE_CAPACITY`] is a reasonable default).
    pub fn in_memory(capacity: usize) -> Arc<ResultCache> {
        ResultCache::with_store(Arc::new(ShardedLru::new(capacity)))
    }

    /// A cache over any [`CacheStore`] backend — the seam a persistent
    /// store slots into.
    pub fn with_store(store: Arc<dyn CacheStore<Arc<SearchResult>>>) -> Arc<ResultCache> {
        Arc::new(ResultCache {
            store,
            warm: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            journaled: AtomicU64::new(0),
        })
    }

    /// Current hit/miss/journal counters (monotone, lock-free reads).
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            journaled: self.journaled.load(Ordering::Relaxed),
        }
    }

    /// Number of work-item results currently stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no work-item results are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Look one work item up, counting the hit or miss.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Arc<SearchResult>> {
        let found = self.store.get(key);
        let counter = if found.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Journal one **completed** work item: store it under its content
    /// address and offer its best mapping to the warm index under the
    /// network's shape key. Callers must never journal a cancelled
    /// (partial) result — a replayed partial would break the bit-parity
    /// contract.
    pub(crate) fn journal(&self, key: CacheKey, shape: Option<&CacheKey>, result: &SearchResult) {
        self.store.put(key, Arc::new(result.clone()));
        self.journaled.fetch_add(1, Ordering::Relaxed);
        if let Some(shape) = shape {
            self.offer_warm(shape, result);
        }
    }

    /// Offer `result` as the warm-start neighbor for `shape` if it beats
    /// the current entry (any strategy's best mappings qualify — they are
    /// lifted to relaxed log-space form on the way in).
    fn offer_warm(&self, shape: &CacheKey, result: &SearchResult) {
        if !result.best_edp.is_finite() || result.best_mappings.is_empty() {
            return;
        }
        let mut warm = crate::fault::lock(&self.warm);
        let entry = warm.get(shape);
        if entry.is_none_or(|e| result.best_edp < e.best_edp) {
            warm.insert(
                shape.clone(),
                WarmEntry {
                    best_edp: result.best_edp,
                    relaxed: result
                        .best_mappings
                        .iter()
                        .map(RelaxedMapping::from_mapping)
                        .collect(),
                },
            );
        }
    }

    /// The best relaxed mappings seen for `shape`, if any neighbor with
    /// the expected layer count has been journaled.
    pub(crate) fn warm_neighbor(
        &self,
        shape: &CacheKey,
        layers: usize,
    ) -> Option<Vec<RelaxedMapping>> {
        let warm = crate::fault::lock(&self.warm);
        warm.get(shape)
            .filter(|e| e.relaxed.len() == layers)
            .map(|e| e.relaxed.clone())
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("entries", &self.len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("journaled", &stats.journaled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(), 2),
            Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
        ]
    }

    #[test]
    fn layer_names_do_not_enter_keys() {
        let hier = Hierarchy::gemmini();
        let renamed = vec![
            Layer::repeated(Problem::conv("z", 3, 3, 28, 28, 64, 64, 1).unwrap(), 2),
            Layer::once(Problem::matmul("y", 64, 256, 256).unwrap()),
        ];
        assert_eq!(
            network_shape_key(&hier, &layers()),
            network_shape_key(&hier, &renamed)
        );
    }

    #[test]
    fn layer_shape_changes_do_enter_keys() {
        let hier = Hierarchy::gemmini();
        let wider = vec![
            Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 128, 1).unwrap(), 2),
            Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
        ];
        let recount = vec![
            Layer::repeated(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap(), 3),
            Layer::once(Problem::matmul("b", 64, 256, 256).unwrap()),
        ];
        let base = network_shape_key(&hier, &layers());
        assert_ne!(base, network_shape_key(&hier, &wider));
        assert_ne!(base, network_shape_key(&hier, &recount));
    }

    #[test]
    fn uncacheable_surrogates_yield_no_key() {
        let hier = Hierarchy::gemmini();
        let cfg = GdConfig::default();
        assert!(gd_item_key(&hier, &layers(), &Surrogate::Edp, &cfg, 0).is_some());
        let analytical = Surrogate::PredictedLatency(crate::LatencyPredictor::analytical());
        assert!(gd_item_key(&hier, &layers(), &analytical, &cfg, 0).is_some());
    }

    #[test]
    fn random_keys_ignore_num_hw_but_nothing_else() {
        let hier = Hierarchy::gemmini();
        let cfg = RandomSearchConfig {
            num_hw: 10,
            samples_per_hw: 100,
            seed: 7,
        };
        let other_budget = RandomSearchConfig { num_hw: 3, ..cfg };
        assert_eq!(
            random_item_key(&hier, &layers(), &cfg, 2),
            random_item_key(&hier, &layers(), &other_budget, 2)
        );
        let other_seed = RandomSearchConfig { seed: 8, ..cfg };
        assert_ne!(
            random_item_key(&hier, &layers(), &cfg, 2),
            random_item_key(&hier, &layers(), &other_seed, 2)
        );
        assert_ne!(
            random_item_key(&hier, &layers(), &cfg, 2),
            random_item_key(&hier, &layers(), &cfg, 3)
        );
    }

    #[test]
    fn warm_index_keeps_the_best_neighbor() {
        use dosa_accel::HardwareConfig;
        let hier = Hierarchy::gemmini();
        let cache = ResultCache::in_memory(64);
        let shape = network_shape_key(&hier, &layers());
        assert!(cache.warm_neighbor(&shape, 2).is_none());

        let mappings: Vec<_> = layers()
            .iter()
            .map(|l| crate::cosa_mapping(&l.problem, &HardwareConfig::gemmini_default(), &hier))
            .collect();
        let mut good = SearchResult::empty();
        good.consider(10.0, &HardwareConfig::gemmini_default(), &mappings);
        let key_a = random_item_key(&hier, &layers(), &RandomSearchConfig::default(), 0);
        cache.journal(key_a, Some(&shape), &good);
        assert_eq!(cache.warm_neighbor(&shape, 2).map(|r| r.len()), Some(2));
        // Wrong layer count → no neighbor.
        assert!(cache.warm_neighbor(&shape, 3).is_none());

        // A worse result must not displace the entry.
        let mut worse = SearchResult::empty();
        worse.consider(20.0, &HardwareConfig::gemmini_default(), &mappings);
        let key_b = random_item_key(&hier, &layers(), &RandomSearchConfig::default(), 1);
        cache.journal(key_b, Some(&shape), &worse);
        let warm = crate::fault::lock(&cache.warm);
        assert_eq!(warm.get(&shape).unwrap().best_edp, 10.0);
    }

    /// Two journaled results that tie on `best_edp` for the same shape:
    /// the first-journaled entry must win (`offer_warm` is strict `<`),
    /// and the winner must be bitwise identical across independent runs
    /// of the same journaling sequence — warm-start seeding is part of
    /// the determinism surface.
    #[test]
    fn warm_tie_breaks_are_stable_across_runs() {
        use dosa_accel::HardwareConfig;
        let hier = Hierarchy::gemmini();
        let run = || {
            let cache = ResultCache::in_memory(64);
            let shape = network_shape_key(&hier, &layers());
            // Two distinct mapping sets with the SAME best EDP.
            let hw_a = HardwareConfig::gemmini_default();
            let hw_b = HardwareConfig::new(hw_a.pe_side() * 2, 128.0, 512.0)
                .expect("valid tie-test hardware config");
            let map_a: Vec<_> = layers()
                .iter()
                .map(|l| crate::cosa_mapping(&l.problem, &hw_a, &hier))
                .collect();
            let map_b: Vec<_> = layers()
                .iter()
                .map(|l| crate::cosa_mapping(&l.problem, &hw_b, &hier))
                .collect();
            let mut first = SearchResult::empty();
            first.consider(10.0, &hw_a, &map_a);
            let mut tied = SearchResult::empty();
            tied.consider(10.0, &hw_b, &map_b);
            let ka = random_item_key(&hier, &layers(), &RandomSearchConfig::default(), 0);
            let kb = random_item_key(&hier, &layers(), &RandomSearchConfig::default(), 1);
            cache.journal(ka, Some(&shape), &first);
            cache.journal(kb, Some(&shape), &tied);
            cache
                .warm_neighbor(&shape, layers().len())
                .expect("a neighbor was journaled")
        };
        let one = run();
        let two = run();
        assert_eq!(one.len(), two.len());
        for (a, b) in one.iter().zip(&two) {
            // Bitwise, not approximate: the seeded descent replays the
            // exact parameters, so any wobble here is a determinism bug.
            let pa: Vec<u64> = a.params().iter().map(|p| p.to_bits()).collect();
            let pb: Vec<u64> = b.params().iter().map(|p| p.to_bits()).collect();
            assert_eq!(pa, pb, "tied warm-neighbor winner drifted between runs");
            assert_eq!(a.orders, b.orders);
        }
    }
}
