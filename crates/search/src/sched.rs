//! The scheduler core of the [`SearchService`](crate::SearchService): the
//! per-request [`SchedPolicy`], the total-order [`JobRank`] it compiles
//! to, the **aging** rule that bounds every job's queue wait, and the
//! [`ReadyQueue`] the service's persistent worker pool pulls work items
//! from.
//!
//! ## Execution model
//!
//! A service with a thread budget of `N` spawns exactly `N` long-lived
//! worker threads at construction and never again (a worker is respawned
//! only if a panic escapes a work item's unwind boundary — see
//! `service.rs`). Submitting a job enqueues one *planning* item; planning
//! enqueues the job's executable items — GD start-point descents (whole,
//! or as bounded resumable segments), random-search hardware designs,
//! BB-BO networks. Workers loop: pop the best-ranked eligible entry, run
//! it, repeat. Nothing ever parks a thread waiting for capacity —
//! capacity *is* the worker set, so at most `N` items execute at any
//! instant across all jobs and the live-thread count is flat in the
//! number of jobs and work items.
//!
//! A job may cap its share of the pool below the service budget with
//! [`SearchRequestBuilder::max_parallelism`](crate::SearchRequestBuilder::max_parallelism):
//! entries of a job that already has `max_parallelism` items in flight
//! are simply ineligible until one finishes, so a long job capped at `k`
//! provably leaves `N - k` workers for everyone else.
//!
//! Work items replayed from the service's result cache
//! ([`SearchServiceBuilder::cache`](crate::SearchServiceBuilder::cache))
//! are resolved during planning and never enter the queue at all: a
//! fully-cached job consumes one planning dispatch and leaves the whole
//! pool to jobs doing real work.
//!
//! ## Arbitration and aging
//!
//! Each pop scans the queue for eligible entries and dispatches the
//! minimum by **aged rank** ([`JobRank::aged`]): the submission-time rank
//! improves stepwise with time spent queued. Waiting time is measured on
//! the queue's *dispatch counter* — a logical clock that advances exactly
//! once per dispatched item — so aging is deterministic under any thread
//! budget and immune to wall-clock jitter. Running items are never
//! preempted: ranking only decides who goes next, never who gets
//! interrupted.
//!
//! Without aging a continuous stream of `Priority(0)` submissions
//! outranks a queued `Fifo` job forever — every fresh `Priority` rank is
//! strictly smaller — and the `Fifo` job starves. With aging, a waiting
//! entry's effective priority class improves by one per
//! [`AGE_DISPATCH_PERIOD`] dispatches, so after at most
//! `255 × AGE_DISPATCH_PERIOD` dispatches it reaches class 0, where only
//! entries of *earlier-submitted* jobs can still be chosen ahead of it.
//! Combined with bounded GD segments (slots turn over at a bounded
//! cadence even under arbitrarily long descents), every queued entry
//! dispatches within an item budget computable from the backlog at its
//! enqueue time — bounded wait is a tested invariant
//! (`tests/runtime.rs`), not an expectation.
//!
//! Scheduling never changes results: each work item is a pure function of
//! its inputs and its own RNG stream, and per-job results land at fixed
//! item positions, so a job's output is bit-identical under any
//! interleaving (see `ARCHITECTURE.md` at the repository root for the
//! full invariant).

use crate::fault;
use std::sync::{Condvar, Mutex};

/// How a job competes for the pool's workers against the other jobs on
/// its [`SearchService`](crate::SearchService), set per request via
/// [`SearchRequestBuilder::policy`](crate::SearchRequestBuilder::policy).
///
/// Jobs are ranked by `(priority class, policy key, submission id)` and
/// the best-ranked eligible work item wins each free worker:
///
/// 1. **Priority class** — [`SchedPolicy::Priority`]`(p)` jobs form class
///    `p`; `Fifo` and `ShortestFirst` jobs sit in class 0. A higher class
///    is offered workers strictly before a lower one.
/// 2. **Within a class** — any `Priority` job goes first (by submission
///    order), then `ShortestFirst` jobs ordered by their estimated total
///    work ([`SearchRequest::estimated_samples`](crate::SearchRequest::estimated_samples),
///    smallest first), then `Fifo` jobs in submission order.
///
/// Ranks **age**: an entry's effective priority class improves by one for
/// every [`AGE_DISPATCH_PERIOD`] items the service dispatches while it
/// waits, so a stream of high-rank jobs can delay a low-rank one only for
/// a bounded number of dispatches, never starve it (see the private
/// `JobRank::aged`). Running work items are never preempted — ranking
/// decides who gets the *next* worker. Results never depend on the
/// policy: every job's output is bit-identical to its standalone run
/// under any interleaving.
///
/// The example below submits a long job capped at one worker, then a
/// short `ShortestFirst` job that overtakes it on the remaining worker
/// and finishes first — out of submission order:
///
/// ```
/// use dosa_search::{GdConfig, SchedPolicy, SearchRequest, SearchService};
/// use dosa_accel::Hierarchy;
/// use dosa_workload::{Layer, Problem};
///
/// let layers = || vec![Layer::once(Problem::matmul("m", 8, 32, 32).unwrap())];
/// let service = SearchService::builder().threads(2).build();
///
/// // A long-budget job, capped to one of the two workers.
/// let long = service.submit(
///     SearchRequest::builder(Hierarchy::gemmini())
///         .network("long", layers())
///         .config(GdConfig {
///             start_points: 1, steps_per_start: 200_000, round_every: 1_000,
///             ..GdConfig::default()
///         })
///         .max_parallelism(1)
///         .build(),
/// )?;
///
/// // A short job submitted later; the free worker lets it run concurrently.
/// let short = service.submit(
///     SearchRequest::builder(Hierarchy::gemmini())
///         .network("short", layers())
///         .config(GdConfig {
///             start_points: 1, steps_per_start: 20, round_every: 10,
///             ..GdConfig::default()
///         })
///         .policy(SchedPolicy::ShortestFirst)
///         .build(),
/// )?;
///
/// // The short job completes while the long one is still running.
/// let result = short.wait().expect("job failed").into_single();
/// assert!(result.best_edp.is_finite());
/// assert!(!long.status().is_terminal());
///
/// // Wind the long job down promptly; its partial result stays valid.
/// long.cancel();
/// assert!(long.wait().expect("job failed").into_single().samples < 200_000);
/// # Ok::<(), dosa_search::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SchedPolicy {
    /// Submission order (the default): free workers go to the earliest
    /// submitted job in the best priority class with waiting work.
    #[default]
    Fifo,
    /// Rank this job by its estimated total work
    /// ([`SearchRequest::estimated_samples`](crate::SearchRequest::estimated_samples))
    /// instead of its submission time: among `ShortestFirst` jobs the
    /// smallest runs first, and all of them are offered workers before
    /// `Fifo` jobs of the same priority class — short jobs jump the line.
    ShortestFirst,
    /// Explicit priority class; higher values are offered workers
    /// strictly before lower classes. `Fifo` and `ShortestFirst` jobs sit
    /// in class 0, ranked *behind* a `Priority(0)` job of the same class.
    Priority(u8),
}

/// How many queue dispatches a waiting entry must observe for its
/// effective priority class to improve by one (the private
/// `JobRank::aged` implements the boost).
///
/// The unit is the ready queue's logical dispatch counter, not wall-clock
/// time: aging is therefore deterministic for a given submission
/// interleaving, independent of the service's thread budget and of how
/// long individual items run. A waiting entry reaches the best class
/// (`Priority(255)`-equivalent) after at most `255 ×
/// AGE_DISPATCH_PERIOD` dispatches, from which point only entries of
/// earlier-submitted jobs are ever chosen ahead of it — the
/// starvation-freedom bound asserted by `tests/runtime.rs`.
pub const AGE_DISPATCH_PERIOD: u64 = 64;

/// A job's total scheduling rank — **lower runs first**. Derived once at
/// submission from the request's [`SchedPolicy`], its estimated work and
/// its service-unique id, and aged per queue scan (see
/// [`JobRank::aged`]):
///
/// * `class` — inverted priority (`255 - p` for `Priority(p)`, `255` for
///   the default policies), so higher-priority classes order first;
/// * `group` — `0` for `Priority`/`ShortestFirst`, `1` for `Fifo`, so
///   explicitly ranked jobs in a class go before its FIFO traffic;
/// * `key` — the estimated total samples for `ShortestFirst` (smallest
///   first), `0` otherwise;
/// * `id` — submission order, the final tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct JobRank {
    class: u8,
    group: u8,
    key: u64,
    id: u64,
}

impl JobRank {
    pub(crate) fn new(policy: SchedPolicy, estimated_samples: u64, id: u64) -> JobRank {
        match policy {
            SchedPolicy::Fifo => JobRank {
                class: u8::MAX,
                group: 1,
                key: 0,
                id,
            },
            SchedPolicy::ShortestFirst => JobRank {
                class: u8::MAX,
                group: 0,
                key: estimated_samples,
                id,
            },
            SchedPolicy::Priority(p) => JobRank {
                class: u8::MAX - p,
                group: 0,
                key: 0,
                id,
            },
        }
    }

    /// This rank after waiting `wait` queue dispatches — the aging rule:
    ///
    /// ```text
    /// boost           = wait / AGE_DISPATCH_PERIOD          (integer division)
    /// effective class = class - min(boost, 255)             (saturating)
    /// ```
    ///
    /// A boosted rank (`boost > 0`) drops the policy refinements (`group`
    /// and `key` collapse to 0): once an entry has waited a full period
    /// it competes purely on class and submission order, so a boosted
    /// `Fifo` entry outranks the *un*-boosted `Priority(0)` traffic that
    /// was previously starving it (class 254 vs. 255). Unboosted ranks
    /// are returned unchanged, which keeps FIFO/shortest-first semantics
    /// exact for any workload that drains within one period.
    pub(crate) fn aged(&self, wait: u64) -> JobRank {
        let boost = wait / AGE_DISPATCH_PERIOD;
        if boost == 0 {
            *self
        } else {
            JobRank {
                class: self
                    .class
                    .saturating_sub(boost.min(u64::from(u8::MAX)) as u8),
                group: 0,
                key: 0,
                id: self.id,
            }
        }
    }
}

/// What the [`ReadyQueue`] needs to know about an entry: its job's base
/// rank, whether the job may dispatch another item right now, and a hook
/// invoked (under the queue lock) when the entry is dispatched.
///
/// Implemented by the service's queue entries; keeping it a trait keeps
/// the queue free of job-lifecycle types and unit-testable in isolation.
pub(crate) trait Schedulable {
    /// The owning job's submission-time rank (aged by the queue).
    fn rank(&self) -> JobRank;

    /// Whether the entry may dispatch now — `false` while its job already
    /// has `max_parallelism` items in flight. Ineligible entries are
    /// passed over, not reordered; they keep their enqueue time (and thus
    /// their accrued aging boost).
    fn eligible(&self) -> bool;

    /// Called exactly once, under the queue lock, when the entry is
    /// dispatched; `wait` is the number of dispatches that occurred while
    /// it sat in the queue. Implementations account the job's in-flight
    /// item and record the wait for observability (`JobStats::max_queue_wait`).
    fn on_dispatch(&self, wait: u64);
}

/// One queued entry plus the dispatch-clock reading at its enqueue.
struct Entry<T> {
    enqueued_at: u64,
    item: T,
}

/// The shared ready queue the persistent workers pull from: a priority
/// queue over [`Schedulable`] entries ordered by *aged* rank, with a
/// logical dispatch counter as the aging clock.
///
/// Entries of one job share a rank, so among themselves they dispatch in
/// enqueue order (the scan takes the first minimum); across jobs the
/// aged rank decides. [`pop`](ReadyQueue::pop) blocks while nothing is
/// eligible and drains every remaining entry after
/// [`shutdown`](ReadyQueue::shutdown) before returning `None`, so
/// cancelled jobs' items (cheap no-ops) still flow through their normal
/// resolution path.
pub(crate) struct ReadyQueue<T> {
    state: Mutex<QueueState<T>>,
    changed: Condvar,
}

struct QueueState<T> {
    entries: Vec<Entry<T>>,
    /// Total items dispatched — the aging clock.
    dispatches: u64,
    shutdown: bool,
}

impl<T: Schedulable> ReadyQueue<T> {
    pub(crate) fn new() -> ReadyQueue<T> {
        ReadyQueue {
            state: Mutex::new(QueueState {
                entries: Vec::new(),
                dispatches: 0,
                shutdown: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Enqueue one entry, stamped with the current dispatch clock.
    pub(crate) fn push(&self, item: T) {
        let mut state = fault::lock(&self.state);
        let enqueued_at = state.dispatches;
        state.entries.push(Entry { enqueued_at, item });
        drop(state);
        self.changed.notify_all();
    }

    /// Enqueue several entries under one lock acquisition, preserving
    /// their order (a job's items dispatch in plan order among
    /// themselves).
    pub(crate) fn push_all(&self, items: impl IntoIterator<Item = T>) {
        let mut state = fault::lock(&self.state);
        let enqueued_at = state.dispatches;
        state
            .entries
            .extend(items.into_iter().map(|item| Entry { enqueued_at, item }));
        drop(state);
        self.changed.notify_all();
    }

    /// Dispatch the best entry: the minimum by [`JobRank::aged`] among
    /// eligible entries (first such entry on a tie, i.e. enqueue order).
    /// Blocks while no entry is eligible; returns `None` only once the
    /// queue is shut down **and** fully drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = fault::lock(&self.state);
        loop {
            let now = state.dispatches;
            let best = state
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.item.eligible())
                .min_by_key(|(_, e)| e.item.rank().aged(now.saturating_sub(e.enqueued_at)))
                .map(|(ix, _)| ix);
            if let Some(ix) = best {
                let entry = state.entries.remove(ix);
                state.dispatches += 1;
                entry
                    .item
                    .on_dispatch(now.saturating_sub(entry.enqueued_at));
                return Some(entry.item);
            }
            if state.shutdown && state.entries.is_empty() {
                return None;
            }
            state = fault::wait(&self.changed, state);
        }
    }

    /// Wake every popper to re-check eligibility — called whenever an
    /// in-flight item finishes (its job may be below its cap again) and
    /// on job cancellation.
    pub(crate) fn wake(&self) {
        // Take (and immediately drop) the state lock before notifying: a
        // popper between its scan and `changed.wait()` still holds the
        // lock, so notifying without it could fire while no one is parked
        // and the wakeup would be lost.
        drop(fault::lock(&self.state));
        self.changed.notify_all();
    }

    /// Stop accepting blocking waits: poppers drain the remaining entries
    /// and then observe `None`.
    pub(crate) fn shutdown(&self) {
        fault::lock(&self.state).shutdown = true;
        self.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn rank_orders_priority_then_shortest_then_fifo() {
        let fifo_first = JobRank::new(SchedPolicy::Fifo, 10, 0);
        let fifo_second = JobRank::new(SchedPolicy::Fifo, 1, 1);
        let short_small = JobRank::new(SchedPolicy::ShortestFirst, 5, 2);
        let short_big = JobRank::new(SchedPolicy::ShortestFirst, 500, 3);
        let prio_low = JobRank::new(SchedPolicy::Priority(1), 0, 4);
        let prio_high = JobRank::new(SchedPolicy::Priority(7), 0, 5);
        let prio_zero = JobRank::new(SchedPolicy::Priority(0), 0, 6);

        // FIFO jobs order by submission, not estimated size.
        assert!(fifo_first < fifo_second);
        // ShortestFirst orders by estimate and jumps ahead of FIFO.
        assert!(short_small < short_big);
        assert!(short_big < fifo_first);
        // Priority classes dominate everything below them.
        assert!(prio_high < prio_low);
        assert!(prio_low < short_small);
        // Priority(0) shares the default class but precedes its traffic.
        assert!(prio_zero < short_small);
        assert!(prio_zero > prio_low);
    }

    #[test]
    fn aging_boosts_class_once_per_full_period() {
        let fifo = JobRank::new(SchedPolicy::Fifo, 0, 3);
        // Below one full period the rank is exactly the submission rank.
        assert_eq!(fifo.aged(0), fifo);
        assert_eq!(fifo.aged(AGE_DISPATCH_PERIOD - 1), fifo);
        // One period in, the class improves and the refinements collapse.
        let boosted = fifo.aged(AGE_DISPATCH_PERIOD);
        assert!(boosted < fifo);
        assert!(boosted < JobRank::new(SchedPolicy::Priority(0), 0, 99));
        // The boost saturates at class 0 instead of wrapping.
        let floor = fifo.aged(u64::from(u8::MAX) * AGE_DISPATCH_PERIOD);
        assert_eq!(floor, fifo.aged(u64::MAX));
        assert!(floor <= JobRank::new(SchedPolicy::Priority(255), 0, 3).aged(0));
    }

    #[test]
    fn an_aged_fifo_rank_overtakes_fresh_priority_zero_traffic() {
        let fifo = JobRank::new(SchedPolicy::Fifo, 0, 0);
        let prio_zero = JobRank::new(SchedPolicy::Priority(0), 0, 1);
        // Fresh-vs-fresh, Priority(0) wins — the starvation hazard.
        assert!(prio_zero.aged(0) < fifo.aged(0));
        // After one aging period the waiting Fifo rank wins.
        assert!(fifo.aged(AGE_DISPATCH_PERIOD) < prio_zero.aged(0));
    }

    /// A minimal [`Schedulable`] for queue tests: a named entry whose job
    /// is modeled by a shared in-flight counter and cap.
    struct TestItem {
        name: &'static str,
        rank: JobRank,
        inflight: Arc<AtomicUsize>,
        max_par: usize,
        last_wait: Arc<AtomicU64>,
    }

    impl TestItem {
        fn solo(name: &'static str, rank: JobRank) -> TestItem {
            TestItem {
                name,
                rank,
                inflight: Arc::new(AtomicUsize::new(0)),
                max_par: usize::MAX,
                last_wait: Arc::new(AtomicU64::new(0)),
            }
        }
    }

    impl Schedulable for TestItem {
        fn rank(&self) -> JobRank {
            self.rank
        }
        fn eligible(&self) -> bool {
            self.inflight.load(Ordering::Relaxed) < self.max_par
        }
        fn on_dispatch(&self, wait: u64) {
            self.inflight.fetch_add(1, Ordering::Relaxed);
            self.last_wait.store(wait, Ordering::Relaxed);
        }
    }

    #[test]
    fn pop_dispatches_the_best_ranked_eligible_entry() {
        let queue = ReadyQueue::new();
        queue.push(TestItem::solo(
            "fifo",
            JobRank::new(SchedPolicy::Fifo, 0, 0),
        ));
        queue.push(TestItem::solo(
            "prio",
            JobRank::new(SchedPolicy::Priority(5), 0, 1),
        ));
        queue.push(TestItem::solo(
            "short",
            JobRank::new(SchedPolicy::ShortestFirst, 10, 2),
        ));
        queue.shutdown();
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop()).map(|i| i.name).collect();
        assert_eq!(order, ["prio", "short", "fifo"]);
    }

    #[test]
    fn a_job_at_its_parallelism_cap_is_passed_over() {
        let queue = ReadyQueue::new();
        let inflight = Arc::new(AtomicUsize::new(0));
        let capped = |name| TestItem {
            name,
            rank: JobRank::new(SchedPolicy::Priority(9), 0, 0),
            inflight: Arc::clone(&inflight),
            max_par: 1,
            last_wait: Arc::new(AtomicU64::new(0)),
        };
        queue.push(capped("a1"));
        queue.push(capped("a2"));
        queue.push(TestItem::solo("b", JobRank::new(SchedPolicy::Fifo, 0, 1)));
        queue.shutdown();
        // The capped job wins the first dispatch but is then at its cap,
        // so the worse-ranked job goes next.
        assert_eq!(queue.pop().unwrap().name, "a1");
        assert_eq!(queue.pop().unwrap().name, "b");
        // An item completing re-opens the cap.
        inflight.fetch_sub(1, Ordering::Relaxed);
        queue.wake();
        assert_eq!(queue.pop().unwrap().name, "a2");
        assert!(queue.pop().is_none());
    }

    #[test]
    fn shutdown_drains_the_queue_before_returning_none() {
        let queue = ReadyQueue::new();
        queue.push(TestItem::solo("x", JobRank::new(SchedPolicy::Fifo, 0, 0)));
        queue.push(TestItem::solo("y", JobRank::new(SchedPolicy::Fifo, 0, 1)));
        queue.shutdown();
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
    }

    /// The end-to-end starvation-freedom mechanism at queue granularity:
    /// a `Fifo` entry behind a continuously refilled `Priority(0)` stream
    /// is passed over for exactly `AGE_DISPATCH_PERIOD` dispatches and
    /// then wins (its boosted class 254 beats the stream's 255).
    #[test]
    fn a_waiting_fifo_entry_ages_past_a_fresh_priority_stream() {
        let queue = ReadyQueue::new();
        let fifo = TestItem::solo("fifo", JobRank::new(SchedPolicy::Fifo, 0, 0));
        let fifo_wait = Arc::clone(&fifo.last_wait);
        queue.push(fifo);
        let mut winner = None;
        for round in 0..=AGE_DISPATCH_PERIOD {
            queue.push(TestItem::solo(
                "prio",
                JobRank::new(SchedPolicy::Priority(0), 0, 1 + round),
            ));
            let popped = queue.pop().unwrap();
            if popped.name == "fifo" {
                winner = Some(round);
                break;
            }
        }
        // Pops 0..AGE_DISPATCH_PERIOD-1 dispatch the fresh stream; at the
        // pop where the Fifo entry has waited AGE_DISPATCH_PERIOD
        // dispatches its boost kicks in and it wins.
        assert_eq!(winner, Some(AGE_DISPATCH_PERIOD));
        assert_eq!(fifo_wait.load(Ordering::Relaxed), AGE_DISPATCH_PERIOD);
    }
}
