//! The capacity-aware concurrent scheduler core of the
//! [`SearchService`](crate::SearchService): a service-wide [`SlotTable`]
//! of worker slots shared by every admitted job, the per-request
//! [`SchedPolicy`] deciding which job's queued work items grab freed
//! slots, and the per-job [`JobGate`] through which a job's fan-out
//! acquires and releases slots.
//!
//! ## Slot accounting
//!
//! A service with a thread budget of `N` owns exactly `N` worker slots.
//! Every *work item* a job fans out — a GD start-point descent, a
//! random-search hardware design, one of BB-BO's inner mapping samples or
//! EI candidate scores — must hold one slot while it executes and gives
//! it back at the next item boundary, so at most `N` items run at any
//! instant **across all jobs**. Sequential job phases (start-point
//! planning, the outer GP fit, result merging) run on the job's own
//! runner thread outside slot accounting; the budget governs the
//! fan-out work, which is where virtually all of the CPU time goes.
//!
//! A job may additionally cap itself below the service budget with
//! [`SearchRequestBuilder::max_parallelism`](crate::SearchRequestBuilder::max_parallelism)
//! — a long job capped at `k` slots provably leaves `N - k` slots for
//! everyone else.
//!
//! Work items replayed from the service's result cache
//! ([`SearchServiceBuilder::cache`](crate::SearchServiceBuilder::cache))
//! never enter slot accounting at all: the runner resolves them during
//! planning, before the fan-out, so a fully-cached job consumes zero
//! worker slots and leaves the whole budget to jobs doing real work.
//!
//! ## Arbitration
//!
//! When a slot frees (or a new job arrives), every job with waiting work
//! items and spare per-job capacity is a candidate, and the best-ranked
//! candidate wins the slot (see [`JobRank`]). Slots are never preempted:
//! a running work item always finishes before its slot moves, so ranking
//! only decides who goes next, never who gets interrupted. The same rank
//! also orders *job admission* (which queued job's runner starts when one
//! finishes), which is what makes a single-slot service degenerate to
//! strict FIFO under the default policy.
//!
//! Scheduling never changes results: each work item is a pure function of
//! its inputs and its own RNG stream, and per-job results land at fixed
//! item slots, so a job's output is bit-identical under any interleaving
//! (see `ARCHITECTURE.md` at the repository root for the full invariant).

use crate::fault;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a job competes for worker slots against the other jobs on its
/// [`SearchService`](crate::SearchService), set per request via
/// [`SearchRequestBuilder::policy`](crate::SearchRequestBuilder::policy).
///
/// Jobs are ranked by `(priority class, policy key, submission id)` and
/// the best-ranked job with waiting work items wins each freed slot:
///
/// 1. **Priority class** — [`SchedPolicy::Priority`]`(p)` jobs form class
///    `p`; `Fifo` and `ShortestFirst` jobs sit in class 0. A higher class
///    is offered slots (and admission) strictly before a lower one.
/// 2. **Within a class** — any `Priority` job goes first (by submission
///    order), then `ShortestFirst` jobs ordered by their estimated total
///    work ([`SearchRequest::estimated_samples`](crate::SearchRequest::estimated_samples),
///    smallest first), then `Fifo` jobs in submission order.
///
/// Running work items are never preempted — ranking decides who gets the
/// *next* slot, so a stream of high-rank jobs can starve a low-rank one
/// until the stream drains. Results never depend on the policy: every
/// job's output is bit-identical to its standalone run under any
/// interleaving.
///
/// The example below submits a long job capped at one slot, then a short
/// `ShortestFirst` job that overtakes it on the remaining slot and
/// finishes first — out of submission order:
///
/// ```
/// use dosa_search::{GdConfig, SchedPolicy, SearchRequest, SearchService};
/// use dosa_accel::Hierarchy;
/// use dosa_workload::{Layer, Problem};
///
/// let layers = || vec![Layer::once(Problem::matmul("m", 8, 32, 32).unwrap())];
/// let service = SearchService::builder().threads(2).build();
///
/// // A long-budget job, capped to one of the two worker slots.
/// let long = service.submit(
///     SearchRequest::builder(Hierarchy::gemmini())
///         .network("long", layers())
///         .config(GdConfig {
///             start_points: 1, steps_per_start: 200_000, round_every: 1_000,
///             ..GdConfig::default()
///         })
///         .max_parallelism(1)
///         .build(),
/// )?;
///
/// // A short job submitted later; the free slot lets it run concurrently.
/// let short = service.submit(
///     SearchRequest::builder(Hierarchy::gemmini())
///         .network("short", layers())
///         .config(GdConfig {
///             start_points: 1, steps_per_start: 20, round_every: 10,
///             ..GdConfig::default()
///         })
///         .policy(SchedPolicy::ShortestFirst)
///         .build(),
/// )?;
///
/// // The short job completes while the long one is still running.
/// let result = short.wait().expect("job failed").into_single();
/// assert!(result.best_edp.is_finite());
/// assert!(!long.status().is_terminal());
///
/// // Wind the long job down promptly; its partial result stays valid.
/// long.cancel();
/// assert!(long.wait().expect("job failed").into_single().samples < 200_000);
/// # Ok::<(), dosa_search::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SchedPolicy {
    /// Submission order (the default): freed slots go to the earliest
    /// submitted job in the best priority class with waiting work.
    #[default]
    Fifo,
    /// Rank this job by its estimated total work
    /// ([`SearchRequest::estimated_samples`](crate::SearchRequest::estimated_samples))
    /// instead of its submission time: among `ShortestFirst` jobs the
    /// smallest runs first, and all of them are offered slots before
    /// `Fifo` jobs of the same priority class — short jobs jump the line.
    ShortestFirst,
    /// Explicit priority class; higher values are offered slots (and
    /// admission) strictly before lower classes. `Fifo` and
    /// `ShortestFirst` jobs sit in class 0, ranked *behind* a
    /// `Priority(0)` job of the same class.
    Priority(u8),
}

/// A job's total scheduling rank — **lower runs first**. Derived once at
/// submission from the request's [`SchedPolicy`], its estimated work and
/// its service-unique id, and used for both job admission and slot
/// arbitration:
///
/// * `class` — inverted priority (`255 - p` for `Priority(p)`, `255` for
///   the default policies), so higher-priority classes order first;
/// * `group` — `0` for `Priority`/`ShortestFirst`, `1` for `Fifo`, so
///   explicitly ranked jobs in a class go before its FIFO traffic;
/// * `key` — the estimated total samples for `ShortestFirst` (smallest
///   first), `0` otherwise;
/// * `id` — submission order, the final tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct JobRank {
    class: u8,
    group: u8,
    key: u64,
    id: u64,
}

impl JobRank {
    pub(crate) fn new(policy: SchedPolicy, estimated_samples: u64, id: u64) -> JobRank {
        match policy {
            SchedPolicy::Fifo => JobRank {
                class: u8::MAX,
                group: 1,
                key: 0,
                id,
            },
            SchedPolicy::ShortestFirst => JobRank {
                class: u8::MAX,
                group: 0,
                key: estimated_samples,
                id,
            },
            SchedPolicy::Priority(p) => JobRank {
                class: u8::MAX - p,
                group: 0,
                key: 0,
                id,
            },
        }
    }
}

/// One admitted job's slot ledger inside the [`SlotTable`]: how many
/// slots it holds, how many of its work items are waiting for one, and
/// the per-job cap neither may push `held` beyond.
struct SlotEntry {
    id: u64,
    rank: JobRank,
    max_par: usize,
    waiting: usize,
    held: usize,
}

impl SlotEntry {
    /// Whether this job is a candidate for the next free slot.
    fn wants_slot(&self) -> bool {
        self.waiting > 0 && self.held < self.max_par
    }
}

/// The service-wide slot ledger: `free` slots out of the service's thread
/// budget plus one [`SlotEntry`] per admitted job. All transitions happen
/// under one mutex; every transition that could make another waiter
/// eligible broadcasts on the condvar, and waiters re-check eligibility
/// (their job being the best-ranked candidate) before taking a slot.
pub(crate) struct SlotTable {
    state: Mutex<SlotState>,
    changed: Condvar,
}

struct SlotState {
    free: usize,
    jobs: Vec<SlotEntry>,
}

impl SlotState {
    fn entry_mut(&mut self, id: u64) -> &mut SlotEntry {
        self.jobs
            .iter_mut()
            .find(|e| e.id == id)
            // dosa-lint: allow(panic-perimeter) — the slot table registers a
            // job before handing out its id and unregisters it only after the
            // last release, so a missing entry is a scheduler bug.
            .expect("job acquires slots only while registered")
    }

    /// The best-ranked job that wants a slot right now, if any.
    fn best_candidate(&self) -> Option<u64> {
        self.jobs
            .iter()
            .filter(|e| e.wants_slot())
            .min_by_key(|e| e.rank)
            .map(|e| e.id)
    }
}

impl SlotTable {
    pub(crate) fn new(slots: usize) -> SlotTable {
        SlotTable {
            state: Mutex::new(SlotState {
                free: slots.max(1),
                jobs: Vec::new(),
            }),
            changed: Condvar::new(),
        }
    }

    /// Wake every waiter to re-check its eligibility (used by job
    /// cancellation, which flips a flag the waiters poll under the lock).
    pub(crate) fn wake(&self) {
        // Take (and immediately drop) the state lock before notifying:
        // a waiter between its cancel-flag check and `changed.wait()`
        // still holds the lock, so notifying without it could fire while
        // no one is parked and the wakeup would be lost — stalling
        // cancellation until an unrelated slot transition.
        drop(fault::lock(&self.state));
        self.changed.notify_all();
    }

    fn register(&self, id: u64, rank: JobRank, max_par: usize) {
        let mut state = fault::lock(&self.state);
        debug_assert!(
            state.jobs.iter().all(|e| e.id != id),
            "job registered twice"
        );
        state.jobs.push(SlotEntry {
            id,
            rank,
            max_par: max_par.max(1),
            waiting: 0,
            held: 0,
        });
        self.changed.notify_all();
    }

    fn deregister(&self, id: u64) {
        let mut state = fault::lock(&self.state);
        if let Some(ix) = state.jobs.iter().position(|e| e.id == id) {
            let entry = state.jobs.swap_remove(ix);
            debug_assert_eq!(entry.held, 0, "job deregistered while holding slots");
        }
        self.changed.notify_all();
    }

    /// Block until job `id` is granted a slot, or until `cancel` or
    /// `halt` flips — cancellation (and deadline degradation, which sets
    /// the job's halt flag) frees the scheduler promptly: the job's
    /// waiting items stop competing immediately instead of draining the
    /// queue. Returns whether a slot was actually granted (and must be
    /// released).
    fn acquire(&self, id: u64, cancel: &AtomicBool, halt: &AtomicBool) -> bool {
        let mut state = fault::lock(&self.state);
        state.entry_mut(id).waiting += 1;
        loop {
            if cancel.load(Ordering::Relaxed) || halt.load(Ordering::Relaxed) {
                state.entry_mut(id).waiting -= 1;
                self.changed.notify_all();
                return false;
            }
            if state.free > 0 && state.best_candidate() == Some(id) {
                let entry = state.entry_mut(id);
                entry.waiting -= 1;
                entry.held += 1;
                state.free -= 1;
                // Another job may be eligible for a remaining free slot.
                self.changed.notify_all();
                return true;
            }
            state = fault::wait(&self.changed, state);
        }
    }

    fn release(&self, id: u64) {
        let mut state = fault::lock(&self.state);
        let entry = state.entry_mut(id);
        debug_assert!(entry.held > 0, "release without a held slot");
        entry.held -= 1;
        state.free += 1;
        self.changed.notify_all();
    }

    #[cfg(test)]
    fn waiting(&self, id: u64) -> usize {
        fault::lock(&self.state)
            .jobs
            .iter()
            .find(|e| e.id == id)
            .map_or(0, |e| e.waiting)
    }
}

/// A running job's handle onto the service's [`SlotTable`]: registered
/// when the job's runner starts, deregistered on drop. The gated worker
/// fleet ([`Fleet`](crate::engine::Fleet)) calls [`JobGate::acquire`]
/// around every work item, which is what interleaves work items from
/// different jobs on one slot budget.
pub(crate) struct JobGate {
    table: Arc<SlotTable>,
    id: u64,
    max_par: usize,
    cancel: Arc<AtomicBool>,
    /// The job's degrade flag: set when a [`DeadlinePolicy::Degrade`]
    /// deadline expires, at which point waiting work items stop competing
    /// for slots (in-flight items keep theirs and finish normally).
    ///
    /// [`DeadlinePolicy::Degrade`]: crate::DeadlinePolicy::Degrade
    halt: Arc<AtomicBool>,
}

impl JobGate {
    /// Register job `id` with the table and return its gate.
    pub(crate) fn register(
        table: Arc<SlotTable>,
        id: u64,
        rank: JobRank,
        max_par: usize,
        cancel: Arc<AtomicBool>,
        halt: Arc<AtomicBool>,
    ) -> JobGate {
        table.register(id, rank, max_par);
        JobGate {
            table,
            id,
            max_par: max_par.max(1),
            cancel,
            halt,
        }
    }

    /// The job's slot cap — also the most workers its fan-outs spawn.
    pub(crate) fn max_par(&self) -> usize {
        self.max_par
    }

    /// Block until this job wins a slot (or is cancelled / degraded, in
    /// which case the permit is empty and the caller proceeds to its fast
    /// wind-down path). The slot is held until the permit drops.
    pub(crate) fn acquire(&self) -> SlotPermit<'_> {
        let granted = self.table.acquire(self.id, &self.cancel, &self.halt);
        SlotPermit {
            table: &self.table,
            id: self.id,
            granted,
        }
    }
}

impl Drop for JobGate {
    fn drop(&mut self) {
        self.table.deregister(self.id);
    }
}

/// RAII slot permit: holds one of the service's worker slots (unless the
/// acquire bailed on cancellation) and releases it on drop, at which
/// point the best-ranked waiting job is woken to take it.
pub(crate) struct SlotPermit<'a> {
    table: &'a SlotTable,
    id: u64,
    granted: bool,
}

impl Drop for SlotPermit<'_> {
    fn drop(&mut self) {
        if self.granted {
            self.table.release(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn rank_orders_priority_then_shortest_then_fifo() {
        let fifo_first = JobRank::new(SchedPolicy::Fifo, 10, 0);
        let fifo_second = JobRank::new(SchedPolicy::Fifo, 1, 1);
        let short_small = JobRank::new(SchedPolicy::ShortestFirst, 5, 2);
        let short_big = JobRank::new(SchedPolicy::ShortestFirst, 500, 3);
        let prio_low = JobRank::new(SchedPolicy::Priority(1), 0, 4);
        let prio_high = JobRank::new(SchedPolicy::Priority(7), 0, 5);
        let prio_zero = JobRank::new(SchedPolicy::Priority(0), 0, 6);

        // FIFO jobs order by submission, not estimated size.
        assert!(fifo_first < fifo_second);
        // ShortestFirst orders by estimate and jumps ahead of FIFO.
        assert!(short_small < short_big);
        assert!(short_big < fifo_first);
        // Priority classes dominate everything below them.
        assert!(prio_high < prio_low);
        assert!(prio_low < short_small);
        // Priority(0) shares the default class but precedes its traffic.
        assert!(prio_zero < short_small);
        assert!(prio_zero > prio_low);
    }

    #[test]
    fn slots_are_granted_and_released_in_bookkeeping_order() {
        let table = SlotTable::new(2);
        let cancel = AtomicBool::new(false);
        let halt = AtomicBool::new(false);
        table.register(0, JobRank::new(SchedPolicy::Fifo, 0, 0), 2);
        assert!(table.acquire(0, &cancel, &halt));
        assert!(table.acquire(0, &cancel, &halt));
        {
            let state = crate::fault::lock(&table.state);
            assert_eq!(state.free, 0);
            assert_eq!(state.jobs[0].held, 2);
        }
        table.release(0);
        table.release(0);
        assert_eq!(crate::fault::lock(&table.state).free, 2);
        table.deregister(0);
    }

    #[test]
    fn max_parallelism_caps_a_jobs_held_slots() {
        let table = SlotTable::new(2);
        let cancel = AtomicBool::new(false);
        let halt = AtomicBool::new(false);
        table.register(0, JobRank::new(SchedPolicy::Fifo, 0, 0), 1);
        assert!(table.acquire(0, &cancel, &halt));
        // The job holds its cap; its next acquire must wait even though a
        // slot is free — until cancellation releases the waiter.
        cancel.store(true, Ordering::Relaxed);
        assert!(!table.acquire(0, &cancel, &halt));
        table.release(0);
        table.deregister(0);
    }

    /// The degrade flag releases waiters exactly like cancellation does —
    /// without touching the cancel flag running items observe.
    #[test]
    fn halt_flag_releases_waiters_without_cancelling() {
        let table = SlotTable::new(1);
        let cancel = AtomicBool::new(false);
        let halt = AtomicBool::new(false);
        table.register(0, JobRank::new(SchedPolicy::Fifo, 0, 0), 1);
        assert!(table.acquire(0, &cancel, &halt));
        halt.store(true, Ordering::Relaxed);
        assert!(!table.acquire(0, &cancel, &halt));
        assert!(!cancel.load(Ordering::Relaxed));
        table.release(0);
        table.deregister(0);
    }

    /// With one slot contested by a FIFO and a Priority job, the freed
    /// slot must go to the Priority job first.
    #[test]
    fn freed_slot_goes_to_the_best_ranked_waiter() {
        let table = Arc::new(SlotTable::new(1));
        let holder_cancel = AtomicBool::new(false);
        let holder_halt = AtomicBool::new(false);
        table.register(0, JobRank::new(SchedPolicy::Fifo, 0, 0), 1);
        table.register(1, JobRank::new(SchedPolicy::Fifo, 0, 1), 1);
        table.register(2, JobRank::new(SchedPolicy::Priority(5), 0, 2), 1);
        assert!(table.acquire(0, &holder_cancel, &holder_halt));

        let (tx, rx) = mpsc::channel::<u64>();
        let mut waiters = Vec::new();
        for id in [1u64, 2u64] {
            let table = Arc::clone(&table);
            let tx = tx.clone();
            waiters.push(std::thread::spawn(move || {
                let cancel = AtomicBool::new(false);
                let halt = AtomicBool::new(false);
                assert!(table.acquire(id, &cancel, &halt));
                tx.send(id).expect("receiver alive");
                table.release(id);
            }));
        }
        // Let both waiters register demand before freeing the slot.
        while table.waiting(1) == 0 || table.waiting(2) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        table.release(0);
        let first = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(
            (first, second),
            (2, 1),
            "the Priority(5) job must win the freed slot over FIFO traffic"
        );
        for w in waiters {
            w.join().unwrap();
        }
    }
}
