//! Gradient-descent start-point generation (§3.2 step 1, §5.3.1): a random
//! valid hardware design plus CoSA mappings for it, with the 10× rejection
//! rule.

use crate::cosa::cosa_mapping;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_model::{predict, LossOptions, RelaxedMapping};
use dosa_workload::Layer;
use rand::Rng;

/// Sample a random valid hardware configuration: a power-of-two PE array
/// side in 4..=64 and log-uniform SRAM sizes (whole KB).
pub fn random_hw(rng: &mut impl Rng) -> HardwareConfig {
    let side = 1u64 << rng.gen_range(2..=6u32); // 4..=64
    let acc_kb = 2f64.powf(rng.gen_range(3.0..9.0)).round().max(1.0); // 8..512 KB
    let spad_kb = 2f64.powf(rng.gen_range(4.0..11.0)).round().max(1.0); // 16..2048 KB

    // dosa-lint: allow(panic-perimeter) — the sampled ranges (power-of-two
    // side 4..=64, whole-KB SRAM sizes ≥ 1) are valid by construction; a
    // failure here means the sampler itself broke.
    HardwareConfig::new(side, acc_kb, spad_kb).expect("sampled ranges are valid")
}

/// A generated start point: the seed hardware and one relaxed mapping per
/// layer (CoSA mappings lifted to log space).
#[derive(Debug, Clone)]
pub struct StartPoint {
    /// The randomly drawn hardware design the CoSA mappings target.
    pub seed_hw: HardwareConfig,
    /// Per-layer relaxed mappings.
    pub relaxed: Vec<RelaxedMapping>,
    /// Differentiable-model EDP prediction at this point.
    pub predicted_edp: f64,
}

/// Generate one start point for `layers`.
pub fn generate_start_point(
    rng: &mut impl Rng,
    layers: &[Layer],
    hier: &Hierarchy,
    opts: &LossOptions,
) -> StartPoint {
    let seed_hw = random_hw(rng);
    let relaxed: Vec<RelaxedMapping> = layers
        .iter()
        .map(|l| RelaxedMapping::from_mapping(&cosa_mapping(&l.problem, &seed_hw, hier)))
        .collect();
    let (_, _, edp) = predict(layers, &relaxed, hier, opts);
    StartPoint {
        seed_hw,
        relaxed,
        predicted_edp: edp,
    }
}

/// Build the warm start point a cached neighbor seeds
/// ([`WarmStart::NearestNeighbor`](crate::WarmStart)): the neighbor's
/// best relaxed mappings, re-predicted under this request's loss options.
/// Unlike [`generate_start_point`] it draws nothing from the RNG, so
/// appending it leaves every regular start's stream untouched; `seed_hw`
/// is nominal (the descent reads only the relaxed mappings).
pub(crate) fn warm_start_point(
    layers: &[Layer],
    hier: &Hierarchy,
    opts: &LossOptions,
    relaxed: Vec<RelaxedMapping>,
) -> StartPoint {
    let (_, _, edp) = predict(layers, &relaxed, hier, opts);
    StartPoint {
        seed_hw: HardwareConfig::gemmini_default(),
        relaxed,
        predicted_edp: edp,
    }
}

/// Generate `n` start points applying the rejection rule of §5.3.1: a start
/// point whose predicted EDP exceeds `rejection_factor ×` the best seen so
/// far is discarded and redrawn (bounded retries keep this total).
pub fn generate_start_points(
    rng: &mut impl Rng,
    layers: &[Layer],
    hier: &Hierarchy,
    opts: &LossOptions,
    n: usize,
    rejection_factor: f64,
) -> Vec<StartPoint> {
    let mut points: Vec<StartPoint> = Vec::with_capacity(n);
    let mut best = f64::INFINITY;
    let mut attempts = 0usize;
    while points.len() < n {
        let sp = generate_start_point(rng, layers, hier, opts);
        attempts += 1;
        let accept = sp.predicted_edp <= best * rejection_factor || attempts > 10 * n;
        if sp.predicted_edp < best {
            best = sp.predicted_edp;
        }
        if accept {
            points.push(sp);
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::Problem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::once(Problem::conv("a", 3, 3, 28, 28, 64, 64, 1).unwrap()),
            Layer::once(Problem::matmul("b", 128, 256, 512).unwrap()),
        ]
    }

    #[test]
    fn random_hw_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let hw = random_hw(&mut rng);
            assert!((4..=64).contains(&hw.pe_side()));
            assert!(hw.pe_side().is_power_of_two());
            assert!(hw.acc_kb() >= 8.0 && hw.acc_kb() <= 512.0);
            assert!(hw.spad_kb() >= 16.0 && hw.spad_kb() <= 2048.0);
        }
    }

    #[test]
    fn start_points_have_finite_predictions() {
        let mut rng = StdRng::seed_from_u64(1);
        let hier = Hierarchy::gemmini();
        let pts =
            generate_start_points(&mut rng, &layers(), &hier, &LossOptions::default(), 3, 10.0);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.predicted_edp.is_finite() && p.predicted_edp > 0.0);
            assert_eq!(p.relaxed.len(), 2);
        }
    }

    #[test]
    fn rejection_bounds_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let hier = Hierarchy::gemmini();
        let pts =
            generate_start_points(&mut rng, &layers(), &hier, &LossOptions::default(), 5, 10.0);
        let best = pts
            .iter()
            .map(|p| p.predicted_edp)
            .fold(f64::INFINITY, f64::min);
        // All accepted points were within 10x of the best seen *when
        // accepted*; the spread versus the final best stays bounded except
        // for the forced-acceptance fallback.
        let worst = pts.iter().map(|p| p.predicted_edp).fold(0.0f64, f64::max);
        assert!(worst / best < 1e4);
    }

    #[test]
    fn deterministic_given_seed() {
        let hier = Hierarchy::gemmini();
        let a = generate_start_point(
            &mut StdRng::seed_from_u64(7),
            &layers(),
            &hier,
            &LossOptions::default(),
        );
        let b = generate_start_point(
            &mut StdRng::seed_from_u64(7),
            &layers(),
            &hier,
            &LossOptions::default(),
        );
        assert_eq!(a.seed_hw, b.seed_hw);
        assert_eq!(a.predicted_edp, b.predicted_edp);
    }
}
