//! The job-oriented search service: a [`SearchService`] accepts
//! [`SearchRequest`]s and runs them **concurrently** on one service-owned
//! persistent worker pool — whatever each job's [`Strategy`] — returning
//! a [`JobHandle`] with non-blocking [`status()`](JobHandle::status) /
//! [`progress()`](JobHandle::progress), cooperative
//! [`cancel()`](JobHandle::cancel), and blocking
//! [`wait()`](JobHandle::wait).
//!
//! ## Execution model
//!
//! The service spawns exactly one long-lived worker thread per slot
//! ([`SearchServiceBuilder::threads`], default: all cores) **at
//! construction, and never again** — submitting, running, and retiring
//! jobs spawns no threads (one optional deadline watchdog per job with a
//! deadline is the only exception). Workers loop over a shared ready
//! queue (see the [`SchedPolicy`] docs and `ARCHITECTURE.md` at the
//! repository root): submitting a job enqueues a single *planning* item;
//! planning enqueues the job's executable work items, which interleave
//! with every other job's on the same pool. At most `threads` items
//! execute at any instant **across all jobs** — a short gradient-descent
//! job completes on free workers while a long Bayesian-optimization job
//! is still mid-flight, instead of queueing behind it. What a job plans
//! depends on its strategy:
//!
//! * [`Strategy::GradientDescent`] — **all networks' start points** of a
//!   batched request become independent work items (a batch saturates the
//!   pool even when individual networks have few starts). With
//!   [`GdConfig::segment_steps`] set, each start runs as a chain of
//!   bounded, bit-exact **segments**: a segment runs `k` gradient steps,
//!   checkpoints the full descent state (parameters, Adam moments,
//!   partial history — RNG-free by construction, see
//!   [`crate::engine`]'s `DescentState`) and re-enqueues, so the worker
//!   turns over at a bounded cadence and a long descent cannot
//!   monopolize the pool;
//! * [`Strategy::Random`] — **all networks' hardware designs** become the
//!   work items, each searched by a private RNG stream;
//! * [`Strategy::BayesOpt`] — each network's outer GP loop is inherently
//!   serial, so **one work item per network**; the loop runs inline on
//!   its worker.
//!
//! Per-item results land at fixed planned positions and are
//! demultiplexed per network on merge.
//!
//! ## Scheduling
//!
//! Which queued work item a free worker runs next is decided by each
//! request's [`SchedPolicy`] (`Fifo` by default, `ShortestFirst`, or
//! `Priority(u8)`), **aged** so that no job waits forever: an entry's
//! effective priority class improves by one per
//! [`AGE_DISPATCH_PERIOD`](crate::AGE_DISPATCH_PERIOD) items the service
//! dispatches while it waits, so a continuous stream of `Priority`
//! submissions can delay `Fifo` traffic only for a bounded number of
//! dispatches, never starve it (the `sched` module derives the bound). A
//! job can additionally cap its own share of the pool with
//! [`SearchRequestBuilder::max_parallelism`](crate::SearchRequestBuilder::max_parallelism).
//! With a single-slot budget the service degenerates to running one job
//! at a time in policy order (strict FIFO under the default policy).
//! Running work items are never preempted.
//!
//! ## Determinism
//!
//! For every network in a request, the sequential skeleton of its search
//! (GD start points, random-search design draws, BB-BO's outer GP loop)
//! is generated from that network's effective seed before any
//! parallelism, and every work item owns an RNG stream derived from that
//! seed — exactly what the standalone shims
//! ([`dosa_search`](crate::dosa_search),
//! [`random_search`](crate::random_search),
//! [`bayesian_search`](crate::bayesian_search)) do. Combined with
//! position-indexed result slots, a network's `SearchResult` is
//! **bit-identical** to a separate submission with the same seed, for
//! every service thread budget, any batch composition, any segment
//! length, and any interleaving with other jobs — scheduling moves
//! wall-clock time, never results.
//!
//! ## Cancellation
//!
//! [`JobHandle::cancel`] sets a flag every work item checks once per
//! gradient step (GD) or joint mapping sample (black-box strategies):
//! running items return their partial results at the next boundary,
//! queued items resolve as fast no-ops the moment a worker picks them up
//! (freeing capacity for the other jobs on the service), and the merged
//! best-so-far histories stay monotone non-increasing with strictly
//! increasing sample counts. A job cancelled while still queued
//! completes immediately with empty results.
//!
//! ## Result cache, checkpoint/resume, warm starts
//!
//! A service built with [`SearchServiceBuilder::cache`] consults a
//! content-addressed [`ResultCache`] per work item during planning,
//! *before* the item enters the ready queue: hits are replayed into the
//! item's planned position (so merge order — and therefore every result
//! bit — is unchanged), misses run on the pool and are journaled the
//! moment they complete — for a segmented descent, the moment its
//! **final segment** completes; a mid-descent checkpoint is never
//! journaled. Because journaling is per item and never covers a
//! cancelled (partial) item, a cancelled job resubmitted identically
//! replays its completed items from the cache and re-runs only the
//! remainder — checkpoint/resume without any explicit checkpoint format.
//! With the default [`WarmStart::Off`] the cache is invisible in
//! results: every [`BatchResult`] is bit-identical to a cold run. A
//! request may also opt into [`WarmStart::NearestNeighbor`], seeding one
//! extra descent per network from the best cached mapping of the same
//! network shape; [`JobHandle::stats`] reports per-job hits, misses, and
//! warm starts. See the [`cache`] module for the key schema.
//!
//! ## Failure domains, deadlines & degradation
//!
//! One work item is one failure domain: a panicking item (or one whose
//! gradient step produces a non-finite loss) fails **only its own job**
//! with a typed [`JobError`], and leaves every sibling job bit-identical
//! to an uncontended run. Panics are caught at the item's unwind
//! boundary, so the worker thread itself survives; if a defect ever
//! escapes that boundary and kills a worker, the dying thread respawns a
//! replacement, so the pool's capacity is self-healing (see
//! [`crate::fault`]). The failed job ends in the terminal
//! [`JobStatus::Failed`] state — [`wait()`](JobHandle::wait) returns the
//! error, [`error()`](JobHandle::error) retrieves it non-blockingly —
//! and no service-wide lock is ever left poisoned.
//!
//! A request may carry a [`deadline`](crate::SearchRequestBuilder::deadline)
//! (measured from submission, so queue time counts) with a
//! [`DeadlinePolicy`]: `Kill` terminates the job with
//! [`JobError::DeadlineExceeded`]; `Degrade` stops admitting new work
//! items at the deadline and completes with the deterministic merge of
//! every item finished so far, flagged [`BatchResult::degraded`] — a
//! bitwise **prefix** of the uninterrupted run's history, because items
//! are merged in plan order, truncated at the first never-started item,
//! and the merge's running-minimum rewrite is prefix-stable. An item
//! that already checkpointed a segment counts as started: it finishes
//! bit-exactly. Completed items journal to the result cache as usual, so
//! resubmitting a degraded job resumes from its finished prefix.

use crate::bbbo::{run_bayesian_search, BbboConfig};
use crate::cache::{self, ResultCache};
use crate::engine::{
    merge_start_results, run_segment, DescentState, DiffLoss, EdpLoss, Fleet, PredictedLatencyLoss,
    ProgressCounters, StartControl,
};
use crate::fault::{self, payload_string, DeadlinePolicy, FaultKind, JobError};
use crate::gd::{GdConfig, LoopOrderStrategy, SearchResult};
use crate::random_search::{
    plan_random_designs, run_random_design, RandomDesign, RandomSearchConfig,
};
use crate::request::{ConfigError, SearchRequest, Surrogate, WarmStart};
#[cfg(doc)]
use crate::sched::SchedPolicy;
use crate::sched::{JobRank, ReadyQueue, Schedulable};
use crate::startpoints::{generate_start_points, warm_start_point, StartPoint};
use crate::strategy::Strategy;
use dosa_accel::{Hierarchy, MAX_PE_SIDE};
use dosa_cache::CacheKey;
use dosa_model::LossOptions;
use dosa_workload::Layer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lifecycle state of a submitted job.
///
/// ```text
/// Queued ──planned──▶ Running ──▶ Completed (incl. degraded)
///    │                   │
///    │                   ├──────▶ Failed (panic, non-finite loss,
///    │                   │                deadline Kill)
///    └──cancel()─────────┴──────▶ Cancelled
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the ready queue: the job's planning item has not been
    /// dispatched yet (better-ranked or earlier work holds the pool).
    Queued,
    /// Planned (or planning): the job's work items are executing on — or
    /// queued for — the service's persistent workers.
    Running,
    /// Finished normally; full results are available. A deadline job
    /// under [`DeadlinePolicy::Degrade`] also completes here, with
    /// [`BatchResult::degraded`] set.
    Completed,
    /// Cancelled; partial (possibly empty) results are available.
    Cancelled,
    /// Failed with a typed [`JobError`] — a work item panicked or went
    /// non-finite, the deadline expired under [`DeadlinePolicy::Kill`],
    /// or planning/merging itself died. The error is retrievable from
    /// [`JobHandle::error`] and returned by [`JobHandle::wait`]; no other
    /// job on the service is affected.
    Failed,
}

impl JobStatus {
    /// Whether the job has reached a terminal state (results or a typed
    /// error available).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

/// One network's result inside a [`BatchResult`].
#[derive(Debug, Clone)]
pub struct NetworkResult {
    /// The network's name from the request.
    pub network: String,
    /// Its search result, bit-identical to a standalone run with the same
    /// seed (partial if the job was cancelled).
    pub result: SearchResult,
}

/// Per-network results of one job, in request order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One entry per network, in submission order.
    pub networks: Vec<NetworkResult>,
    /// Whether a [`DeadlinePolicy::Degrade`] deadline expired mid-run:
    /// the per-network results are the deterministic merge of the work
    /// items completed before the deadline — a bitwise prefix of the
    /// uninterrupted run's history — rather than the full budget.
    pub degraded: bool,
}

impl BatchResult {
    /// Look a network's result up by name.
    pub fn get(&self, network: &str) -> Option<&SearchResult> {
        self.networks
            .iter()
            .find(|n| n.network == network)
            .map(|n| &n.result)
    }

    /// Unwrap the result of a single-network job.
    ///
    /// # Panics
    ///
    /// Panics if the job held more or fewer than one network.
    pub fn into_single(mut self) -> SearchResult {
        assert_eq!(
            self.networks.len(),
            1,
            "into_single on a batch of {} networks",
            self.networks.len()
        );
        // dosa-lint: allow(panic-perimeter) — unreachable: the assert above
        // guarantees exactly one network; `into_single`'s docs also declare
        // the length-mismatch panic as API contract.
        self.networks.pop().expect("length checked").result
    }
}

/// Live observation of one network's share of a running job.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProgress {
    /// The network's name from the request.
    pub network: String,
    /// Model evaluations consumed so far (monotone non-decreasing).
    pub samples: usize,
    /// Best reference-evaluated EDP so far (monotone non-increasing;
    /// `INFINITY` until the first rounding evaluation lands).
    pub best_edp: f64,
}

/// A non-blocking snapshot of a job's lifecycle state and per-network
/// progress, drawn live from the descents' lock-free counters.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// One entry per network, in submission order.
    pub networks: Vec<NetworkProgress>,
}

impl JobProgress {
    /// Total model evaluations consumed across the batch.
    pub fn total_samples(&self) -> usize {
        self.networks.iter().map(|n| n.samples).sum()
    }

    /// Best EDP across the batch (`INFINITY` until something landed).
    pub fn best_edp(&self) -> f64 {
        self.networks
            .iter()
            .map(|n| n.best_edp)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Per-job scheduler and cache observability, snapshot by
/// [`JobHandle::stats`].
///
/// On a service without a cache the cache counters stay zero. With a
/// cache, `cache_hits + cache_misses == work_items` once the job is
/// terminal (uncacheable items — e.g. a custom surrogate's — count as
/// misses: they ran on the pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobStats {
    /// Work items this job planned (including any warm-start items).
    pub work_items: usize,
    /// Work items replayed from the service's [`ResultCache`].
    pub cache_hits: usize,
    /// Work items that ran on the pool (cache absent, item uncacheable,
    /// or a genuine miss).
    pub cache_misses: usize,
    /// Extra descents seeded from a cached neighbor
    /// ([`WarmStart::NearestNeighbor`]).
    pub warm_starts: usize,
    /// Executable dispatches that actually ran on a worker: every GD
    /// segment (a start resumed `n` times counts `n` dispatches), random
    /// design, and BB-BO network. Planning dispatches and cache replays
    /// are not counted; without segmentation this equals the work items
    /// that ran on the pool.
    pub segments_run: usize,
    /// The longest any of this job's queue entries waited for a worker,
    /// measured in queue *dispatches* — the scheduler's logical aging
    /// clock (see [`SchedPolicy`] and
    /// [`AGE_DISPATCH_PERIOD`](crate::AGE_DISPATCH_PERIOD)). `0` when
    /// every entry was dispatched as soon as a worker freed up.
    pub max_queue_wait: u64,
}

/// Lock-free backing counters of [`JobStats`].
#[derive(Default)]
struct JobCounters {
    work_items: AtomicUsize,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
    warm_starts: AtomicUsize,
    segments_run: AtomicUsize,
    max_queue_wait: AtomicU64,
}

impl JobCounters {
    fn snapshot(&self) -> JobStats {
        JobStats {
            work_items: self.work_items.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            segments_run: self.segments_run.load(Ordering::Relaxed),
            max_queue_wait: self.max_queue_wait.load(Ordering::Relaxed),
        }
    }
}

struct JobState {
    status: JobStatus,
    results: Option<BatchResult>,
    /// Why the job ended [`JobStatus::Failed`], when it did.
    error: Option<JobError>,
}

/// The position-indexed execution ledger of one planned job: filled by
/// the planning item, drained towards `remaining == 0` by the workers,
/// merged by `finish_job` on whichever worker resolves the last item.
#[derive(Default)]
struct ExecState {
    /// One entry per planned item position: `None` until the item
    /// resolves, then `(net_index, outcome)` where a `None` outcome marks
    /// an item a [`DeadlinePolicy::Degrade`] deadline skipped.
    slots: Vec<Option<(usize, Option<SearchResult>)>>,
    /// Per-network shape keys for cache journaling.
    shapes: Vec<Option<CacheKey>>,
    /// Planned items not yet resolved.
    remaining: usize,
    /// Lowest-positioned item failure, if any — the typed error the whole
    /// job fails with at the finish. Sibling items still run to
    /// completion (journaling as usual), exactly as the pre-pool fan-out
    /// behaved.
    first_error: Option<(usize, JobError)>,
}

struct JobShared {
    id: u64,
    request: SearchRequest,
    /// Scheduling rank, fixed at submission (see [`SchedPolicy`]); aged
    /// by the ready queue while entries wait.
    rank: JobRank,
    /// Resolved worker cap: `min(request.max_parallelism, service budget)`.
    max_par: usize,
    /// Work items of this job currently executing on workers; entries of
    /// a job at its `max_par` are ineligible for dispatch.
    inflight: AtomicUsize,
    /// Cooperative cancellation flag, checked by every running item once
    /// per step/sample and by queued items the moment they dispatch.
    cancel: AtomicBool,
    /// Degrade flag ([`DeadlinePolicy::Degrade`]): set at the deadline so
    /// work items that have not taken a single step yet are skipped,
    /// while items with a segment checkpoint (and running items) finish
    /// bit-exactly. Deliberately **not** observed by the per-step cancel
    /// check.
    halt: AtomicBool,
    /// Set by the deadline watchdog under [`DeadlinePolicy::Kill`] just
    /// before it flips `cancel`, so the finish can tell a deadline kill
    /// (→ [`JobStatus::Failed`]) from a user cancel (→
    /// [`JobStatus::Cancelled`]).
    deadline_hit: AtomicBool,
    /// Submission instant the deadline is measured from.
    submitted: Instant,
    /// The service's ready queue, for re-enqueueing segment checkpoints
    /// and waking poppers on cancel.
    queue: Arc<ReadyQueue<QueueEntry>>,
    /// One live counter pair per network, in request order.
    progress: Vec<ProgressCounters>,
    /// The service's result cache, if one was configured.
    cache: Option<Arc<ResultCache>>,
    /// Per-job scheduler/cache counters.
    stats: JobCounters,
    /// The execution ledger; populated by the planning item.
    exec: Mutex<ExecState>,
    /// The deadline watchdog's handle, joined exactly once at retirement.
    watchdog: Mutex<Option<JoinHandle<()>>>,
    state: Mutex<JobState>,
    done: Condvar,
}

impl JobShared {
    fn empty_results(&self) -> BatchResult {
        BatchResult {
            networks: self
                .request
                .networks()
                .iter()
                .map(|n| NetworkResult {
                    network: n.name.clone(),
                    result: SearchResult::empty(),
                })
                .collect(),
            degraded: false,
        }
    }
}

/// Handle to a submitted job. Cheap to clone; all clones observe the same
/// job. Dropping every handle does **not** cancel the job.
#[derive(Clone)]
pub struct JobHandle {
    job: Arc<JobShared>,
}

impl JobHandle {
    /// Service-unique id of this job (submission order).
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// Current lifecycle state (non-blocking).
    pub fn status(&self) -> JobStatus {
        fault::lock(&self.job.state).status
    }

    /// Why the job failed, when [`status()`](JobHandle::status) is
    /// [`JobStatus::Failed`] (non-blocking; `None` in every other
    /// state). The same error is returned by [`wait()`](JobHandle::wait).
    pub fn error(&self) -> Option<JobError> {
        fault::lock(&self.job.state).error.clone()
    }

    /// Live per-network progress (non-blocking): sample totals and
    /// best-so-far EDP drawn from the descents' lock-free counters.
    /// Successive snapshots are monotone — samples never decrease and
    /// `best_edp` never increases.
    pub fn progress(&self) -> JobProgress {
        // Read the status *before* the counters: if it is terminal, all
        // workers have stopped and the counters read below are final, so
        // a terminal-labeled snapshot never underreports. (The other
        // direction — a `Running` snapshot carrying slightly newer
        // counters — is harmless and still monotone.)
        let status = self.status();
        let networks = self
            .job
            .request
            .networks()
            .iter()
            .zip(&self.job.progress)
            .map(|(net, counters)| {
                let (samples, best_edp) = counters.snapshot();
                NetworkProgress {
                    network: net.name.clone(),
                    samples,
                    best_edp,
                }
            })
            .collect();
        JobProgress { status, networks }
    }

    /// Request cooperative cancellation. A queued job completes
    /// immediately with empty results; a running job stops issuing
    /// gradient steps at the next step boundary, its queued work items
    /// resolve as fast no-ops as workers pick them up (freeing capacity
    /// for the other jobs on the service), and it keeps its partial
    /// (still monotone) per-network results. Idempotent; never blocks on
    /// the descent itself.
    pub fn cancel(&self) {
        self.job.cancel.store(true, Ordering::Relaxed);
        // Wake idle workers so the cancelled job's items drain promptly.
        self.job.queue.wake();
        let mut state = fault::lock(&self.job.state);
        if state.status == JobStatus::Queued {
            state.status = JobStatus::Cancelled;
            state.results = Some(self.job.empty_results());
            self.job.done.notify_all();
        }
    }

    /// Per-job scheduler and cache counters (non-blocking): how many work
    /// items this job planned, how many were replayed from the service's
    /// [`ResultCache`] versus run on the pool, how many extra warm-start
    /// descents were seeded, how many executable dispatches (GD segments,
    /// random designs, BB-BO networks) actually ran, and the longest any
    /// of its queue entries waited for a worker. Counters are final once
    /// [`status()`](JobHandle::status) is terminal.
    pub fn stats(&self) -> JobStats {
        self.job.stats.snapshot()
    }

    /// Block until the job reaches a terminal state. Completed jobs
    /// return their full results (flagged [`BatchResult::degraded`] if a
    /// [`DeadlinePolicy::Degrade`] deadline expired mid-run), cancelled
    /// jobs their partial results; a [`JobStatus::Failed`] job returns
    /// its typed [`JobError`] instead.
    ///
    /// Total: never panics, even if planning or merging died — such a
    /// defect surfaces as [`JobError::RunnerPanic`], and a terminal job
    /// that somehow stored no results reports
    /// [`JobError::ResultsUnavailable`].
    pub fn wait(&self) -> Result<BatchResult, JobError> {
        let mut state = fault::lock(&self.job.state);
        while !state.status.is_terminal() {
            state = fault::wait(&self.job.done, state);
        }
        if state.status == JobStatus::Failed {
            return Err(state.error.clone().unwrap_or(JobError::ResultsUnavailable));
        }
        state.results.clone().ok_or(JobError::ResultsUnavailable)
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.job.id)
            .field("status", &self.status())
            .finish()
    }
}

/// The resumable descent state of one GD work item.
enum GdItemState {
    /// Not started: the planned start point (skippable under
    /// [`DeadlinePolicy::Degrade`]).
    Fresh(StartPoint),
    /// Mid-descent: the checkpoint of a yielded segment; morally in
    /// flight, so a degrade deadline lets it finish bit-exactly.
    Resumed(Box<DescentState>),
}

/// What one dispatched queue entry does. `pos` is the item's planned
/// position across the whole batch — the coordinate its result lands at,
/// the index fault plans address, and the `item` a typed [`JobError`]
/// reports.
enum WorkItem {
    /// Plan the job on a worker: generate its per-network work items,
    /// consult the result cache, and enqueue the misses.
    Plan,
    /// One (network, start point) gradient descent, run in bounded
    /// segments when [`GdConfig::segment_steps`] is set.
    GdStart {
        pos: usize,
        net_index: usize,
        start_index: usize,
        cfg: GdConfig,
        state: GdItemState,
        key: Option<CacheKey>,
    },
    /// One (network, hardware design) random search.
    RandomDesign {
        pos: usize,
        net_index: usize,
        design: RandomDesign,
        samples_per_hw: usize,
        key: Option<CacheKey>,
    },
    /// One network's whole BB-BO loop (`pos == net_index`: exactly one
    /// item per network).
    BayesNetwork {
        net_index: usize,
        cfg: BbboConfig,
        key: Option<CacheKey>,
    },
}

/// One entry of the service's ready queue: the owning job plus what to do.
struct QueueEntry {
    job: Arc<JobShared>,
    item: WorkItem,
}

impl Schedulable for QueueEntry {
    fn rank(&self) -> JobRank {
        self.job.rank
    }

    fn eligible(&self) -> bool {
        self.job.inflight.load(Ordering::Relaxed) < self.job.max_par
    }

    fn on_dispatch(&self, wait: u64) {
        self.job.inflight.fetch_add(1, Ordering::Relaxed);
        self.job
            .stats
            .max_queue_wait
            .fetch_max(wait, Ordering::Relaxed);
    }
}

struct ServiceShared {
    /// The ready queue the persistent workers pull from.
    queue: Arc<ReadyQueue<QueueEntry>>,
    threads: usize,
    /// The service's result cache, consulted per work item when present.
    cache: Option<Arc<ResultCache>>,
    next_id: AtomicU64,
    /// Jobs submitted and not yet retired, so `Drop` can cancel them.
    live: Mutex<Vec<Arc<JobShared>>>,
    /// The persistent workers (plus any respawned replacements).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Builder for [`SearchService`]; see [`SearchService::builder`].
#[derive(Debug, Clone, Default)]
pub struct SearchServiceBuilder {
    threads: Option<usize>,
    cache: Option<Arc<ResultCache>>,
}

impl SearchServiceBuilder {
    /// Worker budget of the service (default: all cores). Exactly this
    /// many persistent worker threads are spawned at construction; at
    /// most this many work items execute at any instant across **all**
    /// concurrently running jobs, so a budget of 1 degenerates to one
    /// item — and, under the default policy, one job — at a time. The
    /// budget is owned by this service instance — it does not touch the
    /// global rayon pool, so services with different budgets coexist in
    /// one process. Results are bit-identical for every budget.
    pub fn threads(mut self, n: usize) -> SearchServiceBuilder {
        self.threads = Some(n.max(1));
        self
    }

    /// Attach a content-addressed [`ResultCache`] (default: none). The
    /// service consults it per work item during planning, journals
    /// completed items into it, and draws warm-start neighbors from it;
    /// sharing one cache across services (or across a service's lifetime)
    /// is what makes checkpoint/resume and warm starts work. With the
    /// default [`WarmStart::Off`] on every request, attaching a cache
    /// never changes any result bit — see the module docs.
    pub fn cache(mut self, cache: Arc<ResultCache>) -> SearchServiceBuilder {
        self.cache = Some(cache);
        self
    }

    /// Spawn the service's persistent workers and return the service.
    pub fn build(self) -> SearchService {
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let shared = Arc::new(ServiceShared {
            queue: Arc::new(ReadyQueue::new()),
            threads,
            cache: self.cache,
            next_id: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        });
        let workers = (0..threads)
            .map(|_| spawn_worker(Arc::clone(&shared)))
            .collect();
        *fault::lock(&shared.workers) = workers;
        SearchService { shared }
    }
}

/// An async search-job service: submit [`SearchRequest`]s, observe and
/// cancel them through [`JobHandle`]s. Jobs run **concurrently** on one
/// persistent, capacity-bounded worker pool under each request's
/// [`SchedPolicy`]; see the [module docs](self) for the execution,
/// scheduling, determinism, and cancellation contracts.
///
/// Dropping the service requests cancellation of the in-flight jobs,
/// fails the queued ones over to [`JobStatus::Cancelled`] with empty
/// results, and joins the workers — keep the service alive until the
/// jobs you care about have been waited on.
pub struct SearchService {
    shared: Arc<ServiceShared>,
}

impl SearchService {
    /// Start configuring a service.
    pub fn builder() -> SearchServiceBuilder {
        SearchServiceBuilder::default()
    }

    /// This service's worker budget (the size of its persistent pool).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// The service's result cache, if one was attached at build time.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.shared.cache.as_ref()
    }

    /// Validate `request` and enqueue its planning item, returning a
    /// handle immediately. Workers dispatch queued work in aged
    /// [`SchedPolicy`] rank order as they free up, so several jobs make
    /// progress at once.
    pub fn submit(&self, request: SearchRequest) -> Result<JobHandle, ConfigError> {
        request.validate()?;
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let rank = JobRank::new(request.policy(), request.estimated_samples(), id);
        let max_par = request
            .max_parallelism()
            .unwrap_or(self.shared.threads)
            .min(self.shared.threads)
            .max(1);
        let progress = request
            .networks()
            .iter()
            .map(|_| ProgressCounters::new())
            .collect();
        let job = Arc::new(JobShared {
            id,
            request,
            rank,
            max_par,
            inflight: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            halt: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            submitted: Instant::now(),
            queue: Arc::clone(&self.shared.queue),
            progress,
            cache: self.shared.cache.clone(),
            stats: JobCounters::default(),
            exec: Mutex::new(ExecState::default()),
            watchdog: Mutex::new(None),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                results: None,
                error: None,
            }),
            done: Condvar::new(),
        });
        // The deadline is measured from submission (queue time counts),
        // so the watchdog starts now — the only per-job thread.
        if let Some(deadline) = job.request.deadline() {
            let watchdog_job = Arc::clone(&job);
            let handle = std::thread::spawn(move || deadline_watchdog(&watchdog_job, deadline));
            *fault::lock(&job.watchdog) = Some(handle);
        }
        let handle = JobHandle {
            job: Arc::clone(&job),
        };
        fault::lock(&self.shared.live).push(Arc::clone(&job));
        self.shared.queue.push(QueueEntry {
            job,
            item: WorkItem::Plan,
        });
        Ok(handle)
    }
}

impl Drop for SearchService {
    fn drop(&mut self) {
        // Cancel every live job first: queued jobs retire immediately
        // with empty results, and the cancel flag turns the remaining
        // queue entries into fast no-ops the draining workers flush.
        let live: Vec<Arc<JobShared>> = fault::lock(&self.shared.live).clone();
        for job in live {
            JobHandle { job }.cancel();
        }
        self.shared.queue.shutdown();
        // Join until the ledger stays empty: a worker dying mid-drain
        // respawns a replacement that must be joined too.
        loop {
            let workers = std::mem::take(&mut *fault::lock(&self.shared.workers));
            if workers.is_empty() {
                break;
            }
            for worker in workers {
                let _ = worker.join();
            }
        }
    }
}

/// Spawn one persistent worker on the service's ready queue.
fn spawn_worker(shared: Arc<ServiceShared>) -> JoinHandle<()> {
    std::thread::spawn(move || worker_loop(shared))
}

/// Self-healing for the pool: work items run inside their own unwind
/// boundary, so a panic normally fails only its job — but if a defect
/// ever escapes that boundary and kills a worker, the dying worker's
/// drop guard respawns a replacement so the service never silently
/// loses capacity.
struct RespawnGuard {
    shared: Arc<ServiceShared>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let handle = spawn_worker(Arc::clone(&self.shared));
            fault::lock(&self.shared.workers).push(handle);
        }
    }
}

/// One persistent worker: pop the best-ranked eligible entry, run it,
/// release the job's in-flight slot, repeat — until the queue shuts down
/// and drains (entries of cancelled jobs still flow through their normal
/// resolution path, as fast no-ops).
fn worker_loop(shared: Arc<ServiceShared>) {
    let _respawn = RespawnGuard {
        shared: Arc::clone(&shared),
    };
    while let Some(entry) = shared.queue.pop() {
        let QueueEntry { job, item } = entry;
        run_item(&shared, &job, item);
        job.inflight.fetch_sub(1, Ordering::Relaxed);
        // The job dropped below its parallelism cap: its queued entries
        // may be eligible now.
        shared.queue.wake();
    }
}

/// Execute one dispatched work item.
fn run_item(shared: &Arc<ServiceShared>, job: &Arc<JobShared>, item: WorkItem) {
    match item {
        WorkItem::Plan => run_plan(shared, job),
        WorkItem::GdStart {
            pos,
            net_index,
            start_index,
            cfg,
            state,
            key,
        } => run_gd_item(shared, job, pos, net_index, start_index, cfg, state, key),
        WorkItem::RandomDesign {
            pos,
            net_index,
            design,
            samples_per_hw,
            key,
        } => run_random_item(shared, job, pos, net_index, design, samples_per_hw, key),
        WorkItem::BayesNetwork {
            net_index,
            cfg,
            key,
        } => run_bayes_item(shared, job, net_index, cfg, key),
    }
}

/// The plan of one job: pre-resolved (cache-replayed) item slots, the
/// per-network shape keys, and the miss items to enqueue.
struct JobPlan {
    slots: Vec<Option<(usize, Option<SearchResult>)>>,
    shapes: Vec<Option<CacheKey>>,
    misses: Vec<WorkItem>,
}

/// The planning item: transition the job to `Running` (unless it was
/// cancelled while queued), generate its work items, replay cache hits,
/// and enqueue the misses. Results and terminal status of the *previous*
/// job are always published before this dispatches on a single-worker
/// service — the finish runs inline on the worker — which is what keeps
/// one-slot execution strictly FIFO.
fn run_plan(shared: &Arc<ServiceShared>, job: &Arc<JobShared>) {
    let admitted = {
        let mut state = fault::lock(&job.state);
        if state.status.is_terminal() {
            false
        } else {
            state.status = JobStatus::Running;
            true
        }
    };
    if !admitted {
        // Cancelled while queued: the handle already stored its empty
        // results; just retire the bookkeeping.
        retire_job(shared, job);
        return;
    }
    // Planning runs arbitrary strategy code (start-point generation, the
    // cache, a custom surrogate): contain it so a defect fails only this
    // job, typed, instead of killing the worker.
    match catch_unwind(AssertUnwindSafe(|| plan_job(job))) {
        Err(payload) => {
            record_item_error(
                job,
                0,
                JobError::RunnerPanic {
                    payload: payload_string(payload),
                },
            );
            finish_job(shared, job);
        }
        Ok(plan) => {
            let JobPlan {
                slots,
                shapes,
                misses,
            } = plan;
            // Commit the ledger before enqueueing anything: another
            // worker may pop and resolve a miss immediately.
            let fully_resolved = {
                let mut exec = fault::lock(&job.exec);
                exec.slots = slots;
                exec.shapes = shapes;
                exec.remaining = misses.len();
                misses.is_empty()
            };
            if fully_resolved {
                finish_job(shared, job);
            } else {
                job.queue
                    .push_all(misses.into_iter().map(|item| QueueEntry {
                        job: Arc::clone(job),
                        item,
                    }));
            }
        }
    }
}

/// Plan one job's work items according to its strategy.
fn plan_job(job: &JobShared) -> JobPlan {
    match job.request.strategy() {
        Strategy::GradientDescent(cfg) => plan_gd(job, cfg),
        Strategy::Random(cfg) => plan_random(job, cfg),
        Strategy::BayesOpt(cfg) => plan_bayes(job, cfg),
    }
}

/// Gradient-descent planning: every network's start points (plus any
/// warm-start item) become independent work items. Start points are
/// generated sequentially per network before any parallelism, exactly as
/// the blocking path does — bit-parity with standalone runs hinges on
/// it. Cache hits land directly at their planned positions and never
/// enter the queue; reassembling by position keeps the demultiplexed
/// per-network order — and therefore every merged result bit — identical
/// to a cold run regardless of which items hit.
fn plan_gd(job: &JobShared, cfg: &GdConfig) -> JobPlan {
    let request = &job.request;
    let hier = &request.hier;
    let mut items: Vec<(usize, usize, StartPoint, GdConfig, Option<CacheKey>)> = Vec::new();
    let mut shapes: Vec<Option<CacheKey>> = Vec::new();
    for (net_index, net) in request.networks().iter().enumerate() {
        let mut net_cfg = *cfg;
        net_cfg.seed = request.network_seed(net_index);
        let (_, opts) = build_surrogate(&request.surrogate, &net.layers, hier, &net_cfg);
        let mut rng = StdRng::seed_from_u64(net_cfg.seed);
        let starts = generate_start_points(
            &mut rng,
            &net.layers,
            hier,
            &opts,
            net_cfg.start_points,
            net_cfg.rejection_factor,
        );
        for (start_index, start) in starts.into_iter().enumerate() {
            let key = job.cache.as_ref().and_then(|_| {
                cache::gd_item_key(hier, &net.layers, &request.surrogate, &net_cfg, start_index)
            });
            items.push((net_index, start_index, start, net_cfg, key));
        }
        let shape = job
            .cache
            .as_ref()
            .map(|_| cache::network_shape_key(hier, &net.layers));
        // Warm start: seed one extra descent from the best cached
        // neighbor of this network's shape. The warm item is appended
        // *after* the regular starts at the first unused start index, so
        // every regular start's RNG stream and merge position is exactly
        // what a cold run produces.
        if request.warm_start() == WarmStart::NearestNeighbor {
            if let (Some(cache), Some(shape)) = (&job.cache, &shape) {
                if let Some(relaxed) = cache.warm_neighbor(shape, net.layers.len()) {
                    let key = cache::warm_item_key(
                        hier,
                        &net.layers,
                        &request.surrogate,
                        &net_cfg,
                        net_cfg.start_points,
                        &relaxed,
                    );
                    let start = warm_start_point(&net.layers, hier, &opts, relaxed);
                    items.push((net_index, net_cfg.start_points, start, net_cfg, key));
                    job.stats.warm_starts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        shapes.push(shape);
    }
    job.stats
        .work_items
        .fetch_add(items.len(), Ordering::Relaxed);

    let mut slots: Vec<Option<(usize, Option<SearchResult>)>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut misses: Vec<WorkItem> = Vec::new();
    for (pos, (net_index, start_index, start, net_cfg, key)) in items.into_iter().enumerate() {
        match consult_cache(job, key.as_ref()) {
            Some(result) => {
                replay_hit(job, net_index, &result);
                slots[pos] = Some((net_index, Some((*result).clone())));
            }
            None => misses.push(WorkItem::GdStart {
                pos,
                net_index,
                start_index,
                cfg: net_cfg,
                state: GdItemState::Fresh(start),
                key,
            }),
        }
    }
    JobPlan {
        slots,
        shapes,
        misses,
    }
}

/// Random-search planning: draw every network's hardware designs
/// sequentially from its seed; each design is one work item searched by
/// its own RNG stream. Cache consultation and positional reassembly
/// mirror [`plan_gd`].
fn plan_random(job: &JobShared, cfg: &RandomSearchConfig) -> JobPlan {
    let request = &job.request;
    let hier = &request.hier;
    let mut items: Vec<(usize, RandomDesign, Option<CacheKey>)> = Vec::new();
    let mut shapes: Vec<Option<CacheKey>> = Vec::new();
    for (net_index, net) in request.networks().iter().enumerate() {
        let mut net_cfg = *cfg;
        net_cfg.seed = request.network_seed(net_index);
        for (design_index, design) in plan_random_designs(&net_cfg).into_iter().enumerate() {
            let key = job
                .cache
                .as_ref()
                .map(|_| cache::random_item_key(hier, &net.layers, &net_cfg, design_index));
            items.push((net_index, design, key));
        }
        shapes.push(
            job.cache
                .as_ref()
                .map(|_| cache::network_shape_key(hier, &net.layers)),
        );
    }
    job.stats
        .work_items
        .fetch_add(items.len(), Ordering::Relaxed);

    let mut slots: Vec<Option<(usize, Option<SearchResult>)>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut misses: Vec<WorkItem> = Vec::new();
    for (pos, (net_index, design, key)) in items.into_iter().enumerate() {
        match consult_cache(job, key.as_ref()) {
            Some(result) => {
                replay_hit(job, net_index, &result);
                slots[pos] = Some((net_index, Some((*result).clone())));
            }
            None => misses.push(WorkItem::RandomDesign {
                pos,
                net_index,
                design,
                samples_per_hw: cfg.samples_per_hw,
                key,
            }),
        }
    }
    JobPlan {
        slots,
        shapes,
        misses,
    }
}

/// BB-BO planning: the cacheable unit — and the work item — is the whole
/// network (every GP step conditions on all previous observations), so
/// one item per network, at `pos == net_index`. Networks of one batch
/// may run concurrently on the pool (each is independently seeded, so
/// every result is bit-identical to the sequential order the pre-pool
/// service used); the GP loop *within* a network stays sequential on its
/// worker.
fn plan_bayes(job: &JobShared, cfg: &BbboConfig) -> JobPlan {
    let request = &job.request;
    let hier = &request.hier;
    let networks = request.networks().len();
    job.stats.work_items.fetch_add(networks, Ordering::Relaxed);
    let mut slots: Vec<Option<(usize, Option<SearchResult>)>> = Vec::with_capacity(networks);
    slots.resize_with(networks, || None);
    let mut shapes: Vec<Option<CacheKey>> = Vec::new();
    let mut misses: Vec<WorkItem> = Vec::new();
    for (net_index, net) in request.networks().iter().enumerate() {
        let mut net_cfg = *cfg;
        net_cfg.seed = request.network_seed(net_index);
        let key = job
            .cache
            .as_ref()
            .map(|_| cache::bayes_network_key(hier, &net.layers, &net_cfg));
        shapes.push(
            job.cache
                .as_ref()
                .map(|_| cache::network_shape_key(hier, &net.layers)),
        );
        match consult_cache(job, key.as_ref()) {
            Some(result) => {
                replay_hit(job, net_index, &result);
                slots[net_index] = Some((net_index, Some((*result).clone())));
            }
            None => misses.push(WorkItem::BayesNetwork {
                net_index,
                cfg: net_cfg,
                key,
            }),
        }
    }
    JobPlan {
        slots,
        shapes,
        misses,
    }
}

/// What one GD segment dispatch produced.
enum SegmentOutcome {
    /// The descent ran to its budget (or its cancel boundary).
    Finished(SearchResult),
    /// The segment budget expired with steps remaining: re-enqueue.
    Yielded(Box<DescentState>),
    /// A rounding checkpoint's reference EDP went NaN at this step.
    NonFinite(usize),
}

/// One GD work-item dispatch: run one segment (the whole descent when
/// [`GdConfig::segment_steps`] is `None`) and either resolve the item,
/// re-enqueue its checkpoint, or record its typed failure. The surrogate
/// is rebuilt per dispatch from the request — cheap, and bit-exact
/// because the checkpoint carries every stateful part of the descent.
#[allow(clippy::too_many_arguments)]
fn run_gd_item(
    shared: &Arc<ServiceShared>,
    job: &Arc<JobShared>,
    pos: usize,
    net_index: usize,
    start_index: usize,
    cfg: GdConfig,
    state: GdItemState,
    key: Option<CacheKey>,
) {
    // Degrade skips only items that have not taken a single step; a
    // checkpointed item is in flight and finishes bit-exactly, which is
    // what keeps the merged history a bitwise prefix of the full run.
    if job.halt.load(Ordering::Relaxed) && matches!(state, GdItemState::Fresh(_)) {
        resolve_item(shared, job, pos, net_index, None);
        return;
    }
    job.stats.segments_run.fetch_add(1, Ordering::Relaxed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let net = &job.request.networks()[net_index];
        let (loss, _) =
            build_surrogate(&job.request.surrogate, &net.layers, &job.request.hier, &cfg);
        let mut ctrl = network_ctrl(job, net_index);
        ctrl.force_non_finite = apply_fault(job, pos);
        let mut descent = match state {
            GdItemState::Fresh(start) => Box::new(DescentState::begin(
                &*loss,
                start.relaxed,
                start_index,
                &cfg,
            )),
            GdItemState::Resumed(checkpoint) => checkpoint,
        };
        let budget = cfg.segment_steps.unwrap_or(usize::MAX);
        match run_segment(&*loss, &mut descent, &cfg, ctrl, budget) {
            Ok(true) => SegmentOutcome::Finished(descent.into_result()),
            Ok(false) => SegmentOutcome::Yielded(descent),
            Err(nf) => SegmentOutcome::NonFinite(nf.step),
        }
    }));
    match outcome {
        Ok(SegmentOutcome::Finished(result)) => {
            // Journal only a descent that completed un-cancelled: a
            // partial result must never be replayable.
            if !job.cancel.load(Ordering::Relaxed) {
                if let (Some(cache), Some(key)) = (&job.cache, key) {
                    let shape = fault::lock(&job.exec).shapes[net_index].clone();
                    cache.journal(key, shape.as_ref(), &result);
                }
            }
            resolve_item(shared, job, pos, net_index, Some(result));
        }
        Ok(SegmentOutcome::Yielded(checkpoint)) => {
            job.queue.push(QueueEntry {
                job: Arc::clone(job),
                item: WorkItem::GdStart {
                    pos,
                    net_index,
                    start_index,
                    cfg,
                    state: GdItemState::Resumed(checkpoint),
                    key,
                },
            });
        }
        Ok(SegmentOutcome::NonFinite(step)) => {
            record_item_error(job, pos, JobError::NonFiniteLoss { item: pos, step });
            resolve_item(shared, job, pos, net_index, None);
        }
        Err(payload) => {
            record_item_error(
                job,
                pos,
                JobError::WorkerPanic {
                    item: pos,
                    payload: payload_string(payload),
                },
            );
            resolve_item(shared, job, pos, net_index, None);
        }
    }
}

/// One random-search work-item dispatch.
fn run_random_item(
    shared: &Arc<ServiceShared>,
    job: &Arc<JobShared>,
    pos: usize,
    net_index: usize,
    design: RandomDesign,
    samples_per_hw: usize,
    key: Option<CacheKey>,
) {
    if job.halt.load(Ordering::Relaxed) {
        resolve_item(shared, job, pos, net_index, None);
        return;
    }
    job.stats.segments_run.fetch_add(1, Ordering::Relaxed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        apply_fault(job, pos);
        let net = &job.request.networks()[net_index];
        run_random_design(
            &net.layers,
            &job.request.hier,
            &design,
            samples_per_hw,
            network_ctrl(job, net_index),
        )
    }));
    match outcome {
        Ok(result) => {
            if !job.cancel.load(Ordering::Relaxed) {
                if let (Some(cache), Some(key)) = (&job.cache, key) {
                    let shape = fault::lock(&job.exec).shapes[net_index].clone();
                    cache.journal(key, shape.as_ref(), &result);
                }
            }
            resolve_item(shared, job, pos, net_index, Some(result));
        }
        Err(payload) => {
            record_item_error(
                job,
                pos,
                JobError::WorkerPanic {
                    item: pos,
                    payload: payload_string(payload),
                },
            );
            resolve_item(shared, job, pos, net_index, None);
        }
    }
}

/// One BB-BO work-item dispatch: the network's whole outer GP loop, run
/// inline on this worker through a serial fleet (BB-BO results are
/// thread-count-invariant, so inline execution is bit-identical to any
/// pooled run — and the worker itself is the pool's unit of
/// parallelism). A degrade deadline resolves a not-yet-started network
/// as empty, exactly as the pre-pool sequential loop did.
fn run_bayes_item(
    shared: &Arc<ServiceShared>,
    job: &Arc<JobShared>,
    net_index: usize,
    cfg: BbboConfig,
    key: Option<CacheKey>,
) {
    if job.halt.load(Ordering::Relaxed) {
        resolve_item(
            shared,
            job,
            net_index,
            net_index,
            Some(SearchResult::empty()),
        );
        return;
    }
    job.stats.segments_run.fetch_add(1, Ordering::Relaxed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        apply_fault(job, net_index);
        let fleet = Fleet::serial();
        let net = &job.request.networks()[net_index];
        run_bayesian_search(
            &net.layers,
            &job.request.hier,
            &cfg,
            &fleet,
            network_ctrl(job, net_index),
        )
    }));
    match outcome {
        Ok(result) => {
            if !job.cancel.load(Ordering::Relaxed) {
                if let (Some(cache), Some(key)) = (&job.cache, key) {
                    let shape = fault::lock(&job.exec).shapes[net_index].clone();
                    cache.journal(key, shape.as_ref(), &result);
                }
            }
            resolve_item(shared, job, net_index, net_index, Some(result));
        }
        Err(payload) => {
            record_item_error(
                job,
                net_index,
                JobError::WorkerPanic {
                    item: net_index,
                    payload: payload_string(payload),
                },
            );
            resolve_item(shared, job, net_index, net_index, None);
        }
    }
}

/// Record one item's typed failure; when several items fail, the lowest
/// planned position wins deterministically (completion order cannot
/// change which error the job reports).
fn record_item_error(job: &JobShared, pos: usize, err: JobError) {
    let mut exec = fault::lock(&job.exec);
    if exec.first_error.as_ref().is_none_or(|(p, _)| pos < *p) {
        exec.first_error = Some((pos, err));
    }
}

/// Land one item's outcome at its planned position; the worker that
/// resolves the last outstanding item finishes the job inline — so on a
/// single-worker service the terminal transition always precedes the
/// next job's planning dispatch (strict FIFO).
fn resolve_item(
    shared: &Arc<ServiceShared>,
    job: &Arc<JobShared>,
    pos: usize,
    net_index: usize,
    outcome: Option<SearchResult>,
) {
    let finished = {
        let mut exec = fault::lock(&job.exec);
        debug_assert!(exec.slots[pos].is_none(), "work item resolved twice");
        exec.slots[pos] = Some((net_index, outcome));
        exec.remaining -= 1;
        exec.remaining == 0
    };
    if finished {
        finish_job(shared, job);
    }
}

/// Merge the resolved items, decide the terminal state, publish it, and
/// retire the job's bookkeeping. The merge itself runs inside an unwind
/// boundary so a defect there fails this job typed instead of hanging
/// its waiters.
fn finish_job(shared: &Arc<ServiceShared>, job: &Arc<JobShared>) {
    let (slots, first_error) = {
        let mut exec = fault::lock(&job.exec);
        (std::mem::take(&mut exec.slots), exec.first_error.take())
    };
    let outcome: Result<BatchResult, JobError> = match first_error {
        Some((_, err)) => Err(err),
        None => catch_unwind(AssertUnwindSafe(|| {
            let per_item: Vec<(usize, Option<SearchResult>)> = slots
                .into_iter()
                // dosa-lint: allow(panic-perimeter) — `remaining` hit zero,
                // so every planned item resolved (replayed, executed,
                // skipped, or errored — and errors took the branch above);
                // an unfilled slot is a scheduler bug, contained by the
                // surrounding unwind boundary as JobError::RunnerPanic.
                .map(|slot| slot.expect("every planned item resolves to an outcome"))
                .collect();
            let results = demux_merge(job.request.networks().len(), per_item);
            let networks = job
                .request
                .networks()
                .iter()
                .zip(results)
                .map(|(net, mut result)| {
                    result.record_final();
                    NetworkResult {
                        network: net.name.clone(),
                        result,
                    }
                })
                .collect();
            BatchResult {
                networks,
                degraded: job.halt.load(Ordering::Relaxed),
            }
        }))
        .map_err(|payload| JobError::RunnerPanic {
            payload: payload_string(payload),
        }),
    };
    {
        let mut state = fault::lock(&job.state);
        if !state.status.is_terminal() {
            let (status, results, error) = match outcome {
                Err(err) => (JobStatus::Failed, None, Some(err)),
                Ok(results) => {
                    if job.cancel.load(Ordering::Relaxed) {
                        if job.deadline_hit.load(Ordering::Relaxed) {
                            (JobStatus::Failed, None, Some(JobError::DeadlineExceeded))
                        } else {
                            (JobStatus::Cancelled, Some(results), None)
                        }
                    } else {
                        (JobStatus::Completed, Some(results), None)
                    }
                }
            };
            state.status = status;
            state.results = results;
            state.error = error;
            job.done.notify_all();
        }
    }
    retire_job(shared, job);
}

/// Post-terminal bookkeeping: join the deadline watchdog (it wakes on
/// the terminal notification) and drop the job from the service's live
/// list.
fn retire_job(shared: &Arc<ServiceShared>, job: &Arc<JobShared>) {
    let watchdog = fault::lock(&job.watchdog).take();
    if let Some(watchdog) = watchdog {
        let _ = watchdog.join();
    }
    fault::lock(&shared.live).retain(|j| j.id != job.id);
}

/// The per-job deadline watchdog: sleeps on the job's `done` condvar
/// until the deadline (measured from **submission**, so queue time
/// counts) or the job's terminal state, whichever comes first. At the
/// deadline it applies the request's [`DeadlinePolicy`] *while holding
/// the state lock*, so it can never race the terminal transition: a job
/// already terminal is left untouched, and a job the watchdog flags
/// observes those flags when the finishing worker takes the same lock to
/// decide its terminal state.
fn deadline_watchdog(job: &JobShared, deadline: std::time::Duration) {
    let due = job.submitted + deadline;
    let mut state = fault::lock(&job.state);
    loop {
        if state.status.is_terminal() {
            return;
        }
        let now = Instant::now();
        if now >= due {
            break;
        }
        state = fault::wait_timeout(&job.done, state, due - now);
    }
    match job.request.deadline_policy() {
        DeadlinePolicy::Kill => {
            // A user cancel that already won stays a cancel; otherwise
            // `deadline_hit` is published before `cancel` so the finish
            // can only ever observe them together.
            if !job.cancel.load(Ordering::Relaxed) {
                job.deadline_hit.store(true, Ordering::Relaxed);
                job.cancel.store(true, Ordering::Relaxed);
            }
        }
        DeadlinePolicy::Degrade => job.halt.store(true, Ordering::Relaxed),
    }
    drop(state);
    // Wake idle workers so the expired job's queued items drain promptly.
    job.queue.wake();
}

/// Instantiate the surrogate for one network, returning the loss the
/// descents run on and the [`LossOptions`] its start-point generation
/// predicts with. The `Edp` and `PredictedLatency` arms mirror what the
/// blocking shims have always done, which is what keeps a batched
/// network's result bit-identical to a standalone run.
fn build_surrogate<'a>(
    surrogate: &'a Surrogate,
    layers: &'a [Layer],
    hier: &'a Hierarchy,
    cfg: &GdConfig,
) -> (Box<dyn DiffLoss + 'a>, LossOptions) {
    match surrogate {
        Surrogate::Edp => {
            let opts = LossOptions {
                fixed_pe_side: cfg.fixed_pe_side,
                softmax_ordering: cfg.strategy == LoopOrderStrategy::Softmax,
                ..LossOptions::default()
            };
            let loss = EdpLoss {
                layers,
                hier,
                opts,
                strategy: cfg.strategy,
                fixed_pe_side: cfg.fixed_pe_side,
                spatial_cap: cfg.fixed_pe_side.unwrap_or(MAX_PE_SIDE),
            };
            (Box::new(loss), opts)
        }
        Surrogate::PredictedLatency(predictor) => {
            let pe_side = cfg.fixed_pe_side.unwrap_or(16);
            let opts = LossOptions {
                fixed_pe_side: Some(pe_side),
                ..LossOptions::default()
            };
            let loss = PredictedLatencyLoss {
                layers,
                hier,
                predictor,
                pe_side,
            };
            (Box::new(loss), opts)
        }
        Surrogate::Custom(custom) => (custom.make(layers, hier, cfg), custom.loss_options(cfg)),
    }
}

/// The per-network cancellation/progress control surface of `job`.
fn network_ctrl(job: &JobShared, net_index: usize) -> StartControl<'_> {
    StartControl {
        cancel: Some(&job.cancel),
        progress: Some(&job.progress[net_index]),
        inner_threads: 1,
        force_non_finite: false,
    }
}

/// Apply the request's fault plan (if any) to the work item at planned
/// position `pos`, just before it runs: `Panic` unwinds (contained by
/// the item's unwind boundary and surfaced as [`JobError::WorkerPanic`]),
/// `Delay` sleeps to widen race/deadline windows, `NonFiniteLoss`
/// returns `true` to arm the descent's non-finite guard (a no-op for
/// black-box items, which have no gradient loss to poison).
fn apply_fault(job: &JobShared, pos: usize) -> bool {
    match job.request.fault_plan().and_then(|p| p.fault_at(pos)) {
        // dosa-lint: allow(panic-perimeter) — this panic IS the injected
        // fault: the item's unwind boundary catches it and the service
        // surfaces it as JobError::WorkerPanic, which is what the fault-
        // injection tests assert.
        Some(FaultKind::Panic) => panic!("injected fault: panic at work item {pos}"),
        Some(FaultKind::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        Some(FaultKind::NonFiniteLoss) => true,
        None => false,
    }
}

/// Demultiplex position-indexed `(network, outcome)` items back into one
/// deterministically merged result per network. `None` outcomes are items
/// a [`DeadlinePolicy::Degrade`] deadline skipped before they started:
/// each network's item list is truncated at its first skip, so the merge
/// is over a plan-order **prefix** of the items — and because
/// [`merge_start_results`] is prefix-stable, the merged history is a
/// bitwise prefix of the uninterrupted run's. Items that completed
/// *after* a skipped sibling are deliberately dropped: which of them beat
/// the deadline depends on scheduling, and determinism outranks salvaging
/// them.
fn demux_merge(networks: usize, per_item: Vec<(usize, Option<SearchResult>)>) -> Vec<SearchResult> {
    let mut per_network: Vec<Vec<SearchResult>> = (0..networks).map(|_| Vec::new()).collect();
    let mut truncated: Vec<bool> = vec![false; networks];
    for (net_index, outcome) in per_item {
        match outcome {
            Some(result) if !truncated[net_index] => per_network[net_index].push(result),
            Some(_) => {}
            None => truncated[net_index] = true,
        }
    }
    per_network.into_iter().map(merge_start_results).collect()
}

/// Look one work item up in the job's cache (if any), keeping the
/// per-job hit/miss counters. `None` means the item must run on the
/// pool.
fn consult_cache(job: &JobShared, key: Option<&CacheKey>) -> Option<Arc<SearchResult>> {
    let cache = job.cache.as_ref()?;
    let found = key.and_then(|k| cache.lookup(k));
    let counter = if found.is_some() {
        &job.stats.cache_hits
    } else {
        &job.stats.cache_misses
    };
    counter.fetch_add(1, Ordering::Relaxed);
    found
}

/// Replay one cache hit: credit its samples and best EDP to the
/// network's live progress counters, exactly as running it would have.
fn replay_hit(job: &JobShared, net_index: usize, result: &SearchResult) {
    let ctrl = network_ctrl(job, net_index);
    ctrl.count_samples(result.samples);
    ctrl.observe_best(result.best_edp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::{Layer, Problem};

    fn tiny_request(seed: u64) -> SearchRequest {
        let layers = vec![Layer::once(Problem::matmul("m", 16, 32, 32).unwrap())];
        SearchRequest::builder(Hierarchy::gemmini())
            .network("m", layers)
            .config(GdConfig {
                start_points: 1,
                steps_per_start: 20,
                round_every: 10,
                seed,
                ..GdConfig::default()
            })
            .build()
    }

    #[test]
    fn submit_rejects_invalid_config_at_the_boundary() {
        let service = SearchService::builder().threads(1).build();
        let mut request = tiny_request(0);
        request.strategy = Strategy::GradientDescent(GdConfig {
            round_every: 0,
            ..GdConfig::default()
        });
        assert_eq!(
            service.submit(request).unwrap_err(),
            ConfigError::ZeroRoundEvery
        );
    }

    #[test]
    fn submit_rejects_invalid_black_box_configs_at_the_boundary() {
        let service = SearchService::builder().threads(1).build();
        let mut request = tiny_request(0);
        request.strategy = Strategy::Random(RandomSearchConfig {
            samples_per_hw: 0,
            ..RandomSearchConfig::default()
        });
        assert_eq!(
            service.submit(request.clone()).unwrap_err(),
            ConfigError::ZeroSamplesPerHw
        );
        request.strategy = Strategy::BayesOpt(BbboConfig {
            init_random: 0,
            ..BbboConfig::default()
        });
        assert_eq!(
            service.submit(request).unwrap_err(),
            ConfigError::BadInitRandom {
                init_random: 0,
                num_hw: 100
            }
        );
    }

    #[test]
    fn submit_rejects_a_zero_parallelism_cap() {
        let service = SearchService::builder().threads(2).build();
        let mut request = tiny_request(0);
        request.max_parallelism = Some(0);
        assert_eq!(
            service.submit(request).unwrap_err(),
            ConfigError::ZeroParallelism
        );
    }

    #[test]
    fn concurrent_jobs_complete_with_distinct_ids() {
        let service = SearchService::builder().threads(2).build();
        let a = service.submit(tiny_request(1)).unwrap();
        let b = service.submit(tiny_request(2)).unwrap();
        assert_ne!(a.id(), b.id());
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert_eq!(a.status(), JobStatus::Completed);
        assert_eq!(b.status(), JobStatus::Completed);
        assert!(ra.get("m").unwrap().best_edp.is_finite());
        assert!(rb.get("m").unwrap().best_edp.is_finite());
    }

    #[test]
    fn cancelling_a_queued_job_completes_it_empty() {
        let service = SearchService::builder().threads(1).build();
        // Enough submissions that the tail of the queue is still pending.
        let handles: Vec<JobHandle> = (0..6)
            .map(|s| service.submit(tiny_request(s)).unwrap())
            .collect();
        let last = handles.last().unwrap();
        last.cancel();
        let result = last.wait().unwrap();
        assert_eq!(last.status(), JobStatus::Cancelled);
        // Either it never ran (empty) or cancellation raced its planning
        // dispatch and it wound down early; both keep the result
        // well-formed.
        assert_eq!(result.networks.len(), 1);
        for h in &handles[..5] {
            h.wait().unwrap();
        }
    }

    #[test]
    fn dropping_the_service_retires_queued_jobs() {
        let service = SearchService::builder().threads(1).build();
        let handles: Vec<JobHandle> = (0..4)
            .map(|s| service.submit(tiny_request(s)).unwrap())
            .collect();
        drop(service);
        for h in &handles {
            let result = h.wait().unwrap(); // must not hang
            assert!(h.status().is_terminal());
            assert_eq!(result.networks.len(), 1);
        }
    }

    #[test]
    fn default_policy_is_fifo_with_service_wide_parallelism() {
        use crate::sched::SchedPolicy;
        let request = tiny_request(0);
        assert_eq!(request.policy(), SchedPolicy::Fifo);
        assert_eq!(request.max_parallelism(), None);
    }

    /// The new [`JobStats`] counters: a segmented descent counts one
    /// `segments_run` per dispatch — `ceil(steps_per_start / k)` per
    /// start — and on a single worker a job's own items queue behind
    /// each other, so the deterministic dispatch order fixes
    /// `max_queue_wait` exactly.
    #[test]
    fn segment_and_queue_wait_counters_are_observable() {
        let layers = vec![Layer::once(Problem::matmul("m", 16, 32, 32).unwrap())];
        let service = SearchService::builder().threads(1).build();
        let job = service
            .submit(
                SearchRequest::builder(Hierarchy::gemmini())
                    .network("m", layers)
                    .config(GdConfig {
                        start_points: 4,
                        steps_per_start: 20,
                        round_every: 10,
                        seed: 0,
                        segment_steps: Some(6),
                        ..GdConfig::default()
                    })
                    .build(),
            )
            .unwrap();
        job.wait().unwrap();
        let stats = job.stats();
        assert_eq!(stats.work_items, 4);
        // 20 steps in segments of 6: 6 + 6 + 6 + 2 → 4 dispatches each.
        assert_eq!(stats.segments_run, 4 * 4);
        // One worker, four items enqueued together: the last item in
        // plan order waits exactly 3 dispatches for its first segment,
        // and the round-robin of 4 re-enqueued checkpoints never waits
        // longer.
        assert_eq!(stats.max_queue_wait, 3);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }
}
