//! The job-oriented search service: a [`SearchService`] accepts
//! [`SearchRequest`]s and runs them **concurrently** on one shared,
//! capacity-bounded worker fleet — whatever each job's
//! [`Strategy`] — returning a [`JobHandle`] with non-blocking
//! [`status()`](JobHandle::status) / [`progress()`](JobHandle::progress),
//! cooperative [`cancel()`](JobHandle::cancel), and blocking
//! [`wait()`](JobHandle::wait).
//!
//! ## Execution model
//!
//! The service owns a fixed budget of worker *slots*
//! ([`SearchServiceBuilder::threads`], default: all cores). A background
//! dispatcher admits up to one job per slot; each admitted job gets a
//! runner thread that plans its work items and fans them out through the
//! shared slot table (see the [`SchedPolicy`] docs and `ARCHITECTURE.md`
//! at the repository root). Every work item holds exactly one slot while
//! it executes, so at most `threads` items run at any instant **across
//! all jobs** — a short gradient-descent job completes on freed slots
//! while a long Bayesian-optimization job is still mid-flight, instead of
//! queueing behind it. What fans out depends on the strategy:
//!
//! * [`Strategy::GradientDescent`] — **all networks' start points** of a
//!   batched request become independent work items (a batch saturates the
//!   fleet even when individual networks have few starts);
//! * [`Strategy::Random`] — **all networks' hardware designs** become the
//!   work items, each searched by a private RNG stream;
//! * [`Strategy::BayesOpt`] — networks run sequentially (the outer GP
//!   loop is inherently serial), but each step's inner mapping samples
//!   and EI candidate scores fan out as work items.
//!
//! Per-item results land at fixed slots and are demultiplexed per network
//! on merge.
//!
//! ## Scheduling
//!
//! Which queued work grabs a freed slot — and which queued job is
//! admitted when a runner finishes — is decided by each request's
//! [`SchedPolicy`] (`Fifo` by default, `ShortestFirst`, or
//! `Priority(u8)`); a job can additionally cap its own slot usage with
//! [`SearchRequestBuilder::max_parallelism`](crate::SearchRequestBuilder::max_parallelism).
//! With a single-slot budget the service degenerates to running one job
//! at a time in policy order (strict FIFO under the default policy).
//! Running work items are never preempted.
//!
//! ## Determinism
//!
//! For every network in a request, the sequential skeleton of its search
//! (GD start points, random-search design draws, BB-BO's outer GP loop)
//! is generated from that network's effective seed before any
//! parallelism, and every parallel work item owns an RNG stream derived
//! from that seed — exactly what the standalone shims
//! ([`dosa_search`](crate::dosa_search),
//! [`random_search`](crate::random_search),
//! [`bayesian_search`](crate::bayesian_search)) do. Combined with the
//! slot-indexed fleet, a network's `SearchResult` is **bit-identical** to
//! a separate submission with the same seed, for every service thread
//! budget, any batch composition, and any interleaving with other jobs —
//! scheduling moves wall-clock time, never results.
//!
//! ## Cancellation
//!
//! [`JobHandle::cancel`] sets a flag every work item checks once per
//! gradient step (GD) or joint mapping sample (black-box strategies):
//! running items return their partial results at the next boundary,
//! waiting items stop competing for slots immediately (freeing capacity
//! for the other jobs), queued work items come back empty, and the
//! merged best-so-far histories stay monotone non-increasing with
//! strictly increasing sample counts. A job cancelled while still queued
//! completes immediately with empty results.
//!
//! ## Result cache, checkpoint/resume, warm starts
//!
//! A service built with [`SearchServiceBuilder::cache`] consults a
//! content-addressed [`ResultCache`] per work item *before* the item
//! competes for a worker slot: hits are replayed into the item's planned
//! position (so merge order — and therefore every result bit — is
//! unchanged), misses run on the fleet and are journaled the moment they
//! complete. Because journaling is per item and never covers a cancelled
//! (partial) item, a cancelled job resubmitted identically replays its
//! completed items from the cache and re-runs only the remainder —
//! checkpoint/resume without any explicit checkpoint format. With the
//! default [`WarmStart::Off`] the cache is invisible in results: every
//! [`BatchResult`] is bit-identical to a cold run. A request may also opt
//! into [`WarmStart::NearestNeighbor`], seeding one extra descent per
//! network from the best cached mapping of the same network shape;
//! [`JobHandle::stats`] reports per-job hits, misses, and warm starts.
//! See the [`cache`] module for the key schema.
//!
//! ## Failure domains, deadlines & degradation
//!
//! One work item is one failure domain: a panicking item (or one whose
//! gradient step produces a non-finite loss) fails **only its own job**
//! with a typed [`JobError`], releases its worker slot normally, and
//! leaves every sibling job bit-identical to an uncontended run. The
//! failed job ends in the terminal [`JobStatus::Failed`] state —
//! [`wait()`](JobHandle::wait) returns the error,
//! [`error()`](JobHandle::error) retrieves it non-blockingly — and no
//! service-wide lock is ever left poisoned (see [`crate::fault`]).
//!
//! A request may carry a [`deadline`](crate::SearchRequestBuilder::deadline)
//! (measured from submission, so queue time counts) with a
//! [`DeadlinePolicy`]: `Kill` terminates the job with
//! [`JobError::DeadlineExceeded`]; `Degrade` stops admitting new work
//! items at the deadline and completes with the deterministic merge of
//! every item finished so far, flagged [`BatchResult::degraded`] — a
//! bitwise **prefix** of the uninterrupted run's history, because items
//! are merged in plan order, truncated at the first never-started item,
//! and the merge's running-minimum rewrite is prefix-stable. Completed
//! items journal to the result cache as usual, so resubmitting a
//! degraded job resumes from its finished prefix.

use crate::bbbo::{run_bayesian_search, BbboConfig};
use crate::cache::{self, ResultCache};
use crate::engine::{
    merge_start_results, run_single_start, DiffLoss, EdpLoss, Fleet, PredictedLatencyLoss,
    ProgressCounters, StartControl,
};
use crate::fault::{self, payload_string, DeadlinePolicy, FaultKind, JobError};
use crate::gd::{GdConfig, LoopOrderStrategy, SearchResult};
use crate::random_search::{plan_random_designs, run_random_design, RandomSearchConfig};
use crate::request::{ConfigError, SearchRequest, Surrogate, WarmStart};
#[cfg(doc)]
use crate::sched::SchedPolicy;
use crate::sched::{JobGate, JobRank, SlotTable};
use crate::startpoints::{generate_start_points, warm_start_point, StartPoint};
use crate::strategy::Strategy;
use dosa_accel::{Hierarchy, MAX_PE_SIDE};
use dosa_cache::CacheKey;
use dosa_model::LossOptions;
use dosa_workload::Layer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lifecycle state of a submitted job.
///
/// ```text
/// Queued ──admitted──▶ Running ──▶ Completed (incl. degraded)
///    │                    │
///    │                    ├──────▶ Failed (panic, non-finite loss,
///    │                    │                deadline Kill)
///    └──cancel()──────────┴──────▶ Cancelled
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for admission: every admission slot (one per worker
    /// thread) is occupied by a better-ranked or earlier job.
    Queued,
    /// Admitted to the fleet: its runner is live and its work items are
    /// executing on — or competing for — the service's worker slots.
    Running,
    /// Finished normally; full results are available. A deadline job
    /// under [`DeadlinePolicy::Degrade`] also completes here, with
    /// [`BatchResult::degraded`] set.
    Completed,
    /// Cancelled; partial (possibly empty) results are available.
    Cancelled,
    /// Failed with a typed [`JobError`] — a work item panicked or went
    /// non-finite, the deadline expired under [`DeadlinePolicy::Kill`],
    /// or the runner itself died. The error is retrievable from
    /// [`JobHandle::error`] and returned by [`JobHandle::wait`]; no other
    /// job on the service is affected.
    Failed,
}

impl JobStatus {
    /// Whether the job has reached a terminal state (results or a typed
    /// error available).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

/// One network's result inside a [`BatchResult`].
#[derive(Debug, Clone)]
pub struct NetworkResult {
    /// The network's name from the request.
    pub network: String,
    /// Its search result, bit-identical to a standalone run with the same
    /// seed (partial if the job was cancelled).
    pub result: SearchResult,
}

/// Per-network results of one job, in request order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One entry per network, in submission order.
    pub networks: Vec<NetworkResult>,
    /// Whether a [`DeadlinePolicy::Degrade`] deadline expired mid-run:
    /// the per-network results are the deterministic merge of the work
    /// items completed before the deadline — a bitwise prefix of the
    /// uninterrupted run's history — rather than the full budget.
    pub degraded: bool,
}

impl BatchResult {
    /// Look a network's result up by name.
    pub fn get(&self, network: &str) -> Option<&SearchResult> {
        self.networks
            .iter()
            .find(|n| n.network == network)
            .map(|n| &n.result)
    }

    /// Unwrap the result of a single-network job.
    ///
    /// # Panics
    ///
    /// Panics if the job held more or fewer than one network.
    pub fn into_single(mut self) -> SearchResult {
        assert_eq!(
            self.networks.len(),
            1,
            "into_single on a batch of {} networks",
            self.networks.len()
        );
        // dosa-lint: allow(panic-perimeter) — unreachable: the assert above
        // guarantees exactly one network; `into_single`'s docs also declare
        // the length-mismatch panic as API contract.
        self.networks.pop().expect("length checked").result
    }
}

/// Live observation of one network's share of a running job.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProgress {
    /// The network's name from the request.
    pub network: String,
    /// Model evaluations consumed so far (monotone non-decreasing).
    pub samples: usize,
    /// Best reference-evaluated EDP so far (monotone non-increasing;
    /// `INFINITY` until the first rounding evaluation lands).
    pub best_edp: f64,
}

/// A non-blocking snapshot of a job's lifecycle state and per-network
/// progress, drawn live from the descents' lock-free counters.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// One entry per network, in submission order.
    pub networks: Vec<NetworkProgress>,
}

impl JobProgress {
    /// Total model evaluations consumed across the batch.
    pub fn total_samples(&self) -> usize {
        self.networks.iter().map(|n| n.samples).sum()
    }

    /// Best EDP across the batch (`INFINITY` until something landed).
    pub fn best_edp(&self) -> f64 {
        self.networks
            .iter()
            .map(|n| n.best_edp)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Per-job cache observability, snapshot by [`JobHandle::stats`].
///
/// On a service without a cache every counter except `work_items` stays
/// zero. With a cache, `cache_hits + cache_misses == work_items` once the
/// job is terminal (uncacheable items — e.g. a custom surrogate's — count
/// as misses: they ran on the fleet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobStats {
    /// Work items this job planned (including any warm-start items).
    pub work_items: usize,
    /// Work items replayed from the service's [`ResultCache`].
    pub cache_hits: usize,
    /// Work items that ran on the fleet (cache absent, item uncacheable,
    /// or a genuine miss).
    pub cache_misses: usize,
    /// Extra descents seeded from a cached neighbor
    /// ([`WarmStart::NearestNeighbor`]).
    pub warm_starts: usize,
}

/// Lock-free backing counters of [`JobStats`].
#[derive(Default)]
struct JobCounters {
    work_items: AtomicUsize,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
    warm_starts: AtomicUsize,
}

impl JobCounters {
    fn snapshot(&self) -> JobStats {
        JobStats {
            work_items: self.work_items.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
        }
    }
}

struct JobState {
    status: JobStatus,
    results: Option<BatchResult>,
    /// Why the job ended [`JobStatus::Failed`], when it did.
    error: Option<JobError>,
}

struct JobShared {
    id: u64,
    request: SearchRequest,
    /// Scheduling rank, fixed at submission (see [`SchedPolicy`]).
    rank: JobRank,
    /// Resolved slot cap: `min(request.max_parallelism, service budget)`.
    max_par: usize,
    /// Cooperative cancellation flag, shared with the job's slot gate so
    /// waiting work items stop competing for capacity the moment it
    /// flips.
    cancel: Arc<AtomicBool>,
    /// Degrade flag ([`DeadlinePolicy::Degrade`]): set at the deadline so
    /// not-yet-started work items are skipped (and stop competing for
    /// slots) while in-flight items finish bit-exactly. Deliberately
    /// **not** observed by the per-step cancel check.
    halt: Arc<AtomicBool>,
    /// Set by the deadline watchdog under [`DeadlinePolicy::Kill`] just
    /// before it flips `cancel`, so the runner can tell a deadline kill
    /// (→ [`JobStatus::Failed`]) from a user cancel (→
    /// [`JobStatus::Cancelled`]).
    deadline_hit: AtomicBool,
    /// Submission instant the deadline is measured from.
    submitted: Instant,
    /// The service's slot table, for waking slot waiters on cancel.
    table: Arc<SlotTable>,
    /// One live counter pair per network, in request order.
    progress: Vec<ProgressCounters>,
    /// The service's result cache, if one was configured.
    cache: Option<Arc<ResultCache>>,
    /// Per-job cache hit/miss/warm-start counters.
    stats: JobCounters,
    state: Mutex<JobState>,
    done: Condvar,
}

impl JobShared {
    fn empty_results(&self) -> BatchResult {
        BatchResult {
            networks: self
                .request
                .networks()
                .iter()
                .map(|n| NetworkResult {
                    network: n.name.clone(),
                    result: SearchResult::empty(),
                })
                .collect(),
            degraded: false,
        }
    }
}

/// Handle to a submitted job. Cheap to clone; all clones observe the same
/// job. Dropping every handle does **not** cancel the job.
#[derive(Clone)]
pub struct JobHandle {
    job: Arc<JobShared>,
}

impl JobHandle {
    /// Service-unique id of this job (submission order).
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// Current lifecycle state (non-blocking).
    pub fn status(&self) -> JobStatus {
        fault::lock(&self.job.state).status
    }

    /// Why the job failed, when [`status()`](JobHandle::status) is
    /// [`JobStatus::Failed`] (non-blocking; `None` in every other
    /// state). The same error is returned by [`wait()`](JobHandle::wait).
    pub fn error(&self) -> Option<JobError> {
        fault::lock(&self.job.state).error.clone()
    }

    /// Live per-network progress (non-blocking): sample totals and
    /// best-so-far EDP drawn from the descents' lock-free counters.
    /// Successive snapshots are monotone — samples never decrease and
    /// `best_edp` never increases.
    pub fn progress(&self) -> JobProgress {
        // Read the status *before* the counters: if it is terminal, all
        // workers have stopped and the counters read below are final, so
        // a terminal-labeled snapshot never underreports. (The other
        // direction — a `Running` snapshot carrying slightly newer
        // counters — is harmless and still monotone.)
        let status = self.status();
        let networks = self
            .job
            .request
            .networks()
            .iter()
            .zip(&self.job.progress)
            .map(|(net, counters)| {
                let (samples, best_edp) = counters.snapshot();
                NetworkProgress {
                    network: net.name.clone(),
                    samples,
                    best_edp,
                }
            })
            .collect();
        JobProgress { status, networks }
    }

    /// Request cooperative cancellation. A queued job completes
    /// immediately with empty results; a running job stops issuing
    /// gradient steps at the next step boundary, its waiting work items
    /// stop competing for worker slots immediately (freeing capacity for
    /// the other jobs on the service), and it keeps its partial (still
    /// monotone) per-network results. Idempotent; never blocks on the
    /// descent itself.
    pub fn cancel(&self) {
        self.job.cancel.store(true, Ordering::Relaxed);
        // Wake slot waiters so the cancelled job's demand drains promptly.
        self.job.table.wake();
        let mut state = fault::lock(&self.job.state);
        if state.status == JobStatus::Queued {
            state.status = JobStatus::Cancelled;
            state.results = Some(self.job.empty_results());
            self.job.done.notify_all();
        }
    }

    /// Per-job cache counters (non-blocking): how many work items this
    /// job planned, how many were replayed from the service's
    /// [`ResultCache`] versus run on the fleet, and how many extra
    /// warm-start descents were seeded. Counters are final once
    /// [`status()`](JobHandle::status) is terminal.
    pub fn stats(&self) -> JobStats {
        self.job.stats.snapshot()
    }

    /// Block until the job reaches a terminal state. Completed jobs
    /// return their full results (flagged [`BatchResult::degraded`] if a
    /// [`DeadlinePolicy::Degrade`] deadline expired mid-run), cancelled
    /// jobs their partial results; a [`JobStatus::Failed`] job returns
    /// its typed [`JobError`] instead.
    ///
    /// Total: never panics, even if the job's runner thread died — a
    /// runner panic surfaces as [`JobError::RunnerPanic`], and a terminal
    /// job that somehow stored no results reports
    /// [`JobError::ResultsUnavailable`].
    pub fn wait(&self) -> Result<BatchResult, JobError> {
        let mut state = fault::lock(&self.job.state);
        while !state.status.is_terminal() {
            state = fault::wait(&self.job.done, state);
        }
        if state.status == JobStatus::Failed {
            return Err(state.error.clone().unwrap_or(JobError::ResultsUnavailable));
        }
        state.results.clone().ok_or(JobError::ResultsUnavailable)
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.job.id)
            .field("status", &self.status())
            .finish()
    }
}

/// The dispatcher's view of the service: jobs waiting for admission and
/// jobs currently running (each on its own runner thread).
struct SchedQueue {
    pending: Vec<Arc<JobShared>>,
    running: Vec<Arc<JobShared>>,
}

struct ServiceShared {
    queue: Mutex<SchedQueue>,
    /// Signalled on every queue transition: submission, admission, runner
    /// completion, shutdown.
    changed: Condvar,
    shutdown: AtomicBool,
    /// The shared worker-slot ledger all running jobs draw from.
    table: Arc<SlotTable>,
    threads: usize,
    /// The service's result cache, consulted per work item when present.
    cache: Option<Arc<ResultCache>>,
    next_id: AtomicU64,
}

/// Builder for [`SearchService`]; see [`SearchService::builder`].
#[derive(Debug, Clone, Default)]
pub struct SearchServiceBuilder {
    threads: Option<usize>,
    cache: Option<Arc<ResultCache>>,
}

impl SearchServiceBuilder {
    /// Worker-slot budget of the service (default: all cores). At most
    /// this many work items execute at any instant across **all**
    /// concurrently running jobs; it also caps how many jobs are admitted
    /// at once, so a budget of 1 degenerates to one job at a time. The
    /// budget is owned by this service instance — it does not touch the
    /// global rayon pool, so services with different budgets coexist in
    /// one process. Results are bit-identical for every budget.
    pub fn threads(mut self, n: usize) -> SearchServiceBuilder {
        self.threads = Some(n.max(1));
        self
    }

    /// Attach a content-addressed [`ResultCache`] (default: none). The
    /// service consults it per work item before scheduling, journals
    /// completed items into it, and draws warm-start neighbors from it;
    /// sharing one cache across services (or across a service's lifetime)
    /// is what makes checkpoint/resume and warm starts work. With the
    /// default [`WarmStart::Off`] on every request, attaching a cache
    /// never changes any result bit — see the module docs.
    pub fn cache(mut self, cache: Arc<ResultCache>) -> SearchServiceBuilder {
        self.cache = Some(cache);
        self
    }

    /// Spawn the service's dispatcher thread and return the service.
    pub fn build(self) -> SearchService {
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(SchedQueue {
                pending: Vec::new(),
                running: Vec::new(),
            }),
            changed: Condvar::new(),
            shutdown: AtomicBool::new(false),
            table: Arc::new(SlotTable::new(threads)),
            threads,
            cache: self.cache,
            next_id: AtomicU64::new(0),
        });
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = std::thread::spawn(move || dispatcher_loop(dispatcher_shared));
        SearchService {
            shared,
            dispatcher: Some(dispatcher),
        }
    }
}

/// An async search-job service: submit [`SearchRequest`]s, observe and
/// cancel them through [`JobHandle`]s. Jobs run **concurrently** on one
/// capacity-bounded worker fleet under each request's [`SchedPolicy`];
/// see the [module docs](self) for the execution, scheduling,
/// determinism, and cancellation contracts.
///
/// Dropping the service requests cancellation of the in-flight jobs,
/// fails the queued ones over to [`JobStatus::Cancelled`] with empty
/// results, and joins the dispatcher — keep the service alive until the
/// jobs you care about have been waited on.
pub struct SearchService {
    shared: Arc<ServiceShared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl SearchService {
    /// Start configuring a service.
    pub fn builder() -> SearchServiceBuilder {
        SearchServiceBuilder::default()
    }

    /// This service's worker-slot budget.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// The service's result cache, if one was attached at build time.
    pub fn cache(&self) -> Option<&Arc<ResultCache>> {
        self.shared.cache.as_ref()
    }

    /// Validate `request` and enqueue it, returning a handle immediately.
    /// The dispatcher admits queued jobs in [`SchedPolicy`] rank order as
    /// admission slots free up; admitted jobs then share the worker
    /// slots, so several jobs make progress at once.
    pub fn submit(&self, request: SearchRequest) -> Result<JobHandle, ConfigError> {
        request.validate()?;
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let rank = JobRank::new(request.policy(), request.estimated_samples(), id);
        let max_par = request
            .max_parallelism()
            .unwrap_or(self.shared.threads)
            .min(self.shared.threads)
            .max(1);
        let progress = request
            .networks()
            .iter()
            .map(|_| ProgressCounters::new())
            .collect();
        let job = Arc::new(JobShared {
            id,
            request,
            rank,
            max_par,
            cancel: Arc::new(AtomicBool::new(false)),
            halt: Arc::new(AtomicBool::new(false)),
            deadline_hit: AtomicBool::new(false),
            submitted: Instant::now(),
            table: Arc::clone(&self.shared.table),
            progress,
            cache: self.shared.cache.clone(),
            stats: JobCounters::default(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                results: None,
                error: None,
            }),
            done: Condvar::new(),
        });
        let handle = JobHandle {
            job: Arc::clone(&job),
        };
        fault::lock(&self.shared.queue).pending.push(job);
        self.shared.changed.notify_all();
        Ok(handle)
    }
}

impl Drop for SearchService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Fail queued jobs over to Cancelled so their waiters return, and
        // ask the in-flight ones to wind down promptly. Draining pending
        // and reading running under one lock means no job can slip from
        // one set to the other unseen.
        let (pending, running) = {
            let mut queue = fault::lock(&self.shared.queue);
            (
                queue.pending.drain(..).collect::<Vec<_>>(),
                queue.running.clone(),
            )
        };
        for job in pending {
            JobHandle { job }.cancel();
        }
        for job in running {
            job.cancel.store(true, Ordering::Relaxed);
        }
        self.shared.table.wake();
        self.shared.changed.notify_all();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }
}

/// The dispatcher: admits the best-ranked pending job whenever an
/// admission slot (one per worker thread) is free, spawning a runner
/// thread per admitted job. On shutdown it stops admitting and joins
/// every runner (which the service `Drop` has already asked to cancel).
fn dispatcher_loop(shared: Arc<ServiceShared>) {
    let mut runners: Vec<JoinHandle<()>> = Vec::new();
    loop {
        // Reap finished runners so the handle list stays bounded.
        let mut i = 0;
        while i < runners.len() {
            if runners[i].is_finished() {
                let _ = runners.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        let admitted = {
            let mut queue = fault::lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                if queue.running.len() < shared.threads {
                    // Best-ranked pending job, if any (rank ties cannot
                    // happen: the id is part of the rank).
                    let best = queue
                        .pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, j)| j.rank)
                        .map(|(ix, _)| ix);
                    if let Some(ix) = best {
                        let job = queue.pending.swap_remove(ix);
                        // Queued -> Running, unless cancel() already
                        // retired the job while it waited.
                        let admitted = {
                            let mut state = fault::lock(&job.state);
                            if state.status == JobStatus::Cancelled {
                                false
                            } else {
                                state.status = JobStatus::Running;
                                true
                            }
                        };
                        if !admitted {
                            continue;
                        }
                        queue.running.push(Arc::clone(&job));
                        break Some(job);
                    }
                }
                queue = fault::wait(&shared.changed, queue);
            }
        };
        match admitted {
            Some(job) => {
                let runner_shared = Arc::clone(&shared);
                runners.push(std::thread::spawn(move || run_job(&runner_shared, &job)));
            }
            None => break,
        }
    }
    for runner in runners {
        let _ = runner.join();
    }
}

/// One admitted job's runner: register with the slot table, execute the
/// strategy through a gated fleet, publish results, then free the
/// admission slot. Results and terminal status are stored **before** the
/// admission slot is released, so an observer that sees a later job leave
/// `Queued` is guaranteed to see this one terminal.
///
/// The execution is wrapped in `catch_unwind` so even a bug that escapes
/// the per-item containment (planning code, the merge itself) ends the
/// job in [`JobStatus::Failed`] with [`JobError::RunnerPanic`] rather
/// than leaving waiters hanging on a dead thread.
fn run_job(shared: &ServiceShared, job: &Arc<JobShared>) {
    let watchdog = job.request.deadline().map(|deadline| {
        let job = Arc::clone(job);
        std::thread::spawn(move || deadline_watchdog(&job, deadline))
    });
    let gate = JobGate::register(
        Arc::clone(&job.table),
        job.id,
        job.rank,
        job.max_par,
        Arc::clone(&job.cancel),
        Arc::clone(&job.halt),
    );
    let fleet = Fleet::gated(gate);
    let outcome = catch_unwind(AssertUnwindSafe(|| execute_job(job, &fleet)));
    drop(fleet); // deregisters the job from the slot table
    {
        let mut state = fault::lock(&job.state);
        let (status, results, error) = match outcome {
            Err(payload) => (
                JobStatus::Failed,
                None,
                Some(JobError::RunnerPanic {
                    payload: payload_string(payload),
                }),
            ),
            Ok(Err(err)) => (JobStatus::Failed, None, Some(err)),
            Ok(Ok(results)) => {
                if job.cancel.load(Ordering::Relaxed) {
                    if job.deadline_hit.load(Ordering::Relaxed) {
                        (JobStatus::Failed, None, Some(JobError::DeadlineExceeded))
                    } else {
                        (JobStatus::Cancelled, Some(results), None)
                    }
                } else {
                    (JobStatus::Completed, Some(results), None)
                }
            }
        };
        state.status = status;
        state.results = results;
        state.error = error;
        job.done.notify_all();
    }
    if let Some(watchdog) = watchdog {
        let _ = watchdog.join();
    }
    let mut queue = fault::lock(&shared.queue);
    queue.running.retain(|j| j.id != job.id);
    drop(queue);
    shared.changed.notify_all();
}

/// The per-job deadline watchdog: sleeps on the job's `done` condvar
/// until the deadline (measured from **submission**, so queue time
/// counts) or the job's terminal state, whichever comes first. At the
/// deadline it applies the request's [`DeadlinePolicy`] *while holding
/// the state lock*, so it can never race the runner's terminal
/// transition: a job the runner already retired is left untouched, and a
/// job the watchdog flags observes those flags when the runner takes the
/// same lock to decide its terminal state.
fn deadline_watchdog(job: &JobShared, deadline: std::time::Duration) {
    let due = job.submitted + deadline;
    let mut state = fault::lock(&job.state);
    loop {
        if state.status.is_terminal() {
            return;
        }
        let now = Instant::now();
        if now >= due {
            break;
        }
        state = fault::wait_timeout(&job.done, state, due - now);
    }
    match job.request.deadline_policy() {
        DeadlinePolicy::Kill => {
            // A user cancel that already won stays a cancel; otherwise
            // `deadline_hit` is published before `cancel` so the runner
            // can only ever observe them together.
            if !job.cancel.load(Ordering::Relaxed) {
                job.deadline_hit.store(true, Ordering::Relaxed);
                job.cancel.store(true, Ordering::Relaxed);
            }
        }
        DeadlinePolicy::Degrade => job.halt.store(true, Ordering::Relaxed),
    }
    drop(state);
    // Wake slot waiters so the expired job's demand drains promptly.
    job.table.wake();
}

/// Instantiate the surrogate for one network, returning the loss the
/// descents run on and the [`LossOptions`] its start-point generation
/// predicts with. The `Edp` and `PredictedLatency` arms mirror what the
/// blocking shims have always done, which is what keeps a batched
/// network's result bit-identical to a standalone run.
fn build_surrogate<'a>(
    surrogate: &'a Surrogate,
    layers: &'a [Layer],
    hier: &'a Hierarchy,
    cfg: &GdConfig,
) -> (Box<dyn DiffLoss + 'a>, LossOptions) {
    match surrogate {
        Surrogate::Edp => {
            let opts = LossOptions {
                fixed_pe_side: cfg.fixed_pe_side,
                softmax_ordering: cfg.strategy == LoopOrderStrategy::Softmax,
                ..LossOptions::default()
            };
            let loss = EdpLoss {
                layers,
                hier,
                opts,
                strategy: cfg.strategy,
                fixed_pe_side: cfg.fixed_pe_side,
                spatial_cap: cfg.fixed_pe_side.unwrap_or(MAX_PE_SIDE),
            };
            (Box::new(loss), opts)
        }
        Surrogate::PredictedLatency(predictor) => {
            let pe_side = cfg.fixed_pe_side.unwrap_or(16);
            let opts = LossOptions {
                fixed_pe_side: Some(pe_side),
                ..LossOptions::default()
            };
            let loss = PredictedLatencyLoss {
                layers,
                hier,
                predictor,
                pe_side,
            };
            (Box::new(loss), opts)
        }
        Surrogate::Custom(custom) => (custom.make(layers, hier, cfg), custom.loss_options(cfg)),
    }
}

/// Run one job: dispatch on the request's [`Strategy`], fan the
/// strategy's work items into the job's gated fleet (each item holding
/// one of the service's shared worker slots while it executes), and
/// demultiplex the per-network results. `Err` means a work item failed
/// (panic or non-finite loss) and the whole job fails with that typed
/// error; `Ok` carries the degrade flag when a [`DeadlinePolicy::Degrade`]
/// deadline expired mid-run.
fn execute_job(job: &JobShared, fleet: &Fleet) -> Result<BatchResult, JobError> {
    let results = match job.request.strategy() {
        Strategy::GradientDescent(cfg) => execute_gd(job, fleet, cfg)?,
        Strategy::Random(cfg) => execute_random(job, fleet, cfg)?,
        Strategy::BayesOpt(cfg) => execute_bayes(job, fleet, cfg)?,
    };
    let networks = job
        .request
        .networks()
        .iter()
        .zip(results)
        .map(|(net, mut result)| {
            result.record_final();
            NetworkResult {
                network: net.name.clone(),
                result,
            }
        })
        .collect();
    Ok(BatchResult {
        networks,
        degraded: job.halt.load(Ordering::Relaxed),
    })
}

/// The per-network cancellation/progress control surface of `job`.
fn network_ctrl(job: &JobShared, net_index: usize) -> StartControl<'_> {
    StartControl {
        cancel: Some(&*job.cancel),
        progress: Some(&job.progress[net_index]),
        inner_threads: 1,
        force_non_finite: false,
    }
}

/// Apply the request's fault plan (if any) to the work item at planned
/// position `pos`, just before it runs: `Panic` unwinds (contained by the
/// fleet and surfaced as [`JobError::WorkerPanic`]), `Delay` sleeps to
/// widen race/deadline windows, `NonFiniteLoss` returns `true` to arm the
/// descent's non-finite guard (a no-op for black-box items, which have no
/// gradient loss to poison).
fn apply_fault(job: &JobShared, pos: usize) -> bool {
    match job.request.fault_plan().and_then(|p| p.fault_at(pos)) {
        // dosa-lint: allow(panic-perimeter) — this panic IS the injected
        // fault: the fleet's unwind boundary catches it and the service
        // surfaces it as JobError::WorkerPanic, which is what the fault-
        // injection tests assert.
        Some(FaultKind::Panic) => panic!("injected fault: panic at work item {pos}"),
        Some(FaultKind::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        Some(FaultKind::NonFiniteLoss) => true,
        None => false,
    }
}

/// Demultiplex slot-indexed `(network, outcome)` items back into one
/// deterministically merged result per network. `None` outcomes are items
/// a [`DeadlinePolicy::Degrade`] deadline skipped before they started:
/// each network's item list is truncated at its first skip, so the merge
/// is over a plan-order **prefix** of the items — and because
/// [`merge_start_results`] is prefix-stable, the merged history is a
/// bitwise prefix of the uninterrupted run's. Items that completed
/// *after* a skipped sibling are deliberately dropped: which of them beat
/// the deadline depends on scheduling, and determinism outranks salvaging
/// them.
fn demux_merge(networks: usize, per_item: Vec<(usize, Option<SearchResult>)>) -> Vec<SearchResult> {
    let mut per_network: Vec<Vec<SearchResult>> = (0..networks).map(|_| Vec::new()).collect();
    let mut truncated: Vec<bool> = vec![false; networks];
    for (net_index, outcome) in per_item {
        match outcome {
            Some(result) if !truncated[net_index] => per_network[net_index].push(result),
            Some(_) => {}
            None => truncated[net_index] = true,
        }
    }
    per_network.into_iter().map(merge_start_results).collect()
}

/// One planned `(network, start)` gradient-descent work item, carrying
/// its content address when the item is cacheable.
struct GdItem {
    net_index: usize,
    start_index: usize,
    start: StartPoint,
    key: Option<CacheKey>,
}

/// Look one work item up in the job's cache (if any), keeping the
/// per-job hit/miss counters. `None` means the item must run on the
/// fleet.
fn consult_cache(job: &JobShared, key: Option<&CacheKey>) -> Option<Arc<SearchResult>> {
    let cache = job.cache.as_ref()?;
    let found = key.and_then(|k| cache.lookup(k));
    let counter = if found.is_some() {
        &job.stats.cache_hits
    } else {
        &job.stats.cache_misses
    };
    counter.fetch_add(1, Ordering::Relaxed);
    found
}

/// Replay one cache hit: credit its samples and best EDP to the
/// network's live progress counters, exactly as running it would have.
fn replay_hit(job: &JobShared, net_index: usize, result: &SearchResult) {
    let ctrl = network_ctrl(job, net_index);
    ctrl.count_samples(result.samples);
    ctrl.observe_best(result.best_edp);
}

/// Gradient descent: plan every network, then fan all `(network, start)`
/// work items into the fleet — except the items the job's cache replays,
/// which fill their planned positions without ever competing for a slot.
/// `Err` means an item panicked ([`JobError::WorkerPanic`]) or its
/// descent went non-finite ([`JobError::NonFiniteLoss`]); the error's
/// `item` is the planned work-item position, and when several items fail
/// the lowest position wins deterministically.
fn execute_gd(
    job: &JobShared,
    fleet: &Fleet,
    cfg: &GdConfig,
) -> Result<Vec<SearchResult>, JobError> {
    let request = &job.request;
    let hier = &request.hier;

    // Per-network plan: the owned loss and the network-seeded config.
    // Start points are generated sequentially per network before any
    // parallelism, exactly as the blocking path does.
    let mut plans: Vec<(Box<dyn DiffLoss + '_>, GdConfig)> = Vec::new();
    let mut shapes: Vec<Option<CacheKey>> = Vec::new();
    let mut items: Vec<GdItem> = Vec::new();
    for (net_index, net) in request.networks().iter().enumerate() {
        let mut net_cfg = *cfg;
        net_cfg.seed = request.network_seed(net_index);
        let (loss, opts) = build_surrogate(&request.surrogate, &net.layers, hier, &net_cfg);
        let mut rng = StdRng::seed_from_u64(net_cfg.seed);
        let starts = generate_start_points(
            &mut rng,
            &net.layers,
            hier,
            &opts,
            net_cfg.start_points,
            net_cfg.rejection_factor,
        );
        for (start_index, start) in starts.into_iter().enumerate() {
            let key = job.cache.as_ref().and_then(|_| {
                cache::gd_item_key(hier, &net.layers, &request.surrogate, &net_cfg, start_index)
            });
            items.push(GdItem {
                net_index,
                start_index,
                start,
                key,
            });
        }
        let shape = job
            .cache
            .as_ref()
            .map(|_| cache::network_shape_key(hier, &net.layers));
        // Warm start: seed one extra descent from the best cached
        // neighbor of this network's shape. The warm item is appended
        // *after* the regular starts at the first unused start index, so
        // every regular start's RNG stream and merge position is exactly
        // what a cold run produces.
        if request.warm_start() == WarmStart::NearestNeighbor {
            if let (Some(cache), Some(shape)) = (&job.cache, &shape) {
                if let Some(relaxed) = cache.warm_neighbor(shape, net.layers.len()) {
                    let key = cache::warm_item_key(
                        hier,
                        &net.layers,
                        &request.surrogate,
                        &net_cfg,
                        net_cfg.start_points,
                        &relaxed,
                    );
                    let start = warm_start_point(&net.layers, hier, &opts, relaxed);
                    items.push(GdItem {
                        net_index,
                        start_index: net_cfg.start_points,
                        start,
                        key,
                    });
                    job.stats.warm_starts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        plans.push((loss, net_cfg));
        shapes.push(shape);
    }
    job.stats
        .work_items
        .fetch_add(items.len(), Ordering::Relaxed);

    // Consult the cache per item before anything competes for a slot:
    // hits land directly at their planned positions, misses go to the
    // fleet. Reassembling by position keeps the demultiplexed per-network
    // order — and therefore every merged result bit — identical to a
    // cold run regardless of which items hit.
    let mut slots: Vec<Option<(usize, Option<SearchResult>)>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut misses: Vec<(usize, GdItem)> = Vec::new();
    for (pos, item) in items.into_iter().enumerate() {
        match consult_cache(job, item.key.as_ref()) {
            Some(result) => {
                replay_hit(job, item.net_index, &result);
                slots[pos] = Some((item.net_index, Some((*result).clone())));
            }
            None => misses.push((pos, item)),
        }
    }

    // One fleet over all networks' remaining starts. Results land at
    // fixed item slots, so the demultiplexed per-network order matches a
    // standalone run regardless of thread count, batch composition, or
    // whatever other jobs share the service's slots. Each completed item
    // is journaled immediately — never on cancellation, so a partial
    // result can never be replayed — which is what lets a cancelled job
    // resubmitted identically re-run only its remainder. Misses are in
    // plan order, so the fan-out index maps monotonically to the planned
    // position and a contained panic's `ItemFault` (lowest fan-out index)
    // is also the lowest-positioned panic.
    let miss_positions: Vec<usize> = misses.iter().map(|(pos, _)| *pos).collect();
    let executed = fleet
        .try_run(misses, |_slot, (pos, item)| {
            if job.halt.load(Ordering::Relaxed) {
                return (pos, item.net_index, Ok(None));
            }
            let mut ctrl = network_ctrl(job, item.net_index);
            ctrl.force_non_finite = apply_fault(job, pos);
            let (loss, net_cfg) = &plans[item.net_index];
            match run_single_start(&**loss, item.start.relaxed, item.start_index, net_cfg, ctrl) {
                Ok(result) => {
                    if !network_ctrl(job, item.net_index).cancelled() {
                        if let (Some(cache), Some(key)) = (&job.cache, item.key) {
                            cache.journal(key, shapes[item.net_index].as_ref(), &result);
                        }
                    }
                    (pos, item.net_index, Ok(Some(result)))
                }
                Err(nf) => (pos, item.net_index, Err(nf.step)),
            }
        })
        .map_err(|panicked| JobError::WorkerPanic {
            item: miss_positions[panicked.item],
            payload: panicked.payload,
        })?;
    let mut first_non_finite: Option<(usize, usize)> = None;
    for (pos, net_index, outcome) in executed {
        match outcome {
            Ok(result) => slots[pos] = Some((net_index, result)),
            Err(step) => {
                if first_non_finite.is_none_or(|(p, _)| pos < p) {
                    first_non_finite = Some((pos, step));
                }
            }
        }
    }
    if let Some((item, step)) = first_non_finite {
        return Err(JobError::NonFiniteLoss { item, step });
    }
    let per_item: Vec<(usize, Option<SearchResult>)> = slots
        .into_iter()
        // dosa-lint: allow(panic-perimeter) — by this point every planned
        // item either executed, replayed from cache, or aborted the job via
        // `?`; an unfilled slot is a planner/executor bug.
        .map(|slot| slot.expect("every planned item resolves to an outcome"))
        .collect();
    Ok(demux_merge(request.networks().len(), per_item))
}

/// Random search: draw every network's hardware designs sequentially from
/// its seed, then fan all `(network, design)` work items into the fleet —
/// each design searched by its own RNG stream. Cache consultation,
/// journaling, positional reassembly, fault handling, and degrade
/// truncation mirror [`execute_gd`] ([`FaultKind::NonFiniteLoss`] is a
/// no-op here: black-box items have no gradient loss to poison).
fn execute_random(
    job: &JobShared,
    fleet: &Fleet,
    cfg: &RandomSearchConfig,
) -> Result<Vec<SearchResult>, JobError> {
    let request = &job.request;
    let hier = &request.hier;
    let mut shapes: Vec<Option<CacheKey>> = Vec::new();
    let mut items: Vec<(
        usize,
        usize,
        crate::random_search::RandomDesign,
        Option<CacheKey>,
    )> = Vec::new();
    for (net_index, net) in request.networks().iter().enumerate() {
        let mut net_cfg = *cfg;
        net_cfg.seed = request.network_seed(net_index);
        for (design_index, design) in plan_random_designs(&net_cfg).into_iter().enumerate() {
            let key = job
                .cache
                .as_ref()
                .map(|_| cache::random_item_key(hier, &net.layers, &net_cfg, design_index));
            items.push((net_index, design_index, design, key));
        }
        shapes.push(
            job.cache
                .as_ref()
                .map(|_| cache::network_shape_key(hier, &net.layers)),
        );
    }
    job.stats
        .work_items
        .fetch_add(items.len(), Ordering::Relaxed);

    let mut slots: Vec<Option<(usize, Option<SearchResult>)>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut misses = Vec::new();
    for (pos, (net_index, design_index, design, key)) in items.into_iter().enumerate() {
        match consult_cache(job, key.as_ref()) {
            Some(result) => {
                replay_hit(job, net_index, &result);
                slots[pos] = Some((net_index, Some((*result).clone())));
            }
            None => misses.push((pos, net_index, design_index, design, key)),
        }
    }
    let miss_positions: Vec<usize> = misses.iter().map(|(pos, ..)| *pos).collect();
    let executed = fleet
        .try_run(
            misses,
            |_slot, (pos, net_index, _design_index, design, key)| {
                if job.halt.load(Ordering::Relaxed) {
                    return (pos, net_index, None);
                }
                apply_fault(job, pos);
                let net = &request.networks()[net_index];
                let result = run_random_design(
                    &net.layers,
                    hier,
                    &design,
                    cfg.samples_per_hw,
                    network_ctrl(job, net_index),
                );
                if !network_ctrl(job, net_index).cancelled() {
                    if let (Some(cache), Some(key)) = (&job.cache, key) {
                        cache.journal(key, shapes[net_index].as_ref(), &result);
                    }
                }
                (pos, net_index, Some(result))
            },
        )
        .map_err(|panicked| JobError::WorkerPanic {
            item: miss_positions[panicked.item],
            payload: panicked.payload,
        })?;
    for (pos, net_index, result) in executed {
        slots[pos] = Some((net_index, result));
    }
    let per_item: Vec<(usize, Option<SearchResult>)> = slots
        .into_iter()
        // dosa-lint: allow(panic-perimeter) — by this point every planned
        // item either executed, replayed from cache, or aborted the job via
        // `?`; an unfilled slot is a planner/executor bug.
        .map(|slot| slot.expect("every planned item resolves to an outcome"))
        .collect();
    Ok(demux_merge(request.networks().len(), per_item))
}

/// BB-BO: each network's outer GP loop is inherently sequential, so
/// networks run one after another — but every step's inner mapping
/// samples and EI candidate scores fan out across the fleet. The
/// cacheable unit is the whole network (every GP step conditions on all
/// previous observations), so one work item per network is consulted and
/// journaled — and the failure domain is likewise the network: a panic
/// anywhere in a network's search (its own code or an inner fleet item)
/// fails the job with [`JobError::WorkerPanic`] carrying that network's
/// item index. A [`DeadlinePolicy::Degrade`] deadline skips networks not
/// yet started (they come back empty); the one in flight finishes
/// bit-exactly.
fn execute_bayes(
    job: &JobShared,
    fleet: &Fleet,
    cfg: &BbboConfig,
) -> Result<Vec<SearchResult>, JobError> {
    let request = &job.request;
    let hier = &request.hier;
    job.stats
        .work_items
        .fetch_add(request.networks().len(), Ordering::Relaxed);
    request
        .networks()
        .iter()
        .enumerate()
        .map(|(net_index, net)| {
            let mut net_cfg = *cfg;
            net_cfg.seed = request.network_seed(net_index);
            let key = job
                .cache
                .as_ref()
                .map(|_| cache::bayes_network_key(hier, &net.layers, &net_cfg));
            if let Some(result) = consult_cache(job, key.as_ref()) {
                replay_hit(job, net_index, &result);
                return Ok((*result).clone());
            }
            if job.halt.load(Ordering::Relaxed) {
                return Ok(SearchResult::empty());
            }
            apply_fault(job, net_index);
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_bayesian_search(
                    &net.layers,
                    hier,
                    &net_cfg,
                    fleet,
                    network_ctrl(job, net_index),
                )
            }))
            .map_err(|payload| JobError::WorkerPanic {
                item: net_index,
                payload: payload_string(payload),
            })?;
            if !network_ctrl(job, net_index).cancelled() {
                if let (Some(cache), Some(key)) = (&job.cache, key) {
                    let shape = cache::network_shape_key(hier, &net.layers);
                    cache.journal(key, Some(&shape), &result);
                }
            }
            Ok(result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosa_workload::{Layer, Problem};

    fn tiny_request(seed: u64) -> SearchRequest {
        let layers = vec![Layer::once(Problem::matmul("m", 16, 32, 32).unwrap())];
        SearchRequest::builder(Hierarchy::gemmini())
            .network("m", layers)
            .config(GdConfig {
                start_points: 1,
                steps_per_start: 20,
                round_every: 10,
                seed,
                ..GdConfig::default()
            })
            .build()
    }

    #[test]
    fn submit_rejects_invalid_config_at_the_boundary() {
        let service = SearchService::builder().threads(1).build();
        let mut request = tiny_request(0);
        request.strategy = Strategy::GradientDescent(GdConfig {
            round_every: 0,
            ..GdConfig::default()
        });
        assert_eq!(
            service.submit(request).unwrap_err(),
            ConfigError::ZeroRoundEvery
        );
    }

    #[test]
    fn submit_rejects_invalid_black_box_configs_at_the_boundary() {
        let service = SearchService::builder().threads(1).build();
        let mut request = tiny_request(0);
        request.strategy = Strategy::Random(RandomSearchConfig {
            samples_per_hw: 0,
            ..RandomSearchConfig::default()
        });
        assert_eq!(
            service.submit(request.clone()).unwrap_err(),
            ConfigError::ZeroSamplesPerHw
        );
        request.strategy = Strategy::BayesOpt(BbboConfig {
            init_random: 0,
            ..BbboConfig::default()
        });
        assert_eq!(
            service.submit(request).unwrap_err(),
            ConfigError::BadInitRandom {
                init_random: 0,
                num_hw: 100
            }
        );
    }

    #[test]
    fn submit_rejects_a_zero_parallelism_cap() {
        let service = SearchService::builder().threads(2).build();
        let mut request = tiny_request(0);
        request.max_parallelism = Some(0);
        assert_eq!(
            service.submit(request).unwrap_err(),
            ConfigError::ZeroParallelism
        );
    }

    #[test]
    fn concurrent_jobs_complete_with_distinct_ids() {
        let service = SearchService::builder().threads(2).build();
        let a = service.submit(tiny_request(1)).unwrap();
        let b = service.submit(tiny_request(2)).unwrap();
        assert_ne!(a.id(), b.id());
        let ra = a.wait().unwrap();
        let rb = b.wait().unwrap();
        assert_eq!(a.status(), JobStatus::Completed);
        assert_eq!(b.status(), JobStatus::Completed);
        assert!(ra.get("m").unwrap().best_edp.is_finite());
        assert!(rb.get("m").unwrap().best_edp.is_finite());
    }

    #[test]
    fn cancelling_a_queued_job_completes_it_empty() {
        let service = SearchService::builder().threads(1).build();
        // Enough submissions that the tail of the queue is still pending.
        let handles: Vec<JobHandle> = (0..6)
            .map(|s| service.submit(tiny_request(s)).unwrap())
            .collect();
        let last = handles.last().unwrap();
        last.cancel();
        let result = last.wait().unwrap();
        assert_eq!(last.status(), JobStatus::Cancelled);
        // Either it never ran (empty) or cancellation raced the dispatcher
        // and it wound down early; both keep the result well-formed.
        assert_eq!(result.networks.len(), 1);
        for h in &handles[..5] {
            h.wait().unwrap();
        }
    }

    #[test]
    fn dropping_the_service_retires_queued_jobs() {
        let service = SearchService::builder().threads(1).build();
        let handles: Vec<JobHandle> = (0..4)
            .map(|s| service.submit(tiny_request(s)).unwrap())
            .collect();
        drop(service);
        for h in &handles {
            let result = h.wait().unwrap(); // must not hang
            assert!(h.status().is_terminal());
            assert_eq!(result.networks.len(), 1);
        }
    }

    #[test]
    fn default_policy_is_fifo_with_service_wide_parallelism() {
        use crate::sched::SchedPolicy;
        let request = tiny_request(0);
        assert_eq!(request.policy(), SchedPolicy::Fifo);
        assert_eq!(request.max_parallelism(), None);
    }
}
