//! The unified one-loop GD search engine.
//!
//! DOSA runs the same optimization loop against different differentiable
//! surrogates: the plain EDP loss of §5 ([`dosa_search`](crate::dosa_search))
//! and the predictor-adjusted latency loss of §6.5
//! ([`dosa_search_rtl`](crate::dosa_search_rtl)). This module factors that
//! loop out once — Adam stepping over the log tiling factors, tape reuse,
//! the §5.3.2 rounding cadence, and sample accounting — behind the
//! [`DiffLoss`] trait, and parallelizes it across start points.
//!
//! ## Determinism
//!
//! [`run_gd_search`] produces bit-identical results for a given seed
//! regardless of the worker-thread count:
//!
//! * start points are generated sequentially from the run's seed before
//!   any parallelism begins;
//! * each start point descends independently on its **own** [`Tape`]
//!   (cleared, never reallocated, between steps), its own [`Adam`] state
//!   and its own RNG seeded `cfg.seed + start_index`, so no worker
//!   observes another's scheduling;
//! * per-start results are merged by a deterministic reduction: best EDP
//!   wins with ties broken by the lowest start index, and histories are
//!   concatenated in start order with each start's sample counts offset by
//!   the samples of the starts before it (recovering exactly the
//!   sequential run's accounting), then re-sorted by cumulative sample
//!   count and rewritten to the running global minimum.
//!
//! This purity — every start's descent is a function of `(loss inputs,
//! cfg, seed, start_index)` alone — is also what makes per-start results
//! content-addressable: the service's result cache
//! ([`crate::cache`]) fingerprints exactly these inputs and replays
//! `run_single_start`'s output bit for bit. Warm-started descents
//! (seeded from a cached neighbor rather than the RNG) are keyed by the
//! seeding mappings' content and always use the first start index past
//! the regular ones, so they never perturb a cold run's RNG streams.

use crate::adam::Adam;
use crate::fault::payload_string;
use crate::gd::{
    choose_best_orderings, evaluate_rounded, GdConfig, LoopOrderStrategy, SearchPoint, SearchResult,
};
use crate::latency_model::LatencyPredictor;
use crate::startpoints::StartPoint;
use dosa_accel::{HardwareConfig, Hierarchy};
use dosa_autodiff::{sum, SegScratch, SegmentPlan, Tape, Var};
use dosa_model::{
    build_loss_in, layer_perf_vars, FactorVars, HwVars, LossOptions, RelaxedMapping,
    PARAMS_PER_LAYER,
};
use dosa_timeloop::{evaluate_layer, min_hw_for_all, LoopOrder, Mapping, Stationarity};
use dosa_workload::{Layer, Problem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Record a best-so-far history point every this many gradient steps (in
/// addition to every rounding).
const RECORD_EVERY: usize = 50;

/// A differentiable surrogate loss the GD engine can descend on.
///
/// Implementations own everything layer- and model-specific; the engine
/// owns everything loop-specific. All methods must be deterministic pure
/// functions of their arguments (plus the RNG handed to
/// [`prepare_start`](DiffLoss::prepare_start)) — that is what makes the
/// parallel driver bit-identical across thread counts.
pub trait DiffLoss: Sync {
    /// The layers being co-optimized.
    fn layers(&self) -> &[Layer];

    /// Per-dimension spatial cap applied when rounding relaxed mappings.
    fn spatial_cap(&self) -> u64;

    /// Adjust a fresh start point before descent begins (e.g. pin loop
    /// orderings). `rng` is private to this start point and seeded
    /// `cfg.seed + start_index`, so stochastic adjustments stay
    /// deterministic under any thread count.
    fn prepare_start(&self, _relaxed: &mut [RelaxedMapping], _rng: &mut StdRng) {}

    /// Record the loss at the point `relaxed` on `tape`, returning the
    /// scalar to backpropagate. Leaf variables are appended to `leaves`
    /// flattened in [`RelaxedMapping::params`] order, and per-layer segment
    /// boundaries are recorded on `plan` so the engine can sweep the
    /// backward pass on parallel workers (bit-identically; see
    /// `dosa_autodiff::SegmentPlan`). Both buffers arrive cleared and are
    /// reused across steps, so steady-state recording allocates nothing.
    fn build<'t>(
        &self,
        tape: &'t Tape,
        relaxed: &[RelaxedMapping],
        plan: &mut SegmentPlan,
        leaves: &mut Vec<Var<'t>>,
    ) -> Var<'t>;

    /// Finish one §5.3.2 rounding: given freshly rounded `mappings`, apply
    /// this loss's ordering-selection behavior (updating `mappings` and the
    /// orderings stored in `relaxed` in place) and evaluate the rounded
    /// point with this loss's reference objective. Returns the hardware
    /// configuration and the objective EDP used for best-point tracking.
    fn finish_round(
        &self,
        relaxed: &mut [RelaxedMapping],
        mappings: &mut [Mapping],
    ) -> (HardwareConfig, f64);
}

/// The plain differentiable-EDP loss of §5 — the surrogate behind
/// [`dosa_search`](crate::dosa_search), including the Baseline / Iterate /
/// Softmax loop-ordering strategies of Figure 6.
pub struct EdpLoss<'a> {
    /// Layers being optimized.
    pub layers: &'a [Layer],
    /// The memory hierarchy.
    pub hier: &'a Hierarchy,
    /// Options of the underlying [`build_loss_in`].
    pub opts: LossOptions,
    /// Loop-ordering strategy applied at each rounding.
    pub strategy: LoopOrderStrategy,
    /// Pin the PE array side (Fig. 12); `None` derives it from mappings.
    pub fixed_pe_side: Option<u64>,
    /// Spatial cap for rounding.
    pub spatial_cap: u64,
}

impl DiffLoss for EdpLoss<'_> {
    fn layers(&self) -> &[Layer] {
        self.layers
    }

    fn spatial_cap(&self) -> u64 {
        self.spatial_cap
    }

    fn prepare_start(&self, relaxed: &mut [RelaxedMapping], _rng: &mut StdRng) {
        if self.strategy == LoopOrderStrategy::Baseline {
            // "No loop ordering optimization": hold the fixed canonical
            // weight-stationary ordering throughout (§6.2's Baseline).
            for r in relaxed.iter_mut() {
                r.orders = [Stationarity::WeightStationary; dosa_accel::NUM_LEVELS];
            }
        }
    }

    fn build<'t>(
        &self,
        tape: &'t Tape,
        relaxed: &[RelaxedMapping],
        plan: &mut SegmentPlan,
        leaves: &mut Vec<Var<'t>>,
    ) -> Var<'t> {
        build_loss_in(
            tape,
            self.layers,
            relaxed,
            self.hier,
            &self.opts,
            plan,
            leaves,
        )
        .loss
    }

    fn finish_round(
        &self,
        relaxed: &mut [RelaxedMapping],
        mappings: &mut [Mapping],
    ) -> (HardwareConfig, f64) {
        match self.strategy {
            LoopOrderStrategy::Iterate => {
                let (hw, _) =
                    evaluate_rounded(self.layers, mappings, self.fixed_pe_side, self.hier);
                let chosen = choose_best_orderings(self.layers, mappings, &hw, self.hier);
                for (r, s) in relaxed.iter_mut().zip(chosen) {
                    r.orders = s;
                }
            }
            LoopOrderStrategy::Softmax => {
                // Select each layer's model-predicted best uniform ordering
                // (the argmax of the softmax weights).
                let (hw, _) =
                    evaluate_rounded(self.layers, mappings, self.fixed_pe_side, self.hier);
                for ((layer, m), r) in self
                    .layers
                    .iter()
                    .zip(mappings.iter_mut())
                    .zip(relaxed.iter_mut())
                {
                    let mut best = (f64::INFINITY, Stationarity::WeightStationary);
                    for s in Stationarity::ALL {
                        let mut cand = m.clone();
                        cand.orders = [LoopOrder::canonical(s); dosa_accel::NUM_LEVELS];
                        let perf = evaluate_layer(&layer.problem, &cand, &hw, self.hier);
                        if perf.edp() < best.0 {
                            best = (perf.edp(), s);
                        }
                    }
                    m.orders = [LoopOrder::canonical(best.1); dosa_accel::NUM_LEVELS];
                    r.orders = [best.1; dosa_accel::NUM_LEVELS];
                }
            }
            LoopOrderStrategy::Baseline => {}
        }
        let (hw, perf) = evaluate_rounded(self.layers, mappings, self.fixed_pe_side, self.hier);
        (hw, perf.edp())
    }
}

/// The predictor-adjusted latency loss of §6.5 — the surrogate behind
/// [`dosa_search_rtl`](crate::dosa_search_rtl): analytical energy, latency
/// passed through a (possibly learned) [`LatencyPredictor`], PE side
/// pinned, and best points selected by *predicted* EDP.
pub struct PredictedLatencyLoss<'a> {
    /// Layers being optimized.
    pub layers: &'a [Layer],
    /// The memory hierarchy.
    pub hier: &'a Hierarchy,
    /// The latency model driving the search.
    pub predictor: &'a LatencyPredictor,
    /// The pinned PE array side.
    pub pe_side: u64,
}

impl DiffLoss for PredictedLatencyLoss<'_> {
    fn layers(&self) -> &[Layer] {
        self.layers
    }

    fn spatial_cap(&self) -> u64 {
        self.pe_side
    }

    fn build<'t>(
        &self,
        tape: &'t Tape,
        relaxed: &[RelaxedMapping],
        plan: &mut SegmentPlan,
        leaves: &mut Vec<Var<'t>>,
    ) -> Var<'t> {
        // Assemble the loss with predictor-adjusted latencies, mirroring
        // build_loss_in's per-layer segment structure.
        let mut factor_vars = Vec::with_capacity(self.layers.len());
        plan.serial_to(tape.len() as u32);
        plan.begin_group();
        for (layer, r) in self.layers.iter().zip(relaxed) {
            factor_vars.push(FactorVars::from_relaxed_in(tape, &layer.problem, r, leaves));
            plan.chunk_to(tape.len() as u32);
        }
        plan.end_group();
        let refs: Vec<(&Problem, &FactorVars<Var<'t>>)> = self
            .layers
            .iter()
            .zip(&factor_vars)
            .map(|(l, fv)| (&l.problem, fv))
            .collect();
        let hw = HwVars::derive_with_pe_in(tape, &refs, Some(self.pe_side), plan);
        let mut energies = Vec::new();
        let mut latencies = Vec::new();
        plan.serial_to(tape.len() as u32);
        plan.begin_group();
        for (i, (layer, fv)) in self.layers.iter().zip(&factor_vars).enumerate() {
            let perf = layer_perf_vars(tape, &layer.problem, fv, &hw, self.hier);
            let layer_leaves = &leaves[i * PARAMS_PER_LAYER..(i + 1) * PARAMS_PER_LAYER];
            let lat =
                self.predictor
                    .latency_var(tape, &layer.problem, layer_leaves, &hw, perf.latency);
            energies.push(perf.energy_uj * layer.count as f64);
            latencies.push(lat * layer.count as f64);
            plan.chunk_to(tape.len() as u32);
        }
        plan.end_group();
        let energy = sum(tape, &energies);
        let latency = sum(tape, &latencies);
        let mut pen = tape.constant(0.0);
        for fv in &factor_vars {
            pen = pen + fv.penalty(tape);
        }
        let loss = (energy * latency).ln() + pen;
        plan.serial_to(tape.len() as u32);
        loss
    }

    fn finish_round(
        &self,
        relaxed: &mut [RelaxedMapping],
        mappings: &mut [Mapping],
    ) -> (HardwareConfig, f64) {
        let pairs: Vec<(&Problem, &Mapping)> = self
            .layers
            .iter()
            .zip(mappings.iter())
            .map(|(l, m)| (&l.problem, m))
            .collect();
        let min = min_hw_for_all(pairs, self.hier);
        let hw =
            // dosa-lint: allow(panic-perimeter) — `pe_side` was validated when
            // the engine was built and `min_hw_for_all` returns in-range SRAM
            // sizes, so this constructor cannot fail; an `Err` here is a bug.
            HardwareConfig::new(self.pe_side, min.acc_kb(), min.spad_kb()).expect("valid pe side");
        let chosen = choose_best_orderings(self.layers, mappings, &hw, self.hier);
        for (r, s) in relaxed.iter_mut().zip(chosen) {
            r.orders = s;
        }
        let perf = self
            .predictor
            .predict_model(self.layers, mappings, &hw, self.hier);
        (hw, perf.edp())
    }
}

/// Live, lock-free counters one network's descents publish into so a
/// service job's `progress()` can be observed without blocking the
/// workers: a sample total and a best-EDP running minimum, both monotone.
pub(crate) struct ProgressCounters {
    samples: AtomicUsize,
    best_edp_bits: AtomicU64,
}

impl ProgressCounters {
    pub(crate) fn new() -> ProgressCounters {
        ProgressCounters {
            samples: AtomicUsize::new(0),
            best_edp_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    fn add_samples(&self, n: usize) {
        self.samples.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the published best EDP to `edp` if it improves on it (CAS
    /// loop, so the published value is monotone non-increasing).
    fn update_best(&self, edp: f64) {
        let mut cur = self.best_edp_bits.load(Ordering::Relaxed);
        while edp < f64::from_bits(cur) {
            match self.best_edp_bits.compare_exchange_weak(
                cur,
                edp.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current `(samples, best_edp)` snapshot (best is `INFINITY` until
    /// the first rounding evaluation lands).
    pub(crate) fn snapshot(&self) -> (usize, f64) {
        (
            self.samples.load(Ordering::Relaxed),
            f64::from_bits(self.best_edp_bits.load(Ordering::Relaxed)),
        )
    }
}

/// Control surface handed to every start-point descent: an optional
/// cooperative-cancellation flag (checked once per gradient step) and an
/// optional progress sink. `StartControl::default()` is the uncontrolled
/// blocking mode used by [`run_gd_search`].
#[derive(Clone, Copy)]
pub(crate) struct StartControl<'a> {
    /// When set, descents return their partial result at the next step
    /// boundary, and not-yet-started work items return empty results.
    pub(crate) cancel: Option<&'a AtomicBool>,
    /// Live observation counters for the network this start belongs to.
    pub(crate) progress: Option<&'a ProgressCounters>,
    /// Worker budget for the segmented backward sweep inside each descent
    /// step. `1` keeps the sweep serial; the result is bit-identical for
    /// every budget (see [`dosa_autodiff::SegmentPlan`]).
    pub(crate) inner_threads: usize,
    /// Fault injection ([`FaultKind::NonFiniteLoss`](crate::FaultKind)):
    /// report the first gradient step's loss as NaN *and* poison the
    /// rounding checkpoint's reference EDP, so the descent's real
    /// two-half guard (suspect mark, then rounding adjudication) trips
    /// end to end. Never set outside the test-only fault hook.
    pub(crate) force_non_finite: bool,
}

impl Default for StartControl<'_> {
    fn default() -> Self {
        StartControl {
            cancel: None,
            progress: None,
            inner_threads: 1,
            force_non_finite: false,
        }
    }
}

impl StartControl<'_> {
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    }

    pub(crate) fn count_samples(&self, n: usize) {
        if let Some(p) = self.progress {
            p.add_samples(n);
        }
    }

    pub(crate) fn observe_best(&self, edp: f64) {
        if let Some(p) = self.progress {
            p.update_best(edp);
        }
    }
}

/// A pool of workers a strategy fans its inner work out over: GD start
/// points in the blocking shims, random-search hardware designs, BB-BO's
/// inner mapping samples and EI candidate scores. It runs in one of two
/// modes:
///
/// * **Pool** — a private rayon pool of a fixed worker count, used by the
///   blocking [`run_gd_search`] path; parallelism is scoped to the fleet
///   and never touches the global rayon configuration.
/// * **Serial** — the service mode: the fan-out runs inline on the
///   calling thread, one item at a time. Service work items execute on a
///   **persistent worker** of the service's pool (see
///   [`crate::service`]), so their inner fan-outs must not spawn — the
///   worker itself is the unit of parallelism, and the scheduler
///   interleaves *items* of different jobs, not threads. Results are
///   thread-count-invariant by construction, so serial execution is
///   bit-identical to any pooled run.
///
/// Both modes land results at fixed item slots, so output order — and
/// every deterministic reduction built on it — is independent of worker
/// count and of whatever other jobs are running.
pub(crate) struct Fleet {
    mode: FleetMode,
}

enum FleetMode {
    Pool(rayon::ThreadPool),
    Serial,
}

impl Fleet {
    /// A fleet backed by its own pool of `threads` workers (blocking mode).
    pub(crate) fn new(threads: usize) -> Fleet {
        Fleet {
            mode: FleetMode::Pool(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads.max(1))
                    .build()
                    // dosa-lint: allow(panic-perimeter) — pool construction
                    // with a clamped nonzero thread count cannot fail; dying
                    // at startup beats serving with a half-built fleet.
                    .expect("scoped pool"),
            ),
        }
    }

    /// A fleet that runs every item inline on the calling thread (service
    /// mode: the caller is already a pool worker).
    pub(crate) fn serial() -> Fleet {
        Fleet {
            mode: FleetMode::Serial,
        }
    }

    /// Fan `items` out over the fleet, returning `f(index, item)` results
    /// in item order. Output order — and therefore every deterministic
    /// reduction built on it — is independent of thread count and
    /// scheduling; this is the engine's only parallel primitive.
    ///
    /// A panic inside `f` is contained per item by [`Fleet::try_run`] and
    /// re-raised here with its original payload once every other item has
    /// finished — the blocking shims keep panic semantics while the
    /// service uses `try_run` for typed per-item failures.
    pub(crate) fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.try_run(items, f)
            .unwrap_or_else(|fault| std::panic::resume_unwind(Box::new(fault.payload)))
    }

    /// [`Fleet::run`] with panic containment: each item's `f` runs inside
    /// `catch_unwind`, so one panicking item is one failure domain —
    /// its worker slot is released normally, **every other item still
    /// runs to completion** (journaling to the result cache as usual),
    /// and the lowest-indexed fault is reported, deterministically,
    /// once the fan-out drains. The catch sits *inside* the worker, which
    /// preserves the original panic payload that `std::thread::scope`
    /// would otherwise replace with "a scoped thread panicked".
    pub(crate) fn try_run<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, ItemFault>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let caught: Vec<Result<R, String>> = match &self.mode {
            FleetMode::Pool(pool) => pool.install(|| {
                items
                    .into_par_iter()
                    .enumerate()
                    .map(|(i, t)| {
                        catch_unwind(AssertUnwindSafe(|| f(i, t))).map_err(payload_string)
                    })
                    .collect()
            }),
            FleetMode::Serial => items
                .into_iter()
                .enumerate()
                .map(|(i, t)| catch_unwind(AssertUnwindSafe(|| f(i, t))).map_err(payload_string))
                .collect(),
        };
        let mut results = Vec::with_capacity(caught.len());
        for out in caught {
            match out {
                Ok(r) => results.push(r),
                Err(payload) => return Err(ItemFault { payload }),
            }
        }
        Ok(results)
    }
}

/// A contained work-item panic from [`Fleet::try_run`]: the stringified
/// panic payload of the lowest-indexed faulting item.
#[derive(Debug, Clone)]
pub(crate) struct ItemFault {
    pub(crate) payload: String,
}

/// One-shot [`Fleet::run`] on a throwaway fleet of `threads` workers.
pub(crate) fn fan_out<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Fleet::new(threads).run(items, f)
}

/// Descend from every start point in parallel and merge the results
/// deterministically (see the module docs for the exact guarantees).
///
/// Worker count follows the global rayon configuration
/// (`rayon::ThreadPoolBuilder::new().num_threads(n).build_global()`, or
/// all cores by default); the result is identical for every choice. For
/// queued, observable, cancellable or batched runs, submit a
/// [`SearchRequest`](crate::SearchRequest) to a
/// [`SearchService`](crate::SearchService) instead — it drives this same
/// per-start loop through its own worker fleet.
///
/// # Panics
///
/// Panics if `cfg` fails [`GdConfig::validate`] (e.g. the
/// divide-by-zero-prone `round_every == 0`).
pub fn run_gd_search<L: DiffLoss + ?Sized>(
    loss: &L,
    starts: Vec<StartPoint>,
    cfg: &GdConfig,
) -> SearchResult {
    if let Err(e) = cfg.validate() {
        // dosa-lint: allow(panic-perimeter) — documented perimeter of the
        // direct (non-service) entrypoint: its docs state it panics on an
        // invalid config; the service path validates at submit instead.
        panic!("invalid GdConfig: {e}");
    }
    let threads = rayon::current_num_threads();
    // Threads left over after one-per-start are spent inside each start's
    // segmented backward sweep; the result is bit-identical either way.
    let inner_threads = (threads / starts.len().max(1)).max(1);
    let per_start = fan_out(starts, threads, move |index, start| {
        let ctrl = StartControl {
            inner_threads,
            ..StartControl::default()
        };
        run_single_start(loss, start.relaxed, index, cfg, ctrl).unwrap_or_else(|e| {
            // dosa-lint: allow(panic-perimeter) — same direct-entrypoint
            // perimeter; the service path maps this to JobError::NonFiniteLoss.
            panic!(
                "non-finite loss at gradient step {} of start point {index}",
                e.step
            )
        })
    });
    merge_start_results(per_start)
}

/// A gradient step whose loss went NaN: the typed per-item failure
/// [`run_single_start`] reports instead of letting a poisoned descent
/// merge a silently bogus `best_edp`. The service surfaces it as
/// [`JobError::NonFiniteLoss`](crate::JobError); the blocking paths
/// panic on it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NonFiniteLoss {
    /// The 1-based gradient step at which the loss went non-finite.
    pub(crate) step: usize,
}

/// The full, RNG-free checkpoint of one start point's descent between
/// gradient steps: everything [`run_segment`] needs to resume
/// bit-identically to an uninterrupted run. The only RNG a descent ever
/// draws from is consumed inside [`DescentState::begin`] (the
/// `prepare_start` hook), so the checkpoint carries no stream position;
/// the tape, segment plan, and scratch buffers are pure per-step caches
/// and are recreated fresh by each segment (a fresh [`Tape`] is
/// bit-identical to a cleared one).
///
/// This is what makes GD work items **resumable in bounded segments** on
/// the service's persistent worker pool: a segment runs `k` steps,
/// re-enqueues the checkpoint, and the slot turns over.
pub(crate) struct DescentState {
    relaxed: Vec<RelaxedMapping>,
    params: Vec<f64>,
    adam: Adam,
    result: SearchResult,
    /// First gradient step whose loss went NaN since the last rounding
    /// that evaluated finite; see the guard comments in [`run_segment`].
    suspect_since: Option<usize>,
    /// The next 1-based gradient step to run
    /// (`> cfg.steps_per_start` once the descent is complete).
    next_step: usize,
}

impl DescentState {
    /// Prepare a start point for descent: seed and consume this start's
    /// private RNG (`cfg.seed + index`, used only by
    /// [`DiffLoss::prepare_start`]) and materialize the initial
    /// parameters and Adam state.
    pub(crate) fn begin<L: DiffLoss + ?Sized>(
        loss: &L,
        mut relaxed: Vec<RelaxedMapping>,
        index: usize,
        cfg: &GdConfig,
    ) -> DescentState {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(index as u64));
        loss.prepare_start(&mut relaxed, &mut rng);
        let mut params: Vec<f64> = Vec::new();
        for r in &relaxed {
            r.params_into(&mut params);
        }
        let adam = Adam::new(params.len(), cfg.learning_rate);
        DescentState {
            relaxed,
            params,
            adam,
            result: SearchResult::empty(),
            suspect_since: None,
            next_step: 1,
        }
    }

    /// The completed (or cancelled-partial) result. Call only after
    /// [`run_segment`] reported the descent finished.
    pub(crate) fn into_result(self) -> SearchResult {
        self.result
    }
}

/// Run up to `max_steps` gradient steps of one start point's descent,
/// advancing `state` in place. Returns `Ok(true)` when the descent is
/// finished (budget exhausted or cancelled — `state.into_result()` holds
/// the result), `Ok(false)` when it yielded with steps remaining, and
/// fails with [`NonFiniteLoss`] the moment a rounding checkpoint's
/// reference EDP goes NaN, so a poisoned descent can never contribute a
/// silently bogus best point to the merge.
///
/// Segmentation is bit-exact: the per-segment tape/plan/scratch buffers
/// are pure caches (a fresh tape records exactly what a cleared one
/// does), so any `max_steps` schedule produces the same result as one
/// uninterrupted run — the invariant the segment-resume parity tests pin.
pub(crate) fn run_segment<L: DiffLoss + ?Sized>(
    loss: &L,
    state: &mut DescentState,
    cfg: &GdConfig,
    ctrl: StartControl<'_>,
    max_steps: usize,
) -> Result<bool, NonFiniteLoss> {
    let layers = loss.layers();
    // One tape, one segment plan, and one set of scratch buffers per
    // segment, reused (never reallocated) across its gradient steps.
    let tape = Tape::new();
    let mut scratch = SegScratch::new();
    let mut plan = SegmentPlan::new();
    let mut leaves: Vec<Var<'_>> = Vec::new();
    let mut flat: Vec<f64> = Vec::new();
    let mut ran = 0usize;

    while state.next_step <= cfg.steps_per_start {
        if ran == max_steps {
            // Segment budget exhausted with steps remaining: yield so the
            // checkpoint can re-enqueue and the worker slot turns over.
            return Ok(false);
        }
        let step = state.next_step;
        // Cooperative cancellation: stop issuing gradient steps at the
        // next step boundary and finish with the partial (still monotone)
        // result.
        if ctrl.cancelled() {
            return Ok(true);
        }
        // One differentiable-model evaluation + gradient step.
        for (r, chunk) in state
            .relaxed
            .iter_mut()
            .zip(state.params.chunks(PARAMS_PER_LAYER))
        {
            r.set_params(chunk);
        }
        tape.clear();
        plan.clear();
        leaves.clear();
        let loss_var = loss.build(&tape, &state.relaxed, &mut plan, &mut leaves);
        // Non-finite loss guard, step half: a NaN loss marks the descent
        // suspect from this step on. It is not failed yet — extreme but
        // honest points overflow the surrogate transiently (inf, and
        // through inf−inf even NaN) and the zeroed-gradient step below
        // recovers them, as this loop always did — but the *next* rounding
        // checkpoint must adjudicate: a finite reference EDP proves the
        // recovery and clears the mark, a NaN one fails the item with the
        // step where the poisoning began. Every step has a next rounding
        // (the final step always rounds), so no NaN episode goes
        // unadjudicated and a poisoned descent can never merge a silently
        // bogus best point. (`force_non_finite` is the test-only fault
        // injection forcing exactly this path.)
        let loss_value = if ctrl.force_non_finite && step == 1 {
            f64::NAN
        } else {
            loss_var.value()
        };
        if loss_value.is_nan() {
            state.suspect_since.get_or_insert(step);
        }
        let grads = tape.backward_segmented(loss_var, &plan, ctrl.inner_threads, &mut scratch);
        grads.wrt_into(&leaves, &mut flat);
        for g in flat.iter_mut() {
            if !g.is_finite() {
                *g = 0.0;
            }
        }
        state.adam.step(&mut state.params, &flat);
        state.result.samples += 1;
        ctrl.count_samples(1);

        // Periodic rounding + reference evaluation (§5.3.2).
        if step.is_multiple_of(cfg.round_every) || step == cfg.steps_per_start {
            for (r, chunk) in state
                .relaxed
                .iter_mut()
                .zip(state.params.chunks(PARAMS_PER_LAYER))
            {
                r.set_params(chunk);
            }
            let mut mappings: Vec<Mapping> = layers
                .iter()
                .zip(&state.relaxed)
                .map(|(l, r)| r.round_with_cap(&l.problem, loss.spatial_cap()))
                .collect();
            let (hw, edp) = loss.finish_round(&mut state.relaxed, &mut mappings);
            // Non-finite loss guard, rounding half: a NaN reference EDP
            // would never win `consider`'s comparison and so would vanish
            // silently — surface it as the typed failure, attributed to
            // the gradient step where the descent first went NaN (this
            // step, if the descent itself looked healthy). A finite EDP
            // proves any suspect episode recovered. `INFINITY` stays
            // legal — it is the "nothing landed yet" sentinel.
            let edp = if ctrl.force_non_finite { f64::NAN } else { edp };
            if edp.is_nan() {
                return Err(NonFiniteLoss {
                    step: state.suspect_since.unwrap_or(step),
                });
            }
            state.suspect_since = None;
            state.result.samples += 1;
            ctrl.count_samples(1);
            state.result.consider(edp, &hw, &mappings);
            state.result.record();
            ctrl.observe_best(state.result.best_edp);

            // Restart descent from the rounded point (§5.2.1), rewriting
            // the existing relaxed mappings and parameter buffer in place.
            for (m, r) in mappings.iter().zip(state.relaxed.iter_mut()) {
                let orders = r.orders;
                *r = RelaxedMapping::from_mapping(m);
                r.orders = orders;
            }
            state.params.clear();
            for r in &state.relaxed {
                r.params_into(&mut state.params);
            }
            state.adam.reset();
        } else if step.is_multiple_of(RECORD_EVERY) {
            state.result.record();
        }
        state.next_step += 1;
        ran += 1;
    }
    Ok(true)
}

/// One start point's full descent: the loop previously duplicated between
/// `dosa_search` and `dosa_search_rtl`, run as a single unbounded
/// [`run_segment`]. Fails with [`NonFiniteLoss`] the moment a gradient
/// step's differentiable loss (or a rounding's reference EDP) goes NaN,
/// so a poisoned descent can never contribute a silently bogus best point
/// to the merge.
pub(crate) fn run_single_start<L: DiffLoss + ?Sized>(
    loss: &L,
    relaxed: Vec<RelaxedMapping>,
    index: usize,
    cfg: &GdConfig,
    ctrl: StartControl<'_>,
) -> Result<SearchResult, NonFiniteLoss> {
    let mut state = DescentState::begin(loss, relaxed, index, cfg);
    let finished = run_segment(loss, &mut state, cfg, ctrl, usize::MAX)?;
    debug_assert!(finished, "an unbounded segment always finishes");
    Ok(state.into_result())
}

/// Deterministic reduction of per-start results: best EDP wins (ties to
/// the lowest start index), sample counts are re-offset to the sequential
/// accounting, and the concatenated history is rewritten to the running
/// global best.
pub(crate) fn merge_start_results(per_start: Vec<SearchResult>) -> SearchResult {
    let mut merged = SearchResult::empty();
    for r in per_start {
        let offset = merged.samples;
        merged.history.extend(r.history.iter().map(|p| SearchPoint {
            samples: offset + p.samples,
            best_edp: p.best_edp,
        }));
        if r.best_edp < merged.best_edp {
            merged.best_edp = r.best_edp;
            merged.best_hw = r.best_hw;
            merged.best_mappings = r.best_mappings;
        }
        merged.samples += r.samples;
    }
    // Already ordered by construction; keep the invariant explicit (stable
    // sort, so equal counts preserve start order).
    merged.history.sort_by_key(|p| p.samples);
    let mut best = f64::INFINITY;
    for p in merged.history.iter_mut() {
        best = best.min(p.best_edp);
        p.best_edp = best;
    }
    debug_assert!(
        merged
            .history
            .windows(2)
            .all(|w| w[0].samples < w[1].samples),
        "merged history must have strictly increasing sample counts"
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gd::SearchPoint;
    use dosa_accel::HardwareConfig;

    fn result(samples: usize, best: f64, history: Vec<(usize, f64)>) -> SearchResult {
        SearchResult {
            best_edp: best,
            best_hw: HardwareConfig::gemmini_default(),
            best_mappings: Vec::new(),
            history: history
                .into_iter()
                .map(|(samples, best_edp)| SearchPoint { samples, best_edp })
                .collect(),
            samples,
        }
    }

    #[test]
    fn merge_offsets_samples_and_takes_running_min() {
        let a = result(10, 5.0, vec![(4, 8.0), (10, 5.0)]);
        let b = result(6, 3.0, vec![(3, 9.0), (6, 3.0)]);
        let m = merge_start_results(vec![a, b]);
        assert_eq!(m.samples, 16);
        assert_eq!(
            m.history,
            vec![
                SearchPoint {
                    samples: 4,
                    best_edp: 8.0
                },
                SearchPoint {
                    samples: 10,
                    best_edp: 5.0
                },
                SearchPoint {
                    samples: 13,
                    best_edp: 5.0
                },
                SearchPoint {
                    samples: 16,
                    best_edp: 3.0
                },
            ]
        );
        assert_eq!(m.best_edp, 3.0);
    }

    #[test]
    fn merge_ties_break_to_lowest_start_index() {
        let mut a = result(5, 2.0, vec![(5, 2.0)]);
        a.best_hw = HardwareConfig::new(8, 64.0, 128.0).unwrap();
        let mut b = result(5, 2.0, vec![(5, 2.0)]);
        b.best_hw = HardwareConfig::new(32, 64.0, 128.0).unwrap();
        let m = merge_start_results(vec![a, b]);
        assert_eq!(m.best_hw.pe_side(), 8);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let m = merge_start_results(Vec::new());
        assert_eq!(m.samples, 0);
        assert!(m.history.is_empty());
        assert!(m.best_edp.is_infinite());
    }
}
